"""Fig. 25: application speedups on the Convex (fused vs unfused)."""

from _common import run_figure

from repro.experiments import fig25


def test_fig25(benchmark):
    result = run_figure(benchmark, fig25, "fig25")
    series = {s.app: s for s in result.series}
    assert all(p.improvement > 1.05 for p in series["tomcatv"].points)
    assert series["hydro2d"].improvement_at(1) > 1.08
    assert series["spem"].improvement_at(1) > 1.05
    assert series["spem"].dips_at(12) or series["spem"].dips_at(16)
