"""Wall-clock benchmark of the execution backends -> BENCH_fastexec.json.

Unlike the ``bench_fig*.py`` harnesses (which regenerate the paper's
simulated figures), this benchmark measures *real* execution time of the
fused plans through each runtime backend and writes a machine-readable
artifact so the performance trajectory is tracked PR-over-PR:

    python benchmarks/bench_fastexec.py --smoke --out BENCH_fastexec.json
    python scripts/check_bench_regression.py --bench BENCH_fastexec.json

``--smoke`` runs the tiny-shape configurations CI uses (a few seconds);
the default run adds the paper-size jacobi (512 x 512 arrays), whose
interp-vs-vector ratio is the headline speedup this backend exists for.
Checksums in the artifact are machine-independent; seconds are not, which
is why the regression checker rescales them by the recorded calibration.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime.benchmarking import calibrate, measure_kernel  # noqa: E402

# (kernel, n, procs, backends) — smoke tier runs everywhere, full tier adds
# the paper-size shapes.  n=None keeps the kernel's default parameters.
SMOKE_CONFIGS = [
    ("jacobi", 65, 4, ("interp", "vector", "mp")),
    ("ll18", 65, 4, ("interp", "vector", "mp")),
    ("filter", 65, 4, ("interp", "vector")),
    ("calc", 65, 4, ("interp", "vector")),
    ("jacobi", 255, 4, ("interp", "vector")),
    ("jacobi", 255, 1, ("vector",)),
]
FULL_CONFIGS = [
    ("jacobi", 511, 4, ("interp", "vector", "mp")),
    ("ll18", 511, 4, ("vector",)),
    ("calc", 513, 4, ("vector",)),
    ("filter", 512, 4, ("vector",)),
]


def run_bench(smoke: bool, repeat: int, verbose: bool = True) -> dict:
    configs = SMOKE_CONFIGS + ([] if smoke else FULL_CONFIGS)
    entries = []
    for kernel, n, procs, backends in configs:
        for backend in backends:
            # The interpreter is slow by design; one round is plenty.
            reps = 1 if backend == "interp" else repeat
            record = measure_kernel(kernel, backend, n=n, procs=procs,
                                    repeat=reps)
            entries.append(record)
            if verbose:
                print(f"  {kernel:8s} {backend:6s} n={n:<4d} P={procs} "
                      f"{record['seconds']:10.6f}s  {record['checksum']}")
    return {
        "version": 1,
        "python": platform.python_version(),
        "calibration_seconds": round(calibrate(), 6),
        "entries": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(Path(__file__).parent / "out"
                                             / "BENCH_fastexec.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny shapes only (the CI configuration)")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke, repeat=args.repeat)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload['entries'])} entries, "
          f"calibration {payload['calibration_seconds']}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
