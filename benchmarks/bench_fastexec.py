"""Wall-clock benchmark of the execution backends -> BENCH_fastexec.json.

Unlike the ``bench_fig*.py`` harnesses (which regenerate the paper's
simulated figures), this benchmark measures *real* execution time of the
fused plans through each runtime backend and writes a machine-readable
artifact so the performance trajectory is tracked PR-over-PR:

    python benchmarks/bench_fastexec.py --smoke --out BENCH_fastexec.json
    python scripts/check_bench_regression.py --bench BENCH_fastexec.json

``--smoke`` runs the tiny-shape configurations CI uses (a few seconds);
the default run adds the paper-size jacobi (512 x 512 arrays), whose
interp-vs-vector ratio is the headline speedup this backend exists for.
Checksums in the artifact are machine-independent; seconds are not, which
is why the regression checker rescales them by the recorded calibration.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime.benchmarking import calibrate, measure_kernel  # noqa: E402
from repro.runtime.plancache import (  # noqa: E402
    ENV_CACHE_DIR,
    reset_default_cache,
)

# (kernel, n, procs, backends) — smoke tier runs everywhere, full tier adds
# the paper-size shapes.  n=None keeps the kernel's default parameters.
# mpjit checksums are machine-independent, so the smoke entries force the
# pooled-parallel execution on a multi-core CI host to reproduce the bits
# a single-core machine committed (and vice versa).
SMOKE_CONFIGS = [
    ("jacobi", 65, 4, ("interp", "vector", "mp", "jit", "mpjit")),
    ("ll18", 65, 4, ("interp", "vector", "mp", "jit", "mpjit")),
    ("filter", 65, 4, ("interp", "vector", "jit", "mpjit")),
    ("calc", 65, 4, ("interp", "vector", "jit", "mpjit")),
    ("jacobi", 255, 4, ("interp", "vector", "jit", "mpjit")),
    ("jacobi", 255, 1, ("vector", "jit")),
]
FULL_CONFIGS = [
    ("jacobi", 511, 4, ("interp", "vector", "mp", "jit", "mpjit")),
    ("ll18", 511, 4, ("vector", "jit", "mpjit")),
    ("calc", 513, 4, ("vector", "jit", "mpjit")),
    ("filter", 512, 4, ("vector", "jit", "mpjit")),
]


def run_bench(smoke: bool, repeat: int, verbose: bool = True) -> dict:
    configs = SMOKE_CONFIGS + ([] if smoke else FULL_CONFIGS)
    entries = []
    # A fresh, private jit cache so every run measures a true cold first
    # compile — a warm leftover from yesterday would fake cold_seconds.
    cache_dir = tempfile.TemporaryDirectory(prefix="repro-bench-jit-")
    saved_env = os.environ.get(ENV_CACHE_DIR)
    os.environ[ENV_CACHE_DIR] = cache_dir.name
    reset_default_cache()
    try:
        return _run_configs(configs, repeat, verbose, entries)
    finally:
        if saved_env is None:
            os.environ.pop(ENV_CACHE_DIR, None)
        else:
            os.environ[ENV_CACHE_DIR] = saved_env
        reset_default_cache()
        cache_dir.cleanup()


def _run_configs(configs, repeat: int, verbose: bool, entries: list) -> dict:
    for kernel, n, procs, backends in configs:
        for backend in backends:
            # The interpreter is slow by design; one round is plenty.
            reps = 1 if backend == "interp" else repeat
            record = measure_kernel(kernel, backend, n=n, procs=procs,
                                    repeat=reps)
            entries.append(record)
            if verbose:
                print(f"  {kernel:8s} {backend:6s} n={n:<4d} P={procs} "
                      f"{record['seconds']:10.6f}s  "
                      f"cold {record['cold_seconds']:.6f}s "
                      f"warm {record['warm_seconds']:.6f}s  "
                      f"{record['checksum']}")
    return {
        "version": 3,
        "python": platform.python_version(),
        # Recorded so perf floors can be conditioned on parallel hardware
        # (a floor with "min_cpus" is skipped on smaller machines).
        "cpu_count": os.cpu_count(),
        "calibration_seconds": round(calibrate(), 6),
        "entries": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(Path(__file__).parent / "out"
                                             / "BENCH_fastexec.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny shapes only (the CI configuration)")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke, repeat=args.repeat)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload['entries'])} entries, "
          f"calibration {payload['calibration_seconds']}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
