"""Wall-clock benchmark of the execution backends -> immutable run dirs.

Unlike the ``bench_fig*.py`` harnesses (which regenerate the paper's
simulated figures), this benchmark measures *real* execution time of the
fused plans through each runtime backend.  Every invocation writes an
**immutable** ``benchmarks/results/<run_id>/`` directory — per-repeat
samples in ``telemetry.json`` plus ``summary.csv`` aggregates — and
appends one line to ``benchmarks/results/trajectory.jsonl`` so
successive runs form a comparable series (see :mod:`repro.bench`):

    python benchmarks/bench_fastexec.py --smoke --out BENCH_fastexec.json
    python scripts/check_bench_regression.py --bench benchmarks/results

``--smoke`` runs the tiny-shape configurations CI uses (a few seconds);
the default run adds the paper-size jacobi (512 x 512 arrays), whose
interp-vs-vector ratio is the headline speedup this backend exists for.
Checksums in the telemetry are machine-independent; seconds are not,
which is why the regression checker rescales them by the recorded
calibration.  ``--out`` additionally writes the flat one-file payload
(the committed-baseline shape) for tooling that wants a single JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import run_suite  # noqa: E402
from repro.bench.store import write_run  # noqa: E402

RESULTS_ROOT = Path(__file__).parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="also write the flat telemetry JSON here "
                             "(the committed-baseline shape)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny shapes only (the CI configuration)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="samples per config (all are recorded)")
    parser.add_argument("--results-root", default=str(RESULTS_ROOT),
                        help="where immutable <run_id>/ dirs accumulate")
    parser.add_argument("--no-results", action="store_true",
                        help="skip the run directory (flat --out only)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="count repeats slower than this as deadline "
                             "misses in the telemetry")
    args = parser.parse_args(argv)
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    payload = run_suite(smoke=args.smoke, repeat=args.repeat,
                        deadline_seconds=deadline)
    if not args.no_results:
        run_dir = write_run(payload, root=Path(args.results_root))
        payload = json.loads((run_dir / "telemetry.json").read_text())
        print(f"wrote {run_dir} ({len(payload['entries'])} entries, "
              f"calibration {payload['calibration_seconds']}s)")
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
