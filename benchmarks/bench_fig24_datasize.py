"""Fig. 24: improvement from fusion vs array size at 8 and 16 processors."""

from _common import run_figure

from repro.experiments import fig24


def test_fig24(benchmark):
    result = run_figure(benchmark, fig24, "fig24")
    for kernel in ("ll18", "calc"):
        assert result.improvement(kernel, 256, 8) > result.improvement(kernel, 64, 8)
    # LL18 (9 arrays) keeps benefiting at sizes/counts where calc (6 arrays)
    # no longer does.
    ll18_16 = result.improvement("ll18", 256, 16)
    calc_16 = result.improvement("calc", 256, 16)
    assert ll18_16 > calc_16
