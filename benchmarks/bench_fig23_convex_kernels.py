"""Fig. 23: LL18/calc/filter speedup and misses on the Convex, up to 16."""

from _common import run_figure

from repro.experiments import fig23


def test_fig23(benchmark):
    result = run_figure(benchmark, fig23, "fig23")
    curves = {c.kernel: c for c in result}
    # Paper: >=30% for LL18 and calc, ~60% for filter at low counts; larger
    # than the KSR2 numbers because misses cost more relative to compute.
    assert curves["ll18"].max_improvement() > 1.2
    assert curves["calc"].max_improvement() > 1.3
    assert curves["filter"].max_improvement() > 1.3
    assert all(p.improvement > 1.0 for p in curves["ll18"].points)
