"""Figs. 15/16: multidimensional shift-and-peel on the Jacobi pair."""

from _common import run_figure

from repro.experiments import fig15_16


def test_fig15_16(benchmark):
    result = run_figure(benchmark, fig15_16, "fig15_16")
    assert result.shifts == ((0, 0), (1, 1))
    assert result.peels == ((0, 0), (1, 1))
    grid, mu, mf = result.grid_results[0]
    assert mu > 1.7 * mf
