"""Component microbenchmarks: the library's own hot paths.

These are real pytest-benchmark measurements (multiple rounds) of the
compiler-side algorithms — useful for tracking regressions in the
infrastructure itself, independent of the paper's figures.
"""

import numpy as np

from repro.cachesim import CacheConfig, simulate
from repro.core import build_execution_plan, derive_shift_peel
from repro.dependence import analyze_sequence
from repro.kernels import get_kernel
from repro.machine import contiguous_layout, nest_block_trace


def _filter_seq():
    info = get_kernel("filter")
    prog = info.program()
    return prog, prog.sequences[0]


def test_dependence_analysis_filter(benchmark):
    prog, seq = _filter_seq()
    summary = benchmark(analyze_sequence, seq, prog.params, 1)
    assert summary.edge_count() > 20


def test_shift_peel_derivation_filter(benchmark):
    prog, seq = _filter_seq()
    plan = benchmark(derive_shift_peel, seq, prog.params, 1)
    assert plan.max_shift == 5


def test_execution_planning(benchmark):
    prog, seq = _filter_seq()
    plan = derive_shift_peel(seq, prog.params, 1)
    params = {"m": 402, "n": 162}
    ep = benchmark(build_execution_plan, plan, params, 16)
    assert ep.num_procs == 16


def test_trace_generation_throughput(benchmark):
    info = get_kernel("ll18")
    prog = info.program()
    params = {"n": 258}
    layout = contiguous_layout(
        [(d.name, d.concrete_shape(params)) for d in prog.arrays]
    )
    nest = prog.sequences[0][1]
    trace = benchmark(nest_block_trace, nest, params, layout)
    assert trace.size > 1_000_000


def test_direct_mapped_sim_throughput(benchmark):
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 22, 1_000_000).astype(np.int64)
    cfg = CacheConfig(64 * 1024, 64, 1)
    stats = benchmark(simulate, addrs, cfg)
    assert stats.accesses == 1_000_000


def test_two_way_sim_throughput(benchmark):
    rng = np.random.default_rng(1)
    addrs = rng.integers(0, 1 << 22, 1_000_000).astype(np.int64)
    cfg = CacheConfig(64 * 1024, 128, 2)
    stats = benchmark(simulate, addrs, cfg)
    assert stats.accesses == 1_000_000
