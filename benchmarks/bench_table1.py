"""Table 1: kernel/application inventory (derived, checked against paper)."""

from _common import run_figure

from repro.experiments import table1


def test_table1(benchmark):
    result = run_figure(benchmark, table1, "table1")
    assert all(row.matches_paper for row in result.rows)
