"""Fig. 20: padding sweep vs cache partitioning on KSR2 and Convex,
fused and unfused LL18."""

from _common import run_figure

from repro.experiments import fig20


def test_fig20(benchmark):
    result = run_figure(benchmark, fig20, "fig20")
    for series in (result.ksr2, result.convex):
        assert series.partitioning_at_or_below_min()
        # The benefit of fusion can be lost when padding fails: some padding
        # points put fused misses at (or above) unfused-partitioned levels.
        assert series.padding_max > series.misses_fused_partitioning
