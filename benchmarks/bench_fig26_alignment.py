"""Fig. 26: shift-and-peel peeling vs alignment/replication for LL18."""

from _common import run_figure

from repro.experiments import fig26


def test_fig26(benchmark):
    result = run_figure(benchmark, fig26, "fig26")
    for series in result.series:
        assert series.peeling_wins_everywhere()
        # Paper Sec. 5: two arrays and two statements must be replicated.
        assert len(series.replicated_arrays) == 2
        assert series.replicated_statements == 2
