"""Fig. 21: application speedups with/without cache partitioning (Convex)."""

from _common import run_figure

from repro.experiments import fig21


def test_fig21(benchmark):
    result = run_figure(benchmark, fig21, "fig21")
    for series in result.series:
        # Conflict avoidance is necessary for the best performance: the
        # fused-without-partitioning curve trails the partitioned original
        # at scale.
        assert series.fused_contiguous[-1] < series.orig_partitioned[-1]
