"""Fig. 22: LL18/calc speedup and misses on the KSR2, up to 56 procs."""

from _common import run_figure

from repro.experiments import fig22


def test_fig22(benchmark):
    result = run_figure(benchmark, fig22, "fig22")
    curves = {c.kernel: c for c in result}
    assert curves["ll18"].points[0].improvement > 1.05
    assert curves["ll18"].crossover() is not None
    assert curves["calc"].crossover() <= curves["ll18"].crossover()
