"""Fig. 18: cache misses for fused LL18 under padding vs cache partitioning."""

from _common import run_figure

from repro.experiments import fig18


def test_fig18(benchmark):
    result = run_figure(benchmark, fig18, "fig18")
    # Paper claims: erratic padding behaviour; partitioning directly
    # minimizes misses (at or below the whole padding sweep).
    assert result.erratic_ratio > 2
    assert result.partitioning_at_or_below_min()
