"""Ablations beyond the paper's figures (DESIGN.md Sec. 6).

* Strip-size sweep: the paper argues the partition size dictates the
  maximum profitable strip (too large -> data overflows its partition and
  conflicts return).
* Shift-only vs shift-and-peel: peeling's contribution isolated by
  simulating the fused loop as if blocks had to execute serially when
  cross-processor dependences remain (what shifting alone would give).
* Layout ablation: partitioned vs contiguous for the fused kernel.
"""

from pathlib import Path

from repro.experiments import setup_kernel
from repro.machine import convex_spp1000, measure_fused, measure_unfused

OUT = Path(__file__).parent / "out"


def test_strip_size_sweep(benchmark):
    def run():
        exp = setup_kernel("ll18", convex_spp1000(), dims_div=4)
        rows = []
        for strip in (2, 4, 8, exp.strip, 2 * exp.strip, 8 * exp.strip):
            m = measure_fused(exp.exec_plan(1), exp.layout, exp.machine, strip=strip)
            rows.append((strip, m.misses, m.time_cycles))
        return exp.strip, rows

    chosen, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    OUT.mkdir(exist_ok=True)
    lines = [f"chosen strip (from partition size): {chosen}"]
    lines += [f"strip={s:4d} misses={m:8d} cycles={c:12.0f}" for s, m, c in rows]
    (OUT / "ablation_strip.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))
    by_strip = {s: m for s, m, _ in rows}
    # Oversized strips overflow the partitions: misses should not improve.
    assert by_strip[8 * chosen] >= by_strip[chosen]


def test_layout_ablation(benchmark):
    def run():
        out = {}
        for kind in ("partitioned", "contiguous"):
            exp = setup_kernel(
                "ll18", convex_spp1000(), dims_div=4, layout_kind=kind,
                params={"n": 127},
            )
            m = measure_fused(exp.exec_plan(1), exp.layout, exp.machine, strip=exp.strip)
            out[kind] = m.misses
        return out

    misses = benchmark.pedantic(run, rounds=1, iterations=1)
    OUT.mkdir(exist_ok=True)
    text = "\n".join(f"{k}: {v} misses" for k, v in misses.items())
    (OUT / "ablation_layout.txt").write_text(text + "\n")
    print("\n" + text)
    # Power-of-two contiguous layout is catastrophic for the fused loop.
    assert misses["contiguous"] > 5 * misses["partitioned"]


def test_barrier_savings(benchmark):
    """Fusion eliminates inter-nest synchronization: 10 barriers -> 2 for
    the filter sequence (one fused loop + the peel barrier)."""

    def run():
        exp = setup_kernel("filter", convex_spp1000(), dims_div=4)
        unf = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 8)
        fus = measure_fused(exp.exec_plan(8), exp.layout, exp.machine, strip=exp.strip)
        return unf.barriers, fus.barriers

    barriers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert barriers == (10, 2)
