"""Table 2: derived per-loop shift and peel amounts for the three kernels."""

from _common import run_figure

from repro.experiments import table2


def test_table2(benchmark):
    result = run_figure(benchmark, table2, "table2")
    assert result.all_match()
