"""Shared benchmark plumbing.

Every bench regenerates one table/figure of the paper exactly once
(``benchmark.pedantic`` with a single round — these are experiment
harnesses, not microbenchmarks), prints the reproduced rows/series, and
archives them under ``benchmarks/out/`` so EXPERIMENTS.md can reference a
stable artifact.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def format_result(result) -> str:
    """Render a figure/table result for archival.

    Experiment results expose ``.format()``; anything else (plain dicts,
    strings, numbers from ad-hoc benchmark functions) falls back to
    ``str`` so archival never crashes the run.
    """
    formatter = getattr(result, "format", None)
    if callable(formatter):
        return formatter()
    return str(result)


def run_figure(benchmark, fn, name: str, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark, print and archive output."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    text = format_result(result)
    # out/ is untracked scratch (gitignored); always created on demand.
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
    return result
