#!/usr/bin/env python
"""Gate CI on the fastexec benchmark: correctness and performance.

Compares a freshly produced ``BENCH_fastexec.json`` (see
``benchmarks/bench_fastexec.py``) against the committed baseline and exits
non-zero when:

* any shared entry's **checksum** differs — the backends are deterministic
  and IEEE-754 arithmetic is machine-independent, so a checksum change
  means an execution-semantics change, never noise;
* a **speedup floor** is violated — the baseline lists required
  fast-vs-reference ratios (e.g. ``vector`` at least 30x faster than
  ``interp`` on jacobi).  Both sides of a ratio come from the *uploaded*
  file, so floors are immune to machine-speed differences.  A floor may
  name a ``metric`` other than ``seconds`` (e.g. ``warm_seconds`` to
  compare steady states) and may carry ``min_cpus``: a parallel-hardware
  requirement (e.g. mpjit must beat warm serial jit *on a multi-core
  host*) that is skipped, with a note, when the measuring machine's
  recorded ``cpu_count`` is smaller;
* a **geomean floor** is violated — the baseline can require that one
  backend beat another by a factor *in geometric mean across every kernel
  they share* (e.g. warm ``jit`` at least 1.3x faster than ``vector`` on
  ``warm_seconds``).  Again both sides come from the fresh file;
* a shared entry shows a **wall-clock slowdown of more than 25 %** (the
  ``--tolerance``) after rescaling the baseline by the two files'
  pure-Python calibration ratio.  Entries whose scaled baseline time is
  below ``--min-seconds`` are checked for checksums only — micro-times are
  all noise.

Every failing entry is reported (the checker never stops at the first),
and the exit code tells CI *what kind* of failure happened:

* 0 — all checks passed
* 1 — structural problem (no overlapping entries, or refusing --update)
* 2 — bench/baseline file missing
* 3 — checksum (correctness) failures only
* 4 — performance failures only (floors, geomeans, slowdowns)
* 5 — both checksum and performance failures

CI runs exactly this command; run it locally the same way:

    python benchmarks/bench_fastexec.py --smoke --out BENCH_fastexec.json
    python scripts/check_bench_regression.py --bench BENCH_fastexec.json

``--update`` rewrites the baseline from the fresh file (preserving the
floors sections) after you have verified an intentional change.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "benchmarks" / "BENCH_fastexec.json"

EXIT_OK = 0
EXIT_STRUCTURE = 1
EXIT_MISSING = 2
EXIT_CHECKSUM = 3
EXIT_PERF = 4
EXIT_BOTH = 5

CATEGORIES = ("structure", "checksum", "perf")


def _key(entry: dict) -> tuple:
    return (entry["kernel"], entry["backend"], entry["shape"], entry["procs"])


def _index(payload: dict) -> dict[tuple, dict]:
    return {_key(e): e for e in payload.get("entries", [])}


def _lacks_cpus(floor: dict, bench_cpus) -> bool:
    """True when a floor demands more cores than the measuring machine has
    (or the bench file predates cpu_count recording)."""
    need = floor.get("min_cpus")
    return bool(need) and (not bench_cpus or bench_cpus < need)


def check(bench: dict, baseline: dict, tolerance: float,
          min_seconds: float) -> tuple[dict[str, list[str]], list[str]]:
    """Return (failures by category, notes).

    Categories are ``structure`` (the comparison itself is impossible),
    ``checksum`` (correctness) and ``perf`` (floors, geomean floors and
    calibration-scaled slowdowns).  All failing entries are collected —
    one bad checksum never hides the next.
    """
    failures: dict[str, list[str]] = {cat: [] for cat in CATEGORIES}
    notes: list[str] = []
    fresh = _index(bench)
    base = _index(baseline)

    shared = sorted(set(fresh) & set(base))
    if not shared:
        failures["structure"].append(
            "no benchmark entries overlap with the baseline"
        )
    for key in sorted(set(base) - set(fresh)):
        notes.append(f"baseline entry not in this run (skipped): {key}")
    for key in sorted(set(fresh) - set(base)):
        notes.append(f"new entry without baseline: {key}")

    # 1. Checksums: exact, machine-independent.
    for key in shared:
        got, want = fresh[key]["checksum"], base[key]["checksum"]
        if got != want:
            failures["checksum"].append(
                f"checksum mismatch for {key}: {got} != {want}"
            )

    # 2. Speedup floors, measured entirely within the fresh file.
    bench_cpus = bench.get("cpu_count")
    for floor in baseline.get("floors", []):
        if _lacks_cpus(floor, bench_cpus):
            notes.append(
                f"floor needs >= {floor['min_cpus']} cpus, this machine "
                f"has {bench_cpus or 'unknown'} (skipped): "
                f"{floor['fast']} vs {floor['slow']} on {floor['kernel']}"
            )
            continue
        metric = floor.get("metric", "seconds")
        slow_key = (floor["kernel"], floor["slow"], floor["shape"],
                    floor["procs"])
        fast_key = (floor["kernel"], floor["fast"], floor["shape"],
                    floor["procs"])
        if slow_key not in fresh or fast_key not in fresh:
            notes.append(f"floor not measurable in this run (skipped): "
                         f"{floor['kernel']} {floor['shape']}")
            continue
        fast_s = fresh[fast_key].get(metric)
        slow_s = fresh[slow_key].get(metric)
        if not fast_s or not slow_s:
            notes.append(f"floor pair lacks {metric!r} (skipped): "
                         f"{floor['kernel']} [{floor['shape']}]")
            continue
        speedup = slow_s / fast_s
        if speedup < floor["min_speedup"]:
            failures["perf"].append(
                f"speedup floor violated for {floor['kernel']} "
                f"[{floor['shape']}]: {floor['fast']} is only "
                f"{speedup:.1f}x faster than {floor['slow']} on {metric} "
                f"(required {floor['min_speedup']}x)"
            )
        else:
            notes.append(
                f"floor ok: {floor['kernel']} [{floor['shape']}] "
                f"{floor['fast']} {speedup:.1f}x over {floor['slow']} "
                f"on {metric} (>= {floor['min_speedup']}x)"
            )

    # 3. Geomean floors: one backend must beat another across the board.
    for floor in baseline.get("geomean_floors", []):
        if _lacks_cpus(floor, bench_cpus):
            notes.append(
                f"geomean floor needs >= {floor['min_cpus']} cpus, this "
                f"machine has {bench_cpus or 'unknown'} (skipped): "
                f"{floor['fast']} vs {floor['slow']}"
            )
            continue
        metric = floor.get("metric", "seconds")
        ratios = []
        for key in fresh:
            kernel, backend, shape, procs = key
            if backend != floor["fast"]:
                continue
            slow_key = (kernel, floor["slow"], shape, procs)
            if slow_key not in fresh:
                continue
            fast_v = fresh[key].get(metric)
            slow_v = fresh[slow_key].get(metric)
            if not fast_v or not slow_v:
                notes.append(f"geomean pair lacks {metric!r} (skipped): "
                             f"{kernel} [{shape}]")
                continue
            ratios.append(slow_v / fast_v)
        if not ratios:
            notes.append(
                f"geomean floor not measurable in this run (skipped): "
                f"{floor['fast']} vs {floor['slow']} on {metric}"
            )
            continue
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        if geomean < floor["min_speedup"]:
            failures["perf"].append(
                f"geomean floor violated: {floor['fast']} is only "
                f"{geomean:.2f}x faster than {floor['slow']} on {metric} "
                f"across {len(ratios)} kernels "
                f"(required {floor['min_speedup']}x)"
            )
        else:
            notes.append(
                f"geomean ok: {floor['fast']} {geomean:.2f}x over "
                f"{floor['slow']} on {metric} across {len(ratios)} kernels "
                f"(>= {floor['min_speedup']}x)"
            )

    # 4. Wall-clock regression, calibration-scaled.
    base_cal = baseline.get("calibration_seconds") or 0.0
    fresh_cal = bench.get("calibration_seconds") or 0.0
    scale = (fresh_cal / base_cal) if base_cal > 0 and fresh_cal > 0 else 1.0
    notes.append(f"calibration scale {scale:.2f} "
                 f"(baseline {base_cal}s, this machine {fresh_cal}s)")
    for key in shared:
        allowed = base[key]["seconds"] * scale
        if allowed < min_seconds:
            continue
        got = fresh[key]["seconds"]
        if got > allowed * (1.0 + tolerance):
            failures["perf"].append(
                f"slowdown for {key}: {got:.4f}s vs allowed "
                f"{allowed:.4f}s (+{tolerance:.0%})"
            )
    return failures, notes


def exit_code(failures: dict[str, list[str]]) -> int:
    """Map categorized failures to the documented exit code."""
    if failures.get("structure"):
        return EXIT_STRUCTURE
    bad_sum = bool(failures.get("checksum"))
    bad_perf = bool(failures.get("perf"))
    if bad_sum and bad_perf:
        return EXIT_BOTH
    if bad_sum:
        return EXIT_CHECKSUM
    if bad_perf:
        return EXIT_PERF
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="freshly produced BENCH_fastexec.json")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="scaled baseline times below this are "
                             "checksum-checked only")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --bench")
    args = parser.parse_args(argv)

    bench_path = Path(args.bench)
    baseline_path = Path(args.baseline)
    for path, what in ((bench_path, "bench file"), (baseline_path, "baseline")):
        if not path.is_file():
            print(f"error: {what} not found: {path}", file=sys.stderr)
            return EXIT_MISSING
    bench = json.loads(bench_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    failures, notes = check(bench, baseline, args.tolerance, args.min_seconds)
    for note in notes:
        print(f"note: {note}")
    total = 0
    for cat in CATEGORIES:
        for failure in failures[cat]:
            print(f"FAIL[{cat}]: {failure}", file=sys.stderr)
            total += 1

    if args.update:
        if total:
            print("refusing to --update while checks fail", file=sys.stderr)
            return EXIT_STRUCTURE
        bench["floors"] = baseline.get("floors", [])
        bench["geomean_floors"] = baseline.get("geomean_floors", [])
        baseline_path.write_text(
            json.dumps(bench, indent=2, sort_keys=True) + "\n"
        )
        print(f"updated {baseline_path}")
        return EXIT_OK

    if total:
        print(f"{total} benchmark check(s) failed "
              f"(exit {exit_code(failures)}: "
              f"{sum(1 for _ in failures['checksum'])} checksum, "
              f"{sum(1 for _ in failures['perf'])} perf, "
              f"{sum(1 for _ in failures['structure'])} structural)",
              file=sys.stderr)
        return exit_code(failures)
    print("benchmark checks passed")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
