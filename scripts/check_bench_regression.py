#!/usr/bin/env python
"""Gate CI on the fastexec benchmark: correctness and performance.

Compares a fresh benchmark run — an immutable ``benchmarks/results/
<run_id>/`` directory, a results root (the newest run inside is used), or
a flat telemetry JSON — against the committed baseline and exits non-zero
when:

* any shared entry's **checksum** differs — the backends are deterministic
  and IEEE-754 arithmetic is machine-independent, so a checksum change
  means an execution-semantics change, never noise.  Checksum failures
  are always hard failures;
* a **speedup floor** is violated — the baseline lists required
  fast-vs-reference ratios (e.g. ``vector`` at least 30x faster than
  ``interp`` on jacobi).  Both sides of a ratio come from the *fresh*
  run, so floors are immune to machine-speed differences.  A floor may
  name a ``metric`` other than ``seconds`` (e.g. ``warm_seconds`` to
  compare steady states) and may carry ``min_cpus``: a parallel-hardware
  requirement that is skipped, with a note, when the measuring machine's
  recorded ``cpu_count`` is smaller.  ``requires_native`` floors (the
  cjit-beats-jit gates) are likewise skipped, with a note, when the
  fresh run's cjit entry reports it fell back to jit for lack of a C
  compiler;
* a **geomean floor** is violated — the baseline can require that one
  backend beat another by a factor *in geometric mean across every kernel
  they share* (e.g. warm ``jit`` at least 1.3x faster than ``vector``);
* a shared entry shows a **median slowdown of more than 25 %** (the
  ``--tolerance``) after rescaling the baseline by the two runs'
  pure-Python calibration ratio.  Both sides are **medians over the
  per-repeat samples** (never a single number), so one scheduler hiccup
  cannot fail — or excuse — a run.  Entries whose scaled baseline median
  is below ``--min-seconds`` are checked for checksums only.

Noise is measured, not guessed: every entry's **jitter** (IQR/median over
its samples) is reported, and a *performance* failure whose entries are
jittier than ``--jitter-threshold`` is downgraded to a flagged warning —
the run still passes, but the report names the config so a human (or the
weekly full run) can follow up.  Checksum failures are never downgraded.

Every failing entry is reported (the checker never stops at the first),
and the exit code tells CI *what kind* of failure happened:

* 0 — all checks passed (flagged warnings do not change the exit code)
* 1 — structural problem (no overlapping entries, or refusing --update)
* 2 — bench/baseline file missing
* 3 — checksum (correctness) failures only
* 4 — performance failures only (floors, geomeans, slowdowns)
* 5 — both checksum and performance failures

Reports: ``--json PATH`` writes a machine-readable report
(``repro-bench-gate/1``), ``--markdown PATH`` appends a human-readable
table — CI points it at ``$GITHUB_STEP_SUMMARY``.  Either accepts ``-``
for stdout.

``--compare RUN_A RUN_B`` diffs two runs directly (medians, jitter,
checksum drift) with no baseline involved — the local before/after
workflow, and the CI step that runs the smoke bench twice and asserts
zero checksum drift.  Exit codes keep their meaning (3 on drift).

CI runs exactly this; run it locally the same way:

    python benchmarks/bench_fastexec.py --smoke
    python scripts/check_bench_regression.py --bench benchmarks/results

``--update`` rewrites the baseline from the fresh run (preserving the
floors sections) after you have verified an intentional change.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.store import read_run  # noqa: E402

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "benchmarks" / "BENCH_fastexec.json"

EXIT_OK = 0
EXIT_STRUCTURE = 1
EXIT_MISSING = 2
EXIT_CHECKSUM = 3
EXIT_PERF = 4
EXIT_BOTH = 5

CATEGORIES = ("structure", "checksum", "perf")
FLAGGED = "flagged"
REPORT_SCHEMA = "repro-bench-gate/1"
DEFAULT_JITTER_THRESHOLD = 0.35


def _key(entry: dict) -> tuple:
    return (entry["kernel"], entry["backend"], entry["shape"], entry["procs"])


def _index(payload: dict) -> dict[tuple, dict]:
    return {_key(e): e for e in payload.get("entries", [])}


def _median(values) -> float:
    data = sorted(values)
    mid = len(data) // 2
    if len(data) % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def metric_value(entry: dict, metric: str = "seconds"):
    """The gate's value for one entry: the **median over samples** when
    samples are recorded, falling back to the pre-aggregated field for
    legacy single-number entries."""
    if metric == "seconds":
        if entry.get("median_seconds") is not None:
            return entry["median_seconds"]
        samples = entry.get("samples")
        if samples:
            return _median(s["seconds"] for s in samples)
        return entry.get("seconds")
    if metric == "warm_seconds":
        if entry.get("warm_median_seconds") is not None:
            return entry["warm_median_seconds"]
        return entry.get("warm_seconds")
    return entry.get(metric)


def entry_jitter(entry: dict):
    """IQR/median over the entry's samples (None when unmeasurable)."""
    if entry.get("jitter") is not None:
        return entry["jitter"]
    samples = [s["seconds"] for s in entry.get("samples", [])]
    if len(samples) < 2:
        return None
    data = sorted(samples)

    def pct(q):
        pos = (q / 100.0) * (len(data) - 1)
        lo, hi = math.floor(pos), math.ceil(pos)
        return data[lo] + (data[hi] - data[lo]) * (pos - lo)

    med = pct(50)
    return round((pct(75) - pct(25)) / med, 4) if med > 0 else None


def _lacks_cpus(floor: dict, bench_cpus) -> bool:
    """True when a floor demands more cores than the measuring machine has
    (or the bench file predates cpu_count recording)."""
    need = floor.get("min_cpus")
    return bool(need) and (not bench_cpus or bench_cpus < need)


def calibration_scale(bench: dict, baseline: dict) -> float:
    base_cal = baseline.get("calibration_seconds") or 0.0
    fresh_cal = bench.get("calibration_seconds") or 0.0
    return (fresh_cal / base_cal) if base_cal > 0 and fresh_cal > 0 else 1.0


def _perf_fail(failures: dict, message: str, jittery: bool,
               threshold: float) -> None:
    """File a perf failure, or downgrade it to a flagged warning when the
    entries involved are noisier than the jitter threshold."""
    if jittery:
        failures[FLAGGED].append(
            f"{message} [downgraded: jitter > {threshold} or single-sample]")
    else:
        failures["perf"].append(message)


def _jittery(threshold: float, *entries) -> bool:
    """Whether a perf failure involving ``entries`` should be downgraded.

    True when any entry's measured jitter exceeds the threshold, or when
    an entry records only a single sample — one sample cannot distinguish
    noise from regression, so it cannot *hard*-fail a median gate.
    Legacy entries (no ``samples`` at all) keep the historical hard-fail
    behavior.
    """
    for entry in entries:
        jitter = entry_jitter(entry)
        if jitter is not None:
            if jitter > threshold:
                return True
        elif len(entry.get("samples", ())) == 1:
            return True
    return False


def check(bench: dict, baseline: dict, tolerance: float, min_seconds: float,
          jitter_threshold: float = DEFAULT_JITTER_THRESHOLD,
          ) -> tuple[dict[str, list[str]], list[str]]:
    """Return (failures by category, notes).

    Categories are ``structure`` (the comparison itself is impossible),
    ``checksum`` (correctness), ``perf`` (floors, geomean floors and
    calibration-scaled median slowdowns) and ``flagged`` (perf failures
    downgraded because the entries involved exceed the jitter
    threshold; never counted toward the exit code).  All failing entries
    are collected — one bad checksum never hides the next.
    """
    failures: dict[str, list[str]] = {cat: [] for cat in CATEGORIES}
    failures[FLAGGED] = []
    notes: list[str] = []
    fresh = _index(bench)
    base = _index(baseline)

    shared = sorted(set(fresh) & set(base))
    if not shared:
        failures["structure"].append(
            "no benchmark entries overlap with the baseline"
        )
    for key in sorted(set(base) - set(fresh)):
        notes.append(f"baseline entry not in this run (skipped): {key}")
    for key in sorted(set(fresh) - set(base)):
        notes.append(f"new entry without baseline: {key}")

    # 1. Checksums: exact, machine-independent, never downgraded.
    for key in shared:
        got, want = fresh[key]["checksum"], base[key]["checksum"]
        if got != want:
            failures["checksum"].append(
                f"checksum mismatch for {key}: {got} != {want}"
            )

    # 2. Speedup floors, measured entirely within the fresh run.
    bench_cpus = bench.get("cpu_count")
    for floor in baseline.get("floors", []):
        if _lacks_cpus(floor, bench_cpus):
            notes.append(
                f"floor needs >= {floor['min_cpus']} cpus, this machine "
                f"has {bench_cpus or 'unknown'} (skipped): "
                f"{floor['fast']} vs {floor['slow']} on {floor['kernel']}"
            )
            continue
        metric = floor.get("metric", "seconds")
        slow_key = (floor["kernel"], floor["slow"], floor["shape"],
                    floor["procs"])
        fast_key = (floor["kernel"], floor["fast"], floor["shape"],
                    floor["procs"])
        if slow_key not in fresh or fast_key not in fresh:
            notes.append(f"floor not measurable in this run (skipped): "
                         f"{floor['kernel']} {floor['shape']}")
            continue
        fast_s = metric_value(fresh[fast_key], metric)
        slow_s = metric_value(fresh[slow_key], metric)
        if (floor.get("requires_native")
                and not fresh[fast_key].get("cjit", {}).get("native")):
            notes.append(
                f"floor needs the native tier but this run fell back to "
                f"jit — no C compiler (skipped): {floor['fast']} vs "
                f"{floor['slow']} on {floor['kernel']}"
            )
            continue
        if not fast_s or not slow_s:
            notes.append(f"floor pair lacks {metric!r} (skipped): "
                         f"{floor['kernel']} [{floor['shape']}]")
            continue
        speedup = slow_s / fast_s
        if speedup < floor["min_speedup"]:
            _perf_fail(
                failures,
                f"speedup floor violated for {floor['kernel']} "
                f"[{floor['shape']}]: {floor['fast']} is only "
                f"{speedup:.1f}x faster than {floor['slow']} on {metric} "
                f"(required {floor['min_speedup']}x)",
                _jittery(jitter_threshold, fresh[fast_key], fresh[slow_key]),
                jitter_threshold,
            )
        else:
            notes.append(
                f"floor ok: {floor['kernel']} [{floor['shape']}] "
                f"{floor['fast']} {speedup:.1f}x over {floor['slow']} "
                f"on {metric} (>= {floor['min_speedup']}x)"
            )

    # 3. Geomean floors: one backend must beat another across the board.
    for floor in baseline.get("geomean_floors", []):
        if _lacks_cpus(floor, bench_cpus):
            notes.append(
                f"geomean floor needs >= {floor['min_cpus']} cpus, this "
                f"machine has {bench_cpus or 'unknown'} (skipped): "
                f"{floor['fast']} vs {floor['slow']}"
            )
            continue
        metric = floor.get("metric", "seconds")
        ratios = []
        contributors = []
        for key in fresh:
            kernel, backend, shape, procs = key
            if backend != floor["fast"]:
                continue
            slow_key = (kernel, floor["slow"], shape, procs)
            if slow_key not in fresh:
                continue
            fast_v = metric_value(fresh[key], metric)
            slow_v = metric_value(fresh[slow_key], metric)
            if not fast_v or not slow_v:
                notes.append(f"geomean pair lacks {metric!r} (skipped): "
                             f"{kernel} [{shape}]")
                continue
            ratios.append(slow_v / fast_v)
            contributors.extend((fresh[key], fresh[slow_key]))
        if not ratios:
            notes.append(
                f"geomean floor not measurable in this run (skipped): "
                f"{floor['fast']} vs {floor['slow']} on {metric}"
            )
            continue
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        if geomean < floor["min_speedup"]:
            jitters = [entry_jitter(e) or 0.0 for e in contributors]
            mean_jitter = sum(jitters) / len(jitters)
            _perf_fail(
                failures,
                f"geomean floor violated: {floor['fast']} is only "
                f"{geomean:.2f}x faster than {floor['slow']} on {metric} "
                f"across {len(ratios)} kernels "
                f"(required {floor['min_speedup']}x)",
                mean_jitter > jitter_threshold,
                jitter_threshold,
            )
        else:
            notes.append(
                f"geomean ok: {floor['fast']} {geomean:.2f}x over "
                f"{floor['slow']} on {metric} across {len(ratios)} kernels "
                f"(>= {floor['min_speedup']}x)"
            )

    # 4. Median slowdown, calibration-scaled.
    scale = calibration_scale(bench, baseline)
    notes.append(f"calibration scale {scale:.2f} "
                 f"(baseline {baseline.get('calibration_seconds')}s, "
                 f"this machine {bench.get('calibration_seconds')}s)")
    for key in shared:
        base_median = metric_value(base[key])
        if base_median is None:
            continue
        allowed = base_median * scale
        if allowed < min_seconds:
            continue
        got = metric_value(fresh[key])
        if got is not None and got > allowed * (1.0 + tolerance):
            _perf_fail(
                failures,
                f"median slowdown for {key}: {got:.4f}s vs allowed "
                f"{allowed:.4f}s (+{tolerance:.0%})",
                _jittery(jitter_threshold, fresh[key]),
                jitter_threshold,
            )
    return failures, notes


def compare(run_a: dict, run_b: dict,
            jitter_threshold: float = DEFAULT_JITTER_THRESHOLD,
            ) -> tuple[dict[str, list[str]], list[str]]:
    """Diff two runs directly: checksum drift is a failure, median
    movement is informational (the runs are peers — neither is a
    committed baseline)."""
    failures: dict[str, list[str]] = {cat: [] for cat in CATEGORIES}
    failures[FLAGGED] = []
    notes: list[str] = []
    a, b = _index(run_a), _index(run_b)
    shared = sorted(set(a) & set(b))
    if not shared:
        failures["structure"].append("the two runs share no entries")
    for key in shared:
        if a[key]["checksum"] != b[key]["checksum"]:
            failures["checksum"].append(
                f"checksum drift for {key}: "
                f"{a[key]['checksum']} != {b[key]['checksum']}"
            )
        med_a, med_b = metric_value(a[key]), metric_value(b[key])
        if med_a and med_b:
            notes.append(
                f"{key}: median {med_a:.6f}s -> {med_b:.6f}s "
                f"({med_b / med_a:.2f}x)"
            )
    return failures, notes


def exit_code(failures: dict[str, list[str]]) -> int:
    """Map categorized failures to the documented exit code (flagged
    warnings never fail the gate)."""
    if failures.get("structure"):
        return EXIT_STRUCTURE
    bad_sum = bool(failures.get("checksum"))
    bad_perf = bool(failures.get("perf"))
    if bad_sum and bad_perf:
        return EXIT_BOTH
    if bad_sum:
        return EXIT_CHECKSUM
    if bad_perf:
        return EXIT_PERF
    return EXIT_OK


def _run_meta(payload: dict) -> dict:
    return {field: payload.get(field)
            for field in ("run_id", "created_utc", "git_sha", "python",
                          "cpu_count", "calibration_seconds")}


def config_rows(bench: dict, baseline: dict, scale: float) -> list[dict]:
    """Per-config comparison rows for the report (gate mode)."""
    fresh, base = _index(bench), _index(baseline)
    rows = []
    for key in sorted(fresh):
        entry = fresh[key]
        base_entry = base.get(key)
        base_median = metric_value(base_entry) if base_entry else None
        row = {
            "kernel": key[0], "backend": key[1], "shape": key[2],
            "procs": key[3],
            "samples": len(entry.get("samples", [])) or 1,
            "median_seconds": metric_value(entry),
            "baseline_median_seconds": base_median,
            "allowed_seconds": (round(base_median * scale, 6)
                                if base_median is not None else None),
            "jitter": entry_jitter(entry),
            "p95_seconds": entry.get("p95_seconds"),
            "p99_seconds": entry.get("p99_seconds"),
            "deadline_misses": entry.get("deadline_misses", 0),
            "checksum_ok": (base_entry is None
                            or entry["checksum"] == base_entry["checksum"]),
        }
        rows.append(row)
    return rows


def compare_rows(run_a: dict, run_b: dict) -> list[dict]:
    a, b = _index(run_a), _index(run_b)
    rows = []
    for key in sorted(set(a) | set(b)):
        ea, eb = a.get(key), b.get(key)
        med_a = metric_value(ea) if ea else None
        med_b = metric_value(eb) if eb else None
        rows.append({
            "kernel": key[0], "backend": key[1], "shape": key[2],
            "procs": key[3],
            "median_seconds_a": med_a,
            "median_seconds_b": med_b,
            "ratio": (round(med_b / med_a, 3)
                      if med_a and med_b else None),
            "jitter_a": entry_jitter(ea) if ea else None,
            "jitter_b": entry_jitter(eb) if eb else None,
            "checksum_ok": (ea is not None and eb is not None
                            and ea["checksum"] == eb["checksum"]),
        })
    return rows


def build_report(mode: str, failures: dict, notes: list[str],
                 rows: list[dict], *, args, scale=None,
                 bench_meta=None, baseline_meta=None) -> dict:
    code = exit_code(failures)
    return {
        "schema": REPORT_SCHEMA,
        "mode": mode,
        "exit_code": code,
        "passed": code == EXIT_OK,
        "tolerance": args.tolerance,
        "min_seconds": args.min_seconds,
        "jitter_threshold": args.jitter_threshold,
        "calibration_scale": scale,
        "bench": bench_meta,
        "baseline": baseline_meta,
        "failures": {cat: failures[cat] for cat in CATEGORIES},
        "flagged": failures.get(FLAGGED, []),
        "notes": notes,
        "configs": rows,
    }


def _fmt(value, spec="{:.6f}") -> str:
    return spec.format(value) if value is not None else "-"


def render_markdown(report: dict) -> str:
    """A CI-step-summary-ready report."""
    status = "✅ passed" if report["passed"] else "❌ FAILED"
    lines = [
        f"## Benchmark {report['mode']} — {status} "
        f"(exit {report['exit_code']})",
        "",
    ]
    bench = report.get("bench") or {}
    if bench.get("run_id"):
        lines.append(f"run `{bench['run_id']}` @ `{bench.get('git_sha')}` "
                     f"(python {bench.get('python')}, "
                     f"{bench.get('cpu_count')} cpus)")
        lines.append("")
    if report["mode"] == "gate":
        if report.get("calibration_scale") is not None:
            lines.append(f"calibration scale "
                         f"{report['calibration_scale']:.2f}, tolerance "
                         f"{report['tolerance']:.0%}, jitter threshold "
                         f"{report['jitter_threshold']}")
            lines.append("")
        lines += [
            "| kernel | backend | shape | P | samples | median (s) | "
            "allowed (s) | jitter | p95 (s) | checksum |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for row in report["configs"]:
            lines.append(
                f"| {row['kernel']} | {row['backend']} | {row['shape']} "
                f"| {row['procs']} | {row['samples']} "
                f"| {_fmt(row['median_seconds'])} "
                f"| {_fmt(row['allowed_seconds'])} "
                f"| {_fmt(row['jitter'], '{:.3f}')} "
                f"| {_fmt(row['p95_seconds'])} "
                f"| {'✅' if row['checksum_ok'] else '❌'} |"
            )
    else:
        lines += [
            "| kernel | backend | shape | P | median A (s) | median B (s) "
            "| B/A | jitter A | jitter B | checksum |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for row in report["configs"]:
            lines.append(
                f"| {row['kernel']} | {row['backend']} | {row['shape']} "
                f"| {row['procs']} | {_fmt(row['median_seconds_a'])} "
                f"| {_fmt(row['median_seconds_b'])} "
                f"| {_fmt(row['ratio'], '{:.2f}')} "
                f"| {_fmt(row['jitter_a'], '{:.3f}')} "
                f"| {_fmt(row['jitter_b'], '{:.3f}')} "
                f"| {'✅' if row['checksum_ok'] else '❌'} |"
            )
    lines.append("")
    for cat in CATEGORIES:
        for failure in report["failures"][cat]:
            lines.append(f"- ❌ **{cat}**: {failure}")
    for warning in report["flagged"]:
        lines.append(f"- ⚠️ flagged (not failing): {warning}")
    if report["notes"]:
        lines += ["", "<details><summary>notes</summary>", ""]
        lines += [f"- {note}" for note in report["notes"]]
        lines += ["", "</details>"]
    return "\n".join(lines) + "\n"


def _emit(text: str, target: str, append: bool = False) -> None:
    if target == "-":
        print(text)
        return
    mode = "a" if append else "w"
    with open(target, mode, encoding="utf-8") as handle:
        handle.write(text)


def _load(path: Path, what: str):
    try:
        return read_run(path)
    except (FileNotFoundError, NotADirectoryError):
        print(f"error: {what} not found: {path}", file=sys.stderr)
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default=None,
                        help="fresh run: a results root, a run dir, or a "
                             "flat telemetry JSON")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--compare", nargs=2, metavar=("RUN_A", "RUN_B"),
                        default=None,
                        help="diff two runs instead of gating against the "
                             "baseline (checksum drift fails, medians are "
                             "reported)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional median slowdown "
                             "(default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="scaled baseline medians below this are "
                             "checksum-checked only")
    parser.add_argument("--jitter-threshold", type=float,
                        default=DEFAULT_JITTER_THRESHOLD,
                        help="IQR/median above which perf failures are "
                             "downgraded to flagged warnings "
                             f"(default {DEFAULT_JITTER_THRESHOLD})")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report "
                             "('-' for stdout)")
    parser.add_argument("--markdown", default=None, metavar="PATH",
                        help="append the markdown report (point CI at "
                             "$GITHUB_STEP_SUMMARY; '-' for stdout)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --bench")
    args = parser.parse_args(argv)

    if args.compare:
        run_a = _load(Path(args.compare[0]), "run A")
        run_b = _load(Path(args.compare[1]), "run B")
        if run_a is None or run_b is None:
            return EXIT_MISSING
        failures, notes = compare(run_a, run_b, args.jitter_threshold)
        report = build_report(
            "compare", failures, notes, compare_rows(run_a, run_b),
            args=args, bench_meta=_run_meta(run_a),
            baseline_meta=_run_meta(run_b),
        )
        bench = None
    else:
        if not args.bench:
            parser.error("one of --bench or --compare is required")
        bench = _load(Path(args.bench), "bench run")
        baseline = _load(Path(args.baseline), "baseline")
        if bench is None or baseline is None:
            return EXIT_MISSING
        failures, notes = check(bench, baseline, args.tolerance,
                                args.min_seconds, args.jitter_threshold)
        scale = calibration_scale(bench, baseline)
        report = build_report(
            "gate", failures, notes, config_rows(bench, baseline, scale),
            args=args, scale=round(scale, 4), bench_meta=_run_meta(bench),
            baseline_meta=_run_meta(baseline),
        )

    if args.json:
        _emit(json.dumps(report, indent=2, sort_keys=True) + "\n", args.json)
    if args.markdown:
        _emit(render_markdown(report), args.markdown, append=True)

    for note in notes:
        print(f"note: {note}")
    for warning in failures[FLAGGED]:
        print(f"WARN[jitter]: {warning}")
    total = 0
    for cat in CATEGORIES:
        for failure in failures[cat]:
            print(f"FAIL[{cat}]: {failure}", file=sys.stderr)
            total += 1

    if args.update:
        if args.compare:
            print("--update is meaningless with --compare", file=sys.stderr)
            return EXIT_STRUCTURE
        if total:
            print("refusing to --update while checks fail", file=sys.stderr)
            return EXIT_STRUCTURE
        baseline_path = Path(args.baseline)
        bench["floors"] = baseline.get("floors", [])
        bench["geomean_floors"] = baseline.get("geomean_floors", [])
        baseline_path.write_text(
            json.dumps(bench, indent=2, sort_keys=True) + "\n"
        )
        print(f"updated {baseline_path}")
        return EXIT_OK

    if total:
        print(f"{total} benchmark check(s) failed "
              f"(exit {exit_code(failures)}: "
              f"{sum(1 for _ in failures['checksum'])} checksum, "
              f"{sum(1 for _ in failures['perf'])} perf, "
              f"{sum(1 for _ in failures['structure'])} structural)",
              file=sys.stderr)
        return exit_code(failures)
    suffix = (f" ({len(failures[FLAGGED])} perf warning(s) flagged for "
              f"jitter)" if failures[FLAGGED] else "")
    print(f"benchmark checks passed{suffix}")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
