"""Interconnect topologies: where remote-miss latency comes from.

The flat ``miss_penalty_remote`` in :class:`~repro.machine.specs.MachineSpec`
is a calibrated average.  This module derives such averages from first
principles for the two interconnects the paper's machines use:

* the KSR2's **ALLCACHE ring** — remote latency grows with the average hop
  count, i.e. with machine size;
* the Convex SPP-1000's **hypernode crossbar + CTI ring** — flat cost
  inside a hypernode, one CTI transaction between hypernodes.

``MachineSpec.with_topology`` (via :func:`apply_topology`) re-derives a
spec's remote penalty at a given machine size, letting experiments ask
"what if the ring were twice as long?" — the scalability question the
paper's SSMM framing raises.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .specs import MachineSpec


class Topology:
    """Base: average distance (in network hops) between distinct nodes."""

    def avg_hops(self, num_nodes: int) -> float:
        """Mean hop distance between two distinct nodes."""
        raise NotImplementedError

    def remote_penalty(self, num_nodes: int) -> float:
        """Cycles for a remote miss on a machine of ``num_nodes``."""
        raise NotImplementedError


@dataclass(frozen=True)
class RingTopology(Topology):
    """Bidirectional slotted ring (KSR ALLCACHE).

    The average distance between two distinct nodes of an N-node
    bidirectional ring is about N/4 hops.
    """

    base_cycles: float = 90.0  # directory + packet launch/land
    per_hop_cycles: float = 4.0

    def avg_hops(self, num_nodes: int) -> float:
        if num_nodes <= 1:
            return 0.0
        # Exact average over distinct ordered pairs on a bidirectional ring.
        total = 0
        for d in range(1, num_nodes):
            total += min(d, num_nodes - d)
        return total / (num_nodes - 1)

    def remote_penalty(self, num_nodes: int) -> float:
        return self.base_cycles + self.per_hop_cycles * self.avg_hops(num_nodes)


@dataclass(frozen=True)
class HypernodeTopology(Topology):
    """Crossbar inside a hypernode, one CTI-ring transaction between
    hypernodes (Convex SPP-1000)."""

    node_size: int = 8
    intra_cycles: float = 80.0
    inter_cycles: float = 400.0

    def num_hypernodes(self, num_nodes: int) -> int:
        """Hypernodes needed to host ``num_nodes`` processors."""
        return -(-num_nodes // self.node_size)

    def avg_hops(self, num_nodes: int) -> float:
        return 0.0 if self.num_hypernodes(num_nodes) <= 1 else 1.0

    def remote_penalty(self, num_nodes: int) -> float:
        if self.num_hypernodes(num_nodes) <= 1:
            return self.intra_cycles
        return self.inter_cycles


def apply_topology(
    spec: MachineSpec, topology: Topology, num_procs: int
) -> MachineSpec:
    """Derive a spec whose remote penalty comes from ``topology`` at the
    given machine size (the local penalty and everything else unchanged)."""
    return dataclasses.replace(
        spec,
        miss_penalty_remote=topology.remote_penalty(num_procs),
        name=f"{spec.name}+{type(topology).__name__}",
    )


def ksr2_ring() -> RingTopology:
    """Parameters chosen so the derived penalty at the paper's 56-processor
    configuration matches the calibrated flat value (~150 cycles)."""
    return RingTopology(base_cycles=94.0, per_hop_cycles=4.0)


def convex_cti() -> HypernodeTopology:
    """The Convex SPP-1000 interconnect with the specs' penalties."""
    return HypernodeTopology(node_size=8, intra_cycles=80.0, inter_cycles=400.0)
