"""Multiprocessor execution-time simulation.

Combines the per-processor address traces, the cache simulator and the
machine cost model into the measurements the paper reports: execution time
(hence speedup) and cache misses, for the unfused baseline and for the
shift-and-peel fused version.

Cost model (per processor)::

    cycles = refs * ref_cycles                       # useful work
           + overhead (strip-mining control, fused bound arithmetic)
           + misses * miss_penalty(P)                # local/remote mix
    T(P)   = max_p cycles_p + barriers * barrier_cycles(P)

The fused version pays strip/guard overhead and executes peeled iterations
after a barrier, but takes fewer misses (inter-nest reuse hits in cache)
and far fewer barriers — reproducing the crossovers of Figs. 22–25.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..cachesim.cache import CacheStats, simulate
from ..core.execplan import ExecutionPlan
from ..core.schedule import BlockSchedule
from ..ir.sequence import LoopSequence
from .memory import MemoryLayout
from .specs import MachineSpec
from .trace import fused_proc_trace, unfused_proc_trace


@dataclass(frozen=True)
class RunMeasurement:
    """One simulated run: a (program version, machine, P) point."""

    version: str
    machine: str
    num_procs: int
    time_cycles: float
    misses: int
    refs: int
    barriers: int
    peeled_refs: int = 0

    @property
    def misses_per_proc(self) -> float:
        """Average misses per processor."""
        return self.misses / self.num_procs

    def speedup_over(self, baseline: "RunMeasurement") -> float:
        """Speedup of this run relative to ``baseline`` (time ratio)."""
        return baseline.time_cycles / self.time_cycles


def _proc_misses(
    trace: np.ndarray, machine: MachineSpec, warm: bool
) -> CacheStats:
    """Misses of one processor's trace; with ``warm`` the steady-state pass
    is measured (the kernel is invoked repeatedly in the paper's timed
    runs): simulate the trace twice back to back — the doubled run's extra
    misses relative to the cold run are exactly the warm-pass misses."""
    cold = simulate(trace, machine.cache)
    if not warm or trace.size == 0:
        return cold
    doubled = simulate(np.concatenate((trace, trace)), machine.cache)
    return CacheStats(cold.accesses, doubled.misses - cold.misses)


def measure_unfused(
    seq: LoopSequence,
    params: Mapping[str, int],
    layout: MemoryLayout,
    machine: MachineSpec,
    num_procs: int,
    warm: bool = True,
    extra_barriers: int = 0,
) -> RunMeasurement:
    """Simulate the original sequence: each nest a parallel loop over
    blocks of its outermost dimension, a barrier after every nest."""
    lo = min(nest.loops[0].lower.eval(params) for nest in seq)
    hi = max(nest.loops[0].upper.eval(params) for nest in seq)
    nblocks = min(num_procs, hi - lo + 1)
    sched = BlockSchedule(lo, hi, nblocks)
    penalty = machine.miss_penalty(num_procs)

    worst = 0.0
    total_misses = 0
    total_refs = 0
    for p in range(1, nblocks + 1):
        trace = unfused_proc_trace(seq, params, layout, sched.block(p))
        stats = _proc_misses(trace, machine, warm)
        cycles = stats.accesses * machine.ref_cycles + stats.misses * penalty
        worst = max(worst, cycles)
        total_misses += stats.misses
        total_refs += stats.accesses
    barriers = len(seq) + extra_barriers
    time = worst + barriers * machine.barrier_cycles(num_procs)
    return RunMeasurement(
        version="unfused",
        machine=machine.name,
        num_procs=num_procs,
        time_cycles=time,
        misses=total_misses,
        refs=total_refs,
        barriers=barriers,
    )


def _tile_count(exec_plan: ExecutionPlan, proc, strip: int) -> int:
    plan = exec_plan.plan
    ndims = plan.depth
    count = 1
    for d in range(ndims):
        lo = hi = None
        for k in range(plan.num_nests):
            flo, fhi = proc.fused[k][d]
            if fhi < flo:
                continue
            s = plan.shift(k, d)
            lo = flo + s if lo is None else min(lo, flo + s)
            hi = fhi + s if hi is None else max(hi, fhi + s)
        if lo is None:
            return 0
        count *= -(-(hi - lo + 1) // strip)
    return count


def measure_fused(
    exec_plan: ExecutionPlan,
    layout: MemoryLayout,
    machine: MachineSpec,
    strip: int = 16,
    warm: bool = True,
    extra_barriers: int = 0,
) -> RunMeasurement:
    """Simulate the shift-and-peel fused version: strip-mined fused phase,
    one barrier, peeled phase (executed in parallel), final barrier."""
    num_procs = exec_plan.num_procs
    penalty = machine.miss_penalty(num_procs)
    nnests = exec_plan.plan.num_nests

    worst = 0.0
    total_misses = 0
    total_refs = 0
    total_peeled = 0
    for proc in exec_plan.processors:
        fused, peeled = fused_proc_trace(exec_plan, proc, layout, strip)
        trace = np.concatenate((fused, peeled))
        stats = _proc_misses(trace, machine, warm)
        ntiles = _tile_count(exec_plan, proc, strip)
        overhead = (
            machine.guard_overhead * stats.accesses
            + machine.loop_overhead * ntiles * nnests
        )
        cycles = stats.accesses * machine.ref_cycles + overhead + stats.misses * penalty
        worst = max(worst, cycles)
        total_misses += stats.misses
        total_refs += stats.accesses
        total_peeled += int(peeled.size)
    barriers = 2 + extra_barriers
    time = worst + barriers * machine.barrier_cycles(num_procs)
    return RunMeasurement(
        version="fused",
        machine=machine.name,
        num_procs=num_procs,
        time_cycles=time,
        misses=total_misses,
        refs=total_refs,
        barriers=barriers,
        peeled_refs=total_peeled,
    )


@dataclass(frozen=True)
class SpeedupPoint:
    """One processor-count sample of the fused-vs-unfused comparison."""

    num_procs: int
    speedup_unfused: float
    speedup_fused: float
    misses_unfused: int
    misses_fused: int

    @property
    def improvement(self) -> float:
        """Relative performance of fusion (paper Fig. 24's vertical axis)."""
        return self.speedup_fused / self.speedup_unfused


def speedup_series(
    build_exec_plan,
    seq: LoopSequence,
    params: Mapping[str, int],
    layout: MemoryLayout,
    machine: MachineSpec,
    proc_counts: Sequence[int],
    strip: int = 16,
    warm: bool = True,
) -> list[SpeedupPoint]:
    """Speedup/miss curves, both relative to the *unfused* version on one
    processor (the paper's normalization for Figs. 22/23)."""
    baseline = measure_unfused(seq, params, layout, machine, 1, warm)
    points: list[SpeedupPoint] = []
    for np_ in proc_counts:
        unfused = measure_unfused(seq, params, layout, machine, np_, warm)
        fused = measure_fused(
            build_exec_plan(np_), layout, machine, strip=strip, warm=warm
        )
        points.append(
            SpeedupPoint(
                num_procs=np_,
                speedup_unfused=unfused.speedup_over(baseline),
                speedup_fused=fused.speedup_over(baseline),
                misses_unfused=unfused.misses,
                misses_fused=fused.misses,
            )
        )
    return points
