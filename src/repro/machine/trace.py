"""Vectorized address-trace generation from loop nests.

A *trace* is the exact sequence of byte addresses a processor touches while
executing its share of a loop nest (reads and writes, in program order:
iterations lexicographic, references in body order within an iteration).
Traces drive the cache simulator, giving exact miss counts — the simulated
stand-in for the paper's hardware performance monitors.

Address grids are computed with NumPy broadcasting: for a reference with
affine subscripts, the address over an iteration box is an affine function
of the per-axis index vectors, so the whole grid is a sum of broadcast
1-D terms (no per-iteration Python work).
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan, ProcessorPlan, Range, range_empty
from ..ir.access import ArrayRef
from ..ir.loop import LoopNest
from ..ir.sequence import LoopSequence
from .memory import MemoryLayout


def _body_refs(nest: LoopNest) -> list[ArrayRef]:
    refs: list[ArrayRef] = []
    for st in nest.body:
        refs.extend(st.reads())
        refs.append(st.target)
    return refs


def _ref_grid(
    ref: ArrayRef,
    vars_order: Sequence[str],
    axis_values: Sequence[np.ndarray],
    shape: tuple[int, ...],
    layout: MemoryLayout,
    params: Mapping[str, int],
) -> np.ndarray:
    """Byte-address grid of one reference over an iteration box."""
    pl = layout[ref.array]
    strides = pl.strides_elems
    base = pl.start
    elem = pl.elem_size
    const = 0
    coeffs: dict[str, int] = {}
    for d, sub in enumerate(ref.subscripts):
        const += strides[d] * sub.const
        for v, c in sub.coeffs:
            if v in params:
                const += strides[d] * c * params[v]
            else:
                coeffs[v] = coeffs.get(v, 0) + strides[d] * c
    grid: np.ndarray | int = base + elem * const
    ndim = len(vars_order)
    for axis, v in enumerate(vars_order):
        k = coeffs.pop(v, 0)
        if k:
            reshape = [1] * ndim
            reshape[axis] = -1
            grid = grid + (elem * k) * axis_values[axis].reshape(reshape)
    if coeffs:
        missing = sorted(coeffs)
        raise KeyError(f"reference {ref} uses unbound names {missing}")
    if isinstance(grid, (int, np.integer)):
        return np.full(shape, int(grid), dtype=np.int64)
    return np.broadcast_to(grid.astype(np.int64, copy=False), shape)


def box_trace(
    nest: LoopNest,
    box: Sequence[Range],
    layout: MemoryLayout,
    params: Mapping[str, int],
) -> np.ndarray:
    """Trace of one nest over an iteration box (lexicographic order)."""
    if any(range_empty(r) for r in box):
        return np.empty(0, dtype=np.int64)
    vars_order = nest.loop_vars
    axis_values = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in box]
    shape = tuple(v.size for v in axis_values)
    refs = _body_refs(nest)
    grids = [
        _ref_grid(ref, vars_order, axis_values, shape, layout, params)
        for ref in refs
    ]
    return np.stack(grids, axis=-1).reshape(-1)


def nest_block_trace(
    nest: LoopNest,
    params: Mapping[str, int],
    layout: MemoryLayout,
    block0: Range | None = None,
) -> np.ndarray:
    """Trace of a nest over a block of its outermost loop (full inner
    ranges) — one processor's share of an *unfused* parallel loop."""
    box: list[Range] = []
    for d, lp in enumerate(nest.loops):
        lo, hi = lp.bounds(params)
        if d == 0 and block0 is not None:
            lo, hi = max(lo, block0[0]), min(hi, block0[1])
        box.append((lo, hi))
    return box_trace(nest, box, layout, params)


def unfused_proc_trace(
    seq: LoopSequence,
    params: Mapping[str, int],
    layout: MemoryLayout,
    block0: Range | None = None,
) -> np.ndarray:
    """One processor's trace of the original (unfused) sequence: its block
    of each nest, nest after nest (barriers between nests carry no
    addresses)."""
    parts = [nest_block_trace(nest, params, layout, block0) for nest in seq]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def fused_proc_trace(
    exec_plan: ExecutionPlan,
    proc: ProcessorPlan,
    layout: MemoryLayout,
    strip: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """One processor's (fused-phase, peeled-phase) traces under the
    strip-mined execution order of Fig. 12 (tiles in lexicographic position
    order; nests in sequence order within a tile)."""
    plan = exec_plan.plan
    params = exec_plan.params
    nests = list(plan.seq)
    ndims = plan.depth

    pos_lo = [None] * ndims
    pos_hi = [None] * ndims
    for k in range(len(nests)):
        for d in range(ndims):
            lo, hi = proc.fused[k][d]
            if hi < lo:
                continue
            s = plan.shift(k, d)
            plo, phi = lo + s, hi + s
            pos_lo[d] = plo if pos_lo[d] is None else min(pos_lo[d], plo)
            pos_hi[d] = phi if pos_hi[d] is None else max(pos_hi[d], phi)

    fused_parts: list[np.ndarray] = []
    if not any(lo is None for lo in pos_lo):
        tile_starts = [
            range(pos_lo[d], pos_hi[d] + 1, strip) for d in range(ndims)
        ]
        for tile in itertools.product(*tile_starts):
            for k, nest in enumerate(nests):
                box: list[Range] = []
                empty = False
                for d in range(ndims):
                    s = plan.shift(k, d)
                    flo, fhi = proc.fused[k][d]
                    lo = max(flo, tile[d] - s)
                    hi = min(fhi, tile[d] + strip - 1 - s)
                    if hi < lo:
                        empty = True
                        break
                    box.append((lo, hi))
                if empty:
                    continue
                box.extend(proc.fused[k][ndims:])  # inner (non-fused) dims
                fused_parts.append(box_trace(nest, box, layout, params))
    fused = (
        np.concatenate(fused_parts) if fused_parts else np.empty(0, dtype=np.int64)
    )

    peeled_parts: list[np.ndarray] = []
    for rect in sorted(proc.peeled, key=lambda r: r.nest_idx):
        if rect.is_empty():
            continue
        peeled_parts.append(
            box_trace(nests[rect.nest_idx], rect.ranges, layout, params)
        )
    peeled = (
        np.concatenate(peeled_parts) if peeled_parts else np.empty(0, dtype=np.int64)
    )
    return fused, peeled
