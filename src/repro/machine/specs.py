"""Machine models: the paper's two evaluation platforms.

The models capture exactly the machine characteristics the paper's results
depend on:

* per-processor cache geometry (capacity / line / associativity),
* miss latency to local memory and to *remote* memory (remote accesses are
  what makes an SSMM "scalable but NUMA"; on the Convex SPP-1000 remoteness
  means crossing a hypernode boundary — 8 CPUs per hypernode),
* barrier synchronization cost as a function of processor count, and
* relative processor speed (the Convex's higher clock makes each lost miss
  more expensive in cycles, which the paper cites as the reason fusion
  helps more there).

Absolute latencies are representative of mid-1990s hardware; the figures
reproduced from these models are *shape-faithful*, not cycle-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cachesim.cache import CacheConfig


@dataclass(frozen=True)
class MachineSpec:
    """A scalable shared-memory multiprocessor model."""

    name: str
    max_procs: int
    clock_mhz: float
    cache: CacheConfig
    miss_penalty_local: float  # cycles per cache miss to local memory
    miss_penalty_remote: float  # cycles per miss crossing the interconnect
    hypernode_size: int | None  # procs sharing local memory (None = 1 each)
    barrier_base: float  # cycles per barrier, fixed part
    barrier_per_proc: float  # cycles per barrier per participating proc
    ref_cycles: float = 2.0  # compute cycles per array reference (hit)
    loop_overhead: float = 12.0  # cycles per strip-mined inner-loop header
    #: Residual per-reference cost of fusion (shorter inner loops pipeline
    #: slightly worse); the strip-mined method leaves subscripts unchanged,
    #: so this is small (Sec. 3.4).
    guard_overhead: float = 0.05

    #: Cap on the fraction of misses served remotely.  Data pages are
    #: block-distributed (first-touch), so a processor's own block is local
    #: and only halo/boundary traffic crosses the interconnect.
    remote_cap: float = 0.15

    def remote_fraction(self, num_procs: int) -> float:
        """Fraction of misses served by remote memory.

        Block-homed data keeps most misses local; boundary (halo) traffic
        grows with the number of memory units sharing the data and
        saturates at ``remote_cap``.  On hypernode machines remoteness only
        begins once the partition spans more than one hypernode.
        """
        if num_procs <= 1:
            return 0.0
        if self.hypernode_size is None:
            units = num_procs
        else:
            units = -(-num_procs // self.hypernode_size)  # ceil
        if units <= 1:
            return 0.0
        return self.remote_cap * (units - 1) / units

    def miss_penalty(self, num_procs: int) -> float:
        """Expected cycles per miss at a given processor count."""
        rf = self.remote_fraction(num_procs)
        return (1.0 - rf) * self.miss_penalty_local + rf * self.miss_penalty_remote

    def barrier_cycles(self, num_procs: int) -> float:
        """Cost of one barrier at the given processor count."""
        return self.barrier_base + self.barrier_per_proc * num_procs

    def scaled(self, factor: int) -> "MachineSpec":
        """Shrink the cache by ``factor`` (use together with shrinking the
        array *footprint* by the same factor so capacity ratios — and hence
        every fits-in-cache crossover — are preserved)."""
        return replace(self, cache=self.cache.scaled(factor), name=f"{self.name}/s{factor}")


def ksr2(scale: int = 1) -> MachineSpec:
    """Kendall Square Research KSR2: 40 MHz custom processors, 256 KB
    2-way set-associative subcache, ring interconnect, up to 56 procs used
    in the paper.  The ALLCACHE ring makes remote misses expensive."""
    spec = MachineSpec(
        name="KSR2",
        max_procs=56,
        clock_mhz=40.0,
        cache=CacheConfig(capacity_bytes=256 * 1024, line_bytes=128, associativity=2),
        miss_penalty_local=50.0,
        miss_penalty_remote=150.0,
        hypernode_size=None,  # every processor has its own local memory
        barrier_base=400.0,
        barrier_per_proc=30.0,
        remote_cap=0.12,
    )
    return spec.scaled(scale) if scale > 1 else spec


def convex_spp1000(scale: int = 1) -> MachineSpec:
    """Convex Exemplar SPP-1000: 100 MHz PA-RISC 7100, 1 MB direct-mapped
    data cache, 8-processor hypernodes connected by a CTI ring; remote
    (cross-hypernode) misses are several times costlier than local ones."""
    spec = MachineSpec(
        name="Convex SPP-1000",
        max_procs=16,
        clock_mhz=100.0,
        cache=CacheConfig(capacity_bytes=1024 * 1024, line_bytes=64, associativity=1),
        miss_penalty_local=80.0,
        miss_penalty_remote=400.0,
        hypernode_size=8,
        barrier_base=600.0,
        barrier_per_proc=40.0,
        remote_cap=0.35,
    )
    return spec.scaled(scale) if scale > 1 else spec


#: Default linear scale used by the experiment harness: array dimensions
#: AND cache capacities are both divided by this factor.  Linear scaling
#: preserves the rows-per-cache-partition ratio that governs inter-nest
#: reuse (the quantity fusion exploits); the total-data-over-cache ratio —
#: which sets the fits-in-cache crossover — shrinks by the same factor, so
#: scaled crossovers appear at roughly (paper processor count) / scale.
DEFAULT_SCALE = 4
