"""Memory layout: array placement in the simulated address space.

Layouts assign each array a starting byte address and a (possibly padded)
shape.  The two layout families of the paper are built here and in
:mod:`repro.partition`:

* contiguous layout with optional *intra-array padding* of the innermost
  dimension (the conventional technique cache partitioning is compared
  against), and
* partitioned layout with *gaps between arrays* (built by the greedy
  algorithm of Fig. 19 in :mod:`repro.partition.greedy`).

Arrays are stored row-major; the innermost (last) dimension is contiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class ArrayPlacement:
    """One array's placement: start byte, logical and padded shapes."""

    name: str
    start: int
    shape: tuple[int, ...]  # logical extents (elements)
    padded_shape: tuple[int, ...]  # storage extents (elements)
    elem_size: int = 8

    def __post_init__(self) -> None:
        if len(self.shape) != len(self.padded_shape):
            raise ValueError("padded shape must match dimensionality")
        if any(p < s for p, s in zip(self.padded_shape, self.shape)):
            raise ValueError("padding cannot shrink an array")

    @property
    def strides_elems(self) -> tuple[int, ...]:
        """Row-major element strides of the padded storage."""
        strides = [1] * len(self.padded_shape)
        for d in range(len(self.padded_shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * self.padded_shape[d + 1]
        return tuple(strides)

    @property
    def size_bytes(self) -> int:
        """Bytes of storage including padding."""
        total = self.elem_size
        for extent in self.padded_shape:
            total *= extent
        return total

    @property
    def end(self) -> int:
        """First byte past this array's storage."""
        return self.start + self.size_bytes

    def address(self, index: Sequence[int]) -> int:
        """Byte address of one element."""
        offset = 0
        for idx, stride in zip(index, self.strides_elems):
            offset += idx * stride
        return self.start + offset * self.elem_size


@dataclass(frozen=True)
class MemoryLayout:
    """A complete placement of arrays in one address space."""

    placements: tuple[ArrayPlacement, ...]

    def __post_init__(self) -> None:
        ordered = sorted(self.placements, key=lambda p: p.start)
        for before, after in zip(ordered, ordered[1:]):
            if before.end > after.start:
                raise ValueError(
                    f"arrays {before.name} and {after.name} overlap in memory"
                )

    def __getitem__(self, name: str) -> ArrayPlacement:
        for pl in self.placements:
            if pl.name == name:
                return pl
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(pl.name == name for pl in self.placements)

    @property
    def names(self) -> tuple[str, ...]:
        """Array names in declaration order."""
        return tuple(pl.name for pl in self.placements)

    @property
    def total_bytes(self) -> int:
        """Extent from the lowest start to the highest end (includes gaps)."""
        if not self.placements:
            return 0
        return max(pl.end for pl in self.placements) - min(
            pl.start for pl in self.placements
        )

    @property
    def data_bytes(self) -> int:
        """Bytes actually occupied by array storage (excludes gaps)."""
        return sum(pl.size_bytes for pl in self.placements)

    @property
    def overhead_bytes(self) -> int:
        """Memory spent on gaps and padding beyond the logical arrays."""
        logical = sum(
            pl.elem_size * int(np.prod(pl.shape)) for pl in self.placements
        )
        return self.total_bytes - logical


def contiguous_layout(
    arrays: Iterable[tuple[str, Sequence[int]]],
    elem_size: int = 8,
    pad_inner: int = 0,
    base: int = 0,
    align: int = 64,
) -> MemoryLayout:
    """Arrays placed back to back, each padded by ``pad_inner`` elements in
    the innermost dimension (the conventional padding technique, Sec. 4)."""
    placements: list[ArrayPlacement] = []
    addr = base
    for name, shape in arrays:
        shape = tuple(int(s) for s in shape)
        padded = shape[:-1] + (shape[-1] + pad_inner,)
        addr = -(-addr // align) * align  # round up
        pl = ArrayPlacement(name, addr, shape, padded, elem_size)
        placements.append(pl)
        addr = pl.end
    return MemoryLayout(tuple(placements))


def layout_from_decls(
    decls,
    params: Mapping[str, int],
    pad_inner: int = 0,
    base: int = 0,
    align: int = 64,
) -> MemoryLayout:
    """Contiguous layout straight from :class:`~repro.ir.ArrayDecl` objects."""
    return contiguous_layout(
        [(d.name, d.concrete_shape(params)) for d in decls],
        elem_size=decls[0].elem_size if decls else 8,
        pad_inner=pad_inner,
        base=base,
        align=align,
    )
