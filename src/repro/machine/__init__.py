"""Machine models, memory layouts, trace generation and timing simulation."""

from .memory import ArrayPlacement, MemoryLayout, contiguous_layout, layout_from_decls
from .simulator import (
    RunMeasurement,
    SpeedupPoint,
    measure_fused,
    measure_unfused,
    speedup_series,
)
from .specs import DEFAULT_SCALE, MachineSpec, convex_spp1000, ksr2
from .topology import (
    HypernodeTopology,
    RingTopology,
    Topology,
    apply_topology,
    convex_cti,
    ksr2_ring,
)
from .trace import (
    box_trace,
    fused_proc_trace,
    nest_block_trace,
    unfused_proc_trace,
)

__all__ = [
    "ArrayPlacement",
    "DEFAULT_SCALE",
    "HypernodeTopology",
    "MachineSpec",
    "MemoryLayout",
    "RingTopology",
    "RunMeasurement",
    "SpeedupPoint",
    "Topology",
    "apply_topology",
    "box_trace",
    "contiguous_layout",
    "convex_cti",
    "convex_spp1000",
    "fused_proc_trace",
    "ksr2",
    "ksr2_ring",
    "layout_from_decls",
    "measure_fused",
    "measure_unfused",
    "nest_block_trace",
    "speedup_series",
    "unfused_proc_trace",
]
