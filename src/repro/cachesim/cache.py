"""Trace-driven cache simulation.

Exact miss counts for direct-mapped and set-associative LRU caches over
byte-address traces.  The direct-mapped case is fully vectorized (a
reference misses iff the previous access to its set carried a different
tag, computable with one stable sort); set-associative LRU groups the trace
by set and replays each set's subsequence against a tiny LRU stack — the
per-access work is constant and the grouping is NumPy-side, keeping pure
Python off the critical path as far as possible (per the HPC guides:
vectorize the hot loop, profile the rest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache: capacity, line size, associativity."""

    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 1  # 1 = direct-mapped

    def __post_init__(self) -> None:
        for field_name in ("capacity_bytes", "line_bytes", "associativity"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ValueError("capacity must be a multiple of line * associativity")

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def way_bytes(self) -> int:
        """Bytes covered by one way (the conflict-mapping period)."""
        return self.num_sets * self.line_bytes

    def scaled(self, factor: int) -> "CacheConfig":
        """Capacity divided by ``factor``, rounded down to the nearest
        legal geometry (line size preserved)."""
        unit = self.line_bytes * self.associativity
        capacity = max(unit, (self.capacity_bytes // factor) // unit * unit)
        return CacheConfig(capacity, self.line_bytes, self.associativity)

    def map_address(self, addr: int) -> int:
        """Cache byte offset an address maps to (the paper's CacheMap)."""
        return addr % self.way_bytes


@dataclass(frozen=True)
class CacheStats:
    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.accesses + other.accesses, self.misses + other.misses)


def _lines_sets_tags(addrs: np.ndarray, config: CacheConfig):
    lines = addrs // config.line_bytes
    sets = lines % config.num_sets
    tags = lines // config.num_sets
    return sets, tags


def simulate_direct_mapped(addrs: np.ndarray, config: CacheConfig) -> CacheStats:
    """Vectorized direct-mapped simulation (cold start).

    Within each set's access subsequence, an access misses iff it is the
    first for the set or its tag differs from the immediately preceding
    access to the set.  A stable sort by set index preserves program order
    within sets, making the comparison a single vector op.
    """
    n = int(addrs.size)
    if n == 0:
        return CacheStats(0, 0)
    sets, tags = _lines_sets_tags(addrs.astype(np.int64, copy=False), config)
    order = np.argsort(sets, kind="stable")
    s_sorted = sets[order]
    t_sorted = tags[order]
    miss = np.empty(n, dtype=bool)
    miss[0] = True
    new_set = s_sorted[1:] != s_sorted[:-1]
    changed_tag = t_sorted[1:] != t_sorted[:-1]
    miss[1:] = new_set | changed_tag
    return CacheStats(n, int(miss.sum()))


def simulate_2way_lru(addrs: np.ndarray, config: CacheConfig) -> CacheStats:
    """Vectorized exact 2-way LRU simulation.

    Within one set's access stream, collapse consecutive duplicates (those
    are trivially hits).  In the collapsed stream adjacent tags differ, and
    induction shows the LRU pair before element ``i`` is exactly
    ``{t[i-1], t[i-2]}`` — so a collapsed access hits iff ``t[i] == t[i-2]``
    within its set group.  One stable sort plus vector compares.
    """
    if config.associativity != 2:
        raise ValueError("simulate_2way_lru requires associativity 2")
    n = int(addrs.size)
    if n == 0:
        return CacheStats(0, 0)
    sets, tags = _lines_sets_tags(addrs.astype(np.int64, copy=False), config)
    order = np.argsort(sets, kind="stable")
    s = sets[order]
    t = tags[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = s[1:] != s[:-1]
    # Collapse consecutive duplicates within groups.
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    keep[1:] = new_group[1:] | (t[1:] != t[:-1])
    tc = t[keep]
    gc = new_group[keep]
    m = tc.size
    miss = np.ones(m, dtype=bool)
    if m > 2:
        same_group2 = (~gc[2:]) & (~gc[1:-1])  # t[i-2] in the same set group
        miss[2:] = ~(same_group2 & (tc[2:] == tc[:-2]))
    # Elements 0/1 of each group are misses; within-group element 1 is a
    # miss already (adjacent collapsed tags differ); group element 0 too.
    return CacheStats(n, int(miss.sum()))


def simulate_set_associative(addrs: np.ndarray, config: CacheConfig) -> CacheStats:
    """Set-associative LRU simulation (cold start).

    Associativity 2 uses the vectorized exact algorithm; higher
    associativities group the trace by set (stable sort) and replay each
    group against a small LRU list.
    """
    if config.associativity == 1:
        return simulate_direct_mapped(addrs, config)
    if config.associativity == 2:
        return simulate_2way_lru(addrs, config)
    n = int(addrs.size)
    if n == 0:
        return CacheStats(0, 0)
    sets, tags = _lines_sets_tags(addrs.astype(np.int64, copy=False), config)
    order = np.argsort(sets, kind="stable")
    s_sorted = sets[order]
    t_sorted = tags[order]
    boundaries = np.flatnonzero(np.diff(s_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    assoc = config.associativity
    misses = 0
    t_list = t_sorted.tolist()  # python ints: much faster element access
    for start, end in zip(starts.tolist(), ends.tolist()):
        ways: list[int] = []
        for idx in range(start, end):
            tag = t_list[idx]
            if tag in ways:
                if ways[0] != tag:
                    ways.remove(tag)
                    ways.insert(0, tag)
            else:
                misses += 1
                ways.insert(0, tag)
                if len(ways) > assoc:
                    ways.pop()
    return CacheStats(n, misses)


def simulate(addrs: np.ndarray, config: CacheConfig) -> CacheStats:
    """Dispatch on associativity."""
    if config.associativity == 1:
        return simulate_direct_mapped(addrs, config)
    return simulate_set_associative(addrs, config)


class Cache:
    """Stateful cache for incremental simulation across multiple trace
    segments (e.g. warm caches across outer time steps).

    Keeps per-set LRU lists between calls; used where cold-start counts are
    not the right model.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._ways: dict[int, list[int]] = {}
        self.stats = CacheStats(0, 0)

    def access_trace(self, addrs: np.ndarray) -> CacheStats:
        """Run a trace segment, updating state; returns segment stats."""
        config = self.config
        sets, tags = _lines_sets_tags(addrs.astype(np.int64, copy=False), config)
        assoc = config.associativity
        ways_map = self._ways
        misses = 0
        for s, t in zip(sets.tolist(), tags.tolist()):
            ways = ways_map.get(s)
            if ways is None:
                ways = []
                ways_map[s] = ways
            if t in ways:
                if ways[0] != t:
                    ways.remove(t)
                    ways.insert(0, t)
            else:
                misses += 1
                ways.insert(0, t)
                if len(ways) > assoc:
                    ways.pop()
        segment = CacheStats(int(addrs.size), misses)
        self.stats = self.stats + segment
        return segment

    def reset(self) -> None:
        self._ways.clear()
        self.stats = CacheStats(0, 0)
