"""Miss classification: cold / capacity / conflict (the 3-C model).

Cache partitioning targets *conflict* misses specifically (Sec. 4), so the
experiments benefit from splitting a run's misses:

* **cold** — first touch of a line (unavoidable),
* **capacity** — misses a fully-associative LRU cache of the same size
  would also take,
* **conflict** — the remainder: misses caused purely by the set mapping.

The fully-associative reference is simulated exactly with an ordered-dict
LRU over line addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .cache import CacheConfig, simulate


@dataclass(frozen=True)
class MissBreakdown:
    accesses: int
    cold: int
    capacity: int
    conflict: int

    @property
    def total(self) -> int:
        return self.cold + self.capacity + self.conflict

    def __str__(self) -> str:
        return (
            f"{self.total} misses = {self.cold} cold + {self.capacity} "
            f"capacity + {self.conflict} conflict ({self.accesses} accesses)"
        )


def fully_associative_misses(addrs: np.ndarray, config: CacheConfig) -> tuple[int, int]:
    """(total misses, cold misses) of a fully-associative LRU cache with the
    same capacity and line size."""
    num_lines = config.num_lines
    lines = (addrs.astype(np.int64, copy=False)) // config.line_bytes
    lru: OrderedDict[int, None] = OrderedDict()
    seen: set[int] = set()
    misses = 0
    cold = 0
    for line in lines.tolist():
        if line in lru:
            lru.move_to_end(line)
            continue
        misses += 1
        if line not in seen:
            cold += 1
            seen.add(line)
        lru[line] = None
        if len(lru) > num_lines:
            lru.popitem(last=False)
    return misses, cold


def classify_misses(addrs: np.ndarray, config: CacheConfig) -> MissBreakdown:
    """Split the misses of ``addrs`` on ``config`` into cold / capacity /
    conflict.  LRU anomalies can make the set-mapped cache *beat* the
    fully-associative reference on pathological traces; the buckets are
    adjusted so they always sum exactly to the real miss count."""
    total = simulate(addrs, config).misses
    fa_misses, cold = fully_associative_misses(addrs, config)
    conflict = max(0, total - fa_misses)
    capacity = total - cold - conflict
    return MissBreakdown(
        accesses=int(addrs.size), cold=cold, capacity=capacity, conflict=conflict
    )
