"""TLB simulation.

Bacon et al. [4] (discussed in Sec. 2.4) pad declarations to avoid both
cache *and TLB* mapping conflicts; a TLB is just a small, page-granular,
highly-associative cache, so the existing LRU machinery simulates it
exactly.  The experiments use this to confirm that cache partitioning's
inter-array gaps do not blow up TLB reach (gaps are never touched, so they
cost no TLB entries — only address-space).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import CacheConfig, CacheStats, simulate


@dataclass(frozen=True)
class TLBConfig:
    """A data TLB: entry count, page size, associativity (0 = full)."""

    entries: int = 64
    page_bytes: int = 4096
    associativity: int = 0  # 0 means fully associative

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.page_bytes <= 0:
            raise ValueError("entries and page size must be positive")
        assoc = self.associativity
        if assoc and (assoc > self.entries or self.entries % assoc):
            raise ValueError("associativity must divide the entry count")

    def as_cache(self) -> CacheConfig:
        """The equivalent cache geometry over page-granular 'lines'."""
        assoc = self.associativity or self.entries
        return CacheConfig(
            capacity_bytes=self.entries * self.page_bytes,
            line_bytes=self.page_bytes,
            associativity=assoc,
        )

    @property
    def reach_bytes(self) -> int:
        return self.entries * self.page_bytes


def simulate_tlb(addrs: np.ndarray, config: TLBConfig) -> CacheStats:
    """TLB misses of a byte-address trace (cold start)."""
    return simulate(addrs, config.as_cache())
