"""Trace-driven cache simulation: direct-mapped fast path, vectorized
2-way LRU, general LRU sets, miss classification (3-C), and a TLB model."""

from .cache import (
    Cache,
    CacheConfig,
    CacheStats,
    simulate,
    simulate_2way_lru,
    simulate_direct_mapped,
    simulate_set_associative,
)
from .classify import MissBreakdown, classify_misses, fully_associative_misses
from .tlb import TLBConfig, simulate_tlb

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "MissBreakdown",
    "TLBConfig",
    "classify_misses",
    "fully_associative_misses",
    "simulate",
    "simulate_2way_lru",
    "simulate_direct_mapped",
    "simulate_set_associative",
    "simulate_tlb",
]
