"""Wall-clock measurement of execution backends on the paper's kernels.

This is the machinery behind ``python -m repro exec`` and
``benchmarks/bench_fastexec.py``: build the shift-and-peel plans for every
sequence of a kernel, allocate seeded arrays, execute them through a named
backend (:mod:`repro.runtime.backend`) and report seconds, iteration
counts and a machine-independent checksum.  Records are plain dicts so
they serialize straight into ``BENCH_fastexec.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..core import build_execution_plan, derive_shift_peel, max_processors
from ..core.execplan import ExecutionPlan
from ..ir.sequence import Program
from ..kernels import get_kernel
from .backend import checksum, get_backend


@dataclass
class PreparedKernel:
    """Everything needed to execute one kernel repeatably."""

    name: str
    program: Program
    params: dict[str, int]
    plans: list[ExecutionPlan]
    procs: int
    seed: int

    def alloc(self) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        return {
            d.name: rng.random(d.concrete_shape(self.params)) + 1.0
            for d in self.program.arrays
        }

    @property
    def shape(self) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))


def prepare_kernel(
    kernel: str,
    params: Optional[Mapping[str, int]] = None,
    n: Optional[int] = None,
    procs: int = 4,
    seed: int = 7,
) -> PreparedKernel:
    """Fuse every sequence of ``kernel`` and build its execution plans.

    ``procs`` is clamped per sequence to the legal maximum (Theorem 1); the
    reported processor count is the request, each plan carries its own
    clamped grid.
    """
    info = get_kernel(kernel)
    program = info.program()
    run_params = dict(info.default_params) or {p: 128 for p in program.params}
    if params:
        run_params.update(params)
    if n is not None:
        run_params["n"] = n
        if "m" in run_params:
            run_params["m"] = n
    plans = []
    for seq in program.sequences:
        plan = derive_shift_peel(seq, tuple(program.params), seq.fusable_depth())
        legal = max_processors(plan, run_params)[0]
        plans.append(
            build_execution_plan(plan, run_params, num_procs=min(procs, legal))
        )
    return PreparedKernel(
        name=kernel, program=program, params=run_params, plans=plans,
        procs=procs, seed=seed,
    )


def execute_prepared(
    prep: PreparedKernel,
    backend: str,
    strip: Optional[int] = None,
    verify: bool = False,
) -> tuple[float, dict[str, int], str]:
    """One timed execution of all sequences: (seconds, counters, checksum).

    Array allocation happens outside the timed region; the run itself —
    including any backend setup such as shared-memory creation for ``mp``
    — is what the clock sees.
    """
    be = get_backend(backend)
    arrays = prep.alloc()
    totals = {"fused_iterations": 0, "peeled_iterations": 0}
    t0 = time.perf_counter()
    for ep in prep.plans:
        stats = be.run(ep, arrays, strip=strip, verify=verify)
        for key in totals:
            totals[key] += stats.get(key, 0)
    seconds = time.perf_counter() - t0
    return seconds, totals, checksum(arrays)


def measure_kernel(
    kernel: str,
    backend: str,
    params: Optional[Mapping[str, int]] = None,
    n: Optional[int] = None,
    procs: int = 4,
    strip: Optional[int] = None,
    repeat: int = 3,
    seed: int = 7,
    verify: bool = False,
) -> dict:
    """Best-of-``repeat`` wall-clock record for one kernel × backend.

    The checksum must be identical across repeats (execution is
    deterministic); a mismatch raises ``RuntimeError`` immediately.
    """
    prep = prepare_kernel(kernel, params=params, n=n, procs=procs, seed=seed)
    best = None
    digest = None
    counters = None
    for _ in range(max(1, repeat)):
        seconds, totals, run_digest = execute_prepared(
            prep, backend, strip=strip, verify=verify
        )
        if digest is not None and run_digest != digest:
            raise RuntimeError(
                f"{kernel}/{backend}: nondeterministic checksum "
                f"({digest} vs {run_digest})"
            )
        digest = run_digest
        counters = totals
        best = seconds if best is None else min(best, seconds)
    return {
        "kernel": kernel,
        "backend": backend,
        "shape": prep.shape,
        "procs": procs,
        "seconds": round(best, 6),
        "iterations": counters["fused_iterations"] + counters["peeled_iterations"],
        "checksum": digest,
    }


def calibrate(loops: int = 2_000_000) -> float:
    """Seconds for a fixed pure-Python workload — a proxy for interpreter
    speed on this machine.  The regression checker scales committed
    baseline times by the calibration ratio so wall-clock gates survive a
    change of hardware."""
    t0 = time.perf_counter()
    acc = 0.0
    for i in range(loops):
        acc += i * 0.5
    if acc < 0:  # pragma: no cover - keeps the loop from being optimized out
        raise AssertionError
    return time.perf_counter() - t0
