"""Wall-clock measurement of execution backends on the paper's kernels.

This is the machinery behind ``python -m repro exec`` and
``benchmarks/bench_fastexec.py``: build the shift-and-peel plans for every
sequence of a kernel, allocate seeded arrays, execute them through a named
backend (:mod:`repro.runtime.backend`) and report seconds, iteration
counts and a machine-independent checksum.  Records are plain dicts so
they serialize straight into ``BENCH_fastexec.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..bench.telemetry import summarize_samples
from ..core import build_execution_plan, derive_shift_peel, max_processors
from ..core.execplan import ExecutionPlan
from ..ir.sequence import Program
from ..kernels import get_kernel
from .backend import checksum, get_backend
from .plancache import default_cache, program_signature


def resolve_params(
    info,
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    n: Optional[int] = None,
) -> dict[str, int]:
    """The concrete parameter binding a kernel runs at."""
    run_params = dict(info.default_params) or {p: 128 for p in program.params}
    if params:
        run_params.update(params)
    if n is not None:
        run_params["n"] = n
        if "m" in run_params:
            run_params["m"] = n
    return run_params


@dataclass
class PreparedKernel:
    """Everything needed to execute one kernel repeatably.

    For the jit backend with a warm program alias, ``modules`` holds the
    compiled plan modules and ``plans`` stays empty — planning was skipped
    entirely.  For ``cjit``, ``native_modules`` holds the dlopen'd
    :class:`~repro.codegen.emitc.CJitModule` per plan when the native tier
    is live, and ``native_reason`` records why it is not (the run falls
    back to the numpy ``modules``).  ``plan_seconds``/``compile_seconds``
    record what preparation actually cost so callers can report overhead
    honestly.
    """

    name: str
    program: Program
    params: dict[str, int]
    plans: list[ExecutionPlan]
    procs: int
    seed: int
    modules: Optional[list] = None
    native_modules: Optional[list] = None
    native_reason: Optional[str] = None
    plan_seconds: float = 0.0
    compile_seconds: float = 0.0
    cache_stats: dict = field(default_factory=dict)

    def alloc(self) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        return {
            d.name: rng.random(d.concrete_shape(self.params)) + 1.0
            for d in self.program.arrays
        }

    @property
    def shape(self) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))


def prepare_kernel(
    kernel: str,
    params: Optional[Mapping[str, int]] = None,
    n: Optional[int] = None,
    procs: int = 4,
    seed: int = 7,
    backend: Optional[str] = None,
    strip: Optional[int] = None,
    use_cache: bool = True,
    need_plans: bool = False,
) -> PreparedKernel:
    """Fuse every sequence of ``kernel`` and build its execution plans.

    ``procs`` is clamped per sequence to the legal maximum (Theorem 1); the
    reported processor count is the request, each plan carries its own
    clamped grid.

    For ``backend='jit'`` (and ``'mpjit'``, which executes the same
    compiled modules through the worker pool) with ``use_cache=True`` the
    plan cache is consulted first: a warm program alias (same kernel IR,
    params, procs and strip) yields the compiled modules without running
    the analysis → derive → fuse → plan pipeline at all.  ``cjit`` rides
    the same alias: when every aliased plan also has a cached ``.so`` the
    native modules come back without planning or compiling anything;
    a missing ``.so`` falls through to the planning path, which compiles
    it (or records the fallback reason).  ``need_plans=True`` forces
    planning regardless (``verify`` needs the plans for the interpreter
    oracle).
    """
    info = get_kernel(kernel)
    program = info.program()
    run_params = resolve_params(info, program, params=params, n=n)
    jit_cached = backend in ("jit", "mpjit", "cjit") and use_cache
    cache = default_cache() if jit_cached else None
    alias_key = None
    if jit_cached:
        alias_key = program_signature(program, run_params, procs, strip)
        if not need_plans:
            before = cache.stats.snapshot()
            modules = cache.lookup_alias(alias_key)
            if modules is not None:
                natives = None
                if backend == "cjit":
                    natives = [cache.peek_native(m.signature)
                               for m in modules]
                    if not all(natives):
                        natives = None  # compile on the planning path
                if backend != "cjit" or natives is not None:
                    return PreparedKernel(
                        name=kernel, program=program, params=run_params,
                        plans=[], procs=procs, seed=seed, modules=modules,
                        native_modules=natives,
                        cache_stats=cache.stats.delta(before),
                    )
    t0 = time.perf_counter()
    plans = []
    for seq in program.sequences:
        plan = derive_shift_peel(seq, tuple(program.params), seq.fusable_depth())
        legal = max_processors(plan, run_params)[0]
        plans.append(
            build_execution_plan(plan, run_params, num_procs=min(procs, legal))
        )
    plan_seconds = time.perf_counter() - t0
    modules = None
    native_modules = None
    native_reason = None
    compile_seconds = 0.0
    cache_stats: dict = {}
    if jit_cached:
        before = cache.stats.snapshot()
        modules = [cache.get(ep, strip=strip) for ep in plans]
        cache.link_alias(alias_key, [m.signature for m in modules])
        if backend == "cjit":
            native_modules = []
            for ep in plans:
                native, reason = cache.get_native(ep, strip=strip)
                if native is None:
                    native_modules = None
                    native_reason = reason
                    break
                native_modules.append(native)
            if native_modules is None:
                from ..codegen import emitc

                emitc.note_fallback(
                    native_reason or "native compilation unavailable")
        cache_stats = cache.stats.delta(before)
        compile_seconds = (cache_stats.get("compile_seconds", 0.0)
                           + cache_stats.get("native_compile_seconds", 0.0))
    return PreparedKernel(
        name=kernel, program=program, params=run_params, plans=plans,
        procs=procs, seed=seed, modules=modules,
        native_modules=native_modules, native_reason=native_reason,
        plan_seconds=plan_seconds, compile_seconds=compile_seconds,
        cache_stats=cache_stats,
    )


def execute_prepared(
    prep: PreparedKernel,
    backend: str,
    strip: Optional[int] = None,
    verify: bool = False,
    no_cache: bool = False,
    max_workers: Optional[int] = None,
    sync: Optional[str] = None,
) -> tuple[float, dict[str, int], str]:
    """One timed execution of all sequences: (seconds, counters, checksum).

    ``sync`` selects the phase synchronization for the mp/mpjit backends
    (``"p2p"``/``"barrier"``; None keeps the runner's default, p2p).

    Array allocation happens outside the timed region; the run itself —
    including any backend setup such as shared-memory creation for ``mp``
    and ``mpjit`` (and, on the first run, spawning the mpjit worker pool)
    — is what the clock sees.  When ``prep`` carries precompiled jit
    modules (and no interpreter verification is requested) they run
    directly — serially for ``jit``, through the persistent pool for
    ``mpjit``; otherwise execution goes through the backend registry.
    """
    arrays = prep.alloc()
    totals = {"fused_iterations": 0, "peeled_iterations": 0}
    if prep.modules is not None and not verify:
        if backend == "mpjit":
            from .pool import run_mpjit_module

            cache = default_cache()
            cache_root = str(cache.root) if cache.persist else None
        run_modules = prep.modules
        if backend == "cjit" and prep.native_modules is not None:
            run_modules = prep.native_modules  # native tier; else jit fallback
        t0 = time.perf_counter()
        for module in run_modules:
            if backend == "mpjit":
                stats = run_mpjit_module(module, arrays,
                                         max_workers=max_workers,
                                         cache_root=cache_root,
                                         sync=sync or "p2p")
            else:
                stats = module.run(arrays)
            for key in totals:
                totals[key] += stats.get(key, 0)
        seconds = time.perf_counter() - t0
        return seconds, totals, checksum(arrays)
    be = get_backend(backend)
    options: dict = {}
    if backend in ("jit", "mpjit", "cjit") and no_cache:
        options["no_cache"] = True
    if backend in ("mp", "mpjit") and max_workers is not None:
        options["max_workers"] = max_workers
    if backend in ("mp", "mpjit") and sync is not None:
        options["sync"] = sync
    t0 = time.perf_counter()
    for ep in prep.plans:
        stats = be.run(ep, arrays, strip=strip, verify=verify, **options)
        for key in totals:
            totals[key] += stats.get(key, 0)
    seconds = time.perf_counter() - t0
    return seconds, totals, checksum(arrays)


def _prep_signature(prep: PreparedKernel) -> str:
    """Stable per-artifact key for the circuit breaker: the compiled
    module signature when available, else the plan signature."""
    if prep.modules:
        return prep.modules[0].signature
    if prep.plans:
        return prep.plans[0].signature
    return prep.name


def execute_resilient(
    prep: PreparedKernel,
    backend: str,
    strip: Optional[int] = None,
    no_cache: bool = False,
    max_workers: Optional[int] = None,
    sync: Optional[str] = None,
    policy=None,
    breaker=None,
    signature: Optional[str] = None,
) -> tuple[float, dict[str, int], str, dict]:
    """:func:`execute_prepared` with bounded retries and degradation.

    Exec requests are idempotent (fresh arrays every attempt), so a
    failed attempt is retried after a deterministic exponential backoff
    (:class:`~repro.runtime.supervisor.RetryPolicy`), stepping down the
    backend ladder ``mpjit → jit → vector`` — every rung bit-identical
    by construction, so a degraded answer differs only in latency.  The
    per-signature :class:`~repro.runtime.supervisor.CircuitBreaker`
    remembers recent failures, so a poisoned artifact starts below
    ``mpjit`` instead of rediscovering the failure on every request.

    Returns ``(seconds, counters, checksum, recovery)`` where
    ``recovery`` records ``retries``, ``backend_used``, ``degraded`` and
    the per-attempt failure kinds.  Raises
    :class:`~repro.runtime.supervisor.ExecError` carrying the last
    classified failure once attempts are exhausted.

    The zero-failure fast path costs one breaker dict lookup before the
    run and one after — the retry machinery stays off the hot path.
    """
    from .fastexec import FastExecError
    from .supervisor import (
        ExecError,
        RetryPolicy,
        classify_failure,
        default_breaker,
        degrade_ladder,
    )

    policy = policy or RetryPolicy()
    breaker = breaker or default_breaker()
    if signature is None:
        signature = _prep_signature(prep)
    ladder = degrade_ladder(backend)
    backend_now, _ = breaker.effective_backend(signature, backend)
    attempts: list[dict] = []
    for attempt in range(1, policy.max_attempts + 1):
        try:
            seconds, counters, digest = execute_prepared(
                prep, backend_now, strip=strip, no_cache=no_cache,
                max_workers=max_workers, sync=sync,
            )
        except FastExecError as exc:
            failure = classify_failure(exc)
            breaker.record_failure(signature, backend)
            attempts.append({"backend": backend_now, "kind": failure.kind})
            if attempt >= policy.max_attempts or not failure.retryable:
                if isinstance(exc, ExecError):
                    raise
                raise ExecError(failure) from exc
            index = (ladder.index(backend_now)
                     if backend_now in ladder else 0)
            backend_now = ladder[min(index + 1, len(ladder) - 1)]
            time.sleep(policy.delay(attempt))
        else:
            breaker.record_success(signature)
            recovery = {
                "retries": attempt - 1,
                "requested_backend": backend,
                "backend_used": backend_now,
                "degraded": backend_now != backend,
                "attempts": attempts,
            }
            return seconds, counters, digest, recovery
    raise AssertionError("unreachable")  # pragma: no cover


def measure_kernel(
    kernel: str,
    backend: str,
    params: Optional[Mapping[str, int]] = None,
    n: Optional[int] = None,
    procs: int = 4,
    strip: Optional[int] = None,
    repeat: int = 3,
    seed: int = 7,
    verify: bool = False,
    use_cache: bool = True,
    max_workers: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    sync: Optional[str] = None,
    label: Optional[str] = None,
    autotune: bool = False,
    tuner=None,
    retries: int = 0,
) -> dict:
    """Per-repeat wall-clock record for one kernel × backend.

    ``sync`` selects the mp/mpjit phase synchronization (``"p2p"`` is
    the runners' default, ``"barrier"`` the paper's global barrier); the
    effective mode is recorded as ``record["sync"]``.  ``label``
    overrides the reported backend name, so the bench harness can gate
    variants like ``mpjit-barrier`` as their own entries.

    ``autotune=True`` consults the measured-cost auto-tuner
    (:mod:`repro.runtime.autotune`) first: the persisted winner for this
    (kernel IR, shape, procs, machine) — timed once, reused on every
    warm run — overrides ``backend``/``strip``/``max_workers``/``sync``,
    and the tuner's key, hit/miss flag and counters are recorded under
    ``record["autotune"]``.

    The checksum must be identical across repeats (execution is
    deterministic); a mismatch raises ``RuntimeError`` immediately.

    Every repeat is kept as its own sample under ``samples`` — a dict of
    ``seconds`` plus that repeat's share of the cost phases the jit cache
    is designed to amortize: ``plan_seconds`` (the analysis → derive →
    fuse → plan pipeline) and ``compile_seconds`` (source emission +
    ``compile()``) are paid by the first repeat only (0 on a warm program
    alias / cache hit respectively), and for ``mpjit`` each sample
    carries its own ``pool_runs``/``pool_spawn_seconds`` delta so pool
    startup is attributed to the repeat that paid it.

    The aggregate fields are derived from the samples: the headline
    ``seconds`` is still the best run, ``median_seconds`` /
    ``warm_median_seconds`` / ``p50`` / ``p95`` / ``p99`` / ``iqr`` /
    ``jitter`` (IQR/median) come from
    :func:`repro.bench.telemetry.summarize_samples`, ``cold_seconds`` is
    plan + compile + first run and ``warm_seconds`` the best run after
    the first.  ``deadline_seconds`` (optional) counts repeats exceeding
    it as ``deadline_misses`` — the service-benchmark semantics.
    ``use_cache=False`` bypasses the plan cache completely.

    For ``mpjit`` the record additionally reports pool totals:
    ``pool_spawn_seconds`` (forking the persistent workers, paid inside
    the *first* run only), ``pool_workers``, ``pool_runs`` and
    ``steady_seconds`` (an alias of ``warm_seconds``: every repeat after
    the first executes against already-warm workers, which is the number
    a long-running service would see).  ``max_workers`` caps the worker
    count for the mp/mpjit backends.
    """
    wall0 = time.perf_counter()
    tuner_info = None
    if autotune:
        from .autotune import resolve_config

        config, tuner_info = resolve_config(
            kernel, params=params, n=n, procs=procs, seed=seed,
            tuner=tuner,
        )
        backend = config.get("backend", backend)
        strip = config.get("strip", strip)
        max_workers = config.get("max_workers", max_workers)
        sync = config.get("sync", sync)
    prep = prepare_kernel(
        kernel, params=params, n=n, procs=procs, seed=seed,
        backend=backend, strip=strip, use_cache=use_cache,
        need_plans=verify,
    )
    pool_snapshot = None
    if backend == "mpjit":
        from .pool import pool_stats

        pool_snapshot = pool_stats()
    digest = None
    counters = None
    samples: list[dict] = []
    recovery_totals = {"retries": 0, "degraded_runs": 0}
    for index in range(max(1, repeat)):
        if retries > 0 and not verify:
            from .supervisor import RetryPolicy

            seconds, totals, run_digest, recovery = execute_resilient(
                prep, backend, strip=strip, no_cache=not use_cache,
                max_workers=max_workers, sync=sync,
                policy=RetryPolicy(max_attempts=retries + 1),
            )
            recovery_totals["retries"] += recovery["retries"]
            recovery_totals["degraded_runs"] += int(recovery["degraded"])
        else:
            seconds, totals, run_digest = execute_prepared(
                prep, backend, strip=strip, verify=verify,
                no_cache=not use_cache, max_workers=max_workers,
                sync=sync,
            )
        if digest is not None and run_digest != digest:
            raise RuntimeError(
                f"{kernel}/{backend}: nondeterministic checksum "
                f"({digest} vs {run_digest})"
            )
        digest = run_digest
        counters = totals
        sample = {
            "seconds": round(seconds, 6),
            "plan_seconds": round(prep.plan_seconds if index == 0 else 0.0, 6),
            "compile_seconds": round(
                prep.compile_seconds if index == 0 else 0.0, 6),
        }
        if backend == "mpjit":
            stats = pool_stats()
            sample["pool_runs"] = (stats.get("runs", 0)
                                   - pool_snapshot.get("runs", 0))
            sample["pool_spawn_seconds"] = round(
                stats.get("spawn_seconds", 0.0)
                - pool_snapshot.get("spawn_seconds", 0.0), 6)
            pool_snapshot = stats
        samples.append(sample)
    total_seconds = time.perf_counter() - wall0
    run_times = [s["seconds"] for s in samples]
    first_run = run_times[0]
    warm_best = min(run_times[1:]) if len(run_times) > 1 else None
    record = {
        "kernel": kernel,
        "backend": label or backend,
        "shape": prep.shape,
        "procs": procs,
        "seconds": round(min(run_times), 6),
        "iterations": counters["fused_iterations"] + counters["peeled_iterations"],
        "checksum": digest,
        "samples": samples,
        "plan_seconds": round(prep.plan_seconds, 6),
        "compile_seconds": round(prep.compile_seconds, 6),
        "cold_seconds": round(
            prep.plan_seconds + prep.compile_seconds + first_run, 6
        ),
        "warm_seconds": round(
            warm_best if warm_best is not None else first_run, 6
        ),
        "total_seconds": round(total_seconds, 6),
    }
    record.update(summarize_samples(run_times,
                                    deadline_seconds=deadline_seconds))
    if backend in ("mp", "mpjit"):
        record["sync"] = sync or "p2p"
    if tuner_info is not None:
        record["autotune"] = tuner_info
    if retries > 0:
        record["recovery"] = dict(recovery_totals, budget=retries)
    if backend in ("jit", "mpjit", "cjit"):
        record["cache"] = dict(prep.cache_stats)
    if backend == "cjit":
        from ..codegen import emitc

        if prep.native_modules is not None:
            native, reason = True, None
        elif use_cache:
            native, reason = False, prep.native_reason
        else:
            # no-cache runs compile inline inside run_cjit; native status
            # mirrors compiler presence, the run itself noted any failure
            native = emitc.find_compiler() is not None
            reason = None if native else \
                "no C compiler found (set $REPRO_CC or install cc)"
        entry: dict = {"native": native}
        if reason:
            entry["fallback_reason"] = reason
        fp = emitc.compiler_fingerprint()
        if fp:
            entry["compiler_fingerprint"] = fp
        record["cjit"] = entry
    if backend == "mpjit":
        stats = pool_stats()
        record["pool_workers"] = stats.get("nworkers", 0)
        record["pool_runs"] = stats.get("runs", 0)
        record["pool_spawn_seconds"] = stats.get("spawn_seconds", 0.0)
        record["steady_seconds"] = record["warm_seconds"]
    return record


def calibrate(loops: int = 2_000_000) -> float:
    """Seconds for a fixed pure-Python workload — a proxy for interpreter
    speed on this machine.  The regression checker scales committed
    baseline times by the calibration ratio so wall-clock gates survive a
    change of hardware."""
    t0 = time.perf_counter()
    acc = 0.0
    for i in range(loops):
        acc += i * 0.5
    if acc < 0:  # pragma: no cover - keeps the loop from being optimized out
        raise AssertionError
    return time.perf_counter() - t0
