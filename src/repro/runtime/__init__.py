"""Execution: reference interpreter, compiled runner, simulated parallelism."""

from .interp import (
    CompiledNest,
    compile_nest,
    run_nest,
    run_program,
    run_sequence_compiled,
    run_sequence_serial,
)
from .parallel import fused_work, peeled_work, run_parallel, run_unfused_parallel

__all__ = [
    "CompiledNest",
    "compile_nest",
    "fused_work",
    "peeled_work",
    "run_nest",
    "run_parallel",
    "run_program",
    "run_sequence_compiled",
    "run_sequence_serial",
    "run_unfused_parallel",
]
