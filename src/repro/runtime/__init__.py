"""Execution: reference interpreter, compiled runner, simulated parallelism,
and the fast vectorized/multiprocess backends behind the backend registry."""

from .backend import (
    Backend,
    BackendMismatch,
    available_backends,
    checksum,
    get_backend,
    register_backend,
)
from .fastexec import FastExecError, exec_box, run_mp, run_vector, vector_dims
from .interp import (
    CompiledNest,
    compile_nest,
    run_nest,
    run_program,
    run_sequence_compiled,
    run_sequence_serial,
)
from .parallel import (
    fused_tile_boxes,
    fused_work,
    peeled_work,
    run_parallel,
    run_unfused_parallel,
)

__all__ = [
    "Backend",
    "BackendMismatch",
    "CompiledNest",
    "FastExecError",
    "available_backends",
    "checksum",
    "compile_nest",
    "exec_box",
    "fused_tile_boxes",
    "fused_work",
    "get_backend",
    "peeled_work",
    "register_backend",
    "run_mp",
    "run_nest",
    "run_parallel",
    "run_program",
    "run_sequence_compiled",
    "run_sequence_serial",
    "run_unfused_parallel",
    "run_vector",
    "vector_dims",
]
