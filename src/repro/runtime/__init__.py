"""Execution: reference interpreter, compiled runner, simulated parallelism,
and the fast vectorized/multiprocess backends behind the backend registry."""

from .backend import (
    Backend,
    BackendMismatch,
    available_backends,
    checksum,
    get_backend,
    register_backend,
    run_jit,
)
from .fastexec import FastExecError, exec_box, run_mp, run_vector, vector_dims
from .interp import (
    CompiledNest,
    compile_nest,
    run_nest,
    run_program,
    run_sequence_compiled,
    run_sequence_serial,
)
from .parallel import (
    fused_tile_boxes,
    fused_work,
    peeled_work,
    run_parallel,
    run_unfused_parallel,
)
from .plancache import (
    CacheStats,
    PlanCache,
    default_cache,
    program_signature,
    reset_default_cache,
)
from .pool import (
    WorkerPool,
    pool_stats,
    run_mpjit,
    run_mpjit_module,
    shutdown_pool,
)

__all__ = [
    "Backend",
    "BackendMismatch",
    "CacheStats",
    "CompiledNest",
    "FastExecError",
    "PlanCache",
    "WorkerPool",
    "available_backends",
    "checksum",
    "compile_nest",
    "default_cache",
    "exec_box",
    "fused_tile_boxes",
    "fused_work",
    "get_backend",
    "peeled_work",
    "pool_stats",
    "program_signature",
    "register_backend",
    "reset_default_cache",
    "run_jit",
    "run_mp",
    "run_mpjit",
    "run_mpjit_module",
    "run_nest",
    "run_parallel",
    "run_program",
    "run_sequence_compiled",
    "run_sequence_serial",
    "run_unfused_parallel",
    "shutdown_pool",
    "run_vector",
    "vector_dims",
]
