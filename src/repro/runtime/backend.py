"""Execution backend registry.

Every way of executing an :class:`~repro.core.execplan.ExecutionPlan` is a
named :class:`Backend` with one calling convention, so the CLI, the
examples and the benchmarks select an executor with a string:

* ``interp`` — the per-iteration generator scheduler of
  :mod:`repro.runtime.parallel`.  Slow, but the semantic reference: it can
  interleave the simulated processors adversarially, which is what the
  correctness suite leans on.
* ``vector`` — :func:`repro.runtime.fastexec.run_vector`, numpy
  whole-array execution of the same plan (measured performance).
* ``mp`` — :func:`repro.runtime.fastexec.run_mp`, one OS process per
  simulated processor over shared memory, synchronized point-to-point
  between the phases (``sync="barrier"`` restores the global barrier).
* ``jit`` — :func:`run_jit`, the plan lowered once to literal numpy
  source (:mod:`repro.codegen.emitpy`), compiled and memoized through the
  two-level plan cache (:mod:`repro.runtime.plancache`), then executed as
  straight-line compiled code on every call.
* ``mpjit`` — :func:`repro.runtime.pool.run_mpjit`, the same compiled
  modules executed in parallel by a persistent worker pool: each worker
  runs only its processors' ``run_fused``/``run_peeled`` entry points
  over shared memory (the paper's two-phase SPMD schedule, compiled),
  synchronizing point-to-point through the module's ``PEEL_DEPS`` map
  by default (``sync="barrier"`` restores the global barrier).
* ``cjit`` — :func:`run_cjit`, the plan lowered to a C translation unit
  (:mod:`repro.codegen.emitc`), compiled with the system C compiler into
  a ``.so`` cached next to the ``.py`` source, and called through
  ``ctypes`` — no numpy per-statement overhead at all.  When no
  compiler is present or compilation fails it falls back to ``jit``
  with a one-line note and a counter, never an error.

``Backend.run(..., verify=True)`` cross-checks any fast backend against
the interpreter on the spot and raises :class:`BackendMismatch` unless the
results are bit-identical — the same differential check the test suite
applies on small shapes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, MutableMapping, Optional

import numpy as np

from ..core.execplan import ExecutionPlan
from .fastexec import run_mp, run_vector
from .parallel import run_parallel
from .pool import run_mpjit


class BackendMismatch(RuntimeError):
    """A fast backend diverged from the reference interpreter."""


Runner = Callable[..., dict]


@dataclass(frozen=True)
class Backend:
    """A named executor for :class:`ExecutionPlan`s."""

    name: str
    description: str
    runner: Runner
    is_reference: bool = False

    def run(
        self,
        exec_plan: ExecutionPlan,
        arrays: MutableMapping[str, np.ndarray],
        *,
        strip: Optional[int] = None,
        interleave: str = "roundrobin",
        rng: Optional[np.random.Generator] = None,
        verify: bool = False,
        **options,
    ) -> dict:
        """Execute ``exec_plan`` over ``arrays`` in place and return the
        executor's counters.  With ``verify=True`` a non-reference backend
        is re-run through the interpreter on a copy of the inputs and any
        bitwise difference raises :class:`BackendMismatch`."""
        oracle = None
        if verify and not self.is_reference:
            oracle = {k: v.copy() for k, v in arrays.items()}
            get_backend("interp").run(
                exec_plan, oracle, strip=strip, interleave=interleave, rng=rng,
            )
        if self.is_reference:
            stats = self.runner(
                exec_plan, arrays, interleave=interleave,
                strip=strip if strip is not None else 4, rng=rng,
            )
        else:
            stats = self.runner(exec_plan, arrays, strip=strip, **options)
        if oracle is not None:
            bad = [k for k in arrays if not np.array_equal(arrays[k], oracle[k])]
            if bad:
                raise BackendMismatch(
                    f"backend {self.name!r} diverged from interpreter on "
                    f"array(s) {', '.join(sorted(bad))}"
                )
        return stats


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def checksum(arrays: MutableMapping[str, np.ndarray]) -> str:
    """Deterministic digest of a set of named arrays (name, shape and
    exact float bits), machine-independent for IEEE-754 arithmetic."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


def run_jit(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int] = None,
    no_cache: bool = False,
    cache=None,
) -> dict:
    """Execute ``exec_plan`` through generated-and-compiled numpy code.

    The first call for a given plan structure emits and compiles a module
    (cached in memory and on disk keyed by the plan signature); later
    calls — in this process or any other — replay the compiled module
    directly.  ``no_cache=True`` recompiles from scratch and touches no
    cache, which is the honest way to measure cold cost."""
    if no_cache:
        from ..codegen.emitpy import compile_plan

        module = compile_plan(exec_plan, strip=strip)
    else:
        if cache is None:
            from .plancache import default_cache

            cache = default_cache()
        module = cache.get(exec_plan, strip=strip)
    return module.run(arrays)


def run_cjit(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int] = None,
    no_cache: bool = False,
    cache=None,
) -> dict:
    """Execute ``exec_plan`` through generated-and-compiled C code.

    Mirrors :func:`run_jit`: the first call for a plan structure emits,
    compiles (``cc -O2 -shared -fPIC``) and caches a shared object keyed
    by the plan signature plus the compiler fingerprint; later calls
    dlopen/reuse it.  A missing compiler or a failed compilation falls
    back to :func:`run_jit` — noted once, counted always
    (:func:`repro.codegen.emitc.fallback_stats`), never an error."""
    from ..codegen import emitc

    module = None
    reason = None
    if no_cache:
        try:
            module = emitc.compile_plan_native(exec_plan, strip=strip)
        except emitc.CJitError as exc:
            reason = str(exc)
    else:
        if cache is None:
            from .plancache import default_cache

            cache = default_cache()
        module, reason = cache.get_native(exec_plan, strip=strip)
    if module is None:
        emitc.note_fallback(reason or "native compilation unavailable")
        return run_jit(exec_plan, arrays, strip=strip, no_cache=no_cache,
                       cache=cache)
    return module.run(arrays)


register_backend(Backend(
    name="interp",
    description="per-iteration generator scheduler (semantic reference, "
                "adversarial interleavings)",
    runner=run_parallel,
    is_reference=True,
))
register_backend(Backend(
    name="vector",
    description="numpy whole-array execution of fused strips and peels",
    runner=run_vector,
))
register_backend(Backend(
    name="mp",
    description="one OS process per simulated processor over shared memory "
                "(point-to-point phase sync; sync='barrier' for the global "
                "barrier)",
    runner=run_mp,
))
register_backend(Backend(
    name="jit",
    description="plan compiled once to numpy source (plan-signature cached "
                "in memory and on disk), executed many times",
    runner=run_jit,
))
register_backend(Backend(
    name="mpjit",
    description="compiled per-processor entry points executed by a "
                "persistent worker pool over shared memory (fused phase, "
                "point-to-point neighbor sync, peeled phase)",
    runner=run_mpjit,
))
register_backend(Backend(
    name="cjit",
    description="plan compiled to native C (cc -O2, signature+compiler-"
                "fingerprint cached .so, ctypes entry points); falls back "
                "to jit when no compiler is available",
    runner=run_cjit,
))
