"""Measured-cost auto-tuning of execution configurations.

Strip size, worker count and backend are chosen statically today, but the
best choice depends on the kernel, the problem shape *and* the machine —
Baghdadi et al. (PAPERS.md) argue that static analysis should be combined
with measured dynamic feedback.  This module closes that loop:

* :func:`candidate_configs` enumerates a small set of plausible
  ``(backend, strip, workers, sync)`` configurations for a processor
  count on this machine (serial compiled code always; the pooled
  parallel path only when there is more than one core to win with);
* :func:`resolve_config` times each candidate on the real kernel (best
  of a few repeats, through the same
  :func:`~repro.runtime.benchmarking.prepare_kernel` /
  :func:`~repro.runtime.benchmarking.execute_prepared` path the
  benchmarks use) and picks the fastest;
* the winner is **persisted** next to the jit plan cache
  (``<cache>/v<CODEGEN_VERSION>/autotune/<key>.json``, see
  :attr:`repro.runtime.plancache.PlanCache.tuner_dir`), keyed by the
  structural program signature (kernel IR + params + procs) **plus a
  machine fingerprint** — a tuning result measured on one box is never
  replayed on another;
* warm runs consult the store first: a hit returns the winner without
  timing anything, and hit/miss/store counters
  (:class:`TunerStats`) are surfaced through
  :func:`repro.runtime.benchmarking.measure_kernel` telemetry and the
  ``repro exec --autotune`` CLI.

Entries embed a schema tag and are validated on read; a corrupt or
foreign file is treated as a miss and re-tuned, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from .plancache import default_cache, program_signature

SCHEMA = "repro-autotune/1"

#: Strip-size candidates per backend.  ``None`` (whole-box, no tiling) is
#: almost always right for the numpy codegen; one moderate tile size
#: covers shapes where cache blocking wins.
_STRIP_CANDIDATES = (None, 32)


@dataclass
class TunerStats:
    """Counters for one tuner instance (mirrors ``CacheStats``)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    tune_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "tune_seconds": round(self.tune_seconds, 6),
        }


def machine_fingerprint() -> str:
    """What makes a tuning result transferable: core count and ISA, plus
    everything that changes the *code being timed* — the Python
    major.minor (numpy dispatch costs shift between interpreters), the
    codegen version (new emitters produce different modules) and the C
    compiler fingerprint (a toolchain change re-times the native tier,
    and its presence/absence gates the ``cjit`` candidates).  Two hosts
    sharing a fingerprint are assumed to prefer the same configuration;
    anything finer (exact CPU model) would defeat cache reuse across CI
    runners for little accuracy."""
    from ..codegen.emitc import compiler_fingerprint
    from ..codegen.emitpy import CODEGEN_VERSION

    cc = compiler_fingerprint() or "none"
    return (f"cpu{os.cpu_count() or 1}-{platform.machine() or 'unknown'}"
            f"-py{sys.version_info[0]}.{sys.version_info[1]}"
            f"-cg{CODEGEN_VERSION}-cc{cc}")


def tuning_key(program, params: Mapping[str, int], procs: int) -> str:
    """The persistent store key: structural program signature (kernel IR,
    params, procs — strip excluded, the tuner chooses it) plus the
    machine fingerprint."""
    base = program_signature(program, params, procs, strip=None)
    digest = hashlib.sha256()
    digest.update(f"{SCHEMA}|{base}|{machine_fingerprint()}".encode())
    return digest.hexdigest()


def candidate_configs(procs: int,
                      cpu_count: Optional[int] = None) -> list[dict]:
    """The configurations worth timing for ``procs`` on this machine.

    Serial compiled code (``jit``) is always a candidate, and so is the
    native tier (``cjit``) when a C compiler is present; the pooled
    parallel path (``mpjit``, point-to-point sync) joins only when both
    the plan and the machine have parallelism to exploit.  Worker counts:
    all cores, plus a half-cores option on big hosts (smaller pools can
    win when memory bandwidth saturates first) — deduplicated by the
    *effective* pool size ``min(procs, workers)``, so a half-cores count
    that resolves to the same pool as "all cores" is timed once, and
    emitted sorted by that effective size with the full pool spelled
    ``max_workers=None`` (stored winners stay portable across hosts)."""
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    cands = [
        {"backend": "jit", "strip": strip} for strip in _STRIP_CANDIDATES
    ]
    from ..codegen.emitc import find_compiler

    if find_compiler() is not None:
        cands.extend(
            {"backend": "cjit", "strip": strip}
            for strip in _STRIP_CANDIDATES
        )
    if cpu_count >= 2 and procs >= 2:
        full = min(procs, cpu_count)  # what max_workers=None resolves to
        counts = {full}
        if cpu_count >= 4:
            counts.add(min(procs, max(2, cpu_count // 2)))
        for count in sorted(counts):
            w: Optional[int] = None if count == full else count
            cands.append({"backend": "mpjit", "strip": None,
                          "max_workers": w, "sync": "p2p"})
    return cands


@dataclass
class AutoTuner:
    """Lookup/store layer over the persisted winner files.

    ``root=None`` resolves the directory lazily from the *current*
    default plan cache on every access, so redirecting
    ``$REPRO_JIT_CACHE_DIR`` (as tests and CI do) also redirects the
    tuner store.  ``persist=False`` keeps winners in memory only.
    """

    root: Optional[Path] = None
    persist: bool = True
    stats: TunerStats = field(default_factory=TunerStats)

    def __post_init__(self) -> None:
        self._memory: dict[str, dict] = {}

    def _dir(self) -> Path:
        return Path(self.root) if self.root is not None \
            else default_cache().tuner_dir

    def path(self, key: str) -> Path:
        return self._dir() / f"{key}.json"

    def lookup(self, key: str) -> Optional[dict]:
        """The persisted payload for ``key`` or None; counts hit/miss.
        Corrupt or foreign files count as ``invalid`` misses."""
        payload = self._memory.get(key)
        if payload is None and self.persist:
            try:
                payload = json.loads(
                    self.path(key).read_text(encoding="utf-8")
                )
            except OSError:
                payload = None
            except ValueError:
                payload = None
                self.stats.invalid += 1
        if payload is not None:
            if (not isinstance(payload, dict)
                    or payload.get("schema") != SCHEMA
                    or not isinstance(payload.get("winner"), dict)
                    or not isinstance(
                        payload["winner"].get("config"), dict)):
                self.stats.invalid += 1
                payload = None
        if payload is None:
            self.stats.misses += 1
            return None
        self._memory[key] = payload
        self.stats.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self.stats.stores += 1
        if not self.persist:
            return
        path = self.path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass  # a read-only store only costs re-tuning


def resolve_config(
    kernel: str,
    params: Optional[Mapping[str, int]] = None,
    n: Optional[int] = None,
    procs: int = 4,
    seed: int = 7,
    repeat: int = 2,
    tuner: Optional[AutoTuner] = None,
) -> tuple[dict, dict]:
    """The tuned configuration for ``(kernel, shape, procs, machine)``.

    Returns ``(config, info)``: ``config`` holds ``backend`` plus any of
    ``strip``/``max_workers``/``sync``; ``info`` reports the store key,
    whether it was a hit, what was timed on a miss and the tuner's
    counters.  A hit costs one JSON read — no candidate executes.
    """
    from ..kernels import get_kernel
    from .benchmarking import execute_prepared, prepare_kernel, resolve_params

    if tuner is None:
        tuner = default_tuner()
    info = get_kernel(kernel)
    program = info.program()
    run_params = resolve_params(info, program, params=params, n=n)
    key = tuning_key(program, run_params, procs)
    payload = tuner.lookup(key)
    if payload is not None:
        return dict(payload["winner"]["config"]), {
            "key": key, "hit": True, "candidates_timed": 0,
            "winner": payload["winner"], "stats": tuner.stats.as_dict(),
        }
    t0 = time.perf_counter()
    timed: list[dict] = []
    for cand in candidate_configs(procs):
        prep = prepare_kernel(
            kernel, params=params, n=n, procs=procs, seed=seed,
            backend=cand["backend"], strip=cand.get("strip"),
        )
        best = None
        for _ in range(max(1, repeat)):
            seconds, _counters, _digest = execute_prepared(
                prep, cand["backend"], strip=cand.get("strip"),
                max_workers=cand.get("max_workers"),
                sync=cand.get("sync"),
            )
            best = seconds if best is None else min(best, seconds)
        timed.append({"config": cand, "seconds": round(best, 6)})
    tune_seconds = time.perf_counter() - t0
    tuner.stats.tune_seconds += tune_seconds
    winner = min(timed, key=lambda t: t["seconds"])
    payload = {
        "schema": SCHEMA,
        "key": key,
        "machine": machine_fingerprint(),
        "kernel": kernel,
        "params": dict(run_params),
        "procs": procs,
        "winner": winner,
        "candidates": timed,
        "tune_seconds": round(tune_seconds, 6),
    }
    tuner.store(key, payload)
    return dict(winner["config"]), {
        "key": key, "hit": False, "candidates_timed": len(timed),
        "winner": winner, "tune_seconds": round(tune_seconds, 6),
        "stats": tuner.stats.as_dict(),
    }


_default_tuner: Optional[AutoTuner] = None


def default_tuner() -> AutoTuner:
    """The process-wide tuner (counters accumulate across calls; the
    store directory follows the default plan cache)."""
    global _default_tuner
    if _default_tuner is None:
        _default_tuner = AutoTuner()
    return _default_tuner


def reset_default_tuner() -> None:
    """Drop the process-wide tuner (tests isolate counters with this)."""
    global _default_tuner
    _default_tuner = None
