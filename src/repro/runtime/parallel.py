"""Simulated parallel execution of a fused sequence.

Executes an :class:`~repro.core.execplan.ExecutionPlan` the way the target
machine would: every processor runs its fused block (strip-mined, nests
interleaved strip by strip), then a single barrier, then the peeled
iterations.  Because true multithreading would not make iteration
interleavings reproducible, parallelism is *simulated*: each processor's
work is a generator of single iterations, and a scheduler interleaves the
generators — round-robin, reversed, or adversarially at random.  Any legal
transformation must produce bit-identical results under every interleave,
which is exactly what the test suite asserts.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, MutableMapping, Optional, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan, ProcessorPlan
from ..ir.loop import LoopNest


WorkItem = tuple[int, tuple[int, ...]]  # (nest_idx, iteration vector)
Box = tuple[tuple[int, int], ...]  # inclusive (lo, hi) per nest dimension


def fused_tile_boxes(
    proc: ProcessorPlan, plan_depth: int, nests: Sequence[LoopNest],
    shifts, strip: int = 4,
) -> Iterator[tuple[int, Box]]:
    """Yield ``(nest_idx, box)`` for the fused phase of one processor in
    strip-mined order (paper Fig. 12): position-space tiles in
    lexicographic order; per tile, nests in sequence order.  Each box is
    the nest's original-iteration rectangle inside the tile, extended with
    the full range of the nest's non-fused inner dimensions."""
    ndims = plan_depth
    # Position-space extent of this processor: union over nests of
    # (fused range shifted into position space).
    pos_lo = [None] * ndims
    pos_hi = [None] * ndims
    for k in range(len(nests)):
        for d in range(ndims):
            lo, hi = proc.fused[k][d]
            if hi < lo:
                continue
            s = shifts(k, d)
            plo, phi = lo + s, hi + s
            pos_lo[d] = plo if pos_lo[d] is None else min(pos_lo[d], plo)
            pos_hi[d] = phi if pos_hi[d] is None else max(pos_hi[d], phi)
    if any(lo is None for lo in pos_lo):
        return
    tile_starts = [
        range(pos_lo[d], pos_hi[d] + 1, strip) for d in range(ndims)
    ]
    for tile in itertools.product(*tile_starts):
        for k, nest in enumerate(nests):
            ranges = []
            empty = False
            for d in range(ndims):
                s = shifts(k, d)
                flo, fhi = proc.fused[k][d]
                lo = max(flo, tile[d] - s)
                hi = min(fhi, tile[d] + strip - 1 - s)
                if hi < lo:
                    empty = True
                    break
                ranges.append((lo, hi))
            if empty:
                continue
            for d in range(ndims, nest.depth):
                lo, hi = proc.fused[k][d]
                ranges.append((lo, hi))
            yield (k, tuple(ranges))


def fused_work(
    proc: ProcessorPlan, plan_depth: int, nests: Sequence[LoopNest],
    shifts, strip: int = 4,
) -> Iterator[WorkItem]:
    """Yield the fused-phase iterations of one processor in strip-mined
    order (paper Fig. 12): position-space tiles in lexicographic order; per
    tile, nests in sequence order; per nest, iterations lexicographically."""
    for k, box in fused_tile_boxes(proc, plan_depth, nests, shifts, strip):
        for ivec in itertools.product(*(range(lo, hi + 1) for lo, hi in box)):
            yield (k, ivec)


def peeled_work(proc: ProcessorPlan) -> Iterator[WorkItem]:
    """Yield the peeled-phase iterations of one processor: nests in
    sequence order, rectangles in construction order, iterations
    lexicographically (Sec. 3.4's dependence-closed grouping)."""
    rects = sorted(range(len(proc.peeled)), key=lambda r: proc.peeled[r].nest_idx)
    for r in rects:
        rect = proc.peeled[r]
        if rect.is_empty():
            continue
        for ivec in rect.iterations():
            yield (rect.nest_idx, ivec)


def _interleave(
    streams: list[Iterator[WorkItem]],
    mode: str,
    rng: Optional[np.random.Generator],
) -> Iterator[tuple[int, WorkItem]]:
    """Merge per-processor work streams into one global order."""
    live = {p: it for p, it in enumerate(streams)}
    if mode == "sequential":
        for p in sorted(live):
            for item in live[p]:
                yield (p, item)
        return
    if mode == "reversed":
        for p in sorted(live, reverse=True):
            for item in live[p]:
                yield (p, item)
        return
    if mode == "roundrobin":
        while live:
            for p in sorted(live):
                try:
                    yield (p, next(live[p]))
                except StopIteration:
                    del live[p]
        return
    if mode == "random":
        if rng is None:
            rng = np.random.default_rng(0)
        keys = list(live)
        while keys:
            p = keys[int(rng.integers(len(keys)))]
            try:
                yield (p, next(live[p]))
            except StopIteration:
                keys.remove(p)
        return
    raise ValueError(f"unknown interleave mode {mode!r}")


def run_parallel(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    interleave: str = "roundrobin",
    strip: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> dict[str, int]:
    """Execute the fused phase (interleaved), the barrier, then the peeled
    phase (interleaved).  Returns counters for sanity checks."""
    plan = exec_plan.plan
    nests = list(plan.seq)
    params = exec_plan.params
    env_base = dict(params)

    def shifts(k: int, d: int) -> int:
        return plan.shift(k, d)

    fused_streams = [
        fused_work(proc, plan.depth, nests, shifts, strip=strip)
        for proc in exec_plan.processors
    ]
    executed = 0
    for _p, (k, ivec) in _interleave(fused_streams, interleave, rng):
        nest = nests[k]
        env = env_base
        for var, val in zip(nest.loop_vars, ivec):
            env[var] = val
        for st in nest.body:
            st.execute(env, arrays)
        executed += 1

    # ---- barrier (Sec. 3.4) ----
    peeled_streams = [peeled_work(proc) for proc in exec_plan.processors]
    peeled_count = 0
    for _p, (k, ivec) in _interleave(peeled_streams, interleave, rng):
        nest = nests[k]
        env = env_base
        for var, val in zip(nest.loop_vars, ivec):
            env[var] = val
        for st in nest.body:
            st.execute(env, arrays)
        peeled_count += 1

    return {"fused_iterations": executed, "peeled_iterations": peeled_count}


def run_unfused_parallel(
    seq,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
    num_procs: int,
    interleave: str = "roundrobin",
    rng: Optional[np.random.Generator] = None,
) -> dict[str, int]:
    """Baseline: each nest runs as its own parallel loop with a barrier
    between nests (the original program's execution on the machine)."""
    from ..core.schedule import BlockSchedule

    executed = 0
    for nest in seq:
        params_env = dict(params)
        lo, hi = nest.loops[0].bounds(params)
        nblocks = min(num_procs, max(1, hi - lo + 1))
        sched = BlockSchedule(lo, hi, nblocks)

        def proc_stream(p: int, nest=nest, sched=sched):
            blo, bhi = sched.block(p)
            ranges = [range(blo, bhi + 1)]
            for lp in nest.loops[1:]:
                ranges.append(range(lp.lower.eval(params), lp.upper.eval(params) + 1))
            for ivec in itertools.product(*ranges):
                yield (0, ivec)

        streams = [proc_stream(p) for p in range(1, nblocks + 1)]
        for _p, (_k, ivec) in _interleave(streams, interleave, rng):
            env = params_env
            for var, val in zip(nest.loop_vars, ivec):
                env[var] = val
            for st in nest.body:
                st.execute(env, arrays)
            executed += 1
        # barrier between nests
    return {"iterations": executed}
