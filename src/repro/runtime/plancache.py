"""Two-level cache of jit-compiled execution plans.

Compiling a fused plan (:mod:`repro.codegen.emitpy`) costs analysis and
``compile()`` time that is pure overhead when the same kernel runs again —
the PyOP2 lesson: generate code per fused parloop once, key it by
structure, amortize across invocations.  This module provides:

* an **in-memory LRU** keyed by the structural plan signature
  (:meth:`~repro.core.execplan.ExecutionPlan.signature`: kernel IR hash +
  params + grid + boxes + strip), so repeated executions inside one
  process reuse the compiled module directly;
* a **persistent on-disk cache** of generated source under a
  version-stamped directory (``$REPRO_JIT_CACHE_DIR`` or
  ``~/.cache/repro/jit``, then ``v<CODEGEN_VERSION>/<signature>.py``), so
  a fresh process skips emission and only pays one ``compile()``.
  Entries embed their signature; corrupt or stale files are discarded and
  regenerated, never trusted;
* a **native tier** for the ``cjit`` backend: the same signatures map to
  compiled shared objects (``<signature>.<compiler-fp>.so`` plus the
  generated ``<signature>.c``) living next to the ``.py`` sources, keyed
  additionally by a compiler fingerprint so a toolchain change
  recompiles instead of re-dlopening a foreign object;
* **program aliases**: a second index keyed by the *program-level*
  signature (kernel IR + params + procs + strip, computable without
  planning) mapping to the per-sequence plan signatures.  A warm alias
  lets ``repro exec`` skip the analysis → derive → fuse → plan pipeline
  entirely, not just compilation.

All cache activity is tallied in :class:`CacheStats` so the CLI can report
hits/misses and the benchmarks can prove the warm path spends (almost) no
time planning or compiling.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ..core.execplan import ExecutionPlan

ENV_CACHE_DIR = "REPRO_JIT_CACHE_DIR"


def _default_root() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "jit"


@dataclass
class CacheStats:
    """Counters for one :class:`PlanCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    alias_hits: int = 0
    alias_misses: int = 0
    quarantined: int = 0
    compile_seconds: float = 0.0
    native_memory_hits: int = 0
    native_disk_hits: int = 0
    native_misses: int = 0
    native_quarantined: int = 0
    native_compile_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "alias_hits": self.alias_hits,
            "alias_misses": self.alias_misses,
            "quarantined": self.quarantined,
            "compile_seconds": round(self.compile_seconds, 6),
            "native_memory_hits": self.native_memory_hits,
            "native_disk_hits": self.native_disk_hits,
            "native_misses": self.native_misses,
            "native_quarantined": self.native_quarantined,
            "native_compile_seconds": round(self.native_compile_seconds, 6),
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(**{
            f.name: getattr(self, f.name) for f in _STATS_FIELDS
        })

    def delta(self, before: "CacheStats") -> dict:
        out = {}
        for f in _STATS_FIELDS:
            value = getattr(self, f.name) - getattr(before, f.name)
            out[f.name] = round(value, 6) if f.type == "float" else value
        return out


_STATS_FIELDS = [f for f in CacheStats.__dataclass_fields__.values()]


@dataclass
class PlanCache:
    """Memory LRU over a persistent source directory (either level optional).

    ``memory_slots`` bounds the LRU; ``persist=False`` turns the instance
    into a pure in-memory cache (used by tests and by ``--no-cache``
    diagnostics).
    """

    root: Optional[Path] = None
    memory_slots: int = 128
    persist: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root) if self.root is not None else _default_root()
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._native: OrderedDict[str, object] = OrderedDict()

    # -- paths -------------------------------------------------------------

    @property
    def version_dir(self) -> Path:
        from ..codegen.emitpy import CODEGEN_VERSION

        return self.root / f"v{CODEGEN_VERSION}"

    def source_path(self, signature: str) -> Path:
        return self.version_dir / f"{signature}.py"

    def c_source_path(self, signature: str) -> Path:
        """The generated C translation unit (kept for post-mortem)."""
        return self.version_dir / f"{signature}.c"

    def native_path(self, signature: str, fingerprint: str) -> Path:
        """The compiled shared object, keyed by plan signature *plus*
        compiler fingerprint: a compiler change recompiles rather than
        re-dlopening an object built by a different toolchain."""
        return self.version_dir / f"{signature}.{fingerprint}.so"

    def _native_candidates(self, signature: str) -> list[Path]:
        """Every ``.so`` on disk for ``signature`` (any compiler)."""
        return sorted(self.version_dir.glob(f"{signature}.*.so"))

    def alias_path(self, key: str) -> Path:
        return self.version_dir / "aliases" / f"{key}.json"

    @property
    def tuner_dir(self) -> Path:
        """Where the measured-cost auto-tuner persists its winners
        (:mod:`repro.runtime.autotune`) — next to the compiled plans, so
        one environment variable relocates/isolates both stores."""
        return self.version_dir / "autotune"

    # -- the two levels ----------------------------------------------------

    def _remember(self, module) -> None:
        self._memory[module.signature] = module
        self._memory.move_to_end(module.signature)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    @staticmethod
    def _quarantine_file(path: Path, keep_suffix: bool = False) -> None:
        """Rename ``path`` out of trust: ``<entry>.bad`` for ``.py``
        sources (the established convention), suffix-appending
        (``….so.bad``/``….c.bad``) for native siblings so the names can
        never collide with the source's quarantine."""
        bad = (path.with_suffix(path.suffix + ".bad") if keep_suffix
               else path.with_suffix(".bad"))
        try:
            os.replace(path, bad)
        except OSError:
            try:  # quarantine failed: drop the entry outright
                path.unlink()
            except OSError:
                pass

    def _quarantine_native(self, signature: str) -> None:
        """Quarantine every native sibling of ``signature``.

        Called when the ``.py`` source for a signature turns out corrupt
        or stale: whatever produced that state (truncated write, chaos
        fault, bit rot) cannot be assumed to have spared the compiled
        objects, and a corrupt shared library must never be re-dlopened
        — ``dlopen`` happily maps garbage that only fails (or crashes)
        at call time."""
        self._native.pop(signature, None)
        for path in self._native_candidates(signature):
            self.stats.native_quarantined += 1
            self._quarantine_file(path, keep_suffix=True)
        c_path = self.c_source_path(signature)
        if c_path.exists():
            self._quarantine_file(c_path, keep_suffix=True)

    def _load_disk(self, signature: str):
        """Load one on-disk entry; corrupt/stale files are quarantined.

        A module that no longer compiles (truncated write, bit rot, a
        chaos ``cache_corrupt`` fault) is renamed to ``<entry>.bad`` —
        kept for post-mortem, never trusted again — and reported as a
        miss, so the caller recompiles from the plan instead of raising
        on a warm load.  Its native siblings (``.so``/``.c``) are
        quarantined with it.  The next :meth:`get` overwrites the
        ``.py`` entry with a fresh one."""
        from ..codegen.emitpy import JitCompileError, compile_source

        if not self.persist:
            return None
        path = self.source_path(signature)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return compile_source(source, expected_signature=signature)
        except JitCompileError:
            self.stats.quarantined += 1
            self._quarantine_file(path)
            self._quarantine_native(signature)
            return None

    def _store_disk(self, module) -> None:
        if not self.persist:
            return
        path = self.source_path(module.signature)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(module.source, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass  # a read-only cache directory only costs speed

    def peek(self, signature: str):
        """Memory → disk lookup without compiling anything new."""
        module = self._memory.get(signature)
        if module is not None:
            self._memory.move_to_end(signature)
            self.stats.memory_hits += 1
            return module
        module = self._load_disk(signature)
        if module is not None:
            self.stats.disk_hits += 1
            self._remember(module)
        return module

    def get(self, exec_plan: ExecutionPlan, strip: Optional[int] = None):
        """The main entry: cached module for ``exec_plan``, compiling (and
        persisting) it on a miss."""
        from ..codegen.emitpy import compile_source, emit_plan_source

        signature = exec_plan.signature(strip=strip)
        module = self.peek(signature)
        if module is not None:
            return module
        self.stats.misses += 1
        t0 = time.perf_counter()
        source = emit_plan_source(exec_plan, strip=strip)
        module = compile_source(source, expected_signature=signature)
        self.stats.compile_seconds += time.perf_counter() - t0
        self._store_disk(module)
        self._remember(module)
        return module

    # -- the native (cjit) tier --------------------------------------------

    def _remember_native(self, module) -> None:
        self._native[module.signature] = module
        self._native.move_to_end(module.signature)
        while len(self._native) > self.memory_slots:
            self._native.popitem(last=False)
            self.stats.evictions += 1

    def peek_native(self, signature: str,
                    fingerprint: Optional[str] = None):
        """Memory → disk ``.so`` lookup without compiling anything.

        With ``fingerprint`` only the exactly-keyed object is considered
        (the compiling caller's view: a compiler change is a miss);
        without it any valid object for the signature is accepted (the
        pool worker's view: workers only execute, and every object for a
        signature is bit-identical by construction).  Corrupt or stale
        objects are quarantined, never re-dlopened.
        """
        module = self._native.get(signature)
        if module is not None:
            self._native.move_to_end(signature)
            self.stats.native_memory_hits += 1
            return module
        if not self.persist:
            return None
        from ..codegen.emitc import CJitCompileError, load_native

        if fingerprint is not None:
            candidates = [self.native_path(signature, fingerprint)]
        else:
            candidates = self._native_candidates(signature)
        for path in candidates:
            if not path.exists():
                continue
            try:
                module = load_native(path, expected_signature=signature)
            except CJitCompileError:
                self.stats.native_quarantined += 1
                self._quarantine_file(path, keep_suffix=True)
                continue
            self.stats.native_disk_hits += 1
            self._remember_native(module)
            return module
        return None

    def get_native(self, exec_plan: ExecutionPlan,
                   strip: Optional[int] = None):
        """Cached native module for ``exec_plan``, compiling on a miss.

        Returns ``(module, reason)``: ``(CJitModule, None)`` on success,
        ``(None, why)`` when there is no compiler or compilation failed —
        the ``cjit`` backend turns the latter into a counted fallback to
        ``jit``, never an error.
        """
        from ..codegen import emitc

        compiler = emitc.find_compiler()
        if compiler is None:
            return None, "no C compiler found (set $REPRO_CC or install cc)"
        fingerprint = emitc.compiler_fingerprint(compiler)
        signature = exec_plan.signature(strip=strip)
        module = self.peek_native(signature, fingerprint=fingerprint)
        if module is not None:
            return module, None
        self.stats.native_misses += 1
        t0 = time.perf_counter()
        try:
            if not self.persist:
                module = emitc.compile_plan_native(exec_plan, strip=strip,
                                                   compiler=compiler)
            else:
                source = emitc.emit_plan_c_source(exec_plan, strip=strip)
                so_path = self.native_path(signature, fingerprint)
                emitc.compile_c(source, so_path, compiler=compiler,
                                c_path=self.c_source_path(signature))
                module = emitc.load_native(so_path,
                                           expected_signature=signature,
                                           source=source)
        except emitc.CJitError as exc:
            return None, str(exc)
        except OSError as exc:  # read-only cache directory and kin
            return None, f"native cache unwritable: {exc}"
        self.stats.native_compile_seconds += time.perf_counter() - t0
        self._remember_native(module)
        return module, None

    # -- program aliases ---------------------------------------------------

    def lookup_alias(self, key: str):
        """All modules for a program-level key, or None when any is missing."""
        path = self.alias_path(key)
        try:
            signatures = json.loads(path.read_text(encoding="utf-8"))
            assert isinstance(signatures, list)
        except (OSError, ValueError, AssertionError):
            self.stats.alias_misses += 1
            return None
        modules = [self.peek(sig) for sig in signatures]
        if any(module is None for module in modules):
            self.stats.alias_misses += 1
            return None
        self.stats.alias_hits += 1
        return modules

    def link_alias(self, key: str, signatures: Sequence[str]) -> None:
        if not self.persist:
            return
        path = self.alias_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(list(signatures)), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass

    def clear_memory(self) -> None:
        self._memory.clear()
        self._native.clear()


def program_signature(program, params: Mapping[str, int], procs: int,
                      strip: Optional[int] = None) -> str:
    """Structural key of (program IR, params, procs, strip) — everything
    :func:`~repro.runtime.benchmarking.prepare_kernel` needs to produce a
    deterministic set of execution plans, hashable *without* running the
    planning pipeline.  Mutating any kernel body changes it."""
    import hashlib

    from ..codegen.emitpy import CODEGEN_VERSION

    digest = hashlib.sha256()

    def feed(text: str) -> None:
        digest.update(text.encode())
        digest.update(b"\x1f")

    feed(f"repro-program-signature-v1 codegen-v{CODEGEN_VERSION}")
    for s, seq in enumerate(program.sequences):
        feed(f"sequence {s} depth {seq.fusable_depth()}")
        for nest in seq:
            for lp in nest.loops:
                feed(f"loop {lp.var} {lp.lower} {lp.upper} {int(lp.parallel)}")
            for st in nest.body:
                feed(f"stmt {st}")
    for name, value in sorted(params.items()):
        feed(f"param {name}={value}")
    feed(f"procs {procs}")
    feed(f"strip {strip}")
    return digest.hexdigest()


_default_cache: Optional[PlanCache] = None


def default_cache() -> PlanCache:
    """The process-wide cache (created on first use, honouring
    ``$REPRO_JIT_CACHE_DIR`` at creation time)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = PlanCache()
    return _default_cache


def reset_default_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the env var."""
    global _default_cache
    _default_cache = None
