"""Reference interpreter: the correctness oracle.

Executes programs directly from the IR, nest after nest, iteration after
iteration in lexicographic order — the original (unfused) semantics every
transformation must preserve.  A compiled variant translates bodies to
Python source once and ``exec``s them, trading a little startup for a
large per-iteration speedup (used by the larger randomized tests).
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Sequence

import numpy as np

from ..ir.expr import Affine
from ..ir.loop import LoopNest
from ..ir.sequence import LoopSequence, Program
from ..ir.stmt import Assign, BinOp, Const, Expr, Load, UnaryOp


def run_nest(
    nest: LoopNest,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
) -> None:
    """Execute one nest in lexicographic order."""
    env = dict(params)
    for ivec in nest.iteration_space(params):
        for var, val in zip(nest.loop_vars, ivec):
            env[var] = val
        for st in nest.body:
            st.execute(env, arrays)


def run_sequence_serial(
    seq: LoopSequence,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
) -> None:
    """Original semantics: every nest completes before the next starts."""
    for nest in seq:
        run_nest(nest, params, arrays)


def run_program(
    program: Program,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
) -> None:
    """Execute every sequence of a program with original semantics."""
    for seq in program.sequences:
        run_sequence_serial(seq, params, arrays)


# ---------------------------------------------------------------------------
# Compiled execution: translate bodies to Python once, then exec.
# ---------------------------------------------------------------------------


def _affine_src(expr: Affine) -> str:
    parts: list[str] = []
    for v, c in expr.coeffs:
        if c == 1:
            parts.append(v)
        elif c == -1:
            parts.append(f"-{v}")
        else:
            parts.append(f"{c}*{v}")
    src = "+".join(parts).replace("+-", "-")
    if expr.const or not src:
        if src:
            src += f"+{expr.const}" if expr.const >= 0 else f"{expr.const}"
        else:
            src = str(expr.const)
    return src


def _expr_src(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Load):
        subs = ",".join(_affine_src(s) for s in expr.ref.subscripts)
        return f"A_{expr.ref.array}[{subs}]"
    if isinstance(expr, BinOp):
        return f"({_expr_src(expr.left)}{expr.op}{_expr_src(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"(-{_expr_src(expr.operand)})"
    raise TypeError(f"cannot compile {expr!r}")


def _stmt_src(st: Assign) -> str:
    subs = ",".join(_affine_src(s) for s in st.target.subscripts)
    return f"A_{st.target.array}[{subs}] = {_expr_src(st.rhs)}"


def compile_nest(nest: LoopNest, params: Sequence[str]) -> "CompiledNest":
    """Compile a nest into a Python function of (params..., arrays)."""
    lines = ["def __kernel__(params, arrays):"]
    for p in params:
        lines.append(f"    {p} = params[{p!r}]")
    for name in sorted(nest.arrays()):
        lines.append(f"    A_{name} = arrays[{name!r}]")
    indent = "    "
    for lp in nest.loops:
        lines.append(
            f"{indent}for {lp.var} in range({_affine_src(lp.lower)}, "
            f"{_affine_src(lp.upper)}+1):"
        )
        indent += "    "
    for st in nest.body:
        lines.append(f"{indent}{_stmt_src(st)}")
    src = "\n".join(lines)
    namespace: dict = {}
    exec(src, namespace)  # noqa: S102 - generated from our own IR
    return CompiledNest(namespace["__kernel__"], src)


class CompiledNest:
    """A nest compiled to a Python closure, retaining the source for
    inspection and debugging."""

    def __init__(self, fn, source: str):
        self._fn = fn
        self.source = source

    def __call__(
        self, params: Mapping[str, int], arrays: MutableMapping[str, np.ndarray]
    ) -> None:
        self._fn(dict(params), arrays)


def run_sequence_compiled(
    seq: LoopSequence,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
    param_names: Sequence[str] | None = None,
) -> None:
    """Compiled-path equivalent of :func:`run_sequence_serial`."""
    names = tuple(param_names) if param_names is not None else tuple(params)
    for nest in seq:
        compile_nest(nest, names)(params, arrays)
