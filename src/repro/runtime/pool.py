"""Persistent worker pool executing jit-compiled plans in parallel (mpjit).

The paper's execution model (Figs. 12/13) is SPMD: every processor runs
its *fused* boxes, hits one barrier, then runs its *peeled* boxes.  After
PR 1/PR 2 the two fast paths were split — ``jit`` ran compiled code
serially and ``mp`` ran real processes through the slow uncompiled per-box
interpreter.  This module closes the gap:

* a :class:`WorkerPool` of long-lived OS processes is spawned **once**
  (fork/spawn cost amortized across runs, exactly like the plan cache
  amortizes compilation) and reused by every subsequent ``mpjit``
  execution of the same worker count;
* each worker keeps an in-memory dict of compiled
  :class:`~repro.codegen.emitpy.JitModule` objects keyed by plan
  signature.  A warm worker recompiles nothing.  A cold worker loads the
  *generated source* from the on-disk plan cache by signature (the parent
  already emitted and persisted it) and pays one ``compile()`` — never an
  emission; the task carries the source inline as a last-resort fallback
  for non-persistent caches;
* one run is the paper's two-phase schedule: every worker calls
  ``run_fused(proc, arrays)`` for its assigned processors over
  ``multiprocessing.shared_memory``, synchronizes, then calls
  ``run_peeled(proc, arrays)``.  The synchronization is point-to-point
  by default (``sync="p2p"``): each processor signals a preallocated
  "fused done" event as its fused phase completes, and each peeled
  phase waits only on the events of its named predecessors — the
  module's ``PEEL_DEPS`` map, derived by
  :func:`repro.core.syncdeps.peel_predecessors` — instead of on the
  slowest peer.  ``sync="barrier"`` keeps the paper's single global
  barrier (also the automatic fallback for plans with more processors
  than preallocated event slots).

Failure semantics match :func:`repro.runtime.fastexec.run_mp`: the parent
polls the result queue with liveness checks, aborts the sync (barrier
*and* p2p abort event) on the first casualty, and raises
:class:`~repro.runtime.fastexec.FastExecError` carrying the worker
traceback.  A failed run poisons the pool, so it is torn down and the
next run transparently spawns a fresh one.
"""

from __future__ import annotations

import atexit
import time
from typing import Mapping, MutableMapping, Optional, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan
from .fastexec import (
    FastExecError,
    P2PSync,
    SyncAborted,
    _resolve_workers,
    attach_arrays,
    collect_worker_results,
    copy_back_arrays,
    export_arrays,
    release_segments,
    sync_timeout,
)

#: Fused-done events preallocated per pool.  Multiprocessing sync
#: primitives travel only through ``Process`` args at spawn time (never
#: through queues), so the pool must allocate its event table up front;
#: plans with more processors than slots silently fall back to the
#: global barrier for that run (visible as ``last_sync`` in
#: :func:`pool_stats`).
P2P_EVENT_SLOTS = 128

#: Test-only failure injection: when set (before the pool is spawned, so
#: fork inheritance carries it into the workers), every worker calls it
#: with ``(worker_id, signature)`` ahead of the fused phase.  Production
#: code never sets it.
_test_worker_hook = None


def _load_module(modules: dict, signature: str, cache_root: Optional[str],
                 source: str):
    """Resolve a compiled module inside a worker.

    Memory first (warm worker: nothing to do), then the on-disk plan
    cache by signature (cold worker: one ``compile()``, no emission),
    then the inline source shipped with the task (non-persistent cache).
    Returns ``(module, 'memory'|'disk'|'inline')``.
    """
    module = modules.get(signature)
    if module is not None:
        return module, "memory"
    mode = "inline"
    if cache_root:
        from .plancache import PlanCache

        module = PlanCache(root=cache_root).peek(signature)
        if module is not None:
            mode = "disk"
    if module is None:
        from ..codegen.emitpy import compile_source

        module = compile_source(source, expected_signature=signature)
    modules[signature] = module
    return module, mode


def _pool_worker(worker_id: int, task_queue, result_queue, barrier,
                 p2p: P2PSync) -> None:
    """One long-lived worker: loop over tasks until the ``None`` sentinel.

    Each task executes one plan's two-phase schedule for this worker's
    assigned processors, synchronizing through the global barrier or
    point-to-point per the task's sync mode.  Errors are shipped to the
    parent as formatted tracebacks; a failure releases the peers by
    aborting both primitives (whichever the peers are parked on).
    """
    import threading
    import traceback

    modules: dict = {}
    while True:
        task = task_queue.get()
        if task is None:
            break
        signature, cache_root, source, specs, proc_indices, sync_mode = task
        segments: list = []
        arrays: dict[str, np.ndarray] = {}
        try:
            try:
                module, load_mode = _load_module(
                    modules, signature, cache_root, source
                )
                arrays = attach_arrays(specs, segments)
                if _test_worker_hook is not None:
                    _test_worker_hook(worker_id, signature)
                fused = 0
                if sync_mode == "p2p":
                    for proc in proc_indices:
                        fused += module.run_fused(proc, arrays)
                        p2p.signal_fused_done(proc)
                    deps = module.peel_deps
                    peeled = 0
                    for proc in proc_indices:
                        p2p.wait_for(deps[proc])
                        peeled += module.run_peeled(proc, arrays)
                else:
                    for proc in proc_indices:
                        fused += module.run_fused(proc, arrays)
                    barrier.wait(timeout=sync_timeout())
                    peeled = 0
                    for proc in proc_indices:
                        peeled += module.run_peeled(proc, arrays)
                result_queue.put(
                    (worker_id, True, (fused, peeled, load_mode))
                )
            except threading.BrokenBarrierError:
                result_queue.put((worker_id, False,
                                  "barrier broken or aborted (a peer "
                                  "failed first)"))
            except SyncAborted as exc:
                result_queue.put((worker_id, False,
                                  f"p2p sync aborted ({exc})"))
            except BaseException:
                result_queue.put((worker_id, False, traceback.format_exc()))
                barrier.abort()
                p2p.abort()
        finally:
            del arrays
            for seg in segments:
                seg.close()


class WorkerPool:
    """A fixed-size pool of persistent mpjit workers.

    The barrier is created with ``parties == nworkers`` and reused across
    runs (it resets after all parties pass); every run must therefore use
    every worker, which :func:`run_mpjit_module` guarantees by clamping
    the worker count to the processor count.  The p2p event table
    (:data:`P2P_EVENT_SLOTS` fused-done events plus one abort event) is
    preallocated at spawn time — sync primitives cannot travel through
    the task queues — and indexed by *processor*, so it is reused across
    runs of any plan that fits; the parent clears the used slots before
    each p2p dispatch (runs are strictly serialized, every worker has
    reported before the next dispatch).
    """

    def __init__(self, nworkers: int) -> None:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        t0 = time.perf_counter()
        self.nworkers = nworkers
        self.barrier = ctx.Barrier(nworkers)
        self.p2p = P2PSync([ctx.Event() for _ in range(P2P_EVENT_SLOTS)],
                           ctx.Event())
        self.result_queue = ctx.Queue()
        self.task_queues = [ctx.Queue() for _ in range(nworkers)]
        self.workers = {
            w: ctx.Process(
                target=_pool_worker,
                args=(w, self.task_queues[w], self.result_queue,
                      self.barrier, self.p2p),
                daemon=True,
            )
            for w in range(nworkers)
        }
        for proc in self.workers.values():
            proc.start()
        self.spawn_seconds = time.perf_counter() - t0
        self.runs = 0
        self.broken = False
        self.closed = False
        self.last_load_modes: tuple[str, ...] = ()
        self.last_sync: Optional[str] = None
        self._dirty_events = 0

    def healthy(self) -> bool:
        return not self.broken and all(
            proc.is_alive() for proc in self.workers.values()
        )

    def abort(self) -> None:
        """Release every waiter, whichever primitive it is parked on
        (:func:`collect_worker_results` calls this on the first
        casualty)."""
        self.barrier.abort()
        self.p2p.abort()

    def run_module(self, module, assignment: Sequence[Sequence[int]],
                   specs: Mapping[str, tuple],
                   cache_root: Optional[str],
                   sync: str = "p2p") -> tuple[int, int]:
        """Submit one two-phase execution; returns (fused, peeled) totals.

        Any worker failure marks the pool broken (the shared sync
        primitives are aborted and cannot be reused) and re-raises
        promptly.
        """
        assert len(assignment) == self.nworkers
        if sync == "p2p" and module.nprocs > len(self.p2p.events):
            sync = "barrier"  # more processors than preallocated slots
        if sync == "p2p":
            for ev in self.p2p.events[:self._dirty_events]:
                ev.clear()
            self._dirty_events = module.nprocs
        self.runs += 1
        self.last_sync = sync
        for w, procs in enumerate(assignment):
            self.task_queues[w].put(
                (module.signature, cache_root, module.source, specs,
                 tuple(procs), sync)
            )
        try:
            results = collect_worker_results(
                self.result_queue, self.workers, self, "mpjit"
            )
        except FastExecError:
            self.broken = True
            raise
        self.last_load_modes = tuple(
            results[w][2] for w in sorted(results)
        )
        fused = sum(r[0] for r in results.values())
        peeled = sum(r[1] for r in results.values())
        return fused, peeled

    def shutdown(self) -> None:
        """Stop every worker (sentinel, then terminate stragglers).

        Idempotent: a second call returns immediately, so a daemon's
        SIGTERM drain path and the interpreter's atexit hook can both
        call it without double-closing queues or re-terminating
        already-reaped processes.
        """
        if self.closed:
            return
        self.closed = True
        for q in self.task_queues:
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        deadline = time.monotonic() + 5.0
        for proc in self.workers.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self.workers.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.workers.values():
            proc.join(timeout=5)
        for q in [self.result_queue, *self.task_queues]:
            try:
                q.close()
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        self.broken = True

    #: Explicit alias for daemon shutdown paths: ``pool.close()`` reads
    #: naturally next to file/socket teardown and is equally idempotent.
    close = shutdown


_pool: Optional[WorkerPool] = None
_spawns = 0


def get_pool(nworkers: int) -> WorkerPool:
    """The process-wide pool, (re)spawned when absent, resized or broken."""
    global _pool, _spawns
    if _pool is not None and (
        _pool.nworkers != nworkers or not _pool.healthy()
    ):
        shutdown_pool()
    if _pool is None:
        _pool = WorkerPool(nworkers)
        _spawns += 1
    return _pool


def shutdown_pool() -> None:
    """Tear down the process-wide pool (no-op when there is none)."""
    global _pool
    if _pool is not None:
        _pool.shutdown()
        _pool = None


atexit.register(shutdown_pool)


def pool_stats() -> dict:
    """Observability for benchmarks and the CLI: spawn cost vs reuse."""
    if _pool is None:
        return {"alive": False, "spawns": _spawns, "nworkers": 0,
                "runs": 0, "spawn_seconds": 0.0, "last_sync": None}
    return {
        "alive": _pool.healthy(),
        "spawns": _spawns,
        "nworkers": _pool.nworkers,
        "runs": _pool.runs,
        "spawn_seconds": round(_pool.spawn_seconds, 6),
        "last_load_modes": list(_pool.last_load_modes),
        "last_sync": _pool.last_sync,
        "p2p_slots": P2P_EVENT_SLOTS,
    }


def run_mpjit_module(
    module,
    arrays: MutableMapping[str, np.ndarray],
    max_workers: Optional[int] = None,
    cache_root: Optional[str] = None,
    sync: str = "p2p",
) -> dict[str, int]:
    """Execute a compiled :class:`JitModule` through the worker pool.

    ``sync="p2p"`` (default) synchronizes the phases point-to-point via
    the module's ``PEEL_DEPS`` map; ``sync="barrier"`` uses the global
    barrier.  The processors are dealt round-robin across
    ``min(nprocs, cores)`` workers (``max_workers`` overrides the core
    count).  With one worker the pool is bypassed entirely — the module
    runs serially in-process, which is bit-identical by construction."""
    if sync not in ("p2p", "barrier"):
        raise FastExecError(f"unknown sync mode {sync!r}")
    nprocs = module.nprocs
    nworkers = _resolve_workers(nprocs, max_workers)
    if nworkers == 1:
        return module.run(arrays)
    segments: dict = {}
    try:
        segments, specs = export_arrays(arrays)
        assignment = [
            tuple(range(w, nprocs, nworkers)) for w in range(nworkers)
        ]
        pool = get_pool(nworkers)
        fused, peeled = pool.run_module(
            module, assignment, specs, cache_root, sync=sync
        )
        copy_back_arrays(arrays, segments)
        return {"fused_iterations": fused, "peeled_iterations": peeled}
    except FastExecError:
        # The shared sync primitives are aborted; drop the poisoned pool
        # so the next run starts from a clean slate.
        shutdown_pool()
        raise
    finally:
        release_segments(segments)


def run_mpjit(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int] = None,
    max_workers: Optional[int] = None,
    no_cache: bool = False,
    cache=None,
    sync: str = "p2p",
) -> dict[str, int]:
    """The ``mpjit`` backend: compiled code, real parallel processes.

    Compiles (or fetches from the plan cache) the jit module for
    ``exec_plan`` exactly like the ``jit`` backend, persists its source so
    cold workers can load it by signature, then executes the paper's
    two-phase schedule on the persistent pool."""
    if no_cache:
        from ..codegen.emitpy import compile_plan

        module = compile_plan(exec_plan, strip=strip)
        cache_root = None
    else:
        if cache is None:
            from .plancache import default_cache

            cache = default_cache()
        module = cache.get(exec_plan, strip=strip)
        cache_root = str(cache.root) if cache.persist else None
    return run_mpjit_module(module, arrays, max_workers=max_workers,
                            cache_root=cache_root, sync=sync)
