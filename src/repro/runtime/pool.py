"""Persistent worker pool executing jit-compiled plans in parallel (mpjit).

The paper's execution model (Figs. 12/13) is SPMD: every processor runs
its *fused* boxes, hits one barrier, then runs its *peeled* boxes.  After
PR 1/PR 2 the two fast paths were split — ``jit`` ran compiled code
serially and ``mp`` ran real processes through the slow uncompiled per-box
interpreter.  This module closes the gap:

* a :class:`WorkerPool` of long-lived OS processes is spawned **once**
  (fork/spawn cost amortized across runs, exactly like the plan cache
  amortizes compilation) and reused by every subsequent ``mpjit``
  execution of the same worker count;
* each worker keeps an in-memory dict of compiled
  :class:`~repro.codegen.emitpy.JitModule` objects keyed by plan
  signature.  A warm worker recompiles nothing.  A cold worker loads the
  *generated source* from the on-disk plan cache by signature (the parent
  already emitted and persisted it) and pays one ``compile()`` — never an
  emission; the task carries the source inline as a last-resort fallback
  for non-persistent caches;
* one run is the paper's two-phase schedule: every worker calls
  ``run_fused(proc, arrays)`` for its assigned processors over
  ``multiprocessing.shared_memory``, synchronizes, then calls
  ``run_peeled(proc, arrays)``.  The synchronization is point-to-point
  by default (``sync="p2p"``): each processor signals a preallocated
  "fused done" event as its fused phase completes, and each peeled
  phase waits only on the events of its named predecessors — the
  module's ``PEEL_DEPS`` map, derived by
  :func:`repro.core.syncdeps.peel_predecessors` — instead of on the
  slowest peer.  ``sync="barrier"`` keeps the paper's single global
  barrier (also the automatic fallback for plans with more processors
  than preallocated event slots).

Failure semantics match :func:`repro.runtime.fastexec.run_mp`: the parent
polls the result queue with liveness checks, aborts the sync (barrier
*and* p2p abort event) on the first casualty, and raises a
:class:`~repro.runtime.supervisor.ExecError` (a
:class:`~repro.runtime.fastexec.FastExecError` carrying a classified
:class:`~repro.runtime.supervisor.ExecFailure`) with the worker
traceback.  A failed run poisons the pool; the
:class:`~repro.runtime.supervisor.PoolSupervisor` then repairs it in the
background — in place after a p2p failure (only the corpses are
re-forked, warm survivors keep their compiled modules), full respawn
after a barrier failure — so the caller's retry finds a healthy pool
without paying the spawn cost synchronously.

Deterministic fault injection (:mod:`repro.runtime.faults`) rides the
task tuple: the parent asks the active :class:`FaultPlan` for this
run's directives and ships them to the targeted workers, which crash /
sleep / withhold fused-done signals on command.  Production dispatch
with no active plan pays one ``None`` comparison.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from typing import Mapping, MutableMapping, Optional, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan
from .fastexec import (
    FastExecError,
    P2PSync,
    SyncAborted,
    _resolve_workers,
    attach_arrays,
    collect_worker_results,
    copy_back_arrays,
    export_arrays,
    release_segments,
    sync_timeout,
)

#: Fused-done events preallocated per pool.  Multiprocessing sync
#: primitives travel only through ``Process`` args at spawn time (never
#: through queues), so the pool must allocate its event table up front;
#: plans with more processors than slots silently fall back to the
#: global barrier for that run (visible as ``last_sync`` in
#: :func:`pool_stats`).
P2P_EVENT_SLOTS = 128

#: Test-only failure injection: when set (before the pool is spawned, so
#: fork inheritance carries it into the workers), every worker calls it
#: with ``(worker_id, signature)`` ahead of the fused phase.  Production
#: code never sets it; chaos plans use the task-tuple directive channel
#: instead (no fork-inheritance requirement).
_test_worker_hook = None

#: First element of a control task (settle ack during in-place respawn);
#: never a valid plan signature.
_CONTROL = "__control__"


def _drain_queue(queue, seconds: float = 0.1) -> None:
    """Discard queued items until ``queue`` stays empty for ``seconds``
    (an mp queue's feeder thread can surface items a beat late)."""
    from queue import Empty

    deadline = time.monotonic() + seconds
    while True:
        try:
            queue.get(timeout=0.02)
        except (Empty, OSError, ValueError):
            if time.monotonic() >= deadline:
                return


def _apply_worker_fault(fault: Optional[dict]) -> None:
    """Crash or slow a worker per its injected directive (pre-fused)."""
    if fault is None:
        return
    action = fault.get("action")
    if action == "crash":
        os._exit(int(fault.get("exitcode", 97)))
    elif action == "slow":
        time.sleep(float(fault.get("seconds") or 0.05))


def _load_module(modules: dict, signature: str, cache_root: Optional[str],
                 source: str):
    """Resolve a compiled module inside a worker.

    Memory first (warm worker: nothing to do), then the on-disk plan
    cache by signature — a compiled native ``.so`` before the ``.py``
    source (one ``dlopen`` beats one ``compile()``, and every object
    for a signature is bit-identical by construction; workers never
    *compile* C, they only load what the parent cached) — then the
    inline source shipped with the task (non-persistent cache).
    Returns ``(module, 'memory'|'native'|'disk'|'inline')``.
    """
    module = modules.get(signature)
    if module is not None:
        return module, "memory"
    mode = "inline"
    if cache_root:
        from .plancache import PlanCache

        cache = PlanCache(root=cache_root)
        module = cache.peek_native(signature)
        if module is not None:
            mode = "native"
        else:
            module = cache.peek(signature)
            if module is not None:
                mode = "disk"
    if module is None:
        from ..codegen.emitpy import compile_source

        module = compile_source(source, expected_signature=signature)
    modules[signature] = module
    return module, mode


def _pool_worker(worker_id: int, task_queue, result_queue, barrier,
                 p2p: P2PSync) -> None:
    """One long-lived worker: loop over tasks until the ``None`` sentinel.

    Each task executes one plan's two-phase schedule for this worker's
    assigned processors, synchronizing through the global barrier or
    point-to-point per the task's sync mode.  Errors are shipped to the
    parent as formatted tracebacks; a failure releases the peers by
    aborting both primitives (whichever the peers are parked on).
    """
    import threading
    import traceback

    modules: dict = {}
    while True:
        task = task_queue.get()
        if task is None:
            break
        if task[0] == _CONTROL:
            # settle ack: by construction the worker is idle when it
            # answers (tasks are consumed in queue order)
            result_queue.put((worker_id, True, (_CONTROL, task[1])))
            continue
        (signature, cache_root, source, specs, proc_indices, sync_mode,
         fault) = task
        segments: list = []
        arrays: dict[str, np.ndarray] = {}
        try:
            try:
                module, load_mode = _load_module(
                    modules, signature, cache_root, source
                )
                arrays = attach_arrays(specs, segments)
                if _test_worker_hook is not None:
                    _test_worker_hook(worker_id, signature)
                _apply_worker_fault(fault)
                stall = (fault if fault is not None
                         and fault.get("action") == "stall" else None)
                fused = 0
                if sync_mode == "p2p":
                    for proc in proc_indices:
                        fused += module.run_fused(proc, arrays)
                        if stall is not None and (
                            stall.get("proc") is None
                            or stall.get("proc") == proc
                        ):
                            seconds = stall.get("seconds")
                            if seconds is None:
                                continue  # withhold the signal outright
                            time.sleep(float(seconds))
                        p2p.signal_fused_done(proc)
                    deps = module.peel_deps
                    peeled = 0
                    for proc in proc_indices:
                        p2p.wait_for(deps[proc])
                        peeled += module.run_peeled(proc, arrays)
                else:
                    for proc in proc_indices:
                        fused += module.run_fused(proc, arrays)
                    if stall is not None:
                        time.sleep(float(stall.get("seconds")
                                         or sync_timeout() + 1.0))
                    barrier.wait(timeout=sync_timeout())
                    peeled = 0
                    for proc in proc_indices:
                        peeled += module.run_peeled(proc, arrays)
                result_queue.put(
                    (worker_id, True, (fused, peeled, load_mode))
                )
            except threading.BrokenBarrierError:
                result_queue.put((worker_id, False,
                                  "barrier broken or aborted (a peer "
                                  "failed first)"))
            except SyncAborted as exc:
                result_queue.put((worker_id, False,
                                  f"p2p sync aborted ({exc})"))
            except BaseException:
                result_queue.put((worker_id, False, traceback.format_exc()))
                barrier.abort()
                p2p.abort()
        finally:
            del arrays
            for seg in segments:
                seg.close()


class WorkerPool:
    """A fixed-size pool of persistent mpjit workers.

    The barrier is created with ``parties == nworkers`` and reused across
    runs (it resets after all parties pass); every run must therefore use
    every worker, which :func:`run_mpjit_module` guarantees by clamping
    the worker count to the processor count.  The p2p event table
    (:data:`P2P_EVENT_SLOTS` fused-done events plus one abort event) is
    preallocated at spawn time — sync primitives cannot travel through
    the task queues — and indexed by *processor*, so it is reused across
    runs of any plan that fits; the parent clears the used slots before
    each p2p dispatch (runs are strictly serialized, every worker has
    reported before the next dispatch).
    """

    def __init__(self, nworkers: int) -> None:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        t0 = time.perf_counter()
        self.nworkers = nworkers
        self.barrier = ctx.Barrier(nworkers)
        self.p2p = P2PSync([ctx.Event() for _ in range(P2P_EVENT_SLOTS)],
                           ctx.Event())
        self.result_queue = ctx.Queue()
        self.task_queues = [ctx.Queue() for _ in range(nworkers)]
        self.workers = {
            w: ctx.Process(
                target=_pool_worker,
                args=(w, self.task_queues[w], self.result_queue,
                      self.barrier, self.p2p),
                daemon=True,
            )
            for w in range(nworkers)
        }
        for proc in self.workers.values():
            proc.start()
        self.spawn_seconds = time.perf_counter() - t0
        self.runs = 0
        self.broken = False
        self.closed = False
        self.last_load_modes: tuple[str, ...] = ()
        self.last_sync: Optional[str] = None
        self._dirty_events = 0
        self._control_token = 0

    def healthy(self) -> bool:
        return not self.broken and all(
            proc.is_alive() for proc in self.workers.values()
        )

    def abort(self) -> None:
        """Release every waiter, whichever primitive it is parked on
        (:func:`collect_worker_results` calls this on the first
        casualty)."""
        self.barrier.abort()
        self.p2p.abort()

    def run_module(self, module, assignment: Sequence[Sequence[int]],
                   specs: Mapping[str, tuple],
                   cache_root: Optional[str],
                   sync: str = "p2p") -> tuple[int, int]:
        """Submit one two-phase execution; returns (fused, peeled) totals.

        Any worker failure marks the pool broken (the shared sync
        primitives are aborted and cannot be reused) and re-raises
        promptly.
        """
        assert len(assignment) == self.nworkers
        if sync == "p2p" and module.nprocs > len(self.p2p.events):
            sync = "barrier"  # more processors than preallocated slots
        if sync == "p2p":
            for ev in self.p2p.events[:self._dirty_events]:
                ev.clear()
            self._dirty_events = module.nprocs
        self.runs += 1
        self.last_sync = sync
        from .faults import active_plan

        plan = active_plan()
        injected = (plan.take_worker_faults(self.nworkers)
                    if plan is not None else {})
        for w, procs in enumerate(assignment):
            self.task_queues[w].put(
                (module.signature, cache_root, module.source, specs,
                 tuple(procs), sync, injected.get(w))
            )
        try:
            results = collect_worker_results(
                self.result_queue, self.workers, self, "mpjit"
            )
        except FastExecError:
            self.broken = True
            raise
        self.last_load_modes = tuple(
            results[w][2] for w in sorted(results)
        )
        fused = sum(r[0] for r in results.values())
        peeled = sum(r[1] for r in results.values())
        return fused, peeled

    def respawn_dead(self, settle_seconds: float = 2.0) -> int:
        """Replace dead workers in place; returns how many were re-forked.

        Warm survivors keep their compiled-module caches and the
        existing queues / barrier / event table are reused — only the
        corpses pay a fork.  Safe only after a *p2p*-mode failure: a
        worker killed inside ``Barrier.wait`` can leave the barrier's
        internal lock held, so the supervisor routes barrier-mode
        casualties to a full teardown instead.

        The abort event stays set while every survivor is rendezvoused
        through a control ack — a survivor still draining the failed
        run's sync must observe the abort, report its stale failure and
        return to its task queue *before* the primitives are reset
        under it.  Raises :class:`FastExecError` when a survivor fails
        to settle within ``settle_seconds`` (caller falls back to a
        full respawn).
        """
        import multiprocessing as mp
        from queue import Empty

        if self.closed:
            raise FastExecError("cannot respawn into a closed pool")
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        dead = [w for w, p in self.workers.items() if not p.is_alive()]
        alive = [w for w in self.workers if w not in dead]
        self._control_token += 1
        token = self._control_token
        for w in alive:
            self.task_queues[w].put((_CONTROL, token))
        pending = set(alive)
        deadline = time.monotonic() + settle_seconds
        while pending:
            if time.monotonic() >= deadline:
                raise FastExecError(
                    f"workers {sorted(pending)} did not settle for "
                    "in-place respawn"
                )
            try:
                wid, ok, payload = self.result_queue.get(timeout=0.05)
            except (Empty, OSError, ValueError):
                continue
            if (ok and isinstance(payload, tuple)
                    and payload[0] == _CONTROL and payload[1] == token):
                pending.discard(wid)
            # anything else is stale fallout from the failed run
        for w in dead:
            self.workers[w].join(timeout=0.2)
            _drain_queue(self.task_queues[w])
        _drain_queue(self.result_queue, seconds=0.05)
        try:
            self.barrier.reset()
        except Exception:  # pragma: no cover - corpse held the lock
            raise FastExecError(
                "barrier could not be reset for in-place respawn"
            ) from None
        self.p2p.reset()
        self._dirty_events = 0
        for w in dead:
            proc = ctx.Process(
                target=_pool_worker,
                args=(w, self.task_queues[w], self.result_queue,
                      self.barrier, self.p2p),
                daemon=True,
            )
            proc.start()
            self.workers[w] = proc
        self.broken = False
        return len(dead)

    def shutdown(self) -> None:
        """Stop every worker (sentinel, then terminate stragglers).

        Idempotent: a second call returns immediately, so a daemon's
        SIGTERM drain path and the interpreter's atexit hook can both
        call it without double-closing queues or re-terminating
        already-reaped processes.
        """
        if self.closed:
            return
        self.closed = True
        for q in self.task_queues:
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        deadline = time.monotonic() + 5.0
        for proc in self.workers.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self.workers.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.workers.values():
            proc.join(timeout=5)
        for q in [self.result_queue, *self.task_queues]:
            try:
                q.close()
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        self.broken = True

    #: Explicit alias for daemon shutdown paths: ``pool.close()`` reads
    #: naturally next to file/socket teardown and is equally idempotent.
    close = shutdown


_pool: Optional[WorkerPool] = None
_spawns = 0

#: Guards ``_pool`` between the exec path and the supervisor's
#: background recovery thread (reentrant: recovery calls get_pool /
#: shutdown_pool while already holding it).
_lock = threading.RLock()


def get_pool(nworkers: int) -> WorkerPool:
    """The process-wide pool, (re)spawned when absent, resized or broken.

    Serialized against background recovery: a caller arriving while the
    supervisor is mid-respawn blocks briefly and then finds the healthy
    pool instead of racing it."""
    global _pool, _spawns
    with _lock:
        if _pool is not None and (
            _pool.nworkers != nworkers or not _pool.healthy()
        ):
            shutdown_pool()
        if _pool is None:
            _pool = WorkerPool(nworkers)
            _spawns += 1
        return _pool


def shutdown_pool() -> None:
    """Tear down the process-wide pool (no-op when there is none)."""
    global _pool
    with _lock:
        if _pool is not None:
            _pool.shutdown()
            _pool = None


atexit.register(shutdown_pool)


def pool_stats() -> dict:
    """Observability for benchmarks and the CLI: spawn cost vs reuse."""
    from .supervisor import _supervisor

    respawns = _supervisor.respawns if _supervisor is not None else 0
    if _pool is None:
        return {"alive": False, "spawns": _spawns, "nworkers": 0,
                "runs": 0, "spawn_seconds": 0.0, "last_sync": None,
                "respawns": respawns}
    return {
        "alive": _pool.healthy(),
        "spawns": _spawns,
        "nworkers": _pool.nworkers,
        "runs": _pool.runs,
        "spawn_seconds": round(_pool.spawn_seconds, 6),
        "last_load_modes": list(_pool.last_load_modes),
        "last_sync": _pool.last_sync,
        "p2p_slots": P2P_EVENT_SLOTS,
        "respawns": respawns,
    }


def run_mpjit_module(
    module,
    arrays: MutableMapping[str, np.ndarray],
    max_workers: Optional[int] = None,
    cache_root: Optional[str] = None,
    sync: str = "p2p",
) -> dict[str, int]:
    """Execute a compiled :class:`JitModule` through the worker pool.

    ``sync="p2p"`` (default) synchronizes the phases point-to-point via
    the module's ``PEEL_DEPS`` map; ``sync="barrier"`` uses the global
    barrier.  The processors are dealt round-robin across
    ``min(nprocs, cores)`` workers (``max_workers`` overrides the core
    count).  With one worker the pool is bypassed entirely — the module
    runs serially in-process, which is bit-identical by construction."""
    if sync not in ("p2p", "barrier"):
        raise FastExecError(f"unknown sync mode {sync!r}")
    # Validate the env knobs in the parent, before anything is spawned:
    # a typo'd REPRO_SYNC_TIMEOUT / REPRO_FAULTS raises EnvConfigError
    # naming the variable instead of a worker traceback.
    sync_timeout()
    from .faults import active_plan

    active_plan()
    nprocs = module.nprocs
    nworkers = _resolve_workers(nprocs, max_workers)
    if nworkers == 1:
        return module.run(arrays)
    segments: dict = {}
    pool = None
    try:
        segments, specs = export_arrays(arrays)
        assignment = [
            tuple(range(w, nprocs, nworkers)) for w in range(nworkers)
        ]
        pool = get_pool(nworkers)
        fused, peeled = pool.run_module(
            module, assignment, specs, cache_root, sync=sync
        )
        copy_back_arrays(arrays, segments)
        return {"fused_iterations": fused, "peeled_iterations": peeled}
    except FastExecError as exc:
        # The shared sync primitives are aborted and the pool is marked
        # broken.  Classify the failure, quarantine the casualties, and
        # let the supervisor repair the pool in the background while the
        # caller decides whether to retry (possibly degraded).
        from .supervisor import ExecError, classify_failure, \
            default_supervisor

        failure = classify_failure(exc)
        supervisor = default_supervisor()
        supervisor.record_failure(failure, pool=pool)
        if pool is not None and not pool.healthy():
            supervisor.recover_in_background(pool, nworkers)
        if isinstance(exc, ExecError):
            raise
        raise ExecError(failure) from exc
    finally:
        release_segments(segments)


def run_mpjit(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int] = None,
    max_workers: Optional[int] = None,
    no_cache: bool = False,
    cache=None,
    sync: str = "p2p",
) -> dict[str, int]:
    """The ``mpjit`` backend: compiled code, real parallel processes.

    Compiles (or fetches from the plan cache) the jit module for
    ``exec_plan`` exactly like the ``jit`` backend, persists its source so
    cold workers can load it by signature, then executes the paper's
    two-phase schedule on the persistent pool."""
    if no_cache:
        from ..codegen.emitpy import compile_plan

        module = compile_plan(exec_plan, strip=strip)
        cache_root = None
    else:
        if cache is None:
            from .plancache import default_cache

            cache = default_cache()
        module = cache.get(exec_plan, strip=strip)
        cache_root = str(cache.root) if cache.persist else None
    return run_mpjit_module(module, arrays, max_workers=max_workers,
                            cache_root=cache_root, sync=sync)
