"""Deterministic fault injection (chaos) for the execution runtime.

A :class:`FaultPlan` describes *when* and *where* synthetic failures
fire: worker crashes, slow workers, withheld fused-done signals, and
corrupted on-disk plan-cache entries.  Plans are parsed from a compact
spec string supplied via the ``REPRO_FAULTS`` environment variable or
the ``--chaos`` flag of ``repro serve`` / ``repro loadgen``.

Spec grammar (clauses separated by ``;``)::

    clause  := KIND [ "@" key "=" value { ":" key "=" value } ]
    KIND    := crash | slow | stall | cache_corrupt

    crash@run=3,7          worker 0 exits hard on pool runs 3 and 7
    crash@run=2..20/6:worker=1
                           worker 1 exits on runs 2, 8, 14, 20
    slow@run=4:seconds=0.2 worker 0 sleeps 0.2 s before its fused phase
    stall@run=5:proc=1     processor 1's fused-done signal is withheld
                           (peers hit the sync timeout)
    stall@run=5:proc=1:seconds=0.5
                           ... delayed by 0.5 s instead of withheld
    cache_corrupt@exec=10  the 10th served exec garbles one on-disk
                           plan-cache entry (exercises quarantine)

``run`` counts pool dispatches *seen by this plan* (1-based), so a plan
installed at daemon boot indexes runs over the daemon's lifetime and a
plan installed in a test indexes runs within that test — deterministic
either way, and independent of unrelated pool traffic before install.
``exec`` counts served exec requests the same way.

Everything here is parent-side bookkeeping: the pool asks the active
plan for this run's directives and ships them to workers inside the
task tuple, so runtime-installed plans (the ``chaos`` protocol op) work
without any fork-inheritance tricks.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Optional

from .fastexec import EnvConfigError

ENV_FAULTS = "REPRO_FAULTS"

FAULT_KINDS = ("crash", "slow", "stall", "cache_corrupt")

#: exit code used by injected worker crashes (recognizable in failures)
CHAOS_EXITCODE = 97


class FaultSpecError(EnvConfigError):
    """A chaos spec string could not be parsed (source named in message)."""


def _parse_indices(value: str, source: str, clause: str) -> frozenset:
    """Parse ``3``, ``3,7,11`` or ``2..20/6`` into a set of ints."""
    out = set()
    for part in value.split(","):
        part = part.strip()
        step = 1
        if "/" in part:
            part, _, step_s = part.partition("/")
            try:
                step = int(step_s)
            except ValueError:
                step = 0
            if step <= 0:
                raise FaultSpecError(
                    f"{source}: bad step in {clause!r} (want a positive int)"
                )
        if ".." in part:
            lo_s, _, hi_s = part.partition("..")
            try:
                lo, hi = int(lo_s), int(hi_s)
            except ValueError:
                raise FaultSpecError(
                    f"{source}: bad range in {clause!r} (want N..M)"
                ) from None
            if lo < 1 or hi < lo:
                raise FaultSpecError(
                    f"{source}: bad range bounds in {clause!r}"
                )
            out.update(range(lo, hi + 1, step))
        else:
            try:
                index = int(part)
            except ValueError:
                raise FaultSpecError(
                    f"{source}: bad index {part!r} in {clause!r}"
                ) from None
            if index < 1:
                raise FaultSpecError(
                    f"{source}: indices are 1-based, got {index} in {clause!r}"
                )
            out.add(index)
    return frozenset(out)


@dataclass
class FaultClause:
    kind: str
    runs: frozenset = frozenset()
    execs: frozenset = frozenset()
    worker: int = 0
    proc: Optional[int] = None
    seconds: Optional[float] = None
    exitcode: int = CHAOS_EXITCODE
    fired: int = 0

    def directive(self) -> dict:
        """Wire form shipped to a worker inside its task tuple."""
        out = {"action": self.kind}
        if self.seconds is not None:
            out["seconds"] = self.seconds
        if self.proc is not None:
            out["proc"] = self.proc
        if self.kind == "crash":
            out["exitcode"] = self.exitcode
        return out

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "runs": sorted(self.runs),
            "execs": sorted(self.execs),
            "worker": self.worker,
            "proc": self.proc,
            "seconds": self.seconds,
            "fired": self.fired,
        }


class FaultPlan:
    """A parsed chaos spec plus its own deterministic run/exec counters."""

    def __init__(self, clauses: list, spec: str, source: str = "--chaos"):
        self.clauses = clauses
        self.spec = spec
        self.source = source
        self._lock = threading.Lock()
        self._runs_seen = 0
        self._execs_seen = 0

    @classmethod
    def parse(cls, spec: str, source: str = "--chaos") -> "FaultPlan":
        clauses = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            kind, _, rest = raw.partition("@")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise FaultSpecError(
                    f"{source}: unknown fault kind {kind!r} in {raw!r} "
                    f"(known: {', '.join(FAULT_KINDS)})"
                )
            clause = FaultClause(kind=kind)
            for pair in filter(None, rest.split(":")):
                key, eq, value = pair.partition("=")
                key, value = key.strip(), value.strip()
                if not eq or not value:
                    raise FaultSpecError(
                        f"{source}: expected key=value, got {pair!r} in {raw!r}"
                    )
                if key == "run":
                    clause.runs = _parse_indices(value, source, raw)
                elif key == "exec":
                    clause.execs = _parse_indices(value, source, raw)
                elif key == "worker":
                    try:
                        clause.worker = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"{source}: bad worker {value!r} in {raw!r}"
                        ) from None
                elif key == "proc":
                    try:
                        clause.proc = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"{source}: bad proc {value!r} in {raw!r}"
                        ) from None
                elif key == "seconds":
                    try:
                        clause.seconds = float(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"{source}: bad seconds {value!r} in {raw!r}"
                        ) from None
                elif key == "exitcode":
                    try:
                        clause.exitcode = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"{source}: bad exitcode {value!r} in {raw!r}"
                        ) from None
                else:
                    raise FaultSpecError(
                        f"{source}: unknown key {key!r} in {raw!r} "
                        "(known: run, exec, worker, proc, seconds, exitcode)"
                    )
            if clause.kind == "cache_corrupt":
                if not clause.execs:
                    raise FaultSpecError(
                        f"{source}: cache_corrupt needs exec=N in {raw!r}"
                    )
            elif not clause.runs:
                raise FaultSpecError(
                    f"{source}: {kind} needs run=N[,M|..M[/K]] in {raw!r}"
                )
            clauses.append(clause)
        if not clauses:
            raise FaultSpecError(f"{source}: empty fault spec")
        return cls(clauses, spec, source)

    # -- deterministic firing -------------------------------------------

    def take_worker_faults(self, nworkers: int) -> dict:
        """Advance the run counter; return {worker_id: directive} to inject."""
        out = {}
        with self._lock:
            self._runs_seen += 1
            run = self._runs_seen
            for clause in self.clauses:
                if clause.kind == "cache_corrupt" or run not in clause.runs:
                    continue
                worker = clause.worker % max(nworkers, 1)
                # first clause targeting a worker wins
                if worker not in out:
                    clause.fired += 1
                    out[worker] = clause.directive()
        return out

    def take_cache_fault(self) -> bool:
        """Advance the exec counter; True if a cache entry should be garbled."""
        with self._lock:
            self._execs_seen += 1
            count = self._execs_seen
            for clause in self.clauses:
                if clause.kind == "cache_corrupt" and count in clause.execs:
                    clause.fired += 1
                    return True
        return False

    def describe(self) -> dict:
        with self._lock:
            return {
                "spec": self.spec,
                "source": self.source,
                "runs_seen": self._runs_seen,
                "execs_seen": self._execs_seen,
                "clauses": [c.describe() for c in self.clauses],
            }


# -- process-wide active plan ------------------------------------------

_installed: Optional[FaultPlan] = None
_env_cache: tuple = ("", None)


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with None) the runtime fault plan.

    An installed plan takes precedence over ``REPRO_FAULTS``; used by
    ``repro serve --chaos`` and the ``chaos`` protocol op.
    """
    global _installed
    _installed = plan


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULTS``, else None.

    Raises :class:`FaultSpecError` (naming the variable) on a bad spec.
    """
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_FAULTS, "").strip()
    if not raw:
        return None
    if _env_cache[0] != raw:
        _env_cache = (raw, FaultPlan.parse(raw, source=f"${ENV_FAULTS}"))
    return _env_cache[1]


def reset() -> None:
    """Clear installed plan and env-parse cache (test isolation)."""
    global _installed, _env_cache
    _installed = None
    _env_cache = ("", None)


def corrupt_cache_entry(cache) -> Optional[str]:
    """Garble one on-disk plan-cache module and drop the memory tier.

    Returns the corrupted entry's filename, or None when the cache has
    no compiled modules on disk yet.  The next warm load of that
    signature must quarantine the entry and recompile from the plan.
    """
    try:
        entries = sorted(p for p in cache.version_dir.glob("*.py"))
    except OSError:
        return None
    if not entries:
        return None
    path = entries[0]
    try:
        path.write_text("# chaos: corrupted entry\ndef run(:\n",
                        encoding="utf-8")
    except OSError:
        return None
    cache.clear_memory()
    return path.name
