"""Supervised recovery: failure taxonomy, pool respawn, breaker, retry.

PR 3/7 made the multiprocess path *detect* failures well — dead or
raising workers surface as :class:`FastExecError` with tracebacks in
well under a second — but every failure was terminal for the caller and
for the pool.  This module adds the recovery half:

* :class:`ExecFailure` — a structured failure record with a small error
  taxonomy (``worker_crash`` / ``sync_timeout`` / ``compile_error`` /
  ``cache_corrupt`` / ``overload``, plus an ``internal`` fallback),
  derived from an exception by :func:`classify_failure` and carried on
  :class:`ExecError` so the serve layer can answer with machine-readable
  failures instead of opaque strings.
* :class:`PoolSupervisor` — quarantines dead-worker records and respawns
  the pool **in the background** the moment a failure is reported, so
  the spawn cost overlaps the caller's retry instead of serializing
  with it.  After a p2p-mode failure the pool is repaired *in place*
  (only the dead workers are re-forked; warm survivors keep their
  compiled-module caches); a barrier-mode casualty can leave the
  barrier's internal lock held by a corpse, so those take the
  full-teardown path.
* :class:`CircuitBreaker` — per-signature consecutive-failure counts
  that step the backend down the degradation ladder
  ``mpjit → jit → vector`` (every rung is bit-identical by
  construction, so degradation is invisible except in latency) and
  probe back up one rung per cooldown.
* :class:`RetryPolicy` — bounded, deterministic exponential backoff for
  idempotent exec requests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from .fastexec import FastExecError, SyncAborted

# -- error taxonomy -----------------------------------------------------

WORKER_CRASH = "worker_crash"
SYNC_TIMEOUT = "sync_timeout"
COMPILE_ERROR = "compile_error"
CACHE_CORRUPT = "cache_corrupt"
OVERLOAD = "overload"
#: fallback for failures the taxonomy cannot name (e.g. an application
#: exception raised inside a worker's compute phase)
INTERNAL = "internal"

FAILURE_KINDS = (
    WORKER_CRASH, SYNC_TIMEOUT, COMPILE_ERROR, CACHE_CORRUPT, OVERLOAD,
    INTERNAL,
)

#: how much of a failure message travels on the wire / into records
_MESSAGE_LIMIT = 2000


@dataclass
class ExecFailure:
    """A classified execution failure (the structured face of an error)."""

    kind: str
    message: str
    retryable: bool = True
    workers: tuple = ()
    exitcodes: tuple = ()

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "retryable": self.retryable,
            "workers": list(self.workers),
            "exitcodes": list(self.exitcodes),
            "message": self.message[:_MESSAGE_LIMIT],
        }


class ExecError(FastExecError):
    """A :class:`FastExecError` carrying its classified :class:`ExecFailure`.

    Subclassing keeps every existing ``except FastExecError`` handler
    working; new code reads ``exc.failure`` for the taxonomy."""

    def __init__(self, failure: ExecFailure, message: Optional[str] = None):
        super().__init__(message or failure.message)
        self.failure = failure


def classify_failure(exc: BaseException) -> ExecFailure:
    """Map an exception from the exec path onto the failure taxonomy."""
    from ..codegen.emitpy import JitCompileError

    if isinstance(exc, ExecError):
        return exc.failure
    msg = str(exc)
    if isinstance(exc, JitCompileError):
        kind = COMPILE_ERROR
        if "signature mismatch" in msg or "stale" in msg:
            kind = CACHE_CORRUPT
        return ExecFailure(kind=kind, message=msg)
    if isinstance(exc, SyncAborted):
        return ExecFailure(kind=SYNC_TIMEOUT, message=msg)
    if "died without reporting a result" in msg:
        import re

        workers = tuple(
            int(w) for w in re.findall(r"worker (\d+) died", msg)
        )
        exitcodes = tuple(
            int(c) for c in re.findall(r"exitcode (-?\d+)", msg)
        )
        return ExecFailure(kind=WORKER_CRASH, message=msg,
                           workers=workers, exitcodes=exitcodes)
    if "JitCompileError" in msg:
        kind = COMPILE_ERROR
        if "signature mismatch" in msg or "stale" in msg:
            kind = CACHE_CORRUPT
        return ExecFailure(kind=kind, message=msg)
    if "no fused-done signal" in msg:
        return ExecFailure(kind=SYNC_TIMEOUT, message=msg)
    if "sync aborted" in msg or "barrier broken" in msg:
        return ExecFailure(kind=SYNC_TIMEOUT, message=msg)
    if isinstance(exc, FastExecError):
        return ExecFailure(kind=INTERNAL, message=msg)
    return ExecFailure(kind=INTERNAL, message=msg, retryable=False)


# -- degradation ladder -------------------------------------------------

#: Backends step down left to right; every rung computes bit-identical
#: results by construction (differential-tested), so a degraded answer
#: differs only in latency.  ``vector`` needs the execution plans (a
#: warm alias hit ships only compiled modules), so callers filter rungs
#: by what their PreparedKernel can actually run.
DEGRADE_LADDER = {
    "mpjit": ("mpjit", "jit", "vector"),
    "mp": ("mp", "vector"),
    "jit": ("jit", "vector"),
    "cjit": ("cjit", "jit", "vector"),
}


def degrade_ladder(backend: str) -> tuple:
    return DEGRADE_LADDER.get(backend, (backend,))


class CircuitBreaker:
    """Per-signature backend step-down with cooldown probing.

    ``threshold`` consecutive failures at the current rung step the
    signature one rung down the ladder; after ``cooldown_seconds``
    without a step the next request probes one rung back up.  State is
    keyed by plan signature so one poisoned kernel cannot degrade its
    neighbours."""

    def __init__(self, threshold: int = 2, cooldown_seconds: float = 30.0,
                 max_signatures: int = 256):
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self.max_signatures = max_signatures
        self._lock = threading.Lock()
        # signature -> [level, consecutive_failures, last_change]
        self._state: dict = {}
        self.trips = 0

    def effective_backend(self, signature: str, requested: str):
        """``(backend, degraded)`` for this request."""
        ladder = degrade_ladder(requested)
        with self._lock:
            st = self._state.get(signature)
            if st is None:
                return requested, False
            now = time.monotonic()
            if st[0] > 0 and now - st[2] >= self.cooldown_seconds:
                st[0] -= 1  # half-open: probe one rung up
                st[2] = now
            level = min(st[0], len(ladder) - 1)
            return ladder[level], level > 0

    def record_failure(self, signature: str, requested: str) -> None:
        ladder = degrade_ladder(requested)
        with self._lock:
            st = self._state.setdefault(
                signature, [0, 0, time.monotonic()]
            )
            st[1] += 1
            if st[1] >= self.threshold and st[0] < len(ladder) - 1:
                st[0] += 1
                st[1] = 0
                st[2] = time.monotonic()
                self.trips += 1
            if len(self._state) > self.max_signatures:
                # drop the least recently changed entry
                victim = min(self._state, key=lambda s: self._state[s][2])
                del self._state[victim]

    def record_success(self, signature: str) -> None:
        with self._lock:
            st = self._state.get(signature)
            if st is not None:
                st[1] = 0
                if st[0] == 0:
                    del self._state[signature]

    def snapshot(self) -> dict:
        with self._lock:
            open_sigs = {
                sig[:16]: {"level": st[0], "failures": st[1]}
                for sig, st in sorted(self._state.items())[:32]
            }
            return {
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "trips": self.trips,
                "open": open_sigs,
            }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded deterministic exponential backoff for idempotent execs."""

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_factor: float = 4.0
    backoff_cap: float = 0.5

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based first retry)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))


# -- pool supervision ---------------------------------------------------


class PoolSupervisor:
    """Quarantine dead workers and respawn the pool off the hot path.

    :func:`repro.runtime.pool.run_mpjit_module` reports every pool
    failure here; the supervisor records the casualty (worker id,
    exitcode, run, kind) and kicks a background thread that repairs the
    process-wide pool under the pool module's lock — in place after a
    p2p failure, full respawn otherwise.  The caller's retry (or the
    next request) then finds a healthy pool instead of paying the spawn
    cost synchronously."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self.respawns = 0       # workers re-forked
        self.recoveries = 0     # successful recovery events
        self.failures: dict = {}
        self.quarantined: deque = deque(maxlen=16)
        self.last_failure: Optional[dict] = None

    def record_failure(self, failure: ExecFailure, pool=None) -> None:
        with self._lock:
            self.failures[failure.kind] = (
                self.failures.get(failure.kind, 0) + 1
            )
            self.last_failure = {
                "kind": failure.kind,
                "workers": list(failure.workers),
                "exitcodes": list(failure.exitcodes),
            }
            if pool is not None:
                for w, proc in pool.workers.items():
                    if not proc.is_alive():
                        self.quarantined.append({
                            "worker": w,
                            "exitcode": proc.exitcode,
                            "run": pool.runs,
                            "kind": failure.kind,
                        })

    def recover_in_background(self, pool, nworkers: int) -> None:
        """Repair the process-wide pool on a daemon thread (idempotent:
        a recovery already in flight is left to finish)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            thread = threading.Thread(
                target=self._recover, args=(pool, nworkers),
                daemon=True, name="repro-pool-supervisor",
            )
            self._thread = thread
        thread.start()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until any in-flight recovery finishes (tests/teardown)."""
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def _recover(self, broken_pool, nworkers: int) -> None:
        from . import pool as pool_mod

        with pool_mod._lock:
            # Somebody (an explicit shutdown_pool, a resize, a fixture
            # teardown) already replaced or retired this pool: recovering
            # it now would leak workers past the owner's cleanup.
            if pool_mod._pool is not broken_pool or broken_pool.closed:
                return
            if broken_pool.last_sync == "p2p":
                try:
                    replaced = broken_pool.respawn_dead()
                except FastExecError:
                    replaced = None
                if replaced is not None and broken_pool.healthy():
                    with self._lock:
                        self.respawns += replaced
                        self.recoveries += 1
                    return
            pool_mod.shutdown_pool()
            try:
                pool_mod.get_pool(nworkers)
            except Exception:  # pragma: no cover - spawn failed; next
                return         # get_pool will surface the real error
            with self._lock:
                self.respawns += nworkers
                self.recoveries += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "respawns": self.respawns,
                "recoveries": self.recoveries,
                "failures": dict(self.failures),
                "quarantined": list(self.quarantined),
                "last_failure": self.last_failure,
                "recovering": (
                    self._thread is not None and self._thread.is_alive()
                ),
            }


# -- process-wide singletons -------------------------------------------

_supervisor: Optional[PoolSupervisor] = None
_breaker: Optional[CircuitBreaker] = None


def default_supervisor() -> PoolSupervisor:
    global _supervisor
    if _supervisor is None:
        _supervisor = PoolSupervisor()
    return _supervisor


def default_breaker() -> CircuitBreaker:
    global _breaker
    if _breaker is None:
        _breaker = CircuitBreaker()
    return _breaker


def reset_defaults() -> None:
    """Fresh supervisor/breaker state (test isolation).  Waits out any
    in-flight recovery so a test's teardown cannot race it."""
    global _supervisor, _breaker
    if _supervisor is not None:
        _supervisor.wait(timeout=10.0)
    _supervisor = None
    _breaker = None
