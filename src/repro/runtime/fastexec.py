"""Fast execution backends: numpy-vectorized and multiprocess.

The reference executor (:mod:`repro.runtime.parallel`) interprets an
:class:`~repro.core.execplan.ExecutionPlan` one iteration at a time so the
test suite can interleave processors adversarially.  That makes it the
semantic oracle — and makes it thousands of times slower than the hardware.
This module lowers the *same* plan to whole-array numpy operations:

* :func:`run_vector` executes every processor's fused boxes (nest by nest,
  or strip-mined tile by tile when ``strip`` is given) and then its peeled
  rectangles as vectorized slice/fancy-index assignments.  Within one
  processor, executing nest ``k``'s whole fused box before nest ``k+1``'s
  satisfies every dependence the serial original admits (all of them point
  forward in sequence order), and the shift-and-peel construction keeps the
  fused phase free of cross-processor dependences (Theorem 1), so the
  result is bit-identical to the interpreter whenever the plan is legal.
  Loops marked sequential (``do`` rather than ``doall``) are honoured by
  iterating those dimensions scalarly in order; only ``doall`` dimensions
  whose variable addresses the written array injectively are vectorized.

* :func:`run_mp` runs the plan over real OS processes (one per hardware
  core by default, the simulated processors dealt round-robin) over
  ``multiprocessing.shared_memory`` buffers, with a real barrier between
  the fused and peeled phases — the measured-performance analogue of the
  simulated machine.  Worker failures are crash-safe: the parent polls
  the result queue while checking worker liveness, aborts the barrier on
  the first casualty and raises :class:`FastExecError` carrying the
  worker's traceback instead of hanging on a dead peer.

The shared-memory plumbing (:func:`export_arrays` / :func:`attach_arrays`
/ :func:`collect_worker_results`) is reused by the persistent-pool
``mpjit`` backend (:mod:`repro.runtime.pool`), which executes jit-compiled
per-processor entry points instead of interpreting boxes.

Both backends return the same counters as
:func:`~repro.runtime.parallel.run_parallel` so callers can sanity-check
iteration coverage across backends.
"""

from __future__ import annotations

import itertools
import os
import time
from functools import lru_cache
from typing import Mapping, MutableMapping, Optional, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan, PeeledRect, ProcessorPlan
from ..ir.access import ArrayRef
from ..ir.loop import LoopNest
from ..ir.stmt import BinOp, Const, Expr, Load, UnaryOp
from .parallel import Box, fused_tile_boxes


class FastExecError(RuntimeError):
    """A plan or statement could not be executed by a fast backend."""


class EnvConfigError(ValueError):
    """An environment knob holds an invalid value.

    Raised at parse time with a message naming the variable, so a typo'd
    ``REPRO_SYNC_TIMEOUT=10s`` fails loudly in the parent before any
    worker is spawned instead of silently falling back (or exploding as
    an unhandled ``ValueError`` deep in the pool)."""


# ---------------------------------------------------------------------------
# Which dimensions of a nest may be vectorized?
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _order_free_dims(nest: LoopNest) -> tuple[int, ...]:
    """Dimensions that carry no intra-nest dependence.

    The exact distance solver decides this where it can: a dimension is
    order-free unless it *carries* a (lexicographically positive) uniform
    dependence, i.e. holds its first nonzero component.  Executing the
    remaining (carrying) dimensions scalarly in lexicographic order, with
    the order-free dimensions innermost, then satisfies every intra-nest
    dependence: the carrying dimension of each dependence is scalar, keeps
    its original relative position, and every dimension before it in the
    original order has a zero component.  When some intra-nest relation is
    not uniform the analysis is inconclusive and we fall back to the
    nest's ``doall`` flags (a flagged dimension never carries a
    dependence, so the same argument applies).
    """
    from ..dependence.analysis import carried_dependences
    from ..dependence.model import NonUniformDependenceError

    try:
        carried = carried_dependences(nest, strict=True)
    except NonUniformDependenceError:
        return tuple(d for d in range(nest.depth) if nest.loops[d].parallel)
    carrying = set()
    for _array, distance in carried:
        for d, component in enumerate(distance):
            if component != 0:
                if component > 0:  # lex-positive orientation of the pair
                    carrying.add(d)
                break
    return tuple(d for d in range(nest.depth) if d not in carrying)


@lru_cache(maxsize=None)
def vector_dims(nest: LoopNest) -> tuple[int, ...]:
    """Dimensions of ``nest`` that can execute as whole-array operations.

    A dimension qualifies when it carries no intra-nest dependence (see
    :func:`_order_free_dims`) *and* every statement's target has a witness
    subscript that depends on this dimension's variable and on no other
    candidate variable — which makes the write map injective over the
    vectorized dimensions, so a fancy-index store never writes one element
    twice.  Dimensions that fail the test simply fall back to ordered
    scalar iteration; correctness never depends on the answer, only speed
    does.
    """
    cands = list(_order_free_dims(nest))
    changed = True
    while changed:
        changed = False
        for d in list(cands):
            var = nest.loops[d].var
            others = [nest.loops[d2].var for d2 in cands if d2 != d]
            for st in nest.body:
                witness = any(
                    sub.coeff(var) != 0
                    and all(sub.coeff(o) == 0 for o in others)
                    for sub in st.target.subscripts
                )
                if not witness:
                    cands.remove(d)
                    changed = True
                    break
    return tuple(cands)


# ---------------------------------------------------------------------------
# Vectorized evaluation of one statement over a box.
# ---------------------------------------------------------------------------


class _BoxEnv:
    """Broadcasting context for one (box, vector-dims) combination.

    ``scalars`` maps parameters, sequential loop variables and *zeroed*
    vector variables to ints (used to evaluate the non-vector part of a
    subscript); ``grids`` lazily materializes ``np.arange`` index grids,
    one per vector dimension, shaped for mutual broadcasting.
    """

    def __init__(self, nest: LoopNest, box: Box, vdims: tuple[int, ...],
                 scalars: dict[str, int]):
        self.nest = nest
        self.box = box
        self.vdims = vdims
        self.rank_of = {d: r for r, d in enumerate(vdims)}
        self.shape = tuple(box[d][1] - box[d][0] + 1 for d in vdims)
        self.scalars = scalars
        self._grids: dict[int, np.ndarray] = {}

    def grid(self, d: int) -> np.ndarray:
        g = self._grids.get(d)
        if g is None:
            r = self.rank_of[d]
            lo, hi = self.box[d]
            shape = [1] * len(self.vdims)
            shape[r] = hi - lo + 1
            g = np.arange(lo, hi + 1).reshape(shape)
            self._grids[d] = g
        return g

    def var_dim(self, name: str) -> Optional[int]:
        for d in self.vdims:
            if self.nest.loops[d].var == name:
                return d
        return None


def _subscript_index(sub, env: _BoxEnv):
    """Evaluate one affine subscript to an int, a ``slice`` (unit-stride
    single vector variable) or an index grid, plus the vector dimension it
    spans (or None)."""
    vds = [(env.var_dim(v), c) for v, c in sub.coeffs if env.var_dim(v) is not None]
    if not vds:
        return sub.eval(env.scalars), None
    base = sub.eval(env.scalars)  # vector vars contribute 0 here
    if len(vds) == 1 and vds[0][1] == 1:
        d, _ = vds[0]
        lo, hi = env.box[d]
        return slice(base + lo, base + hi + 1), d
    # General affine over vector dims: broadcasted integer grid.
    idx = base
    for d, c in vds:
        idx = idx + c * env.grid(d)
    return idx, None


def _sliceable(parts) -> bool:
    """True when the subscript tuple indexes with pure basic slicing: no
    index grids, and no vector dimension spanned by two subscripts (the
    diagonal case, which basic slicing would turn into a cross product)."""
    if any(isinstance(val, np.ndarray) for val, _d in parts):
        return False
    present = [d for _val, d in parts if d is not None]
    return len(present) == len(set(present))


def _fancy_index(parts, ref: ArrayRef, env: _BoxEnv) -> tuple:
    """Rebuild the subscripts as broadcasted index grids (advanced
    indexing), converting any slices back into grids."""
    idx = []
    for (val, d), sub in zip(parts, ref.subscripts):
        if isinstance(val, slice):
            idx.append(sub.eval(env.scalars) + env.grid(d))
        else:
            idx.append(val)
    return tuple(idx)


def _load_box(ref: ArrayRef, env: _BoxEnv, arrays: Mapping[str, np.ndarray]):
    """Load ``ref`` over the box, broadcastable to ``env.shape``."""
    parts = [_subscript_index(s, env) for s in ref.subscripts]
    if not _sliceable(parts):
        return arrays[ref.array][_fancy_index(parts, ref, env)]
    view = arrays[ref.array][tuple(val for val, _d in parts)]
    ranks = [env.rank_of[d] for _val, d in parts if d is not None]
    perm = sorted(range(len(ranks)), key=lambda a: ranks[a])
    if perm != list(range(len(ranks))):
        view = view.transpose(perm)
    have = sorted(ranks)
    if len(have) < len(env.vdims):
        expander = tuple(
            slice(None) if r in have else np.newaxis
            for r in range(len(env.vdims))
        )
        view = view[expander]
    return view


def _store_box(ref: ArrayRef, value, env: _BoxEnv,
               arrays: MutableMapping[str, np.ndarray]) -> None:
    """Store ``value`` (scalar or broadcastable array) through ``ref``."""
    target = arrays[ref.array]
    if isinstance(value, np.ndarray) and np.may_share_memory(value, target):
        value = value.copy()
    parts = [_subscript_index(s, env) for s in ref.subscripts]
    if not _sliceable(parts):
        target[_fancy_index(parts, ref, env)] = value
        return
    ranks = [env.rank_of[d] for _val, d in parts if d is not None]
    if isinstance(value, np.ndarray) and value.ndim:
        value = np.broadcast_to(value, env.shape)
        value = value.transpose(ranks)
    target[tuple(val for val, _d in parts)] = value


def _eval_box(expr: Expr, env: _BoxEnv, arrays: Mapping[str, np.ndarray]):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Load):
        return _load_box(expr.ref, env, arrays)
    if isinstance(expr, BinOp):
        a = _eval_box(expr.left, env, arrays)
        b = _eval_box(expr.right, env, arrays)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        return a / b
    if isinstance(expr, UnaryOp):
        return -_eval_box(expr.operand, env, arrays)
    raise FastExecError(f"cannot vectorize expression {expr!r}")


def exec_box(
    nest: LoopNest,
    box: Box,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
    vdims: Optional[tuple[int, ...]] = None,
) -> int:
    """Execute every iteration of ``nest`` inside ``box`` (inclusive
    ``(lo, hi)`` per dimension), vectorizing the ``doall`` dimensions and
    iterating the rest scalarly in lexicographic order.  Returns the number
    of iterations executed.  Bit-identical to per-iteration interpretation
    for any nest whose ``doall`` markings are truthful.

    ``vdims`` lets callers hoist the :func:`vector_dims` lookup out of
    per-box loops: the analysis is memoized, but even a cache hit hashes
    the whole nest structure, which dominates tiny strip-mined boxes."""
    if any(hi < lo for lo, hi in box):
        return 0
    if vdims is None:
        vdims = vector_dims(nest)
    sdims = [d for d in range(nest.depth) if d not in vdims]
    vec_count = 1
    for d in vdims:
        vec_count *= box[d][1] - box[d][0] + 1
    scalars = dict(params)
    for d in vdims:
        scalars[nest.loops[d].var] = 0
    env = _BoxEnv(nest, box, vdims, scalars)
    count = 0
    for svals in itertools.product(
        *(range(box[d][0], box[d][1] + 1) for d in sdims)
    ):
        for d, v in zip(sdims, svals):
            scalars[nest.loops[d].var] = v
        for st in nest.body:
            _store_box(st.target, _eval_box(st.rhs, env, arrays), env, arrays)
        count += vec_count
    return count


# ---------------------------------------------------------------------------
# The vector backend: whole plan, one process.
# ---------------------------------------------------------------------------


def _sorted_rects(proc: ProcessorPlan) -> list[PeeledRect]:
    order = sorted(range(len(proc.peeled)),
                   key=lambda r: proc.peeled[r].nest_idx)
    return [proc.peeled[r] for r in order]


def _run_proc_fused(
    proc: ProcessorPlan,
    plan,
    nests: Sequence[LoopNest],
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int],
    nest_vdims: Optional[Sequence[tuple[int, ...]]] = None,
) -> int:
    if nest_vdims is None:
        nest_vdims = [vector_dims(nest) for nest in nests]
    count = 0
    if strip is None:
        for k, nest in enumerate(nests):
            count += exec_box(nest, tuple(proc.fused[k]), params, arrays,
                              vdims=nest_vdims[k])
    else:
        for k, box in fused_tile_boxes(proc, plan.depth, nests, plan.shift,
                                       strip):
            count += exec_box(nests[k], box, params, arrays,
                              vdims=nest_vdims[k])
    return count


def _run_proc_peeled(
    proc: ProcessorPlan,
    nests: Sequence[LoopNest],
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
    nest_vdims: Optional[Sequence[tuple[int, ...]]] = None,
) -> int:
    if nest_vdims is None:
        nest_vdims = [vector_dims(nest) for nest in nests]
    count = 0
    for rect in _sorted_rects(proc):
        count += exec_box(nests[rect.nest_idx], rect.ranges, params, arrays,
                          vdims=nest_vdims[rect.nest_idx])
    return count


def run_vector(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int] = None,
) -> dict[str, int]:
    """Vectorized execution of the fused phase, the barrier, then the
    peeled phase.  ``strip`` tiles the fused phase exactly like the
    interpreter (one vectorized box per tile per nest); ``None`` executes
    each processor's whole per-nest box in one shot (fastest)."""
    plan = exec_plan.plan
    nests = list(plan.seq)
    params = exec_plan.params
    # Hoisted per (nest, plan): the legality analysis is identical for
    # every box of a nest, so strip-mined runs must not redo it per tile.
    nest_vdims = [vector_dims(nest) for nest in nests]
    fused = 0
    for proc in exec_plan.processors:
        fused += _run_proc_fused(proc, plan, nests, params, arrays, strip,
                                 nest_vdims)
    # ---- barrier (Sec. 3.4) ----
    peeled = 0
    for proc in exec_plan.processors:
        peeled += _run_proc_peeled(proc, nests, params, arrays, nest_vdims)
    return {"fused_iterations": fused, "peeled_iterations": peeled}


# ---------------------------------------------------------------------------
# The mp backend: one OS process per simulated processor, shared memory.
# ---------------------------------------------------------------------------

#: Default backstop for a worker stuck waiting on peers (at the barrier,
#: or on a fused-done event in point-to-point mode).  The parent aborts
#: the sync as soon as it detects a failure, so in practice a crash
#: surfaces within a fraction of a second; this only bounds the truly
#: pathological case of a parent that died without cleaning up.
DEFAULT_SYNC_TIMEOUT = 600.0

#: Environment override (seconds) for the sync backstop.  The test suite
#: drops it sharply (tests/conftest.py) so sync-failure tests stay
#: time-bounded instead of relying on a 600 s ceiling.
ENV_SYNC_TIMEOUT = "REPRO_SYNC_TIMEOUT"


def sync_timeout() -> float:
    """The sync backstop in seconds: ``REPRO_SYNC_TIMEOUT`` when set,
    else :data:`DEFAULT_SYNC_TIMEOUT`.  Read at wait time so workers
    forked before the variable changed still honour it on their next run
    (fork shares the parent's environ).

    Raises :class:`EnvConfigError` naming the variable when it is set to
    something that is not a positive number; :func:`run_mp` and the pool
    validate eagerly so the error surfaces in the parent, not as a
    traceback shipped back from a worker."""
    raw = os.environ.get(ENV_SYNC_TIMEOUT)
    if raw is None or not raw.strip():
        return DEFAULT_SYNC_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise EnvConfigError(
            f"{ENV_SYNC_TIMEOUT} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise EnvConfigError(
            f"{ENV_SYNC_TIMEOUT} must be positive, got {raw!r}"
        )
    return value


#: How long the parent keeps draining the result queue after the first
#: failure, so the root-cause traceback wins over the peers' secondary
#: "barrier aborted" reports.
_FAILURE_DRAIN_SECONDS = 1.0

#: Poll interval while waiting on a fused-done event in point-to-point
#: mode; bounds how long a waiter takes to observe the abort flag after
#: a peer dies (the parent sets it on the first casualty).
_P2P_POLL_SECONDS = 0.05


class SyncAborted(RuntimeError):
    """Point-to-point sync released early: a peer failed, or a fused-done
    signal never arrived within the backstop.  The p2p analogue of
    :class:`threading.BrokenBarrierError`."""


class P2PSync:
    """Point-to-point fused-done signalling between SPMD workers.

    ``events[p]`` is set exactly once per run, when processor ``p``'s
    fused phase completes; a peeled phase then waits only on the events
    of its named predecessors (:func:`repro.core.syncdeps.peel_predecessors`)
    instead of on a global barrier.  One shared ``abort`` event releases
    every waiter on failure — :func:`collect_worker_results` calls
    ``.abort()`` on the first casualty exactly as it aborts a barrier.

    The events must be created by whoever spawns the worker processes
    (multiprocessing sync primitives travel only through ``Process``
    args / fork inheritance, never through queues).
    """

    def __init__(self, events: Sequence, abort_event) -> None:
        self.events = events
        self.abort_event = abort_event

    def abort(self) -> None:
        self.abort_event.set()

    def reset(self) -> None:
        """Clear the abort flag and every fused-done event.

        Used by in-place pool recovery after a failed run: the replaced
        workers must not observe a stale abort (or a dead peer's leftover
        signal) on their first healthy run."""
        self.abort_event.clear()
        for ev in self.events:
            ev.clear()

    def signal_fused_done(self, proc: int) -> None:
        self.events[proc].set()

    def wait_for(self, preds: Sequence[int],
                 timeout: Optional[float] = None) -> None:
        """Block until every processor in ``preds`` has signalled
        fused-done; raise :class:`SyncAborted` promptly on abort and
        after ``timeout`` (default :func:`sync_timeout`) as a backstop."""
        if timeout is None:
            timeout = sync_timeout()
        deadline = time.monotonic() + timeout
        for p in preds:
            ev = self.events[p]
            while not ev.wait(_P2P_POLL_SECONDS):
                if self.abort_event.is_set():
                    raise SyncAborted("a peer failed first")
                if time.monotonic() >= deadline:
                    self.abort_event.set()  # release the other waiters
                    raise SyncAborted(
                        f"no fused-done signal from processor {p} within "
                        f"{timeout:.0f}s"
                    )


def _resolve_workers(nprocs: int, max_workers: Optional[int]) -> int:
    """Worker count for ``nprocs`` simulated processors.

    ``max_workers=None`` caps at the machine's core count: one OS process
    per *hardware* core, never per simulated processor (a 56-processor
    plan on a 4-core host gets 4 workers, each running 14 processors'
    boxes in plan order)."""
    import os

    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(nprocs, max_workers))


def export_arrays(arrays: Mapping[str, np.ndarray]):
    """Copy ``arrays`` into fresh shared-memory segments.

    Returns ``(segments, specs)`` where ``specs`` maps each array name to
    the picklable ``(shm_name, shape, dtype)`` triple a worker needs to
    attach."""
    from multiprocessing import shared_memory

    segments: dict[str, shared_memory.SharedMemory] = {}
    specs: dict[str, tuple] = {}
    try:
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
            segments[name] = seg
            specs[name] = (seg.name, arr.shape, arr.dtype.str)
    except BaseException:
        release_segments(segments)
        raise
    return segments, specs


def attach_arrays(specs: Mapping[str, tuple], segments: list):
    """Attach to the segments described by ``specs`` (worker side).

    Opened segments are appended to ``segments`` so the caller's cleanup
    sees everything that was opened even if a later attach fails."""
    from multiprocessing import shared_memory

    arrays: dict[str, np.ndarray] = {}
    for name, (shm_name, shape, dtype) in specs.items():
        seg = shared_memory.SharedMemory(name=shm_name)
        segments.append(seg)
        arrays[name] = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
    return arrays


def copy_back_arrays(arrays: MutableMapping[str, np.ndarray],
                     segments: Mapping) -> None:
    """Copy shared-memory contents back into the caller's arrays."""
    for name, arr in arrays.items():
        seg = segments[name]
        shared = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        arr[...] = shared
        del shared


def release_segments(segments: Mapping) -> None:
    """Close and unlink every owned segment; never raises."""
    for seg in segments.values():
        try:
            seg.close()
            seg.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def collect_worker_results(queue, workers: Mapping[int, object], sync,
                           label: str) -> dict[int, tuple]:
    """Gather one ``(worker_id, ok, payload)`` message per worker.

    The queue is polled with a short timeout while checking worker
    liveness, so a worker that dies *before* its ``queue.put`` surfaces as
    a prompt :class:`FastExecError` instead of a 600 s sync hang.  On any
    failure ``sync.abort()`` is called (releasing the surviving peers —
    ``sync`` is a barrier, a :class:`P2PSync`, or anything else with an
    ``abort()``) and the queue is drained briefly so the root-cause
    traceback is reported in preference to the peers' secondary
    "barrier broken" / "sync aborted" notices.
    """
    from queue import Empty

    results: dict[int, tuple] = {}
    failures: list[str] = []
    pending = set(workers)
    suspect: dict[int, int] = {}
    deadline: Optional[float] = None

    def fail(message: str) -> None:
        nonlocal deadline
        sync.abort()
        failures.append(message)
        if deadline is None:
            deadline = time.monotonic() + _FAILURE_DRAIN_SECONDS

    while pending:
        if deadline is not None and time.monotonic() >= deadline:
            break
        try:
            wid, ok, payload = queue.get(timeout=0.05)
        except Empty:
            for w in sorted(pending):
                if workers[w].is_alive():
                    suspect.pop(w, None)
                    continue
                # A clean exit flushes the queue feeder before the
                # process dies, so give a just-died worker two more polls
                # for its result to surface before declaring it lost.
                suspect[w] = suspect.get(w, 0) + 1
                if suspect[w] >= 3:
                    pending.discard(w)
                    fail(f"{label} worker {w} died without reporting a "
                         f"result (exitcode {workers[w].exitcode})")
            continue
        pending.discard(wid)
        suspect.pop(wid, None)
        if ok:
            results[wid] = payload
        else:
            fail(f"{label} worker {wid} failed:\n{payload}")
    if failures:
        # Order the genuine tracebacks ahead of sync-abort fallout.
        def _secondary(m: str) -> bool:
            last = m.splitlines()[-1]
            return "barrier" in last or "sync aborted" in last

        failures.sort(key=lambda m: (_secondary(m), m))
        raise FastExecError(
            f"{label} execution failed ({len(failures)} worker "
            f"failure(s)):\n" + "\n".join(failures)
        )
    return results


def _mp_worker(worker_id: int, exec_plan: ExecutionPlan,
               proc_indices: Sequence[int], specs: dict, sync,
               strip: Optional[int], queue,
               deps: Optional[Sequence[Sequence[int]]]) -> None:
    """One SPMD worker.  ``sync`` is a barrier (``deps is None``) or a
    :class:`P2PSync` (``deps`` is the plan's predecessor map): with a
    barrier every worker waits for all peers between its phases; with
    p2p each processor signals fused-done individually and each peeled
    phase waits only on its named predecessors."""
    import threading
    import traceback

    segments: list = []
    arrays: dict[str, np.ndarray] = {}
    try:
        try:
            arrays = attach_arrays(specs, segments)
            plan = exec_plan.plan
            nests = list(plan.seq)
            params = exec_plan.params
            nest_vdims = [vector_dims(nest) for nest in nests]
            fused = 0
            for idx in proc_indices:
                fused += _run_proc_fused(exec_plan.processors[idx], plan,
                                         nests, params, arrays, strip,
                                         nest_vdims)
                if deps is not None:
                    sync.signal_fused_done(idx)
            if deps is None:
                sync.wait(timeout=sync_timeout())
            peeled = 0
            for idx in proc_indices:
                if deps is not None:
                    sync.wait_for(deps[idx])
                peeled += _run_proc_peeled(exec_plan.processors[idx], nests,
                                           params, arrays, nest_vdims)
            queue.put((worker_id, True, (fused, peeled)))
        except threading.BrokenBarrierError:
            queue.put((worker_id, False,
                       "barrier broken or aborted (a peer failed first, or "
                       f"no peer arrived within {sync_timeout():.0f}s)"))
        except SyncAborted as exc:
            queue.put((worker_id, False, f"p2p sync aborted ({exc})"))
        except BaseException:
            # Ship the real traceback to the parent, then release any
            # peers still parked at the sync.
            queue.put((worker_id, False, traceback.format_exc()))
            sync.abort()
    finally:
        del arrays
        for seg in segments:
            seg.close()


def run_mp(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: Optional[int] = None,
    max_workers: Optional[int] = None,
    sync: str = "p2p",
) -> dict[str, int]:
    """Execute the plan with OS processes over
    ``multiprocessing.shared_memory``.  ``sync="p2p"`` (the default)
    synchronizes the fused and peeled phases point-to-point: each
    processor's peeled phase waits only on the fused-done events of its
    predecessors (:func:`repro.core.syncdeps.peel_predecessors`);
    ``sync="barrier"`` keeps the paper's single global barrier.
    ``max_workers`` caps the worker count (default: the machine's core
    count); the simulated processors are dealt round-robin across
    workers (each worker still runs its processors' phases in plan
    order).

    Worker failures never hang the parent: the result queue is polled
    with liveness checks, a crashed or raising worker aborts the sync,
    and the resulting :class:`FastExecError` carries the worker's
    traceback.  Shared-memory segments are unlinked on every path."""
    import multiprocessing as mp

    if sync not in ("p2p", "barrier"):
        raise FastExecError(f"unknown sync mode {sync!r}")
    sync_timeout()  # validate REPRO_SYNC_TIMEOUT before spawning anything
    nprocs = len(exec_plan.processors)
    nworkers = _resolve_workers(nprocs, max_workers)
    if nworkers == 1:
        return run_vector(exec_plan, arrays, strip=strip)

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    segments: dict = {}
    workers: dict[int, object] = {}
    try:
        segments, specs = export_arrays(arrays)
        if sync == "p2p":
            from ..core.syncdeps import peel_predecessors

            deps = peel_predecessors(exec_plan)
            sync_obj = P2PSync([ctx.Event() for _ in range(nprocs)],
                               ctx.Event())
        else:
            deps = None
            sync_obj = ctx.Barrier(nworkers)
        queue = ctx.Queue()
        assignment = [list(range(w, nprocs, nworkers)) for w in range(nworkers)]
        workers = {
            w: ctx.Process(
                target=_mp_worker,
                args=(w, exec_plan, assignment[w], specs, sync_obj, strip,
                      queue, deps),
            )
            for w in range(nworkers)
        }
        for w in workers.values():
            w.start()
        results = collect_worker_results(queue, workers, sync_obj, "mp")
        fused = sum(f for f, _ in results.values())
        peeled = sum(p for _, p in results.values())
        for w in workers.values():
            w.join(timeout=60)
        copy_back_arrays(arrays, segments)
        return {"fused_iterations": fused, "peeled_iterations": peeled}
    finally:
        for w in workers.values():
            if w.is_alive():
                w.terminate()
        for w in workers.values():
            w.join(timeout=5)
        release_segments(segments)
