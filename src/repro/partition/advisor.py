"""Layout advisor: the compiler's data-layout decision, end to end.

Ties the partitioning pieces into the single decision a compiler makes per
fused loop (Sec. 4): check reference *compatibility* (repairing it with
data transforms where the paper's rules apply), build the greedy
partitioned layout, derive the strip size from the partition size, and
quantify the memory overhead against what intra-array padding would cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..cachesim.cache import CacheConfig
from ..ir.sequence import LoopSequence, Program
from .compatibility import CompatibilityReport, analyze_compatibility
from .greedy import PartitionedLayout, partitioned_layout_from_decls
from .padding import padding_overhead_bytes


@dataclass(frozen=True)
class LayoutPlan:
    """The advisor's complete answer for one fused loop."""

    layout: PartitionedLayout
    compatibility: tuple[CompatibilityReport, ...]
    repairs: tuple[str, ...]  # data transforms needed for compatibility
    unresolved: tuple[str, ...]  # incompatible pairs with no known repair
    strip: int
    gap_overhead_bytes: int
    padding_overhead_bytes: int  # what pad=19 (paper's minimum) would cost

    @property
    def fully_compatible(self) -> bool:
        return not self.repairs and not self.unresolved

    @property
    def conflict_free(self) -> bool:
        """Partitioning guarantees conflict freedom only for compatible
        (possibly repaired) references."""
        return not self.unresolved

    def describe(self) -> str:
        lines = [
            f"partition size: {self.layout.partition_bytes} B, "
            f"strip: {self.strip}",
            f"gap overhead: {self.gap_overhead_bytes} B "
            f"(padding at 19 elems would cost {self.padding_overhead_bytes} B)",
        ]
        if self.fully_compatible:
            lines.append("all references compatible: conflict-free layout")
        for repair in self.repairs:
            lines.append(f"repair needed: {repair}")
        for bad in self.unresolved:
            lines.append(f"UNRESOLVED incompatibility: {bad}")
        for rec in self.layout.assignments:
            lines.append(
                f"  {rec.array}: partition {rec.partition}, gap {rec.gap_bytes} B"
            )
        return "\n".join(lines)


def plan_layout(
    program: Program,
    seq: LoopSequence,
    params: Mapping[str, int],
    cache: CacheConfig,
    reference_pad: int = 19,
) -> LayoutPlan:
    """Produce the complete layout decision for ``seq`` on ``cache``."""
    fused_vars = seq[0].loop_vars
    reports = tuple(analyze_compatibility(list(seq), fused_vars))
    repairs = tuple(
        f"{r.array_a}/{r.array_b}: {r.fix}" for r in reports
        if not r.compatible and r.fix
    )
    unresolved = tuple(
        f"{r.array_a}/{r.array_b}" for r in reports
        if not r.compatible and not r.fix
    )

    used = seq.arrays()
    decls = [d for d in program.arrays if d.name in used]
    layout = partitioned_layout_from_decls(decls, params, cache)

    # Strip size: each array's per-strip footprint (strip x widest inner
    # row) must fit its partition (Sec. 4).
    inner = 1
    for nest in seq:
        row = 1
        for lp in nest.loops[1:]:
            row *= max(1, lp.trip_count(params))
        inner = max(inner, row)
    elem = decls[0].elem_size if decls else 8
    strip = max(1, layout.partition_bytes // max(1, inner * elem))

    pad_cost = padding_overhead_bytes(
        [(d.name, d.concrete_shape(params)) for d in decls],
        reference_pad,
        elem,
    )
    return LayoutPlan(
        layout=layout,
        compatibility=reports,
        repairs=repairs,
        unresolved=unresolved,
        strip=strip,
        gap_overhead_bytes=layout.gap_overhead_bytes,
        padding_overhead_bytes=pad_cost,
    )
