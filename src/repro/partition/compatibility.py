"""Compatibility analysis for cache partitioning (paper Sec. 4).

References to two arrays are *compatible* when their access matrices are
identical (``h_A = h_B``): the arrays then stream through the cache with
the same stride and direction, so partitioned starting addresses stay
conflict-free for the whole loop execution.  When the matrices differ only
by a row permutation, a stride, or a sign, the paper points out data
transforms (dimension permutation, compression/expansion, storage
reversal) that restore compatibility; this module detects those cases and
names the transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.access import ArrayRef
from ..ir.loop import LoopNest

Matrix = tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class CompatibilityReport:
    """Verdict for one pair of arrays."""

    array_a: str
    array_b: str
    compatible: bool
    fix: str | None = None  # data transform restoring compatibility, if any

    def __str__(self) -> str:
        if self.compatible:
            return f"{self.array_a} ~ {self.array_b}: compatible"
        fix = self.fix or "none known"
        return f"{self.array_a} !~ {self.array_b}: incompatible (fix: {fix})"


def _representative_matrix(
    refs: Sequence[ArrayRef], loop_vars: Sequence[str]
) -> Matrix | None:
    """The shared access matrix of an array's references, or None if the
    array's own references disagree (offsets are irrelevant)."""
    mats = {ref.access_matrix(loop_vars) for ref in refs}
    if len(mats) != 1:
        return None
    return next(iter(mats))


def _is_row_permutation(a: Matrix, b: Matrix) -> bool:
    return len(a) == len(b) and sorted(a) == sorted(b)


def _differs_by_stride(a: Matrix, b: Matrix) -> bool:
    if len(a) != len(b):
        return False
    scaled_rows = 0
    for ra, rb in zip(a, b):
        if ra == rb:
            continue
        nza = [c for c in ra if c]
        nzb = [c for c in rb if c]
        if len(nza) == 1 and len(nzb) == 1:
            ia = ra.index(nza[0])
            ib = rb.index(nzb[0])
            if ia == ib and nza[0] * nzb[0] > 0:
                scaled_rows += 1
                continue
        return False
    return scaled_rows > 0


def _differs_by_sign(a: Matrix, b: Matrix) -> bool:
    if len(a) != len(b):
        return False
    flipped = 0
    for ra, rb in zip(a, b):
        if ra == rb:
            continue
        if tuple(-c for c in ra) == rb:
            flipped += 1
            continue
        return False
    return flipped > 0


def classify_pair(
    name_a: str, mat_a: Matrix, name_b: str, mat_b: Matrix
) -> CompatibilityReport:
    if mat_a == mat_b:
        return CompatibilityReport(name_a, name_b, True)
    if _is_row_permutation(mat_a, mat_b):
        return CompatibilityReport(
            name_a, name_b, False, fix="permute array dimensions"
        )
    if _differs_by_sign(mat_a, mat_b):
        return CompatibilityReport(
            name_a, name_b, False, fix="reverse storage order in the flipped dimension"
        )
    if _differs_by_stride(mat_a, mat_b):
        return CompatibilityReport(
            name_a, name_b, False, fix="compress/expand along the strided dimension"
        )
    return CompatibilityReport(name_a, name_b, False)


def analyze_compatibility(
    nests: Sequence[LoopNest], loop_vars: Sequence[str]
) -> list[CompatibilityReport]:
    """Pairwise compatibility of every array referenced in the nests,
    restricted to the given (fused) loop variables."""
    refs_by_array: dict[str, list[ArrayRef]] = {}
    for nest in nests:
        for ref in nest.refs():
            refs_by_array.setdefault(ref.array, []).append(ref)
    mats: dict[str, Matrix] = {}
    for name, refs in refs_by_array.items():
        mat = _representative_matrix(refs, loop_vars)
        if mat is not None:
            mats[name] = mat
    names = sorted(mats)
    reports = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            reports.append(classify_pair(a, mats[a], b, mats[b]))
    return reports


def all_compatible(reports: Sequence[CompatibilityReport]) -> bool:
    return all(r.compatible for r in reports)
