"""Cache partitioning: the greedy memory-layout algorithm (paper Fig. 19).

The cache is divided into ``n_a`` equal software partitions, one per array.
Arrays are placed in memory one by one; before each placement a *gap* is
inserted so the array's starting address maps to the start of a still-free
partition, choosing the partition that minimizes the gap (the greedy step).
The result is a conflict-free mapping for compatible references: each
array's streaming window lives in its own partition and the partitions
drift through the cache in lockstep without overlapping.

For a set-associative cache of associativity ``a`` the target addresses are
computed as ``floor(p / a) * sp`` (the paper's one-line modification): ``a``
arrays may share a set range because the hardware keeps them apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..cachesim.cache import CacheConfig
from ..ir.sequence import ArrayDecl
from ..machine.memory import ArrayPlacement, MemoryLayout


@dataclass(frozen=True)
class PartitionAssignment:
    """Diagnostic record: which partition each array landed in."""

    array: str
    partition: int
    target_cache_address: int
    gap_bytes: int


@dataclass(frozen=True)
class PartitionedLayout:
    """A cache-partitioned memory layout plus its assignment records."""

    layout: MemoryLayout
    partition_bytes: int
    assignments: tuple[PartitionAssignment, ...]

    @property
    def gap_overhead_bytes(self) -> int:
        return sum(a.gap_bytes for a in self.assignments)


def greedy_memory_layout(
    arrays: Sequence[tuple[str, Sequence[int]]],
    cache: CacheConfig,
    elem_size: int = 8,
    base: int = 0,
    order: Sequence[str] | None = None,
) -> PartitionedLayout:
    """GREEDYMEMORYLAYOUT of Fig. 19 (with the set-associative refinement).

    ``arrays`` are ``(name, logical shape)`` pairs; ``order`` optionally
    fixes the placement order (the paper notes selection is arbitrary).
    """
    if not arrays:
        raise ValueError("no arrays to lay out")
    names = [name for name, _ in arrays]
    if order is not None:
        missing = set(order) ^ set(names)
        if missing:
            raise ValueError(f"order must be a permutation of arrays: {missing}")
        by_name = dict(arrays)
        arrays = [(name, by_name[name]) for name in order]

    na = len(arrays)
    way = cache.way_bytes  # conflict-mapping period (capacity of one way)
    assoc = cache.associativity
    sp = (cache.capacity_bytes // na) or cache.line_bytes  # partition size
    available = set(range(na))
    q = base
    placements: list[ArrayPlacement] = []
    records: list[PartitionAssignment] = []

    for name, shape in arrays:
        mapped = q % way
        best_p = None
        best_gap = None
        best_target = 0
        for p in sorted(available):
            target = ((p // assoc) * sp) % way
            gap = target - mapped
            if target < mapped:
                gap += way  # wraparound in the cache
            if best_gap is None or gap < best_gap:
                best_p, best_gap, best_target = p, gap, target
        available.remove(best_p)
        start = q + best_gap
        shape = tuple(int(s) for s in shape)
        pl = ArrayPlacement(name, start, shape, shape, elem_size)
        placements.append(pl)
        records.append(
            PartitionAssignment(
                array=name,
                partition=best_p,
                target_cache_address=best_target,
                gap_bytes=best_gap,
            )
        )
        q = pl.end
    return PartitionedLayout(
        layout=MemoryLayout(tuple(placements)),
        partition_bytes=sp,
        assignments=tuple(records),
    )


def partitioned_layout_from_decls(
    decls: Iterable[ArrayDecl],
    params: Mapping[str, int],
    cache: CacheConfig,
    base: int = 0,
    order: Sequence[str] | None = None,
) -> PartitionedLayout:
    decls = list(decls)
    return greedy_memory_layout(
        [(d.name, d.concrete_shape(params)) for d in decls],
        cache,
        elem_size=decls[0].elem_size if decls else 8,
        base=base,
        order=order,
    )


def max_strip_elements(
    partition_bytes: int, elem_size: int, rows_live: int = 1
) -> int:
    """Largest strip size such that each array's per-strip working set
    (``rows_live`` stencil rows of ``strip`` elements) fits in one cache
    partition (Sec. 4: larger strips overflow into neighbouring partitions
    and reintroduce conflicts)."""
    per_row = max(1, rows_live) * elem_size
    return max(1, partition_bytes // per_row)
