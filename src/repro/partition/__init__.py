"""Cache partitioning (Fig. 19), compatibility analysis, padding baseline."""

from .advisor import LayoutPlan, plan_layout
from .compatibility import (
    CompatibilityReport,
    all_compatible,
    analyze_compatibility,
    classify_pair,
)
from .greedy import (
    PartitionAssignment,
    PartitionedLayout,
    greedy_memory_layout,
    max_strip_elements,
    partitioned_layout_from_decls,
)
from .padding import (
    padded_layout,
    padded_layout_from_decls,
    padding_overhead_bytes,
    padding_sweep,
)

__all__ = [
    "CompatibilityReport",
    "LayoutPlan",
    "PartitionAssignment",
    "PartitionedLayout",
    "all_compatible",
    "analyze_compatibility",
    "classify_pair",
    "greedy_memory_layout",
    "max_strip_elements",
    "padded_layout",
    "padded_layout_from_decls",
    "padding_overhead_bytes",
    "padding_sweep",
    "partitioned_layout_from_decls",
    "plan_layout",
]
