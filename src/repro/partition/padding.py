"""Intra-array padding: the conventional baseline cache partitioning is
compared against (paper Sec. 4, Figs. 18/20).

Padding grows the innermost array dimension by a handful of elements to
perturb the mapping of data into the cache.  It helps against
self-conflicts when extents are powers of two, but its effect on
*cross*-conflicts among many arrays is erratic — which is exactly what the
padding-sweep experiments demonstrate.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..ir.sequence import ArrayDecl
from ..machine.memory import MemoryLayout, contiguous_layout


def padded_layout(
    arrays: Sequence[tuple[str, Sequence[int]]],
    pad_elems: int,
    elem_size: int = 8,
    base: int = 0,
) -> MemoryLayout:
    """Contiguous layout with every array's innermost dimension padded by
    ``pad_elems`` elements."""
    return contiguous_layout(
        arrays, elem_size=elem_size, pad_inner=pad_elems, base=base
    )


def padded_layout_from_decls(
    decls: Iterable[ArrayDecl],
    params: Mapping[str, int],
    pad_elems: int,
    base: int = 0,
) -> MemoryLayout:
    decls = list(decls)
    return padded_layout(
        [(d.name, d.concrete_shape(params)) for d in decls],
        pad_elems,
        elem_size=decls[0].elem_size if decls else 8,
        base=base,
    )


def padding_sweep(pad_max: int = 21, step: int = 2) -> list[int]:
    """The padding amounts swept in Figs. 18/20: 1, 3, 5, ..., 21."""
    return list(range(1, pad_max + 1, step))


def padding_overhead_bytes(
    arrays: Sequence[tuple[str, Sequence[int]]], pad_elems: int, elem_size: int = 8
) -> int:
    """Memory wasted by padding: pad columns times the product of the outer
    dimensions, summed over arrays."""
    total = 0
    for _, shape in arrays:
        outer = 1
        for extent in shape[:-1]:
            outer *= int(extent)
        total += outer * pad_elems * elem_size
    return total
