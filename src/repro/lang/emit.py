"""Source emission for transformed loops (the source-to-source back end).

Two renderings of a shift-and-peel plan are produced:

* :func:`emit_stripmined` — the strip-mined fused form of paper Fig. 12 for
  a generic processor block ``istart..iend``: a fused control loop, inner
  loops with shift/peel folded into ``min``/``max`` bounds, a barrier and
  the peeled boundary loops.
* :func:`emit_spmd` — the multidimensional SPMD form of paper Fig. 16: a
  prologue computing the block bounds and boundary-case peel-control
  variables from the processor id, then the fused nest and the peeled
  rectangles.

Both return plain text in the same DSL the parser accepts (modulo the
``min``/``max``/runtime symbols, which are for human consumption).
"""

from __future__ import annotations

from typing import Sequence

from ..core.derive import ShiftPeelPlan
from ..ir.loop import LoopNest
from ..ir.stmt import Assign

IND = "    "


def _off(base: str, delta: int) -> str:
    """Format ``base + delta`` readably (``iend``, ``iend+2``, ``iend-1``)."""
    if delta == 0:
        return base
    return f"{base}+{delta}" if delta > 0 else f"{base}{delta}"


def _stmt_text(st: Assign) -> str:
    return str(st)


def _shifted_body(nest: LoopNest, fused_vars: Sequence[str], shifts: Sequence[int]):
    """Body statements with fused vars substituted ``v -> v - shift``
    (iteration ``i`` executes at position ``i + shift``)."""
    body = nest.body
    for var, s in zip(fused_vars, shifts):
        if s:
            body = tuple(st.shift_var(var, -s) for st in body)
    return body


def emit_stripmined(
    plan: ShiftPeelPlan,
    strip: int | str = "s",
    istart: str = "istart",
    iend: str = "iend",
) -> str:
    """Fig. 12 rendering for one fused dimension (depth-1 plans).

    Deeper (non-fused) loop levels are emitted unchanged inside each strip.
    """
    if plan.depth != 1:
        raise ValueError("emit_stripmined renders depth-1 plans; use emit_spmd")
    var = plan.dims[0].var
    s = str(strip)
    lines: list[str] = []
    lines.append(f"do {var}{var} = {istart}, {iend}, {s}")
    for k, nest in enumerate(plan.seq):
        shift = plan.shift(k, 0)
        gpeel = plan.peel(k, 0)
        lo_terms = [f"{var}{var}" if shift == 0 else f"{var}{var}-{shift}"]
        hi_terms = [f"{var}{var}+{s}-{1 + shift}"]
        if gpeel or shift:
            lo_terms.append(f"{istart}+{gpeel}" if gpeel else istart)
            hi_terms.append(f"{iend}-{shift}" if shift else iend)
        lo = lo_terms[0] if len(lo_terms) == 1 else f"max({','.join(lo_terms)})"
        hi = hi_terms[0] if len(hi_terms) == 1 else f"min({','.join(hi_terms)})"
        lines.append(f"{IND}do {var} = {lo}, {hi}")
        depth_inner = nest.depth - 1
        for lvl in range(1, nest.depth):
            lp = nest.loops[lvl]
            lines.append(f"{IND * (lvl + 1)}do {lp.var} = {lp.lower}, {lp.upper}")
        for st in nest.body:
            lines.append(f"{IND * (depth_inner + 2)}{_stmt_text(st)}")
        for lvl in reversed(range(1, nest.depth)):
            lines.append(f"{IND * (lvl + 1)}end do")
        lines.append(f"{IND}end do")
    lines.append("end do")

    if any(plan.shift(k, 0) or plan.peel(k, 0) for k in range(plan.num_nests)):
        lines.append("<BARRIER>")
        for k, nest in enumerate(plan.seq):
            shift = plan.shift(k, 0)
            gpeel = plan.peel(k, 0)
            if shift == 0 and gpeel == 0:
                continue
            lo = _off(iend, 1 - shift)
            hi = _off(iend, gpeel)
            lines.append(f"do {var} = {lo}, {hi}")
            for lvl in range(1, nest.depth):
                lp = nest.loops[lvl]
                lines.append(f"{IND * lvl}do {lp.var} = {lp.lower}, {lp.upper}")
            for st in nest.body:
                lines.append(f"{IND * nest.depth}{_stmt_text(st)}")
            for lvl in reversed(range(1, nest.depth)):
                lines.append(f"{IND * lvl}end do")
            lines.append("end do")
    return "\n".join(lines)


def emit_direct(plan: ShiftPeelPlan, istart: str = "istart", iend: str = "iend") -> str:
    """Fig. 11(a) rendering: the direct method with guarded statements and
    shifted subscripts (one fused dimension)."""
    if plan.depth != 1:
        raise ValueError("emit_direct renders depth-1 plans")
    var = plan.dims[0].var
    lines = [f"do {var} = {istart}, {iend}"]
    for k, nest in enumerate(plan.seq):
        shift = plan.shift(k, 0)
        body = _shifted_body(nest, (var,), (shift,))
        for st in body:
            guard = f"if ({var} >= {istart}+{shift}) " if shift else ""
            lines.append(f"{IND}{guard}{_stmt_text(st)}")
    lines.append("end do")
    epilogue: list[str] = []
    for k, nest in enumerate(plan.seq):
        shift = plan.shift(k, 0)
        if not shift:
            continue
        epilogue.append(f"do {var} = {_off(iend, 1 - shift)}, {iend}")
        for st in nest.body:
            epilogue.append(f"{IND}{_stmt_text(st)}")
        epilogue.append("end do")
    if epilogue:
        lines.append("! iterations moved out of the fused loop by shifting")
        lines.extend(epilogue)
    return "\n".join(lines)


def emit_spmd(plan: ShiftPeelPlan, grid_names: Sequence[str] | None = None) -> str:
    """Fig. 16 rendering: prologue + fused nest + peeled rectangles.

    ``grid_names`` names the processor-grid axes (defaults to the fused
    loop variables).  The output is illustrative SPMD pseudo-code — the
    executable equivalent lives in :mod:`repro.core.execplan`.
    """
    fused_vars = [d.var for d in plan.dims]
    names = list(grid_names) if grid_names else fused_vars
    lines: list[str] = []
    # --- prologue: block bounds and boundary-case control variables ------
    for d, v in enumerate(fused_vars):
        g = names[d]
        lines += [
            f"{g}p      = <grid coordinate of this processor along {g}>",
            f"{v}blksz  = {v}_trip_count / {g.upper()}NPROCS",
            f"{v}start  = {v}_lo + {g}p * {v}blksz",
            f"{v}end    = ({g}p == {g.upper()}NPROCS-1) ? {v}_hi : {v}start + {v}blksz - 1",
            f"{v}fpeel  = ({g}p == 0) ? 0 : <peel at leading boundary>",
            f"{v}ppeel  = ({g}p == {g.upper()}NPROCS-1) ? 0 : <peel at trailing boundary>",
        ]
    lines.append("")
    # --- fused nest (strip-mined control loops) ----------------------------
    for d, v in enumerate(fused_vars):
        lines.append(f"{IND * d}do {v}{v} = {v}start, {v}end, s{v}")
    base = len(fused_vars)
    for k, nest in enumerate(plan.seq):
        for d, v in enumerate(fused_vars):
            shift = plan.shift(k, d)
            gpeel = plan.peel(k, d)
            lo = f"max({v}{v}-{shift},{v}start+{v}fpeel)" if (shift or gpeel) else f"{v}{v}"
            hi = (
                f"min({v}{v}+s{v}-{1 + shift},{v}end-{shift})"
                if shift
                else f"min({v}{v}+s{v}-1,{v}end)"
            )
            lines.append(f"{IND * (base + d)}do {v} = {lo}, {hi}")
        for st in nest.body:
            lines.append(f"{IND * (base + len(fused_vars))}{_stmt_text(st)}")
        for d in reversed(range(len(fused_vars))):
            lines.append(f"{IND * (base + d)}end do")
    for d in reversed(range(len(fused_vars))):
        lines.append(f"{IND * d}end do")
    lines.append("<BARRIER>")
    # --- peeled rectangles (Fig. 16's post-barrier loops) ------------------
    for k, nest in enumerate(plan.seq):
        if all(
            plan.shift(k, d) == 0 and plan.peel(k, d) == 0
            for d in range(plan.depth)
        ):
            continue
        for pivot in range(plan.depth):
            v = fused_vars[pivot]
            shift = plan.shift(k, pivot)
            gpeel = plan.peel(k, pivot)
            if shift == 0 and gpeel == 0:
                continue
            hdr: list[str] = []
            for d2 in range(plan.depth):
                v2 = fused_vars[d2]
                s2 = plan.shift(k, d2)
                if d2 < pivot:
                    hdr.append(f"do {v2} = {v2}start+{v2}fpeel, {v2}end-{s2}")
                elif d2 == pivot:
                    hdr.append(
                        f"do {v2} = {_off(f'{v2}end', 1 - s2)}, {v2}end+{v2}ppeel"
                    )
                else:
                    hdr.append(f"do {v2} = {v2}start+{v2}fpeel, {v2}end+{v2}ppeel")
            for d2, h in enumerate(hdr):
                lines.append(f"{IND * d2}{h}")
            for st in nest.body:
                lines.append(f"{IND * plan.depth}{_stmt_text(st)}")
            for d2 in reversed(range(plan.depth)):
                lines.append(f"{IND * d2}end do")
    return "\n".join(lines)
