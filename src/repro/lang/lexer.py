"""Tokenizer for the Fortran-like loop DSL.

The surface syntax is the pseudo-code the paper uses in its figures::

    param n
    real a(n+1), b(n+1)
    doall i = 2, n-1
        a[i] = b[i-1]
    end do

Comments start with ``!``.  Both ``a[i]`` and ``a(i)`` subscript forms are
accepted (the printer emits brackets; the paper's figures mix both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


KEYWORDS = {"do", "doall", "end", "param", "real", "barrier"}

SYMBOLS = {
    "=": "EQUALS",
    ",": "COMMA",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'ID' | 'NUM' | 'NEWLINE' | 'EOF' | keyword upper | symbol name
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


class LexError(SyntaxError):
    pass


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("!", 1)[0]
        col = 0
        emitted = False
        while col < len(line):
            ch = line[col]
            if ch in " \t":
                col += 1
                continue
            if ch.isdigit():
                start = col
                while col < len(line) and (line[col].isdigit() or line[col] == "."):
                    col += 1
                tokens.append(Token("NUM", line[start:col], lineno, start + 1))
                emitted = True
                continue
            if ch.isalpha() or ch == "_":
                start = col
                while col < len(line) and (line[col].isalnum() or line[col] == "_"):
                    col += 1
                word = line[start:col]
                kind = word.upper() if word.lower() in KEYWORDS else "ID"
                text = word.lower() if kind != "ID" else word
                tokens.append(Token(kind, text, lineno, start + 1))
                emitted = True
                continue
            if ch in SYMBOLS:
                tokens.append(Token(SYMBOLS[ch], ch, lineno, col + 1))
                col += 1
                emitted = True
                continue
            raise LexError(f"unexpected character {ch!r} at line {lineno}, col {col + 1}")
        if emitted:
            tokens.append(Token("NEWLINE", "\n", lineno, len(line) + 1))
    tokens.append(Token("EOF", "", len(source.splitlines()) + 1, 1))
    return tokens


def strip_newlines(tokens: Iterator[Token]) -> list[Token]:
    """Collapse runs of NEWLINE tokens (blank lines are insignificant)."""
    out: list[Token] = []
    for tok in tokens:
        if tok.kind == "NEWLINE" and (not out or out[-1].kind == "NEWLINE"):
            continue
        out.append(tok)
    return out
