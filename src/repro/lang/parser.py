"""Recursive-descent parser: DSL source -> :class:`repro.ir.Program`.

The grammar (statements are newline-terminated)::

    program   := { decl } { nest }
    decl      := 'param' ID { ',' ID } | 'real' arraydecl { ',' arraydecl }
    arraydecl := ID '(' affine { ',' affine } ')'
    nest      := ('do'|'doall') ID '=' affine ',' affine NL body 'end' 'do'
    body      := { nest | stmt }
    stmt      := ref '=' arith NL
    ref       := ID ('[' affine { ',' affine } ']' | '(' affine { ',' affine } ')')
    arith     := term { ('+'|'-') term }
    term      := factor { ('*'|'/') factor }
    factor    := NUM | ref-or-var | '(' arith ')' | '-' factor

Subscripts and bounds must be affine; arbitrary arithmetic is only allowed
on the right-hand side of assignments.  Consecutive top-level nests form a
single loop sequence (the paper's admissible parallel loop sequence).
"""

from __future__ import annotations

from typing import Optional

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, LoopSequence, Program
from ..ir.stmt import Assign, BinOp, Const, Expr, Load, UnaryOp
from ..ir.access import ArrayRef
from .lexer import Token, strip_newlines, tokenize


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, source: str, name: str = "program"):
        self.tokens = strip_newlines(tokenize(source))
        self.pos = 0
        self.name = name
        self.params: list[str] = []
        self.arrays: list[ArrayDecl] = []

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, got {tok}")
        return tok

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.next()
        return None

    def skip_newlines(self) -> None:
        while self.accept("NEWLINE"):
            pass

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> Program:
        self.skip_newlines()
        while self.peek().kind in ("PARAM", "REAL"):
            self.parse_decl()
            self.skip_newlines()
        # Adjacent nests form one admissible sequence; an explicit
        # ``barrier`` line separates sequences (intervening code in the
        # original program that keeps the neighbours from being fused).
        groups: list[list[LoopNest]] = [[]]
        while self.peek().kind in ("DO", "DOALL", "BARRIER"):
            if self.accept("BARRIER"):
                if self.peek().kind == "NEWLINE":
                    self.next()
                self.skip_newlines()
                if groups[-1]:
                    groups.append([])
                continue
            groups[-1].append(self.parse_nest())
            self.skip_newlines()
        if self.peek().kind != "EOF":
            raise ParseError(f"unexpected token {self.peek()}")
        groups = [g for g in groups if g]
        if not groups:
            raise ParseError("program contains no loop nests")
        nests = [nest for group in groups for nest in group]
        if not self.params:
            self.params = sorted(self._free_names(nests))
        sequences = tuple(
            LoopSequence(tuple(group), name=f"{self.name}.seq{idx + 1}")
            if len(groups) > 1
            else LoopSequence(tuple(group), name=f"{self.name}.seq")
            for idx, group in enumerate(groups)
        )
        if not self.arrays:
            self.arrays = self._infer_arrays(nests)
        return Program(
            arrays=tuple(self.arrays),
            sequences=sequences,
            params=tuple(self.params),
            name=self.name,
        )

    def parse_decl(self) -> None:
        tok = self.next()
        if tok.kind == "PARAM":
            self.params.append(self.expect("ID").text)
            while self.accept("COMMA"):
                self.params.append(self.expect("ID").text)
        else:  # REAL
            self.arrays.append(self._array_decl())
            while self.accept("COMMA"):
                self.arrays.append(self._array_decl())
        self.expect("NEWLINE")

    def _array_decl(self) -> ArrayDecl:
        name = self.expect("ID").text
        self.expect("LPAREN")
        dims = [self.parse_affine()]
        while self.accept("COMMA"):
            dims.append(self.parse_affine())
        self.expect("RPAREN")
        return ArrayDecl(name, tuple(dims))

    def parse_nest(self) -> LoopNest:
        loops: list[Loop] = []
        tok = self.peek()
        while tok.kind in ("DO", "DOALL"):
            self.next()
            var = self.expect("ID").text
            self.expect("EQUALS")
            lower = self.parse_affine()
            self.expect("COMMA")
            upper = self.parse_affine()
            self.expect("NEWLINE")
            loops.append(Loop(var, lower, upper, parallel=(tok.kind == "DOALL")))
            self.skip_newlines()
            tok = self.peek()
        body: list[Assign] = []
        while self.peek().kind == "ID":
            body.append(self.parse_stmt())
            self.skip_newlines()
        for _ in loops:
            self.expect("END")
            self.expect("DO")
            if self.peek().kind == "NEWLINE":
                self.next()
            self.skip_newlines()
        return LoopNest(tuple(loops), tuple(body))

    def parse_stmt(self) -> Assign:
        target = self.parse_ref()
        if target is None:
            raise ParseError(f"assignment target must be subscripted: {self.peek()}")
        self.expect("EQUALS")
        rhs = self.parse_arith()
        if self.peek().kind == "NEWLINE":
            self.next()
        return Assign(target, rhs)

    def parse_ref(self) -> Optional[ArrayRef]:
        name = self.expect("ID").text
        open_kind = self.peek().kind
        if open_kind not in ("LBRACKET", "LPAREN"):
            self.pos -= 1
            return None
        close_kind = "RBRACKET" if open_kind == "LBRACKET" else "RPAREN"
        self.next()
        subs = [self.parse_affine()]
        while self.accept("COMMA"):
            subs.append(self.parse_affine())
        self.expect(close_kind)
        return ArrayRef(name, tuple(subs))

    # -- affine expressions (subscripts, bounds) ---------------------------

    def parse_affine(self) -> Affine:
        expr = self.parse_affine_term()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = self.next().kind
            term = self.parse_affine_term()
            expr = expr + term if op == "PLUS" else expr - term
        return expr

    def parse_affine_term(self) -> Affine:
        neg = False
        while self.peek().kind == "MINUS":
            self.next()
            neg = not neg
        tok = self.next()
        if tok.kind == "NUM":
            if "." in tok.text:
                raise ParseError(f"subscripts must be integers: {tok}")
            value = int(tok.text)
            if self.accept("STAR"):
                var = self.expect("ID").text
                result = Affine.var(var, value)
            else:
                result = Affine.constant(value)
        elif tok.kind == "ID":
            result = Affine.var(tok.text)
        elif tok.kind == "LPAREN":
            result = self.parse_affine()
            self.expect("RPAREN")
        else:
            raise ParseError(f"expected affine term, got {tok}")
        return -result if neg else result

    # -- arithmetic (RHS) ----------------------------------------------------

    def parse_arith(self) -> Expr:
        expr = self.parse_term()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = "+" if self.next().kind == "PLUS" else "-"
            expr = BinOp(op, expr, self.parse_term())
        return expr

    def parse_term(self) -> Expr:
        expr = self.parse_factor()
        while self.peek().kind in ("STAR", "SLASH"):
            op = "*" if self.next().kind == "STAR" else "/"
            expr = BinOp(op, expr, self.parse_factor())
        return expr

    def parse_factor(self) -> Expr:
        tok = self.peek()
        if tok.kind == "MINUS":
            self.next()
            return UnaryOp("-", self.parse_factor())
        if tok.kind == "NUM":
            self.next()
            return Const(float(tok.text))
        if tok.kind == "LPAREN":
            self.next()
            expr = self.parse_arith()
            self.expect("RPAREN")
            return expr
        if tok.kind == "ID":
            # Could be a subscripted ref or a scalar parameter use.
            ref = self.parse_ref()
            if ref is not None:
                return Load(ref)
            name = self.expect("ID").text
            raise ParseError(
                f"scalar variable {name!r} on RHS is outside the program model"
            )
        raise ParseError(f"expected expression, got {tok}")

    # -- inference helpers -------------------------------------------------

    def _free_names(self, nests: list[LoopNest]) -> set[str]:
        free: set[str] = set()
        for nest in nests:
            bound = set(nest.loop_vars)
            for lp in nest.loops:
                free |= set(lp.lower.names) | set(lp.upper.names)
            for st in nest.body:
                for ref in st.refs():
                    for sub in ref.subscripts:
                        free |= set(sub.names) - bound
        return free

    def _infer_arrays(self, nests: list[LoopNest]) -> list[ArrayDecl]:
        """Without ``real`` declarations, infer ``(n+1, ...)`` shapes —
        adequate for examples and tests."""
        n_plus = Affine.var("n") + 1 if "n" in self.params else Affine.constant(64)
        ndims: dict[str, int] = {}
        for nest in nests:
            for st in nest.body:
                for ref in st.refs():
                    ndims[ref.array] = max(ndims.get(ref.array, 0), ref.ndim)
        return [
            ArrayDecl(name, tuple([n_plus] * nd)) for name, nd in sorted(ndims.items())
        ]


def parse_program(source: str, name: str = "program") -> Program:
    """Parse DSL source into a :class:`~repro.ir.sequence.Program`."""
    return Parser(source, name).parse_program()


def parse_sequence(source: str, name: str = "seq") -> LoopSequence:
    """Parse DSL source consisting only of loop nests into a sequence."""
    return parse_program(source, name).sequences[0]
