"""Source-to-source front end: the Fortran-like loop DSL.

``parse_program``/``parse_sequence`` turn DSL text into IR;
``transform_source`` is the one-call source-to-source driver:
parse -> analyze -> derive shift-and-peel -> emit transformed source.
"""

from __future__ import annotations

from ..core.fuse import fuse_sequence
from .emit import emit_direct, emit_spmd, emit_stripmined
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_program, parse_sequence


def transform_source(source: str, name: str = "program", style: str = "stripmined") -> str:
    """Parse DSL source, apply shift-and-peel, emit transformed source.

    ``style`` selects the rendering: ``'stripmined'`` (Fig. 12),
    ``'direct'`` (Fig. 11(a)) or ``'spmd'`` (Fig. 16).
    """
    program = parse_program(source, name)
    seq = program.sequences[0]
    result = fuse_sequence(seq, program.params)
    if style == "stripmined":
        if result.depth == 1:
            return emit_stripmined(result.plan)
        return emit_spmd(result.plan)
    if style == "direct":
        return emit_direct(result.plan)
    if style == "spmd":
        return emit_spmd(result.plan)
    raise ValueError(f"unknown style {style!r}")


__all__ = [
    "LexError",
    "ParseError",
    "Token",
    "emit_direct",
    "emit_spmd",
    "emit_stripmined",
    "parse_program",
    "parse_sequence",
    "tokenize",
    "transform_source",
]
