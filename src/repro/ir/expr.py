"""Affine index expressions.

Every subscript, loop bound and guard in the IR is an affine expression
``sum(coeff_v * v) + const`` over symbolic names (loop index variables and
size parameters such as ``n``).  Affine expressions are immutable and
hashable so they can be used as dictionary keys and set members during
dependence analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class Affine:
    """An affine expression ``sum(coeffs[v] * v) + const``.

    ``coeffs`` is stored as a sorted tuple of ``(name, coefficient)`` pairs
    with zero coefficients removed, which makes structural equality and
    hashing canonical.
    """

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    # -- construction -----------------------------------------------------

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), int(value))

    @staticmethod
    def var(name: str, coeff: int = 1, const: int = 0) -> "Affine":
        if coeff == 0:
            return Affine((), const)
        return Affine(((name, int(coeff)),), int(const))

    @staticmethod
    def from_dict(coeffs: Mapping[str, int], const: int = 0) -> "Affine":
        items = tuple(sorted((v, int(c)) for v, c in coeffs.items() if c != 0))
        return Affine(items, int(const))

    def __post_init__(self) -> None:
        # Canonicalize: sorted, non-zero coefficients only.
        cleaned = tuple(sorted((v, int(c)) for v, c in self.coeffs if c != 0))
        object.__setattr__(self, "coeffs", cleaned)
        object.__setattr__(self, "const", int(self.const))

    # -- queries ----------------------------------------------------------

    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 if absent)."""
        for v, c in self.coeffs:
            if v == name:
                return c
        return 0

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def depends_on(self, name: str) -> bool:
        return any(v == name for v, _ in self.coeffs)

    def uses_only(self, names: Iterable[str]) -> bool:
        allowed = set(names)
        return all(v in allowed for v, _ in self.coeffs)

    # -- arithmetic -------------------------------------------------------

    def _combine(self, other: "Affine | int", sign: int) -> "Affine":
        other = _as_affine(other)
        merged: dict[str, int] = dict(self.coeffs)
        for v, c in other.coeffs:
            merged[v] = merged.get(v, 0) + sign * c
        return Affine.from_dict(merged, self.const + sign * other.const)

    def __add__(self, other: "Affine | int") -> "Affine":
        return self._combine(other, +1)

    __radd__ = __add__

    def __sub__(self, other: "Affine | int") -> "Affine":
        return self._combine(other, -1)

    def __rsub__(self, other: "Affine | int") -> "Affine":
        return _as_affine(other)._combine(self, -1)

    def __neg__(self) -> "Affine":
        return self.scale(-1)

    def scale(self, k: int) -> "Affine":
        if k == 0:
            return Affine.constant(0)
        return Affine.from_dict({v: c * k for v, c in self.coeffs}, self.const * k)

    def __mul__(self, k: int) -> "Affine":
        if not isinstance(k, int):
            raise TypeError("affine expressions only scale by integers")
        return self.scale(k)

    __rmul__ = __mul__

    def shift_var(self, name: str, delta: int) -> "Affine":
        """Substitute ``name -> name + delta`` (used to implement shifting)."""
        c = self.coeff(name)
        if c == 0 or delta == 0:
            return self
        return Affine(self.coeffs, self.const + c * delta)

    def substitute(self, name: str, replacement: "Affine | int") -> "Affine":
        """Substitute ``name -> replacement``."""
        c = self.coeff(name)
        if c == 0:
            return self
        rest = Affine.from_dict(
            {v: cc for v, cc in self.coeffs if v != name}, self.const
        )
        return rest + _as_affine(replacement).scale(c)

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        return Affine.from_dict(
            {mapping.get(v, v): c for v, c in self.coeffs}, self.const
        )

    # -- evaluation / printing --------------------------------------------

    def eval(self, env: Mapping[str, int]) -> int:
        total = self.const
        for v, c in self.coeffs:
            total += c * env[v]
        return total

    def __str__(self) -> str:
        parts: list[str] = []
        for v, c in self.coeffs:
            if c == 1:
                term = v
            elif c == -1:
                term = f"-{v}"
            else:
                term = f"{c}*{v}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        if self.const or not parts:
            if parts and self.const >= 0:
                parts.append(f"+{self.const}")
            else:
                parts.append(str(self.const))
        return "".join(parts)


def _as_affine(value: "Affine | int") -> Affine:
    if isinstance(value, Affine):
        return value
    if isinstance(value, int):
        return Affine.constant(value)
    raise TypeError(f"cannot coerce {value!r} to an affine expression")


def as_affine(value: "Affine | int | str") -> Affine:
    """Public coercion helper: ints become constants, strings become vars."""
    if isinstance(value, str):
        return Affine.var(value)
    return _as_affine(value)


@dataclass(frozen=True)
class BoundExpr:
    """A loop bound of the form ``min(...)`` / ``max(...)`` over affines.

    Plain affine bounds are represented with a single term and ``kind='affine'``.
    Generated (strip-mined / peeled) code needs ``min``/``max`` bounds, e.g.
    ``max(ii-1, istart+1)`` in Fig. 12 of the paper.
    """

    kind: str  # 'affine' | 'min' | 'max'
    terms: tuple[Affine, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ("affine", "min", "max"):
            raise ValueError(f"bad bound kind {self.kind!r}")
        if self.kind == "affine" and len(self.terms) != 1:
            raise ValueError("affine bound must have exactly one term")
        if not self.terms:
            raise ValueError("bound must have at least one term")

    @staticmethod
    def affine(term: "Affine | int | str") -> "BoundExpr":
        return BoundExpr("affine", (as_affine(term),))

    @staticmethod
    def minimum(*terms: "Affine | int | str") -> "BoundExpr":
        ts = tuple(as_affine(t) for t in terms)
        return BoundExpr("affine", ts) if len(ts) == 1 else BoundExpr("min", ts)

    @staticmethod
    def maximum(*terms: "Affine | int | str") -> "BoundExpr":
        ts = tuple(as_affine(t) for t in terms)
        return BoundExpr("affine", ts) if len(ts) == 1 else BoundExpr("max", ts)

    def eval(self, env: Mapping[str, int]) -> int:
        values = [t.eval(env) for t in self.terms]
        if self.kind == "min":
            return min(values)
        if self.kind == "max":
            return max(values)
        return values[0]

    def shift(self, delta: int) -> "BoundExpr":
        return BoundExpr(self.kind, tuple(t + delta for t in self.terms))

    def __str__(self) -> str:
        if self.kind == "affine":
            return str(self.terms[0])
        inner = ",".join(str(t) for t in self.terms)
        return f"{self.kind}({inner})"
