"""Loop-nest intermediate representation for the program model of the paper.

Public surface:

* :class:`~repro.ir.expr.Affine` / :class:`~repro.ir.expr.BoundExpr` — affine
  index arithmetic.
* :class:`~repro.ir.access.ArrayRef` — subscripted array references.
* :mod:`~repro.ir.stmt` — expression trees and assignments.
* :class:`~repro.ir.loop.Loop` / :class:`~repro.ir.loop.LoopNest` — loop nests.
* :class:`~repro.ir.sequence.LoopSequence` / :class:`~repro.ir.sequence.Program`.
* :mod:`~repro.ir.validate` — admissibility checks (Appendix Def. 1).
* :mod:`~repro.ir.printer` — Fortran-like pretty printer.
"""

from .access import ArrayRef, compatible
from .expr import Affine, BoundExpr, as_affine
from .loop import Loop, LoopNest
from .printer import format_nest, format_program, format_sequence, side_by_side
from .sequence import ArrayDecl, LoopSequence, Program, single_sequence_program
from .stmt import Assign, BinOp, Const, Expr, Load, UnaryOp, as_expr, assign, load
from .transforms import (
    TransformError,
    distribute_nest,
    interchange,
    interchange_legal,
    reversal_legal,
    strip_mine,
)
from .validate import (
    AdmissibilityError,
    AdmissibilityReport,
    canonical_fused_vars,
    validate_program,
    validate_sequence,
)

__all__ = [
    "Affine",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "AdmissibilityError",
    "AdmissibilityReport",
    "BinOp",
    "BoundExpr",
    "Const",
    "Expr",
    "Load",
    "Loop",
    "LoopNest",
    "LoopSequence",
    "Program",
    "TransformError",
    "UnaryOp",
    "as_affine",
    "as_expr",
    "assign",
    "canonical_fused_vars",
    "compatible",
    "distribute_nest",
    "format_nest",
    "interchange",
    "interchange_legal",
    "format_program",
    "format_sequence",
    "load",
    "reversal_legal",
    "side_by_side",
    "strip_mine",
    "single_sequence_program",
    "validate_program",
    "validate_sequence",
]
