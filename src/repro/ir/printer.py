"""Pretty-printing of the IR as Fortran-like ``do/doall`` pseudo-code.

The printed form round-trips through :mod:`repro.lang` (the parser accepts
exactly this syntax), which is what makes the package a true
source-to-source transformer.
"""

from __future__ import annotations


from .loop import LoopNest
from .sequence import LoopSequence, Program


INDENT = "    "


def format_nest(nest: LoopNest, indent: int = 0) -> str:
    lines: list[str] = []
    for level, lp in enumerate(nest.loops):
        lines.append(f"{INDENT * (indent + level)}{lp}")
    body_pad = INDENT * (indent + nest.depth)
    for st in nest.body:
        lines.append(f"{body_pad}{st}")
    for level in reversed(range(nest.depth)):
        lines.append(f"{INDENT * (indent + level)}end do")
    return "\n".join(lines)


def format_sequence(seq: LoopSequence) -> str:
    return "\n".join(format_nest(nest) for nest in seq)


def format_program(program: Program) -> str:
    lines = [f"! program {program.name}"]
    if program.params:
        lines.append(f"param {', '.join(program.params)}")
    for decl in program.arrays:
        dims = ",".join(str(s) for s in decl.shape)
        lines.append(f"real {decl.name}({dims})")
    for seq in program.sequences:
        lines.append(f"! sequence {seq.name}")
        lines.append(format_sequence(seq))
    return "\n".join(lines)


def side_by_side(left: str, right: str, gutter: str = "  |  ") -> str:
    """Two code listings side by side (used by examples for before/after)."""
    lls = left.splitlines() or [""]
    rls = right.splitlines() or [""]
    width = max(len(line) for line in lls)
    out = []
    for idx in range(max(len(lls), len(rls))):
        lline = lls[idx] if idx < len(lls) else ""
        rline = rls[idx] if idx < len(rls) else ""
        out.append(f"{lline.ljust(width)}{gutter}{rline}")
    return "\n".join(out)
