"""Array references with affine subscripts.

A reference ``A[f(i)]`` is ``f(i) = h_A . i + c`` where ``h_A`` is the
``k x l`` access matrix (array dimensionality ``k`` by loop depth ``l``)
and ``c`` the constant offset vector — the representation used by the
paper's compatibility condition for cache partitioning (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .expr import Affine, as_affine


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted reference to ``array`` with one affine per dimension."""

    array: str
    subscripts: tuple[Affine, ...]

    @staticmethod
    def make(array: str, *subscripts: "Affine | int | str") -> "ArrayRef":
        return ArrayRef(array, tuple(as_affine(s) for s in subscripts))

    @property
    def ndim(self) -> int:
        return len(self.subscripts)

    def access_matrix(self, loop_vars: Sequence[str]) -> tuple[tuple[int, ...], ...]:
        """The ``h`` matrix: rows = array dims, cols = loop variables."""
        return tuple(
            tuple(sub.coeff(v) for v in loop_vars) for sub in self.subscripts
        )

    def offset_vector(self) -> tuple[int, ...]:
        """The constant offset ``c`` of each subscript."""
        return tuple(sub.const for sub in self.subscripts)

    def index_tuple(self, env: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(sub.eval(env) for sub in self.subscripts)

    def shift_var(self, name: str, delta: int) -> "ArrayRef":
        return ArrayRef(
            self.array, tuple(s.shift_var(name, delta) for s in self.subscripts)
        )

    def rename_vars(self, mapping: Mapping[str, str]) -> "ArrayRef":
        return ArrayRef(self.array, tuple(s.rename(mapping) for s in self.subscripts))

    def uses_only(self, names: Sequence[str]) -> bool:
        return all(s.uses_only(names) for s in self.subscripts)

    def __str__(self) -> str:
        return f"{self.array}[{','.join(str(s) for s in self.subscripts)}]"


def compatible(
    ref_a: ArrayRef, ref_b: ArrayRef, loop_vars: Sequence[str]
) -> bool:
    """Paper Sec. 4: references are *compatible* iff ``h_A == h_B``.

    Compatibility guarantees cache partitions drift through the cache in
    lockstep and never overlap once the starting addresses are partitioned.
    """
    return ref_a.access_matrix(loop_vars) == ref_b.access_matrix(loop_vars)
