"""Elementary loop transformations at the IR level.

Shift-and-peel composes with the classic toolbox (Sec. 2.4 situates it
among permutation, tiling, distribution, strip-mining).  This module
implements the ones useful around fusion:

* **distribution** — split a multi-statement nest into a sequence of
  smaller nests (the inverse of fusion; Kennedy & McKinley drive locality
  with fusion *and* distribution).  Statements are grouped by strongly
  connected components of the statement-level dependence graph, emitted in
  topological order, so distribution is always legal.
* **interchange** — swap two loop levels (legality: no dependence with
  direction ``(<, >)`` across the swapped levels).
* **strip-mining** — split one level into control + element loops; always
  legal.
* **reversal** check — whether a loop may run backwards.
"""

from __future__ import annotations

from typing import Sequence

from ..dependence.solver import solve_uniform_distance
from .expr import Affine
from .loop import Loop, LoopNest
from .sequence import LoopSequence


class TransformError(ValueError):
    """Raised when a transformation is illegal or out of model."""


# ---------------------------------------------------------------------------
# Statement-level dependences within one nest
# ---------------------------------------------------------------------------


def _stmt_deps(nest: LoopNest) -> list[tuple[int, int]]:
    """Edges (s1 -> s2) meaning statement s2 must stay after s1 within the
    nest body (flow/anti/output at any distance, conservatively)."""
    edges: set[tuple[int, int]] = set()
    vars_ = nest.loop_vars
    sites = []
    for idx, st in enumerate(nest.body):
        for ref in st.reads():
            sites.append((idx, ref, False))
        sites.append((idx, st.target, True))
    for i1, ref1, w1 in sites:
        for i2, ref2, w2 in sites:
            if ref1.array != ref2.array or not (w1 or w2):
                continue
            sol = solve_uniform_distance(ref1, ref2, vars_, ())
            if sol.status == "independent":
                continue
            if i1 == i2:
                continue
            # Conservative: order by original statement order.
            lo, hi = min(i1, i2), max(i1, i2)
            edges.add((lo, hi))
    return sorted(edges)


def _sccs(num: int, edges: Sequence[tuple[int, int]]) -> list[list[int]]:
    """Strongly connected components in topological order.

    With edges only pointing from earlier to later statements (the
    conservative ordering above) every SCC is a singleton, but the general
    algorithm (iterative Tarjan) is implemented so a sharper dependence
    test can be dropped in without touching callers.
    """
    adj: dict[int, list[int]] = {k: [] for k in range(num)}
    for a, b in edges:
        adj[a].append(b)
    index = {}
    low = {}
    on_stack = set()
    stack: list[int] = []
    out: list[list[int]] = []
    counter = [0]

    def strongconnect(v0: int) -> None:
        work = [(v0, 0)]
        while work:
            v, pi = work.pop()
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            recurse = False
            for i in range(pi, len(adj[v])):
                w = adj[v][i]
                if w not in index:
                    work.append((v, i + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                out.append(sorted(comp))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])

    for v in range(num):
        if v not in index:
            strongconnect(v)
    # Tarjan yields reverse-topological order.
    out.reverse()
    return out


def distribute_nest(nest: LoopNest) -> LoopSequence:
    """Split ``nest`` into a sequence of single-SCC nests (loop fission).

    The resulting sequence executes identically to the original nest for
    the program model's parallel loops, and is the natural *input* to
    fusion experiments (distribute, transform, re-fuse differently).
    """
    if len(nest.body) == 1:
        return LoopSequence((nest,), name=f"{nest.name or 'nest'}.dist")
    edges = _stmt_deps(nest)
    comps = _sccs(len(nest.body), edges)
    nests = []
    for idx, comp in enumerate(comps):
        body = tuple(nest.body[s] for s in comp)
        nests.append(
            LoopNest(nest.loops, body, name=f"{nest.name or 'L'}.{idx + 1}")
        )
    return LoopSequence(tuple(nests), name=f"{nest.name or 'nest'}.dist")


# ---------------------------------------------------------------------------
# Interchange / strip-mining / reversal
# ---------------------------------------------------------------------------


def _carried_distances(nest: LoopNest) -> list[tuple[int, ...]]:
    vars_ = nest.loop_vars
    out = []
    sites = []
    for st in nest.body:
        for ref in st.reads():
            sites.append((ref, False))
        sites.append((st.target, True))
    for ref1, w1 in sites:
        for ref2, w2 in sites:
            if ref1.array != ref2.array or not (w1 or w2):
                continue
            sol = solve_uniform_distance(ref1, ref2, vars_, ())
            if sol.status == "uniform" and any(d != 0 for d in sol.distance):
                out.append(sol.distance)
    return out


def interchange_legal(nest: LoopNest, level_a: int, level_b: int) -> bool:
    """Interchange is illegal when a lexicographically positive distance
    becomes negative after swapping the two levels."""
    for dist in _carried_distances(nest):
        vec = list(dist)
        # Only lexicographically positive vectors constrain order.
        if not any(d != 0 for d in vec):
            continue
        first = next(d for d in vec if d != 0)
        if first < 0:
            continue  # the mirrored pair covers this
        vec[level_a], vec[level_b] = vec[level_b], vec[level_a]
        for d in vec:
            if d > 0:
                break
            if d < 0:
                return False
    return True


def interchange(nest: LoopNest, level_a: int = 0, level_b: int = 1) -> LoopNest:
    """Swap loop levels ``level_a`` and ``level_b`` (body unchanged)."""
    if not (0 <= level_a < nest.depth and 0 <= level_b < nest.depth):
        raise TransformError("interchange levels out of range")
    if level_a == level_b:
        return nest
    if not interchange_legal(nest, level_a, level_b):
        raise TransformError(
            f"interchanging levels {level_a} and {level_b} reverses a "
            "dependence"
        )
    loops = list(nest.loops)
    loops[level_a], loops[level_b] = loops[level_b], loops[level_a]
    return LoopNest(tuple(loops), nest.body, nest.name)


def strip_mine(nest: LoopNest, level: int, strip: int) -> LoopNest:
    """Split ``level`` into a control loop (step ``strip``) and an element
    loop.  Note: the resulting control loop's bounds/step live outside the
    plain IR's unit-step model, so this returns a nest whose *printed* form
    is illustrative; executable strip-mining lives in :mod:`repro.codegen`.
    """
    if strip <= 0:
        raise TransformError("strip size must be positive")
    if not 0 <= level < nest.depth:
        raise TransformError("strip-mine level out of range")
    lp = nest.loops[level]
    control_var = lp.var * 2 if len(lp.var) == 1 else f"{lp.var}_ctl"
    control = Loop(control_var, lp.lower, lp.upper, lp.parallel)
    element = Loop(lp.var, Affine.var(control_var), Affine.var(control_var) + (strip - 1), lp.parallel)
    loops = nest.loops[:level] + (control, element) + nest.loops[level + 1:]
    return LoopNest(loops, nest.body, nest.name)


def reversal_legal(nest: LoopNest, level: int) -> bool:
    """A loop can run backwards iff it carries no dependence."""
    for dist in _carried_distances(nest):
        if dist[level] != 0 and all(d == 0 for d in dist[:level]):
            return False
    return True
