"""Loop nests: the unit of the program model (paper Fig. 2).

A :class:`LoopNest` is a perfect nest of loops (outermost first) around a
straight-line body of assignments.  Loops carry inclusive integer bounds
with step 1 (Def. 1 of the paper) expressed as affine functions of symbolic
parameters, and a ``parallel`` flag (``doall`` vs ``do``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Sequence

from .expr import Affine, as_affine
from .stmt import Assign


@dataclass(frozen=True)
class Loop:
    """One loop level: ``do[all] var = lower, upper``."""

    var: str
    lower: Affine
    upper: Affine
    parallel: bool = True

    @staticmethod
    def make(
        var: str,
        lower: "Affine | int | str",
        upper: "Affine | int | str",
        parallel: bool = True,
    ) -> "Loop":
        return Loop(var, as_affine(lower), as_affine(upper), parallel)

    def trip_count(self, params: Mapping[str, int]) -> int:
        return max(0, self.upper.eval(params) - self.lower.eval(params) + 1)

    def bounds(self, params: Mapping[str, int]) -> tuple[int, int]:
        return self.lower.eval(params), self.upper.eval(params)

    def __str__(self) -> str:
        kw = "doall" if self.parallel else "do"
        return f"{kw} {self.var} = {self.lower}, {self.upper}"


@dataclass(frozen=True)
class LoopNest:
    """A perfect loop nest with a straight-line body.

    ``loops`` is ordered outermost-first.  ``name`` identifies the nest in
    diagnostics and in the dependence-chain graphs (``L1``, ``L2``, ...).
    """

    loops: tuple[Loop, ...]
    body: tuple[Assign, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError("loop nest must have at least one loop")
        if not self.body:
            raise ValueError("loop nest must have a non-empty body")
        seen: set[str] = set()
        for lp in self.loops:
            if lp.var in seen:
                raise ValueError(f"duplicate loop variable {lp.var!r}")
            seen.add(lp.var)

    # -- structural queries -------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def loop_vars(self) -> tuple[str, ...]:
        return tuple(lp.var for lp in self.loops)

    def loop(self, var: str) -> Loop:
        for lp in self.loops:
            if lp.var == var:
                return lp
        raise KeyError(var)

    def arrays_read(self) -> set[str]:
        return {r.array for st in self.body for r in st.reads()}

    def arrays_written(self) -> set[str]:
        return {r.array for st in self.body for r in st.writes()}

    def arrays(self) -> set[str]:
        return self.arrays_read() | self.arrays_written()

    def refs(self):
        for st in self.body:
            yield from st.refs()

    def parallel_depth(self) -> int:
        """Number of leading parallel loops (``k`` in the paper's model)."""
        count = 0
        for lp in self.loops:
            if not lp.parallel:
                break
            count += 1
        return count

    # -- transformation helpers ----------------------------------------------

    def rename_loop_vars(self, mapping: Mapping[str, str]) -> "LoopNest":
        loops = tuple(
            Loop(
                mapping.get(lp.var, lp.var),
                lp.lower.rename(mapping),
                lp.upper.rename(mapping),
                lp.parallel,
            )
            for lp in self.loops
        )
        body = tuple(st.rename_vars(mapping) for st in self.body)
        return LoopNest(loops, body, self.name)

    def with_name(self, name: str) -> "LoopNest":
        return replace(self, name=name)

    def shift_body(self, var: str, delta: int) -> "LoopNest":
        """Substitute ``var -> var + delta`` in the body only (subscripts)."""
        return LoopNest(
            self.loops, tuple(st.shift_var(var, delta) for st in self.body), self.name
        )

    # -- enumeration -----------------------------------------------------------

    def iteration_space(self, params: Mapping[str, int]) -> Iterator[tuple[int, ...]]:
        """Yield iteration vectors in lexicographic execution order."""
        ranges = [
            range(lp.lower.eval(params), lp.upper.eval(params) + 1)
            for lp in self.loops
        ]
        return itertools.product(*ranges)

    def iteration_count(self, params: Mapping[str, int]) -> int:
        total = 1
        for lp in self.loops:
            total *= lp.trip_count(params)
        return total

    def env_for(self, ivec: Sequence[int]) -> dict[str, int]:
        return dict(zip(self.loop_vars, ivec))

    def __str__(self) -> str:
        from .printer import format_nest

        return format_nest(self)
