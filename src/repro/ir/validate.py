"""Admissibility validation (paper Appendix Def. 1).

A sequence of loops is *admissible* for shift-and-peel when every nest is
parallel in the fused dimensions, the fused dimensions use matching index
variables (after canonical renaming), and bodies reference arrays with
affine subscripts over the nest's loop variables and the program parameters.
Differing loop bounds are allowed (handled by strip-mined code generation);
non-affine subscripts and sequential fused loops are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .loop import LoopNest
from .sequence import LoopSequence, Program


class AdmissibilityError(ValueError):
    """Raised when a sequence violates the admissible-loop-sequence model."""


@dataclass(frozen=True)
class AdmissibilityReport:
    """Outcome of validation: ok flag plus human-readable findings."""

    ok: bool
    findings: tuple[str, ...] = ()

    def raise_if_bad(self) -> None:
        if not self.ok:
            raise AdmissibilityError("; ".join(self.findings))


def validate_nest(nest: LoopNest, params: Sequence[str]) -> list[str]:
    findings: list[str] = []
    allowed = set(nest.loop_vars) | set(params)
    for lp in nest.loops:
        if not lp.lower.uses_only(set(params)):
            findings.append(
                f"{nest.name}: bound {lp.lower} of loop {lp.var} uses loop "
                "variables (non-rectangular nests are out of model)"
            )
        if not lp.upper.uses_only(set(params)):
            findings.append(
                f"{nest.name}: bound {lp.upper} of loop {lp.var} uses loop variables"
            )
    for st in nest.body:
        for ref in st.refs():
            if not ref.uses_only(allowed):
                findings.append(
                    f"{nest.name}: reference {ref} uses names outside "
                    f"{sorted(allowed)}"
                )
    return findings


def validate_sequence(
    seq: LoopSequence, params: Sequence[str], fuse_depth: int | None = None
) -> AdmissibilityReport:
    """Check a loop sequence against Def. 1 for fusion of ``fuse_depth``
    outer dimensions (defaults to the common depth)."""
    findings: list[str] = []
    depth = fuse_depth if fuse_depth is not None else seq.common_depth()
    if depth < 1:
        findings.append(f"{seq.name}: fuse depth must be >= 1")
    for nest in seq:
        findings.extend(validate_nest(nest, params))
        if nest.depth < depth:
            findings.append(
                f"{nest.name}: depth {nest.depth} < fuse depth {depth}"
            )
            continue
        for level in range(depth):
            if not nest.loops[level].parallel:
                findings.append(
                    f"{nest.name}: fused loop level {level} ({nest.loops[level].var})"
                    " is sequential; shift-and-peel requires parallel loops"
                )
    return AdmissibilityReport(ok=not findings, findings=tuple(findings))


def validate_program(program: Program) -> AdmissibilityReport:
    findings: list[str] = []
    declared = set(program.array_names())
    for seq in program.sequences:
        # Validate at the fusable depth: the leading parallel levels.
        report = validate_sequence(seq, program.params, seq.fusable_depth())
        findings.extend(report.findings)
        for nest in seq:
            missing = nest.arrays() - declared
            if missing:
                findings.append(
                    f"{nest.name}: references undeclared arrays {sorted(missing)}"
                )
    return AdmissibilityReport(ok=not findings, findings=tuple(findings))


def canonical_fused_vars(seq: LoopSequence, depth: int) -> LoopSequence:
    """Rename the first ``depth`` loop variables of every nest to the
    variables of the first nest (the paper exploits that fused statements
    share one index variable, Sec. 3.3)."""
    target = seq[0].loop_vars[:depth]
    nests = []
    for nest in seq:
        mapping = {
            nest.loop_vars[level]: target[level]
            for level in range(depth)
            if nest.loop_vars[level] != target[level]
        }
        # Avoid variable capture: the rename must not collide with deeper vars.
        for level in range(depth, nest.depth):
            if nest.loop_vars[level] in target:
                mapping[nest.loop_vars[level]] = nest.loop_vars[level] + "__inner"
        nests.append(nest.rename_loop_vars(mapping) if mapping else nest)
    return LoopSequence(tuple(nests), name=seq.name)
