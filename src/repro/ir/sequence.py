"""Loop sequences and whole programs.

A :class:`LoopSequence` is the paper's *admissible parallel loop sequence*
(Appendix Def. 1): adjacent loop nests with no intervening code, which are
the candidates for fusion.  A :class:`Program` owns array declarations,
symbolic size parameters, and a list of loop sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .expr import Affine, as_affine
from .loop import LoopNest


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of an array: name, symbolic shape, element size in bytes."""

    name: str
    shape: tuple[Affine, ...]
    elem_size: int = 8  # double precision, as in the paper's Fortran codes

    @staticmethod
    def make(name: str, *shape: "Affine | int | str", elem_size: int = 8) -> "ArrayDecl":
        return ArrayDecl(name, tuple(as_affine(s) for s in shape), elem_size)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def concrete_shape(self, params: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(s.eval(params) for s in self.shape)

    def size_elems(self, params: Mapping[str, int]) -> int:
        total = 1
        for extent in self.concrete_shape(params):
            total *= extent
        return total

    def size_bytes(self, params: Mapping[str, int]) -> int:
        return self.size_elems(params) * self.elem_size

    def allocate(self, params: Mapping[str, int], fill: float = 0.0) -> np.ndarray:
        return np.full(self.concrete_shape(params), fill, dtype=np.float64)


@dataclass(frozen=True)
class LoopSequence:
    """An ordered sequence of adjacent loop nests considered for fusion."""

    nests: tuple[LoopNest, ...]
    name: str = "seq"

    def __post_init__(self) -> None:
        if not self.nests:
            raise ValueError("loop sequence must contain at least one nest")
        named = tuple(
            nest if nest.name else nest.with_name(f"L{k + 1}")
            for k, nest in enumerate(self.nests)
        )
        object.__setattr__(self, "nests", named)

    def __len__(self) -> int:
        return len(self.nests)

    def __iter__(self):
        return iter(self.nests)

    def __getitem__(self, idx: int) -> LoopNest:
        return self.nests[idx]

    def arrays(self) -> set[str]:
        out: set[str] = set()
        for nest in self.nests:
            out |= nest.arrays()
        return out

    def common_depth(self) -> int:
        return min(nest.depth for nest in self.nests)

    def fusable_depth(self) -> int:
        """Number of outer levels that can be fused: bounded by the common
        parallel depth across all nests."""
        return min(
            min(nest.parallel_depth(), nest.depth) for nest in self.nests
        ) or min(nest.depth for nest in self.nests)


@dataclass(frozen=True)
class Program:
    """Array declarations + parameters + loop sequences (paper Fig. 2)."""

    arrays: tuple[ArrayDecl, ...]
    sequences: tuple[LoopSequence, ...]
    params: tuple[str, ...] = ("n",)
    name: str = "program"

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def array_names(self) -> tuple[str, ...]:
        return tuple(decl.name for decl in self.arrays)

    def sequence(self, name: str) -> LoopSequence:
        for seq in self.sequences:
            if seq.name == name:
                return seq
        raise KeyError(name)

    def allocate_arrays(
        self, params: Mapping[str, int], rng: "np.random.Generator | None" = None
    ) -> dict[str, np.ndarray]:
        """Allocate all arrays; random init when ``rng`` is given (stable
        per-array streams so oracle/transformed runs start identical)."""
        out: dict[str, np.ndarray] = {}
        for decl in self.arrays:
            arr = decl.allocate(params)
            if rng is not None:
                arr[...] = rng.random(arr.shape)
            out[decl.name] = arr
        return out

    def total_data_bytes(self, params: Mapping[str, int]) -> int:
        return sum(decl.size_bytes(params) for decl in self.arrays)


def single_sequence_program(
    nests: Iterable[LoopNest],
    arrays: Iterable[ArrayDecl],
    params: Sequence[str] = ("n",),
    name: str = "program",
) -> Program:
    """Convenience constructor for the common one-sequence case."""
    return Program(
        arrays=tuple(arrays),
        sequences=(LoopSequence(tuple(nests), name=f"{name}.seq"),),
        params=tuple(params),
        name=name,
    )
