"""Statements and right-hand-side expression trees.

The program model (paper Fig. 2) is a sequence of loop nests whose bodies
are assignments ``A[f(i)] = expr`` where ``expr`` combines array loads with
arithmetic.  The expression tree is deliberately small: loads, constants,
parameters and binary/unary arithmetic — enough to express every kernel in
the paper's evaluation (stencils, averages, scaled updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from .access import ArrayRef
from .expr import Affine, as_affine


class Expr:
    """Base class for RHS expressions."""

    def loads(self) -> Iterator[ArrayRef]:
        raise NotImplementedError

    def shift_var(self, name: str, delta: int) -> "Expr":
        raise NotImplementedError

    def rename_vars(self, mapping: Mapping[str, str]) -> "Expr":
        raise NotImplementedError

    def eval(self, env: Mapping[str, float], arrays: Mapping[str, object]) -> float:
        raise NotImplementedError

    # operator sugar so kernels read naturally --------------------------------

    def __add__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return UnaryOp("-", self)


@dataclass(frozen=True)
class Const(Expr):
    value: float

    def loads(self) -> Iterator[ArrayRef]:
        return iter(())

    def shift_var(self, name: str, delta: int) -> "Const":
        return self

    def rename_vars(self, mapping: Mapping[str, str]) -> "Const":
        return self

    def eval(self, env, arrays) -> float:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Load(Expr):
    ref: ArrayRef

    def loads(self) -> Iterator[ArrayRef]:
        yield self.ref

    def shift_var(self, name: str, delta: int) -> "Load":
        return Load(self.ref.shift_var(name, delta))

    def rename_vars(self, mapping: Mapping[str, str]) -> "Load":
        return Load(self.ref.rename_vars(mapping))

    def eval(self, env, arrays) -> float:
        return arrays[self.ref.array][self.ref.index_tuple(env)]

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unsupported operator {self.op!r}")

    def loads(self) -> Iterator[ArrayRef]:
        yield from self.left.loads()
        yield from self.right.loads()

    def shift_var(self, name: str, delta: int) -> "BinOp":
        return BinOp(
            self.op, self.left.shift_var(name, delta), self.right.shift_var(name, delta)
        )

    def rename_vars(self, mapping: Mapping[str, str]) -> "BinOp":
        return BinOp(
            self.op, self.left.rename_vars(mapping), self.right.rename_vars(mapping)
        )

    def eval(self, env, arrays) -> float:
        a = self.left.eval(env, arrays)
        b = self.right.eval(env, arrays)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        return a / b

    def __str__(self) -> str:
        return f"({self.left}{self.op}{self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def loads(self) -> Iterator[ArrayRef]:
        yield from self.operand.loads()

    def shift_var(self, name: str, delta: int) -> "UnaryOp":
        return UnaryOp(self.op, self.operand.shift_var(name, delta))

    def rename_vars(self, mapping: Mapping[str, str]) -> "UnaryOp":
        return UnaryOp(self.op, self.operand.rename_vars(mapping))

    def eval(self, env, arrays) -> float:
        return -self.operand.eval(env, arrays)

    def __str__(self) -> str:
        return f"(-{self.operand})"


def as_expr(value: "Expr | float | int | ArrayRef") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, ArrayRef):
        return Load(value)
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot coerce {value!r} to an expression")


def load(array: str, *subscripts: "Affine | int | str") -> Load:
    """Convenience constructor: ``load('a', i + 1)`` -> ``a[i+1]``."""
    return Load(ArrayRef.make(array, *(as_affine(s) for s in subscripts)))


@dataclass(frozen=True)
class Assign:
    """``target = rhs``; the only statement form in loop bodies."""

    target: ArrayRef
    rhs: Expr

    def reads(self) -> tuple[ArrayRef, ...]:
        return tuple(self.rhs.loads())

    def writes(self) -> tuple[ArrayRef, ...]:
        return (self.target,)

    def refs(self) -> tuple[ArrayRef, ...]:
        return self.reads() + self.writes()

    def arrays(self) -> set[str]:
        return {r.array for r in self.refs()}

    def shift_var(self, name: str, delta: int) -> "Assign":
        return Assign(
            self.target.shift_var(name, delta), self.rhs.shift_var(name, delta)
        )

    def rename_vars(self, mapping: Mapping[str, str]) -> "Assign":
        return Assign(
            self.target.rename_vars(mapping), self.rhs.rename_vars(mapping)
        )

    def execute(self, env: Mapping[str, int], arrays: Mapping[str, object]) -> None:
        arrays[self.target.array][self.target.index_tuple(env)] = self.rhs.eval(
            env, arrays
        )

    def __str__(self) -> str:
        return f"{self.target} = {self.rhs}"


def assign(array: str, subscripts, rhs: "Expr | float | int | ArrayRef") -> Assign:
    """Convenience constructor accepting a subscript or tuple of subscripts."""
    if not isinstance(subscripts, (tuple, list)):
        subscripts = (subscripts,)
    return Assign(ArrayRef.make(array, *subscripts), as_expr(rhs))
