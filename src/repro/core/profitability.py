"""Profitability of fusion (paper Secs. 5–6).

The measurements in Figs. 22 and 24 show the benefit of fusion vanishing —
and turning into a loss — once each processor's share of the data fits in
its cache: locality needs no help then, and shift-and-peel's overhead
(strip-mining control, peeled iterations, guards) dominates.  The paper
concludes the compiler should evaluate profitability "with knowledge of the
data size with respect to the cache size"; this module implements exactly
that predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir.sequence import Program
from .derive import ShiftPeelPlan


@dataclass(frozen=True)
class FusionAdvice:
    """Prediction of whether fusion pays off at a given processor count."""

    profitable: bool
    data_bytes: int
    per_proc_bytes: int
    cache_bytes: int
    crossover_procs: int
    overhead_fraction: float
    reason: str

    def __str__(self) -> str:
        verdict = "fuse" if self.profitable else "do not fuse"
        return (
            f"{verdict}: per-proc data {self.per_proc_bytes}B vs cache "
            f"{self.cache_bytes}B (crossover ~{self.crossover_procs} procs); "
            f"{self.reason}"
        )


def shared_data_bytes(program: Program, params: Mapping[str, int]) -> int:
    """Total bytes of arrays referenced by the program's loop sequences."""
    used: set[str] = set()
    for seq in program.sequences:
        used |= seq.arrays()
    return sum(
        decl.size_bytes(params) for decl in program.arrays if decl.name in used
    )


def peel_overhead_fraction(
    plan: ShiftPeelPlan, params: Mapping[str, int], num_procs: int
) -> float:
    """Fraction of iterations executed in the peeled (post-barrier) phase.

    A cheap structural estimate: each interior block boundary peels
    ``shift + peel`` iterations of each shifted/peeled nest per fused
    dimension, against ``trip/num_procs`` per block.
    """
    total = 0
    peeled = 0
    for k, nest in enumerate(plan.seq):
        iters = nest.iteration_count(params)
        total += iters
        boundary = 0.0
        for dim, dplan in enumerate(plan.dims):
            lp = nest.loops[dim]
            trip = lp.trip_count(params)
            if trip == 0:
                continue
            cross = dplan.total_peel(k)
            boundary += (num_procs - 1) * cross * (iters / trip)
        peeled += boundary
    return peeled / total if total else 0.0


def evaluate_profitability(
    program: Program,
    plan: ShiftPeelPlan,
    params: Mapping[str, int],
    num_procs: int,
    cache_bytes: int,
    overhead_threshold: float = 0.08,
) -> FusionAdvice:
    """Decide fusion profitability (the paper's proposed compile-time test).

    Fusion is predicted profitable when (a) each processor's share of the
    referenced data exceeds its cache — so inter-nest reuse misses without
    fusion — and (b) the peeling/strip-mining overhead stays below
    ``overhead_threshold`` of the useful work.
    """
    data = shared_data_bytes(program, params)
    per_proc = data // max(1, num_procs)
    crossover = max(1, data // cache_bytes)
    overhead = peel_overhead_fraction(plan, params, num_procs)

    if per_proc <= cache_bytes:
        return FusionAdvice(
            profitable=False,
            data_bytes=data,
            per_proc_bytes=per_proc,
            cache_bytes=cache_bytes,
            crossover_procs=crossover,
            overhead_fraction=overhead,
            reason="per-processor data fits in cache; locality needs no help",
        )
    if overhead > overhead_threshold:
        return FusionAdvice(
            profitable=False,
            data_bytes=data,
            per_proc_bytes=per_proc,
            cache_bytes=cache_bytes,
            crossover_procs=crossover,
            overhead_fraction=overhead,
            reason=f"peel overhead {overhead:.1%} exceeds {overhead_threshold:.1%}",
        )
    return FusionAdvice(
        profitable=True,
        data_bytes=data,
        per_proc_bytes=per_proc,
        cache_bytes=cache_bytes,
        crossover_procs=crossover,
        overhead_fraction=overhead,
        reason="per-processor data exceeds cache; fusion exploits inter-nest reuse",
    )
