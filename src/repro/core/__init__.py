"""Shift-and-peel: derivation, legality, scheduling and execution planning."""

from .derive import DimensionPlan, ShiftPeelPlan, derive_shift_peel
from .execplan import (
    ExecutionPlan,
    PeeledRect,
    ProcessorPlan,
    build_execution_plan,
    verify_coverage,
)
from .fuse import FusionResult, fuse_program, fuse_sequence
from .grouping import FusableGroup, GroupingResult, group_fusable
from .legality import (
    FusionLegalityError,
    LegalityCheck,
    check_legality,
    iteration_count_thresholds,
    max_processors,
)
from .profitability import (
    FusionAdvice,
    evaluate_profitability,
    peel_overhead_fraction,
    shared_data_bytes,
)
from .schedule import BlockSchedule, GridSchedule, factor_grid
from .traversal import traverse_for_peels, traverse_for_shifts

__all__ = [
    "BlockSchedule",
    "DimensionPlan",
    "ExecutionPlan",
    "FusionAdvice",
    "FusionLegalityError",
    "FusableGroup",
    "FusionResult",
    "GridSchedule",
    "GroupingResult",
    "LegalityCheck",
    "PeeledRect",
    "ProcessorPlan",
    "ShiftPeelPlan",
    "build_execution_plan",
    "check_legality",
    "derive_shift_peel",
    "evaluate_profitability",
    "factor_grid",
    "fuse_program",
    "fuse_sequence",
    "group_fusable",
    "iteration_count_thresholds",
    "max_processors",
    "peel_overhead_fraction",
    "shared_data_bytes",
    "traverse_for_peels",
    "traverse_for_shifts",
    "verify_coverage",
]
