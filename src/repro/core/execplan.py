"""Fused/peeled iteration sets per processor (Appendix Def. 5, Fig. 16).

Given a :class:`~repro.core.derive.ShiftPeelPlan`, a concrete problem size
and a processor grid, this module computes for every processor:

* the *fused* iteration box of each nest — original iterations executed
  inside the fused loop by that processor, and
* the *peeled* rectangles of each nest — boundary iterations executed after
  the single barrier, grouped per processor exactly as in Sec. 3.4 (the
  shifted tail of the own block plus the head peeled from the adjacent
  block, so each group is dependence-closed).

Semantics of shifting: a nest with shift ``s`` executes original iteration
``i`` at fused position ``t = i + s`` (it lags the first nest), which makes
every backward dependence of distance ``-s`` loop-independent.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from .derive import ShiftPeelPlan
from .legality import check_legality, domain_hull
from .schedule import BlockSchedule, GridSchedule, factor_grid

Range = tuple[int, int]  # inclusive (lo, hi); empty when hi < lo


def range_empty(r: Range) -> bool:
    return r[1] < r[0]


def range_len(r: Range) -> int:
    return max(0, r[1] - r[0] + 1)


def clamp(r: Range, lo: int, hi: int) -> Range:
    return (max(r[0], lo), min(r[1], hi))


@dataclass(frozen=True)
class PeeledRect:
    """One rectangle of peeled iterations of nest ``nest_idx``."""

    nest_idx: int
    ranges: tuple[Range, ...]

    def is_empty(self) -> bool:
        return any(range_empty(r) for r in self.ranges)

    def iteration_count(self) -> int:
        total = 1
        for r in self.ranges:
            total *= range_len(r)
        return total

    def iterations(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*(range(r[0], r[1] + 1) for r in self.ranges))


@dataclass(frozen=True)
class ProcessorPlan:
    """Work assigned to one processor of the grid."""

    coord: tuple[int, ...]
    block: tuple[Range, ...]  # fused-position block owned (Def. 5)
    fused: tuple[tuple[Range, ...], ...]  # per nest: fused box (original iters)
    peeled: tuple[PeeledRect, ...]

    def fused_count(self, nest_idx: int) -> int:
        total = 1
        for r in self.fused[nest_idx]:
            total *= range_len(r)
        return total

    def peeled_count(self) -> int:
        return sum(rect.iteration_count() for rect in self.peeled)


@dataclass(frozen=True)
class ExecutionPlan:
    """The complete parallel execution structure of a fused sequence."""

    plan: ShiftPeelPlan
    params: dict[str, int]
    grid: GridSchedule
    processors: tuple[ProcessorPlan, ...]

    @property
    def num_procs(self) -> int:
        return self.grid.num_procs

    def processor(self, coord: Sequence[int]) -> ProcessorPlan:
        return self.processors[self.grid.flat_index(coord)]

    def total_peeled(self) -> int:
        return sum(p.peeled_count() for p in self.processors)

    def total_fused(self) -> int:
        return sum(
            p.fused_count(k)
            for p in self.processors
            for k in range(self.plan.num_nests)
        )

    def signature(self, strip: Optional[int] = None) -> str:
        """Structural sha256 of everything execution depends on.

        Two plans share a signature exactly when they execute identically:
        the kernel IR (loop bounds, ``doall`` flags, statement bodies), the
        bound parameters, the derived shifts/peels, the processor grid and
        every processor's concrete fused boxes and peeled rectangles, plus
        the ``strip`` setting.  This is the key of the jit plan cache
        (:mod:`repro.runtime.plancache`): a cache hit replays generated
        code, so any structural difference — including hand-mutated
        processor boxes, as the degenerate-range tests build — must change
        the digest.
        """
        digest = hashlib.sha256()

        def feed(text: str) -> None:
            digest.update(text.encode())
            digest.update(b"\x1f")

        feed("repro-plan-signature-v1")
        plan = self.plan
        for k, nest in enumerate(plan.seq):
            feed(f"nest {k}")
            for lp in nest.loops:
                feed(f"loop {lp.var} {lp.lower} {lp.upper} {int(lp.parallel)}")
            for st in nest.body:
                feed(f"stmt {st}")
        feed(f"depth {plan.depth}")
        for dim in plan.dims:
            feed(f"dim {dim.var} shifts={dim.shifts} peels={dim.peels}")
        for name, value in sorted(self.params.items()):
            feed(f"param {name}={value}")
        feed(f"grid {self.grid.grid_shape}")
        for proc in self.processors:
            feed(f"proc {proc.coord} block={proc.block}")
            for box in proc.fused:
                feed(f"fused {box}")
            for rect in proc.peeled:
                feed(f"peel {rect.nest_idx} {rect.ranges}")
        feed(f"strip {strip}")
        return digest.hexdigest()


def _nest_bounds(plan: ShiftPeelPlan, params, nest_idx: int, dim: int) -> Range:
    lp = plan.seq[nest_idx].loops[dim]
    return lp.lower.eval(params), lp.upper.eval(params)


def _fused_range(
    plan: ShiftPeelPlan,
    params,
    sched: BlockSchedule,
    p: int,
    nest_idx: int,
    dim: int,
) -> Range:
    """Original iterations of nest ``nest_idx`` executed in the fused loop by
    block ``p`` along dimension ``dim``."""
    lo_k, hi_k = _nest_bounds(plan, params, nest_idx, dim)
    shift = plan.shift(nest_idx, dim)
    gpeel = plan.peel(nest_idx, dim)
    start = lo_k if p == 1 else max(lo_k, sched.istart(p) + gpeel)
    end = hi_k if p == sched.num_blocks else min(hi_k, sched.iend(p) - shift)
    return (start, end)


def _peel_range(
    plan: ShiftPeelPlan,
    params,
    sched: BlockSchedule,
    p: int,
    nest_idx: int,
    dim: int,
) -> Range:
    """Boundary iterations peeled between blocks ``p`` and ``p+1``
    (assigned to processor ``p``, Sec. 3.4); empty for the last block."""
    if p == sched.num_blocks:
        return (0, -1)
    lo_k, hi_k = _nest_bounds(plan, params, nest_idx, dim)
    shift = plan.shift(nest_idx, dim)
    gpeel = plan.peel(nest_idx, dim)
    return clamp((sched.iend(p) + 1 - shift, sched.iend(p) + gpeel), lo_k, hi_k)


def build_execution_plan(
    plan: ShiftPeelPlan,
    params: Mapping[str, int],
    num_procs: int = 1,
    grid_shape: Optional[Sequence[int]] = None,
    validate: bool = True,
) -> ExecutionPlan:
    """Compute per-processor fused boxes and peeled rectangles.

    ``grid_shape`` defaults to a near-square factorization of ``num_procs``
    over the fused dimensions.
    """
    params = dict(params)
    if grid_shape is None:
        grid_shape = factor_grid(num_procs, plan.depth)
    if validate:
        check_legality(plan, params, grid_shape).raise_if_bad()

    schedules = []
    for dim in range(plan.depth):
        lo, hi = domain_hull(plan, params, dim)
        schedules.append(BlockSchedule(lo, hi, grid_shape[dim]))
    grid = GridSchedule(tuple(schedules))

    procs: list[ProcessorPlan] = []
    nnests = plan.num_nests
    for coord in grid.coords():
        fused_boxes: list[tuple[Range, ...]] = []
        peeled: list[PeeledRect] = []
        for k in range(nnests):
            fbox = tuple(
                _fused_range(plan, params, schedules[d], coord[d], k, d)
                for d in range(plan.depth)
            )
            # Inner (non-fused) dimensions execute their full range.
            for d in range(plan.depth, plan.seq[k].depth):
                fbox = fbox + (_nest_bounds(plan, params, k, d),)
            fused_boxes.append(fbox)

            # Peeled rectangles: for pivot dimension d, dims before d take
            # the fused range, dim d the peel range, dims after d the union
            # (fused + peel) range — Fig. 16's decomposition.
            for d in range(plan.depth):
                ranges: list[Range] = []
                empty = False
                for d2 in range(plan.depth):
                    f = _fused_range(plan, params, schedules[d2], coord[d2], k, d2)
                    e = _peel_range(plan, params, schedules[d2], coord[d2], k, d2)
                    if d2 < d:
                        r = f
                    elif d2 == d:
                        r = e
                    else:
                        if range_empty(e):
                            r = f
                        elif range_empty(f):
                            r = e
                        else:
                            r = (min(f[0], e[0]), max(f[1], e[1]))
                    if range_empty(r):
                        empty = True
                        break
                    ranges.append(r)
                if empty:
                    continue
                for d2 in range(plan.depth, plan.seq[k].depth):
                    ranges.append(_nest_bounds(plan, params, k, d2))
                peeled.append(PeeledRect(k, tuple(ranges)))
        block = tuple(
            schedules[d].block(coord[d]) for d in range(plan.depth)
        )
        procs.append(
            ProcessorPlan(
                coord=coord,
                block=block,
                fused=tuple(fused_boxes),
                peeled=tuple(peeled),
            )
        )
    return ExecutionPlan(
        plan=plan, params=params, grid=grid, processors=tuple(procs)
    )


def verify_coverage(exec_plan: ExecutionPlan) -> bool:
    """Check Theorem 1's first two conditions explicitly: every original
    iteration of every nest is executed exactly once across all fused boxes
    and peeled rectangles."""
    plan = exec_plan.plan
    params = exec_plan.params
    for k, nest in enumerate(plan.seq):
        expected = {}
        for ivec in nest.iteration_space(params):
            expected[ivec] = 0
        for proc in exec_plan.processors:
            for ivec in itertools.product(
                *(range(r[0], r[1] + 1) for r in proc.fused[k])
            ):
                if ivec not in expected:
                    return False
                expected[ivec] += 1
            for rect in proc.peeled:
                if rect.nest_idx != k:
                    continue
                for ivec in rect.iterations():
                    if ivec not in expected:
                        return False
                    expected[ivec] += 1
        if any(count != 1 for count in expected.values()):
            return False
    return True
