"""Legality of the shift-and-peel transformation (Appendix I).

Theorem 1: for a parallel loop sequence with uniform inter-loop
dependences, shift-and-peel is legal provided every processor block holds
at least ``Nt`` iterations (the iteration-count threshold, Def. 6).  This
module checks that condition for a derived plan and a concrete problem
size/processor count, and exposes the threshold itself so callers (and the
profitability analysis) can reason about the maximum usable processor
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .derive import ShiftPeelPlan
from .schedule import BlockSchedule


class FusionLegalityError(ValueError):
    """Raised when Theorem 1's block-size condition is violated."""


@dataclass(frozen=True)
class LegalityCheck:
    """Result of checking a plan against concrete sizes and a grid."""

    ok: bool
    thresholds: tuple[int, ...]  # Nt per fused dimension
    block_sizes: tuple[int, ...]
    max_procs: tuple[int, ...]  # per-dimension processor ceiling
    reasons: tuple[str, ...] = ()

    def raise_if_bad(self) -> None:
        if not self.ok:
            raise FusionLegalityError("; ".join(self.reasons))


def domain_hull(plan: ShiftPeelPlan, params: Mapping[str, int], dim: int) -> tuple[int, int]:
    """Union hull of all nests' iteration ranges in fused dimension ``dim``."""
    lo = min(nest.loops[dim].lower.eval(params) for nest in plan.seq)
    hi = max(nest.loops[dim].upper.eval(params) for nest in plan.seq)
    return lo, hi


def iteration_count_thresholds(plan: ShiftPeelPlan) -> tuple[int, ...]:
    """``Nt`` per fused dimension (Def. 6, with the conservative ``+1`` of
    :class:`~repro.core.derive.DimensionPlan`)."""
    return tuple(d.iteration_count_threshold for d in plan.dims)


def max_processors(plan: ShiftPeelPlan, params: Mapping[str, int]) -> tuple[int, ...]:
    """The largest legal processor count along each fused dimension."""
    out = []
    for dim, dplan in enumerate(plan.dims):
        lo, hi = domain_hull(plan, params, dim)
        trip = hi - lo + 1
        nt = dplan.iteration_count_threshold
        out.append(max(1, trip // nt))
    return tuple(out)


def check_legality(
    plan: ShiftPeelPlan,
    params: Mapping[str, int],
    grid_shape: Sequence[int],
) -> LegalityCheck:
    """Validate Theorem 1 for a concrete grid: every block's size must be at
    least the per-dimension threshold ``Nt``."""
    if len(grid_shape) != plan.depth:
        raise ValueError(
            f"grid has {len(grid_shape)} dims but plan fuses {plan.depth}"
        )
    reasons: list[str] = []
    thresholds = iteration_count_thresholds(plan)
    block_sizes: list[int] = []
    ceilings = max_processors(plan, params)
    for dim, nprocs in enumerate(grid_shape):
        lo, hi = domain_hull(plan, params, dim)
        trip = hi - lo + 1
        if nprocs > trip:
            reasons.append(
                f"dim {dim}: {nprocs} processors exceed {trip} iterations"
            )
            block_sizes.append(0)
            continue
        sched = BlockSchedule(lo, hi, nprocs)
        block_sizes.append(sched.block_size)
        if sched.block_size < thresholds[dim]:
            reasons.append(
                f"dim {dim}: block size {sched.block_size} < Nt={thresholds[dim]}"
                f" (Theorem 1 violated; at most {ceilings[dim]} processors)"
            )
    return LegalityCheck(
        ok=not reasons,
        thresholds=thresholds,
        block_sizes=tuple(block_sizes),
        max_procs=ceilings,
        reasons=tuple(reasons),
    )
