"""Derivation of the shift-and-peel plan for a loop sequence (Sec. 3.3).

For each fused dimension (outermost first) a dependence-chain multigraph is
built from the uniform inter-loop distances, reduced (min for shifts, max
for peels), and traversed.  The result is a :class:`ShiftPeelPlan` holding,
per nest and per dimension, the shift and the graph-derived peel.  The
*total* peel applied at block boundaries is ``shift + peel`` — one part
compensates sink iterations moved across the boundary by shifting, the
other removes sinks of original forward dependences (Sec. 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..dependence.analysis import analyze_sequence
from ..dependence.model import DependenceSummary
from ..dependence.multigraph import multigraphs_per_dim
from ..ir.sequence import LoopSequence
from ..ir.validate import canonical_fused_vars
from .traversal import traverse_for_peels, traverse_for_shifts


@dataclass(frozen=True)
class DimensionPlan:
    """Shift/peel amounts for one fused dimension."""

    var: str
    shifts: tuple[int, ...]
    peels: tuple[int, ...]

    def total_peel(self, nest_idx: int) -> int:
        return self.shifts[nest_idx] + self.peels[nest_idx]

    @property
    def max_shift(self) -> int:
        return max(self.shifts)

    @property
    def max_peel(self) -> int:
        return max(self.peels)

    @property
    def max_total_peel(self) -> int:
        return max(s + p for s, p in zip(self.shifts, self.peels))

    @property
    def iteration_count_threshold(self) -> int:
        """``Nt`` of Appendix Def. 6 — the minimum legal block size.

        We additionally require room for the shifted tail and the peeled
        head to coexist within one block, hence ``max(shift + peel) + 1``.
        """
        return self.max_total_peel + 1


@dataclass(frozen=True)
class ShiftPeelPlan:
    """Complete derivation result for a loop sequence.

    ``seq`` is the canonicalized sequence (fused index variables unified
    across nests, Sec. 3.3).  ``dims`` holds one :class:`DimensionPlan` per
    fused dimension, outermost first.
    """

    seq: LoopSequence
    depth: int
    dims: tuple[DimensionPlan, ...]
    summary: DependenceSummary

    @property
    def num_nests(self) -> int:
        return len(self.seq)

    def shift(self, nest_idx: int, dim: int = 0) -> int:
        return self.dims[dim].shifts[nest_idx]

    def peel(self, nest_idx: int, dim: int = 0) -> int:
        return self.dims[dim].peels[nest_idx]

    def total_peel(self, nest_idx: int, dim: int = 0) -> int:
        return self.dims[dim].total_peel(nest_idx)

    def shift_vector(self, nest_idx: int) -> tuple[int, ...]:
        return tuple(d.shifts[nest_idx] for d in self.dims)

    def peel_vector(self, nest_idx: int) -> tuple[int, ...]:
        return tuple(d.peels[nest_idx] for d in self.dims)

    @property
    def max_shift(self) -> int:
        return max(d.max_shift for d in self.dims)

    @property
    def max_peel(self) -> int:
        return max(d.max_peel for d in self.dims)

    def is_plain_fusion(self) -> bool:
        """True when no shifting or peeling is required at all."""
        return self.max_shift == 0 and self.max_peel == 0

    def table_rows(self) -> list[tuple[int, tuple[int, ...], tuple[int, ...]]]:
        """Rows of the paper's Table 2: (loop number, shifts, peels)."""
        return [
            (k + 1, self.shift_vector(k), self.peel_vector(k))
            for k in range(self.num_nests)
        ]

    def describe(self) -> str:
        lines = [f"shift-and-peel plan for {self.seq.name} (depth {self.depth})"]
        for k in range(self.num_nests):
            lines.append(
                f"  L{k + 1}: shift={self.shift_vector(k)} peel={self.peel_vector(k)}"
            )
        return "\n".join(lines)


def derive_shift_peel(
    seq: LoopSequence,
    params: Sequence[str] = ("n",),
    depth: Optional[int] = None,
    summary: Optional[DependenceSummary] = None,
) -> ShiftPeelPlan:
    """Run the full derivation: analyze, build multigraphs, reduce, traverse."""
    fuse_depth = depth if depth is not None else seq.common_depth()
    canon = canonical_fused_vars(seq, fuse_depth)
    if summary is None:
        summary = analyze_sequence(canon, params, fuse_depth)
    graphs = multigraphs_per_dim(summary, len(canon))
    dims = []
    for dim, mg in enumerate(graphs):
        shifts = traverse_for_shifts(mg.reduce_min())
        peels = traverse_for_peels(mg.reduce_max())
        dims.append(
            DimensionPlan(var=summary.fused_vars[dim], shifts=shifts, peels=peels)
        )
    return ShiftPeelPlan(
        seq=canon, depth=fuse_depth, dims=tuple(dims), summary=summary
    )
