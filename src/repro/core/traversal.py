"""Dependence-chain graph traversal (paper Fig. 8).

The same linear-time accumulation derives both shifts and peels:

* **Shifts**: traverse the min-reduced chain graph; only negative edges
  contribute, every vertex keeps the *minimum* accumulated weight.  The
  negated final weight of a vertex is how far its loop must be shifted
  relative to the first loop for fusion to be legal.
* **Peels**: traverse the max-reduced chain graph; only positive edges
  contribute, every vertex keeps the *maximum* accumulated weight — the
  number of iterations that must be peeled (beyond shifting) to remove
  cross-processor dependences.

Vertices are visited in program order, which is already a topological
order for an admissible sequence (edges always point forward).
"""

from __future__ import annotations

from .. dependence.multigraph import ChainGraph


def traverse_for_shifts(graph: ChainGraph) -> tuple[int, ...]:
    """Propagate shifts along dependence chains (Fig. 8, verbatim).

    Returns per-vertex shift amounts (non-negative integers).
    """
    weight = [0] * graph.num_vertices
    for v in graph.topological_order():
        for e in graph.out_edges(v):
            if e.weight < 0:
                weight[e.dst] = min(weight[e.dst], weight[v] + e.weight)
            else:
                # Non-negative edges contribute no shift of their own but
                # must propagate accumulated shifting along the chain.
                weight[e.dst] = min(weight[e.dst], weight[v])
    return tuple(-w for w in weight)


def traverse_for_peels(graph: ChainGraph) -> tuple[int, ...]:
    """Dual traversal for peeling: positive edges accumulate, maxima kept.

    Returns per-vertex peel amounts (non-negative integers) — the paper's
    Table-2 "peels" column, i.e. peeling due to original forward
    dependences (shift-induced peeling is added separately at code
    generation, Sec. 3.5).
    """
    weight = [0] * graph.num_vertices
    for v in graph.topological_order():
        for e in graph.out_edges(v):
            if e.weight > 0:
                weight[e.dst] = max(weight[e.dst], weight[v] + e.weight)
            else:
                weight[e.dst] = max(weight[e.dst], weight[v])
    return tuple(weight)
