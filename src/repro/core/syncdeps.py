"""Point-to-point synchronization dependences for the two-phase schedule.

The paper places one *global* barrier between the fused and the peeled
phase (Sec. 3.4): every peeled iteration may be a sink of a cross-block
dependence whose source ran in some peer's fused phase, and the barrier
conservatively waits for *all* peers.  But the shift/peel construction
localizes those sources: a processor's peeled rectangles only touch data
near its block boundary, produced by the *adjacent* blocks — so a global
barrier over-synchronizes (Liao et al., PAPERS.md).

This module derives, per processor ``p``, the exact set of predecessor
processors whose fused phase must complete before ``p``'s peeled phase
may start.  It is computed from the concrete fused boxes and peeled
rectangles already in the :class:`~repro.core.execplan.ExecutionPlan`,
by intersecting rectangular *footprints* of the array regions each phase
reads and writes:

``q`` is a predecessor of ``p`` (``q != p``) iff any of

* ``writes(fused_q)  ∩ reads(peeled_p)``  — flow dependence,
* ``reads(fused_q)   ∩ writes(peeled_p)`` — anti dependence,
* ``writes(fused_q)  ∩ writes(peeled_p)`` — output dependence

is non-empty.  These are exactly the orderings the barrier enforced
(fused-before-peeled); fused/fused pairs are independent by Theorem 1
and peeled groups are dependence-closed by construction, so no other
pair needs synchronization.

Footprints are rectangular over-approximations: each affine subscript is
evaluated to its ``(min, max)`` interval over the iteration box (interval
arithmetic by coefficient sign, parameters folded in).  This can only
*add* predecessors, never miss one — a conservative answer degrades to
extra waiting, never to a race.  For the paper's uniform-dependence
kernels the footprints are exact and the predecessor sets collapse to
the geometric neighbors.

The map is consumed twice: :mod:`repro.codegen.emitpy` embeds it in
generated modules as ``PEEL_DEPS`` (the ``mpjit`` pool reads it there),
and :func:`repro.runtime.fastexec.run_mp` computes it directly.
"""

from __future__ import annotations

from typing import Mapping

from ..ir.access import ArrayRef
from ..ir.loop import LoopNest
from .execplan import ExecutionPlan, Range

#: array name -> set of inclusive (lo, hi) rectangles touched.
Footprint = dict[str, set[tuple[Range, ...]]]


def _subscript_interval(sub, var_ranges: Mapping[str, Range],
                        params: Mapping[str, int]) -> Range:
    """``(min, max)`` of an affine subscript over a box, by interval
    arithmetic: positive coefficients take the variable's range as-is,
    negative ones flip it; parameters contribute constants."""
    lo = hi = sub.const
    for var, coeff in sub.coeffs:
        r = var_ranges.get(var)
        if r is None:
            value = coeff * params[var]
            lo += value
            hi += value
        elif coeff >= 0:
            lo += coeff * r[0]
            hi += coeff * r[1]
        else:
            lo += coeff * r[1]
            hi += coeff * r[0]
    return (lo, hi)


def _ref_rect(ref: ArrayRef, var_ranges, params) -> tuple[Range, ...]:
    return tuple(
        _subscript_interval(sub, var_ranges, params) for sub in ref.subscripts
    )


def _add_box_footprints(
    nest: LoopNest,
    box,
    params: Mapping[str, int],
    writes: Footprint,
    reads: Footprint,
) -> None:
    """Accumulate the footprint rectangles of every statement of ``nest``
    over iteration ``box`` (inclusive ranges; empty boxes contribute
    nothing)."""
    if any(hi < lo for lo, hi in box):
        return
    var_ranges = {nest.loops[d].var: box[d] for d in range(nest.depth)}
    for st in nest.body:
        for ref in st.writes():
            writes.setdefault(ref.array, set()).add(
                _ref_rect(ref, var_ranges, params)
            )
        for ref in st.reads():
            reads.setdefault(ref.array, set()).add(
                _ref_rect(ref, var_ranges, params)
            )


def _rects_overlap(a: tuple[Range, ...], b: tuple[Range, ...]) -> bool:
    return len(a) == len(b) and all(
        max(alo, blo) <= min(ahi, bhi) for (alo, ahi), (blo, bhi) in zip(a, b)
    )


def _footprints_overlap(fa: Footprint, fb: Footprint) -> bool:
    for array, rects in fa.items():
        other = fb.get(array)
        if not other:
            continue
        for ra in rects:
            for rb in other:
                if _rects_overlap(ra, rb):
                    return True
    return False


def phase_footprints(exec_plan: ExecutionPlan):
    """Per-processor ``(fused_writes, fused_reads, peeled_writes,
    peeled_reads)`` footprints (exposed for tests and diagnostics)."""
    plan = exec_plan.plan
    nests = list(plan.seq)
    params = exec_plan.params
    out = []
    for proc in exec_plan.processors:
        fw: Footprint = {}
        fr: Footprint = {}
        for k, nest in enumerate(nests):
            _add_box_footprints(nest, tuple(proc.fused[k]), params, fw, fr)
        pw: Footprint = {}
        pr: Footprint = {}
        for rect in proc.peeled:
            _add_box_footprints(nests[rect.nest_idx], rect.ranges, params,
                                pw, pr)
        out.append((fw, fr, pw, pr))
    return out


def peel_predecessors(exec_plan: ExecutionPlan) -> tuple[tuple[int, ...], ...]:
    """For each processor ``p``, the sorted tuple of processors whose fused
    phase must finish before ``p``'s peeled phase starts.

    ``p`` itself is never listed: a worker always runs all of its own
    fused work before any of its peeled work, so the program order of the
    SPMD loop provides that edge for free.  A processor with no peeled
    work (or whose peeled work only touches its own block) gets ``()``
    and can start peeling without waiting on anyone.
    """
    fps = phase_footprints(exec_plan)
    n = len(fps)
    deps: list[tuple[int, ...]] = []
    for p in range(n):
        _fw, _fr, pw, pr = fps[p]
        preds = []
        for q in range(n):
            if q == p:
                continue
            qw, qr = fps[q][0], fps[q][1]
            if (
                _footprints_overlap(qw, pr)      # flow
                or _footprints_overlap(qr, pw)   # anti
                or _footprints_overlap(qw, pw)   # output
            ):
                preds.append(q)
        deps.append(tuple(preds))
    return tuple(deps)
