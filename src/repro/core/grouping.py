"""Fusable-set grouping for whole programs.

Real codes interleave fusable stencil sweeps with nests that cannot join
them — different dimensionality, sequential fused loops, or non-uniform
dependences.  This module partitions a long nest sequence into maximal
*shift-and-peel-fusable* groups: within a group every inter-loop
dependence is uniform in the fused dimensions and all nests expose the
required parallel depth.  Unlike the naive partitioner of
:mod:`repro.baselines.naive` (which also stops at any loop-carried or
serializing dependence), a group here only breaks where shift-and-peel
itself is inapplicable — quantifying exactly how much further the paper's
technique reaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..dependence.analysis import analyze_pair
from ..dependence.model import NonUniformDependenceError
from ..ir.loop import LoopNest
from ..ir.sequence import LoopSequence
from ..ir.validate import canonical_fused_vars, validate_sequence
from .derive import ShiftPeelPlan, derive_shift_peel


@dataclass(frozen=True)
class FusableGroup:
    """One maximal fusable run of adjacent nests."""

    indices: tuple[int, ...]
    seq: LoopSequence
    plan: ShiftPeelPlan | None  # None for singleton groups (nothing to fuse)

    @property
    def size(self) -> int:
        return len(self.indices)

    def is_fused(self) -> bool:
        return self.size > 1


@dataclass(frozen=True)
class GroupingResult:
    groups: tuple[FusableGroup, ...]
    break_reasons: tuple[str, ...]  # why each boundary (after group k) exists

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def barriers_after(self) -> int:
        """Synchronizations remaining after fusing every group: one per
        group plus one peel barrier per fused group."""
        return sum(2 if g.is_fused() else 1 for g in self.groups)

    def describe(self) -> str:
        lines = []
        for g, group in enumerate(self.groups):
            nests = ", ".join(f"L{k + 1}" for k in group.indices)
            tag = "fused" if group.is_fused() else "alone"
            lines.append(f"group {g + 1} ({tag}): {nests}")
            if g < len(self.break_reasons):
                lines.append(f"  -- break: {self.break_reasons[g]}")
        return "\n".join(lines)


def _compatible_headers(a: LoopNest, b: LoopNest, depth: int) -> str | None:
    """None when nest b can join a group led by a; else the reason not."""
    if b.depth < depth:
        return f"{b.name}: depth {b.depth} below fuse depth {depth}"
    for level in range(depth):
        if not b.loops[level].parallel:
            return f"{b.name}: fused level {level} is sequential"
    return None


def group_fusable(
    seq: LoopSequence,
    params: Sequence[str] = ("n",),
    depth: int = 1,
) -> GroupingResult:
    """Greedy maximal grouping: nest ``b`` joins the current group unless
    (a) its loop structure is incompatible at the fuse depth, or (b) some
    dependence from a group member to ``b`` is non-uniform."""
    groups: list[list[int]] = [[0]]
    reasons: list[str] = []

    canon = canonical_fused_vars(seq, min(depth, seq.common_depth()))
    fused_vars = canon[0].loop_vars[:depth]

    for b in range(1, len(seq)):
        current = groups[-1]
        reason = _compatible_headers(seq[current[0]], seq[b], depth)
        if reason is None and seq[current[0]].depth >= depth:
            for a in current:
                try:
                    analyze_pair(
                        canon[a], canon[b], a, b, fused_vars, strict=True
                    )
                except NonUniformDependenceError as exc:
                    reason = str(exc)
                    break
        if reason is None:
            current.append(b)
        else:
            reasons.append(reason)
            groups.append([b])

    out: list[FusableGroup] = []
    for indices in groups:
        sub = LoopSequence(
            tuple(seq[k] for k in indices), name=f"{seq.name}.g{indices[0]}"
        )
        plan = None
        if len(indices) > 1:
            report = validate_sequence(sub, params, depth)
            if report.ok:
                plan = derive_shift_peel(sub, params, depth)
        out.append(FusableGroup(tuple(indices), sub, plan))
    return GroupingResult(tuple(out), tuple(reasons))
