"""High-level fusion driver: the package's main entry point.

``fuse_sequence`` runs admissibility validation, dependence analysis and
shift-and-peel derivation, returning a :class:`FusionResult` from which
callers obtain execution plans for any processor grid, emitted source code,
and profitability advice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..ir.sequence import LoopSequence, Program
from ..ir.validate import validate_sequence
from .derive import ShiftPeelPlan, derive_shift_peel
from .execplan import ExecutionPlan, build_execution_plan
from .legality import LegalityCheck, check_legality, max_processors


@dataclass(frozen=True)
class FusionResult:
    """Outcome of planning fusion for one loop sequence."""

    plan: ShiftPeelPlan
    params_hint: tuple[str, ...]

    @property
    def sequence(self) -> LoopSequence:
        return self.plan.seq

    @property
    def depth(self) -> int:
        return self.plan.depth

    def execution_plan(
        self,
        params: Mapping[str, int],
        num_procs: int = 1,
        grid_shape: Optional[Sequence[int]] = None,
        validate: bool = True,
    ) -> ExecutionPlan:
        return build_execution_plan(
            self.plan, params, num_procs, grid_shape, validate=validate
        )

    def legality(
        self, params: Mapping[str, int], grid_shape: Sequence[int]
    ) -> LegalityCheck:
        return check_legality(self.plan, params, grid_shape)

    def max_procs(self, params: Mapping[str, int]) -> tuple[int, ...]:
        return max_processors(self.plan, params)

    def table2_rows(self):
        """(loop number, shift vector, peel vector) rows as in Table 2."""
        return self.plan.table_rows()

    def summary_line(self) -> str:
        max_shift = self.plan.max_shift
        max_peel = self.plan.max_peel
        return (
            f"{self.sequence.name}: {len(self.sequence)} nests, depth "
            f"{self.depth}, max shift/peel {max_shift}/{max_peel}"
        )


def fuse_sequence(
    seq: LoopSequence,
    params: Sequence[str] = ("n",),
    depth: Optional[int] = None,
) -> FusionResult:
    """Plan shift-and-peel fusion for ``seq``.

    Raises :class:`~repro.ir.validate.AdmissibilityError` when the sequence
    is outside the program model and
    :class:`~repro.dependence.model.NonUniformDependenceError` when a
    dependence is not uniform in a fused dimension.
    """
    fuse_depth = depth if depth is not None else seq.common_depth()
    validate_sequence(seq, params, fuse_depth).raise_if_bad()
    plan = derive_shift_peel(seq, params, fuse_depth)
    return FusionResult(plan=plan, params_hint=tuple(params))


def fuse_program(program: Program) -> list[FusionResult]:
    """Plan fusion for every sequence of a program (Table 1's "number of
    loop sequences" column counts these).  Each sequence is fused at its
    *fusable* depth — the leading parallel loop levels."""
    return [
        fuse_sequence(seq, program.params, depth=seq.fusable_depth())
        for seq in program.sequences
    ]
