"""Static block scheduling (Appendix Def. 5).

Peeling assumes static, blocked scheduling of the fused loop: processor
``p`` (1-based) executes the contiguous block ``[istart(p), iend(p)]`` of
the fused dimension, with the remainder folded into the last block exactly
as in Def. 5.  Multidimensional schedules distribute each fused dimension
over one axis of a processor grid (Fig. 16).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class BlockSchedule:
    """Blocked partition of the inclusive range ``[lower, upper]``.

    Blocks are *balanced*: sizes differ by at most one iteration (the first
    ``trip % P`` blocks get the extra iteration).  Def. 5 folds the whole
    remainder into the last block; balancing is the standard refinement and
    keeps every legality argument intact (the binding quantity, the
    minimum block size, only grows).
    """

    lower: int
    upper: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("need at least one block")
        if self.upper < self.lower:
            raise ValueError("empty iteration range")
        if self.trip_count < self.num_blocks:
            raise ValueError(
                f"cannot split {self.trip_count} iterations into "
                f"{self.num_blocks} blocks"
            )

    @property
    def trip_count(self) -> int:
        return self.upper - self.lower + 1

    @property
    def block_size(self) -> int:
        """The *minimum* block size (what Theorem 1's condition bounds)."""
        return self.trip_count // self.num_blocks

    @property
    def _extra(self) -> int:
        return self.trip_count % self.num_blocks

    def istart(self, p: int) -> int:
        """Start of block ``p`` (1-based)."""
        self._check(p)
        q = self.block_size
        return self.lower + q * (p - 1) + min(p - 1, self._extra)

    def iend(self, p: int) -> int:
        self._check(p)
        if p == self.num_blocks:
            return self.upper
        return self.istart(p + 1) - 1

    def block(self, p: int) -> tuple[int, int]:
        return self.istart(p), self.iend(p)

    def blocks(self) -> Iterator[tuple[int, int]]:
        for p in range(1, self.num_blocks + 1):
            yield self.block(p)

    def owner(self, i: int) -> int:
        """Block (1-based) owning iteration ``i``."""
        if not self.lower <= i <= self.upper:
            raise ValueError(f"iteration {i} outside [{self.lower}, {self.upper}]")
        q = self.block_size
        offset = i - self.lower
        wide = (q + 1) * self._extra  # iterations covered by the wider blocks
        if q and offset < wide:
            return offset // (q + 1) + 1
        return self._extra + (offset - wide) // q + 1 if q else self.num_blocks

    def _check(self, p: int) -> None:
        if not 1 <= p <= self.num_blocks:
            raise ValueError(f"block index {p} outside 1..{self.num_blocks}")


@dataclass(frozen=True)
class GridSchedule:
    """Processor grid: one :class:`BlockSchedule` per fused dimension."""

    dims: tuple[BlockSchedule, ...]

    @property
    def num_procs(self) -> int:
        total = 1
        for sched in self.dims:
            total *= sched.num_blocks
        return total

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return tuple(s.num_blocks for s in self.dims)

    def coords(self) -> Iterator[tuple[int, ...]]:
        """All grid coordinates (1-based per dimension), row-major."""
        return itertools.product(*(range(1, s.num_blocks + 1) for s in self.dims))

    def block(self, coord: Sequence[int]) -> tuple[tuple[int, int], ...]:
        return tuple(s.block(p) for s, p in zip(self.dims, coord))

    def flat_index(self, coord: Sequence[int]) -> int:
        idx = 0
        for sched, p in zip(self.dims, coord):
            idx = idx * sched.num_blocks + (p - 1)
        return idx


def factor_grid(num_procs: int, ndims: int) -> tuple[int, ...]:
    """Factor ``num_procs`` into an ``ndims``-dimensional grid, preferring
    near-square shapes (matches the paper's 2-D distribution in Fig. 16)."""
    if ndims == 1:
        return (num_procs,)
    shape = [1] * ndims
    remaining = num_procs
    # Greedy: repeatedly pull the largest factor <= remaining**(1/axes_left).
    for axis in range(ndims - 1):
        axes_left = ndims - axis
        target = max(1, round(remaining ** (1.0 / axes_left)))
        best = 1
        for f in range(target, 0, -1):
            if remaining % f == 0:
                best = f
                break
        # Also look upward for a close divisor.
        for f in range(target + 1, remaining + 1):
            if remaining % f == 0 and abs(f - target) < abs(best - target):
                best = f
            if f > 2 * target:
                break
        shape[axis] = best
        remaining //= best
    shape[-1] = remaining
    return tuple(shape)
