"""Jacobi: the multidimensional shift-and-peel example of paper Figs. 15/16.

Two parallel nests — a 5-point relaxation into ``b`` followed by the
copy-back into ``a``.  Fusing both dimensions requires a shift of one and a
peel of one in each (the copy-back lags the relaxation by one row and one
column so the stencil's ``a[i+1]``/``a[j+1]`` reads stay legal).
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, Program, single_sequence_program
from ..ir.stmt import assign, load
from .base import KernelInfo, register

ARRAYS = ("a", "b")


def program(name: str = "jacobi") -> Program:
    n = Affine.var("n")
    i = Affine.var("i")
    j = Affine.var("j")

    def loops() -> tuple[Loop, ...]:
        return (Loop.make("j", 2, n - 1), Loop.make("i", 2, n - 1))

    relax = LoopNest(
        loops(),
        (
            assign(
                "b", (i, j),
                (load("a", i, j - 1) + load("a", i, j + 1)
                 + load("a", i - 1, j) + load("a", i + 1, j)) / 4.0,
            ),
        ),
        name="L1",
    )
    copy_back = LoopNest(
        loops(),
        (assign("a", (i, j), load("b", i, j)),),
        name="L2",
    )
    arrays = tuple(ArrayDecl.make(a, n + 1, n + 1) for a in ARRAYS)
    return single_sequence_program((relax, copy_back), arrays, ("n",), name)


INFO = register(
    KernelInfo(
        name="jacobi",
        description="Jacobi relaxation pair (paper Figs. 15/16)",
        builder=program,
        fuse_depth=2,
        num_sequences=1,
        longest_sequence=2,
        max_shift=1,
        max_peel=1,
        paper_shifts=(0, 1),
        paper_peels=(0, 1),
        paper_array_elems=(512, 512),
        default_params={"n": 128},
    )
)
