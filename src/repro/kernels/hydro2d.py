"""hydro2d: SPEC95 Navier-Stokes benchmark proxy.

Three transformable loop sequences per time step (Table 1):

1. the ten-nest ``filter`` smoothing cascade (shared with the ``filter``
   kernel — same dependence structure, max shift/peel 5/4),
2. a four-nest flux-computation phase with ``j±1`` stencils, and
3. a two-nest conserved-variable update (plain fusion, no shifting).

The proxy keeps the array-count and reuse pattern of the transformed
sequences; the untransformed remainder of the application is modelled by
``transformed_fraction`` in the machine simulation (an Amdahl term), since
only roughly half of hydro2d's runtime is in fusable sequences.
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.sequence import ArrayDecl, LoopSequence, Program
from .base import KernelInfo, register
from .filterk import program as filter_program
from .synth import chain_sequence_nests

FLUX_ARRAYS = ("fu", "fv", "gu", "gv")
UPDATE_ARRAYS = ("ronew", "ennew")


def program(name: str = "hydro2d") -> Program:
    m = Affine.var("m")
    n = Affine.var("n")
    bounds = ((6, m - 6), (6, n - 6))

    filt = filter_program()
    filter_seq = LoopSequence(filt.sequences[0].nests, name="hydro2d.filter")

    flux_nests = chain_sequence_nests(
        "flux",
        chain=[
            [("ro", (0, -1)), ("ro", (0, 1)), ("mu", (0, 0))],
            [("en", (0, -1)), ("en", (0, 1)), ("mu", (0, 0))],
            [("fu", (1, 0)), ("fu", (-1, 0)), ("gu", (0, 0))],
            [("gv", (1, 0)), ("gv", (-1, 0)), ("fv", (0, 0))],
        ],
        writes=["fu", "fv", "gv", "ro"],
        loop_vars=("j", "i"),
        bounds=bounds,
    )
    flux_seq = LoopSequence(flux_nests, name="hydro2d.flux")

    update_nests = chain_sequence_nests(
        "upd",
        chain=[
            [("ro", (0, 0)), ("fu", (0, 0))],
            [("en", (0, 0)), ("fv", (0, 0)), ("ronew", (0, 0))],
        ],
        writes=["ronew", "ennew"],
        loop_vars=("j", "i"),
        bounds=bounds,
    )
    update_seq = LoopSequence(update_nests, name="hydro2d.update")

    arrays = tuple(filt.arrays) + tuple(
        ArrayDecl.make(a, m + 1, n + 1) for a in FLUX_ARRAYS + UPDATE_ARRAYS
    )
    return Program(
        arrays=arrays,
        sequences=(filter_seq, flux_seq, update_seq),
        params=("m", "n"),
        name=name,
    )


INFO = register(
    KernelInfo(
        name="hydro2d",
        description="SPEC95 benchmark (Navier-Stokes) — proxy",
        builder=program,
        fuse_depth=1,
        num_sequences=3,
        longest_sequence=10,
        max_shift=5,
        max_peel=4,
        paper_array_elems=(802, 320),
        default_params={"m": 200, "n": 80},
        is_application=True,
        transformed_fraction=0.5,
    )
)
