"""spem: semi-spectral primitive-equation ocean circulation model proxy.

The paper's largest application: eleven transformable loop sequences over
3-D fields (60x65x65 in the paper, ~70 MB), together close to half the
runtime; maximum shift 1 and peel 2 across all sequences, with the longest
sequence holding eight nests.  The proxy reproduces those structural
numbers with eleven sequences drawn from four templates (a long
vertical-mode cascade, plain-fusable pair updates, mid-chain stencil
triples, and wide ``j-2`` advection reads), all over 3-D arrays indexed
``[j, i, k]`` (fused dimension ``j``, vertical ``k`` innermost).
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.sequence import ArrayDecl, LoopSequence, Program
from .base import KernelInfo, register
from .synth import chain_sequence_nests

FIELDS = ("ubar", "vbar", "tsal", "temp", "rho", "pgr")
WORK = tuple(f"w{k}" for k in range(1, 9))
ARRAYS = FIELDS + WORK


def _bounds(n: Affine, p: Affine):
    return ((3, n - 2), (2, n - 1), (1, p))


def program(name: str = "spem") -> Program:
    n = Affine.var("n")
    p = Affine.var("p")
    loop_vars = ("j", "i", "k")
    bounds = _bounds(n, p)

    def seq(prefix, chain, writes):
        nests = chain_sequence_nests(
            prefix, chain, writes, loop_vars, bounds, parallel_depth=1
        )
        return LoopSequence(nests, name=f"{name}.{prefix}")

    z = (0, 0, 0)
    up = (1, 0, 0)
    dn = (-1, 0, 0)
    dn2 = (-2, 0, 0)

    # Background fields read by most sweeps (bathymetry, Coriolis, masks in
    # the real model): they widen every sequence's working set, which is
    # what makes inter-nest fusion pay off for spem.
    bg1 = [("pgr", z), ("rho", z)]
    bg2 = [("temp", z), ("tsal", z)]
    sequences = (
        # s1: the eight-nest vertical-mode cascade (max shift 1, peel 2).
        seq(
            "modes",
            chain=[
                [("rho", z), ("temp", (0, 0, -1)), ("tsal", z)],
                [("w1", up), ("w1", dn), ("ubar", z)],
                [("w2", z), ("pgr", z), ("vbar", z)],
                [("w3", z), ("w1", z), ("rho", z)],
                [("w4", dn), ("w4", z), ("temp", z)],
                [("w5", z), ("tsal", z), ("ubar", z)],
                [("w6", z), ("w2", z), ("vbar", z)],
                [("w7", z), ("rho", z), ("pgr", z)],
            ],
            writes=["w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8"],
        ),
        # s2-s4: plain-fusable pairs (barotropic updates).
        seq("bar1", [[("ubar", z), ("pgr", z)] + bg2, [("w1", z), ("ubar", z)] + bg1],
            ["w1", "ubar"]),
        seq("bar2", [[("vbar", z), ("pgr", z)] + bg2, [("w2", z), ("vbar", z)] + bg1],
            ["w2", "vbar"]),
        seq("bar3", [[("rho", z), ("temp", z), ("ubar", z)],
                     [("w3", z), ("rho", z), ("vbar", z), ("tsal", z)]],
            ["w3", "rho"]),
        # s5-s7: three-nest stencil triples (shift 1, peel 1).
        seq("adv1",
            [[("temp", z)] + bg1, [("w4", up), ("w4", dn), ("ubar", z)],
             [("w5", z), ("temp", z), ("vbar", z)]],
            ["w4", "w5", "temp"]),
        seq("adv2",
            [[("tsal", z)] + bg1, [("w5", up), ("w5", dn), ("ubar", z)],
             [("w6", z), ("tsal", z), ("vbar", z)]],
            ["w5", "w6", "tsal"]),
        seq("adv3",
            [[("rho", z)] + bg2, [("w6", up), ("w6", dn), ("ubar", z)],
             [("w7", z), ("rho", z), ("vbar", z)]],
            ["w6", "w7", "rho"]),
        # s8-s9: wide advection reads (peel 2, no shift).
        seq("wide1",
            [[("ubar", z)] + bg2, [("w7", dn2), ("w7", z), ("pgr", z)],
             [("w8", z), ("ubar", z), ("rho", z)], [("w1", z), ("w8", z)]],
            ["w7", "w8", "w1", "ubar"]),
        seq("wide2",
            [[("vbar", z)] + bg2, [("w8", dn2), ("w8", z), ("pgr", z)],
             [("w1", z), ("vbar", z), ("rho", z)], [("w2", z), ("w1", z)]],
            ["w8", "w1", "w2", "vbar"]),
        # s10-s11: backward-only pairs (shift 1, peel 0).
        seq("vert1", [[("temp", z)] + bg1, [("w2", up), ("pgr", z)] + bg2],
            ["w2", "pgr"]),
        seq("vert2", [[("tsal", z)] + bg1, [("w3", up), ("rho", z), ("ubar", z)]],
            ["w3", "pgr"]),
    )
    arrays = tuple(ArrayDecl.make(a, n + 1, n + 1, p + 1) for a in ARRAYS)
    return Program(arrays=arrays, sequences=sequences, params=("n", "p"), name=name)


INFO = register(
    KernelInfo(
        name="spem",
        description="semi-spectral primitive-equation ocean model — proxy",
        builder=program,
        fuse_depth=1,
        num_sequences=11,
        longest_sequence=8,
        max_shift=1,
        max_peel=2,
        paper_array_elems=(60, 65, 65),
        default_params={"n": 32, "p": 12},
        is_application=True,
        transformed_fraction=0.5,
        remainder_remote_amp=14.0,
    )
)
