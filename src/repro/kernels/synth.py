"""Helpers for building stencil loop sequences compactly.

The application proxies (hydro2d flux/update phases, spem's eleven
sequences) share one shape: each nest writes one field and reads earlier
fields at small constant offsets in the fused dimension.  These helpers
build such nests without repeating IR plumbing.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.stmt import Expr, assign, load


def stencil_nest(
    name: str,
    write: str,
    reads: Sequence[tuple[str, Sequence[int]]],
    loop_vars: Sequence[str],
    bounds: Sequence[tuple[Affine | int, Affine | int]],
    parallel_depth: int = 1,
    scale: float = 0.5,
) -> LoopNest:
    """A nest ``write[vars] = scale * sum(reads at offsets)``.

    ``reads`` are ``(array, offset-vector)`` pairs; offsets are added to the
    loop variables positionally.
    """
    vars_ = [Affine.var(v) for v in loop_vars]
    rhs: Expr | None = None
    for array, offsets in reads:
        subs = [v + off for v, off in zip(vars_, offsets)]
        term = load(array, *subs)
        rhs = term if rhs is None else rhs + term
    if rhs is None:
        raise ValueError("stencil nest needs at least one read")
    rhs = rhs * scale
    loops = tuple(
        Loop.make(v, lo, hi, parallel=(lvl < parallel_depth or lvl == 0))
        for lvl, (v, (lo, hi)) in enumerate(zip(loop_vars, bounds))
    )
    return LoopNest(loops, (assign(write, tuple(vars_), rhs),), name=name)


def chain_sequence_nests(
    prefix: str,
    chain: Sequence[Sequence[tuple[str, Sequence[int]]]],
    writes: Sequence[str],
    loop_vars: Sequence[str],
    bounds: Sequence[tuple[Affine | int, Affine | int]],
    parallel_depth: int = 1,
) -> tuple[LoopNest, ...]:
    """Build a sequence of stencil nests: nest ``k`` writes ``writes[k]``
    and performs the reads listed in ``chain[k]``."""
    return tuple(
        stencil_nest(
            f"{prefix}L{k + 1}",
            writes[k],
            reads,
            loop_vars,
            bounds,
            parallel_depth,
        )
        for k, reads in enumerate(chain)
    )
