"""filter: smoothing subroutine from the hydro2d SPEC95 benchmark.

Ten parallel loop nests forming the longest dependence-chain sequence of
the evaluation: a cascade of difference/average passes over temporary
fields ``t1..t9`` ending in the filtered density update.  Every other nest
adds a ``j±1`` stencil on the previous temporary, so shifts and peels
accumulate down the chain to the paper's maxima of 5 and 4.  The arrays
are rectangular (the paper runs 1602x640 on the Convex), exercised here
with separate ``m`` (rows) and ``n`` (columns) parameters.

Derived amounts (Table 2):
shifts (0, 0, 0, 1, 2, 2, 3, 4, 4, 5), peels (0, 0, 0, 1, 2, 2, 3, 4, 4, 4).
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, Program, single_sequence_program
from ..ir.stmt import assign, load
from .base import KernelInfo, register

ARRAYS = ("ro", "en", "mu", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9")

C1 = 0.75
C2 = 0.25


def program(name: str = "filter") -> Program:
    m = Affine.var("m")
    n = Affine.var("n")
    j = Affine.var("j")
    i = Affine.var("i")

    def loops() -> tuple[Loop, ...]:
        return (Loop.make("j", 6, m - 6), Loop.make("i", 6, n - 6, parallel=False))

    nests = (
        LoopNest(loops(), (
            assign("t1", (j, i),
                   (load("ro", j, i - 1) + load("ro", j, i + 1)
                    + load("ro", j - 1, i) + load("ro", j + 1, i)) / 4.0),
        ), name="L1"),
        LoopNest(loops(), (
            assign("t2", (j, i),
                   (load("en", j, i - 1) + load("en", j, i + 1)) / 2.0),
        ), name="L2"),
        LoopNest(loops(), (
            assign("t3", (j, i),
                   (load("mu", j, i - 1) + load("mu", j, i + 1)) / 2.0),
        ), name="L3"),
        LoopNest(loops(), (
            assign("t4", (j, i),
                   load("t3", j + 1, i) - load("t3", j - 1, i) + load("t1", j, i)),
        ), name="L4"),
        LoopNest(loops(), (
            assign("t5", (j, i),
                   (load("t4", j + 1, i) + load("t4", j - 1, i)) / 2.0
                   + load("t2", j, i)),
        ), name="L5"),
        LoopNest(loops(), (
            assign("t6", (j, i),
                   load("t5", j, i) * C1 + load("t1", j, i) * C2),
        ), name="L6"),
        LoopNest(loops(), (
            assign("t7", (j, i),
                   load("t6", j + 1, i) - load("t6", j - 1, i)),
        ), name="L7"),
        LoopNest(loops(), (
            assign("t8", (j, i),
                   (load("t7", j + 1, i) + load("t7", j - 1, i)) / 2.0
                   + load("t5", j, i)),
        ), name="L8"),
        LoopNest(loops(), (
            assign("t9", (j, i),
                   load("t8", j, i) - load("t6", j, i)),
        ), name="L9"),
        LoopNest(loops(), (
            assign("ro", (j, i),
                   load("t9", j + 1, i) * C2 + load("t9", j, i) * C1),
        ), name="L10"),
    )
    arrays = tuple(ArrayDecl.make(a, m + 1, n + 1) for a in ARRAYS)
    return single_sequence_program(nests, arrays, ("m", "n"), name)


INFO = register(
    KernelInfo(
        name="filter",
        description="smoothing subroutine in hydro2d (SPEC95)",
        builder=program,
        fuse_depth=1,
        num_sequences=1,
        longest_sequence=10,
        max_shift=5,
        max_peel=4,
        paper_shifts=(0, 0, 0, 1, 2, 2, 3, 4, 4, 5),
        paper_peels=(0, 0, 0, 1, 2, 2, 3, 4, 4, 4),
        paper_array_elems=(1602, 640),
        default_params={"m": 200, "n": 80},
    )
)
