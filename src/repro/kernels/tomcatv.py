"""tomcatv: SPEC95 vectorized mesh-generation proxy.

One transformable three-nest sequence per time step: residuals ``rx``/
``ry`` and auxiliary coefficients are computed from the mesh coordinates
``x``/``y``, then the coordinates are relaxed in place.  The in-place
update creates ``j±1`` anti-dependences back to the residual nests, so
fusion needs a shift of 1 and a peel of 1 (Table 1's max shift/peel for
tomcatv).  Seven 2-D arrays, 513x513 in the paper (~16 MB total).
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, Program, single_sequence_program
from ..ir.stmt import assign, load
from .base import KernelInfo, register

ARRAYS = ("x", "y", "rx", "ry", "aa", "dd", "d")

RELAX = 0.4


def program(name: str = "tomcatv") -> Program:
    n = Affine.var("n")
    j = Affine.var("j")
    i = Affine.var("i")

    def loops() -> tuple[Loop, ...]:
        return (Loop.make("j", 2, n - 1), Loop.make("i", 2, n - 1, parallel=False))

    nest1 = LoopNest(
        loops(),
        (
            assign(
                "rx", (j, i),
                load("x", j, i + 1) + load("x", j, i - 1)
                + load("x", j + 1, i) + load("x", j - 1, i)
                - load("x", j, i) * 4.0,
            ),
            assign(
                "aa", (j, i),
                (load("y", j, i + 1) - load("y", j, i - 1)) * 0.5,
            ),
        ),
        name="L1",
    )
    nest2 = LoopNest(
        loops(),
        (
            assign(
                "ry", (j, i),
                load("y", j, i + 1) + load("y", j, i - 1)
                + load("y", j + 1, i) + load("y", j - 1, i)
                - load("y", j, i) * 4.0,
            ),
            assign(
                "dd", (j, i),
                (load("x", j, i + 1) - load("x", j, i - 1)) * 0.5,
            ),
        ),
        name="L2",
    )
    nest3 = LoopNest(
        loops(),
        (
            assign("d", (j, i), load("aa", j, i) * load("dd", j, i) + 1.0),
            assign(
                "x", (j, i),
                load("x", j, i) + load("rx", j, i) * RELAX,
            ),
            assign(
                "y", (j, i),
                load("y", j, i) + load("ry", j, i) * RELAX,
            ),
        ),
        name="L3",
    )
    arrays = tuple(ArrayDecl.make(a, n + 1, n + 1) for a in ARRAYS)
    return single_sequence_program((nest1, nest2, nest3), arrays, ("n",), name)


INFO = register(
    KernelInfo(
        name="tomcatv",
        description="SPEC95 benchmark (mesh generation) — proxy",
        builder=program,
        fuse_depth=1,
        num_sequences=1,
        longest_sequence=3,
        max_shift=1,
        max_peel=1,
        paper_shifts=(0, 0, 1),
        paper_peels=(0, 0, 1),
        paper_array_elems=(513, 513),
        default_params={"n": 128},
        is_application=True,
        transformed_fraction=0.4,
    )
)
