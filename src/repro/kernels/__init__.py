"""Kernels and applications of the paper's evaluation (Tables 1/2)."""

from . import calc, filterk, hydro2d, jacobi, ll18, spem, tomcatv
from .base import KernelInfo, all_kernels, get_kernel, register
from .synth import chain_sequence_nests, stencil_nest

__all__ = [
    "KernelInfo",
    "all_kernels",
    "calc",
    "chain_sequence_nests",
    "filterk",
    "get_kernel",
    "hydro2d",
    "jacobi",
    "ll18",
    "register",
    "spem",
    "stencil_nest",
    "tomcatv",
]
