"""LL18: Livermore Loop 18 (2-D explicit hydrodynamics excerpt).

Three parallel loop nests over nine 2-D arrays (``za zb zm zp zq zr zu zv
zz``), fused in the outermost (``j``) dimension.  The reference pattern
follows the Livermore kernel: nest 1 computes the ``za``/``zb`` work
arrays from pressure/viscosity terms, nest 2 accumulates velocities
``zu``/``zv`` (reading ``zb`` at ``j+1`` — the backward dependence that
forces a shift), nest 3 advances ``zr``/``zz`` (whose ``j-1``/``j+1``
reads in earlier nests force further shifting and one peel).

Derived amounts (Table 2): shifts (0, 1, 2), peels (0, 0, 1).
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, Program, single_sequence_program
from ..ir.stmt import assign, load
from .base import KernelInfo, register

ARRAYS = ("za", "zb", "zm", "zp", "zq", "zr", "zu", "zv", "zz")

#: Time-step / stabilization constants of the Livermore kernel.
S = 0.0041
T = 0.0037


def program(name: str = "ll18") -> Program:
    n = Affine.var("n")
    j = Affine.var("j")
    k = Affine.var("k")

    def loops() -> tuple[Loop, ...]:
        return (Loop.make("j", 2, n - 1), Loop.make("k", 2, n - 1, parallel=False))

    nest1 = LoopNest(
        loops(),
        (
            assign(
                "za",
                (j, k),
                (load("zp", j - 1, k + 1) + load("zq", j - 1, k + 1)
                 - load("zp", j - 1, k) - load("zq", j - 1, k))
                * (load("zr", j, k) + load("zr", j - 1, k))
                / (load("zm", j - 1, k) + load("zm", j - 1, k + 1)),
            ),
            assign(
                "zb",
                (j, k),
                (load("zp", j - 1, k) + load("zq", j - 1, k)
                 - load("zp", j, k) - load("zq", j, k))
                * (load("zr", j, k) + load("zr", j, k - 1))
                / (load("zm", j, k) + load("zm", j - 1, k)),
            ),
        ),
        name="L1",
    )
    nest2 = LoopNest(
        loops(),
        (
            assign(
                "zu",
                (j, k),
                load("zu", j, k)
                + S * (load("za", j, k) * (load("zz", j, k) - load("zz", j, k + 1))
                       - load("za", j, k - 1) * (load("zz", j, k) - load("zz", j, k - 1))
                       - load("zb", j, k) * (load("zz", j, k) - load("zz", j - 1, k))
                       + load("zb", j + 1, k) * (load("zz", j, k) - load("zz", j + 1, k))),
            ),
            assign(
                "zv",
                (j, k),
                load("zv", j, k)
                + S * (load("za", j, k) * (load("zr", j, k) - load("zr", j, k + 1))
                       - load("za", j, k - 1) * (load("zr", j, k) - load("zr", j, k - 1))
                       - load("zb", j, k) * (load("zr", j, k) - load("zr", j - 1, k))
                       + load("zb", j + 1, k) * (load("zr", j, k) - load("zr", j + 1, k))),
            ),
        ),
        name="L2",
    )
    nest3 = LoopNest(
        loops(),
        (
            assign("zr", (j, k), load("zr", j, k) + T * load("zu", j, k)),
            assign("zz", (j, k), load("zz", j, k) + T * load("zv", j, k)),
        ),
        name="L3",
    )
    arrays = tuple(ArrayDecl.make(a, n + 1, n + 1) for a in ARRAYS)
    return single_sequence_program((nest1, nest2, nest3), arrays, ("n",), name)


INFO = register(
    KernelInfo(
        name="ll18",
        description="kernel from Livermore Loops (2-D explicit hydrodynamics)",
        builder=program,
        fuse_depth=1,
        num_sequences=1,
        longest_sequence=3,
        max_shift=2,
        max_peel=1,
        paper_shifts=(0, 1, 2),
        paper_peels=(0, 0, 1),
        paper_array_elems=(512, 512),
        default_params={"n": 128},
    )
)
