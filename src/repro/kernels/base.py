"""Kernel registry and metadata.

Each kernel module builds a :class:`~repro.ir.Program` whose loop/array/
dependence structure matches the corresponding benchmark of the paper's
evaluation (Table 1).  The expected per-loop shift and peel amounts from
Table 2 are recorded as *expectations* — the library must derive them from
the dependence analysis; tests and the Table-2 bench assert the match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..ir.sequence import Program


@dataclass(frozen=True)
class KernelInfo:
    """Metadata mirroring the paper's Tables 1 and 2."""

    name: str
    description: str
    builder: Callable[[], Program]
    fuse_depth: int
    num_sequences: int
    longest_sequence: int
    max_shift: int
    max_peel: int
    paper_shifts: tuple[int, ...] = ()  # Table 2 (kernels only)
    paper_peels: tuple[int, ...] = ()
    paper_array_elems: tuple[int, ...] = ()  # array extents used in the paper
    default_params: Mapping[str, int] = field(default_factory=dict)
    is_application: bool = False
    transformed_fraction: float = 1.0  # share of runtime in fused sequences
    #: Amplification of the untransformed remainder's cost by remote traffic
    #: (the Convex compiler parallelizes those loops without regard for
    #: remote memory traffic — the paper's explanation for spem's dip).
    remainder_remote_amp: float = 0.0

    def program(self) -> Program:
        return self.builder()


_REGISTRY: dict[str, KernelInfo] = {}


def register(info: KernelInfo) -> KernelInfo:
    if info.name in _REGISTRY:
        raise ValueError(f"kernel {info.name!r} already registered")
    _REGISTRY[info.name] = info
    return info


def get_kernel(name: str) -> KernelInfo:
    _ensure_loaded()
    return _REGISTRY[name]


def all_kernels() -> list[KernelInfo]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def _ensure_loaded() -> None:
    # Import kernel modules for their registration side effects.
    from . import calc, filterk, hydro2d, jacobi, ll18, spem, tomcatv  # noqa: F401
