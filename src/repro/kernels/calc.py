"""calc: kernel from the qgbox quasigeostrophic box ocean model.

Five parallel loop nests over six 2-D fields, fused in the outermost
(``j``) dimension.  The sequence mirrors one time-step of the model's
``calc`` phase: two velocity evaluations from the streamfunction and
vorticity, a wide-stencil advection term (the ``j±2`` reads that force a
shift/peel of 2), a Jacobian smoothing pass (``j±1``), and the
streamfunction update that closes the anti-dependence chain back to the
first nest.

Derived amounts (Table 2): shifts (0, 0, 2, 3, 3), peels (0, 0, 2, 3, 3).
"""

from __future__ import annotations

from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, Program, single_sequence_program
from ..ir.stmt import assign, load
from .base import KernelInfo, register

ARRAYS = ("psi", "vort", "uvel", "vvel", "adv", "rhs")

DX = 0.125
DT = 0.01


def program(name: str = "calc") -> Program:
    n = Affine.var("n")
    j = Affine.var("j")
    i = Affine.var("i")

    def loops() -> tuple[Loop, ...]:
        return (Loop.make("j", 3, n - 2), Loop.make("i", 3, n - 2, parallel=False))

    nest1 = LoopNest(
        loops(),
        (
            assign(
                "uvel", (j, i),
                (load("psi", j, i + 1) - load("psi", j, i - 1)) * DX,
            ),
        ),
        name="L1",
    )
    nest2 = LoopNest(
        loops(),
        (
            assign(
                "vvel", (j, i),
                (load("vort", j, i + 1) - load("vort", j, i - 1)) * DX,
            ),
        ),
        name="L2",
    )
    nest3 = LoopNest(
        loops(),
        (
            assign(
                "adv", (j, i),
                (load("uvel", j + 2, i) - load("uvel", j - 2, i)) * DX
                + load("vvel", j, i) * (load("vort", j, i + 1) - load("vort", j, i - 1)),
            ),
        ),
        name="L3",
    )
    nest4 = LoopNest(
        loops(),
        (
            assign(
                "rhs", (j, i),
                (load("adv", j + 1, i) + load("adv", j - 1, i)
                 + load("adv", j, i + 1) + load("adv", j, i - 1)) / 4.0,
            ),
        ),
        name="L4",
    )
    nest5 = LoopNest(
        loops(),
        (
            assign(
                "psi", (j, i),
                load("psi", j, i) + DT * load("rhs", j, i),
            ),
            assign(
                "vort", (j, i),
                load("vort", j, i) + DT * load("adv", j, i),
            ),
        ),
        name="L5",
    )
    arrays = tuple(ArrayDecl.make(a, n + 1, n + 1) for a in ARRAYS)
    return single_sequence_program(
        (nest1, nest2, nest3, nest4, nest5), arrays, ("n",), name
    )


INFO = register(
    KernelInfo(
        name="calc",
        description="kernel from qgbox ocean model (quasigeostrophic step)",
        builder=program,
        fuse_depth=1,
        num_sequences=1,
        longest_sequence=5,
        max_shift=3,
        max_peel=3,
        paper_shifts=(0, 0, 2, 3, 3),
        paper_peels=(0, 0, 2, 3, 3),
        paper_array_elems=(512, 512),
        default_params={"n": 128},
    )
)
