"""A small blocking client for the ``repro serve`` daemon.

One socket, one request in flight (the closed-loop discipline the load
generator wants); the daemon itself supports pipelining, so anything
fancier can speak the protocol directly.  Stdlib only.
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from .protocol import decode_line, encode_message


class ServeClientError(ConnectionError):
    """The daemon hung up or answered gibberish."""


class ServeClient:
    """Connect to ``host:port`` or a unix ``socket_path``; usable as a
    context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7455,
                 socket_path: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        if socket_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def request(self, message: dict) -> dict:
        """Send one request dict, block for its response line."""
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClientError("connection closed by the daemon")
        return decode_line(line)

    # -- convenience wrappers ---------------------------------------------

    def ping(self, req_id: Any = "ping") -> dict:
        return self.request({"op": "ping", "id": req_id})

    def status(self, req_id: Any = "status") -> dict:
        return self.request({"op": "status", "id": req_id})

    def drain(self, req_id: Any = "drain") -> dict:
        return self.request({"op": "drain", "id": req_id})

    def health(self, req_id: Any = "health") -> dict:
        return self.request({"op": "health", "id": req_id})

    def chaos(self, spec: str, req_id: Any = "chaos") -> dict:
        """Install a fault plan on the daemon ("" clears the active one)."""
        return self.request({"op": "chaos", "id": req_id, "spec": spec})

    def exec(self, kernel: str, req_id: Any = 0, *,
             n: Optional[int] = None, procs: int = 4,
             strip: Optional[int] = None, backend: str = "jit",
             sync: Optional[str] = None,
             max_workers: Optional[int] = None,
             tenant: Optional[str] = None,
             deadline_ms: Optional[float] = None) -> dict:
        message: dict = {"op": "exec", "id": req_id, "kernel": kernel,
                         "procs": procs, "backend": backend}
        for name, value in (("n", n), ("strip", strip), ("sync", sync),
                            ("max_workers", max_workers),
                            ("tenant", tenant),
                            ("deadline_ms", deadline_ms)):
            if value is not None:
                message[name] = value
        return self.request(message)

    def compile(self, kernel: str, req_id: Any = 0, *,
                n: Optional[int] = None, procs: int = 4,
                strip: Optional[int] = None, backend: str = "jit",
                tenant: Optional[str] = None) -> dict:
        message: dict = {"op": "compile", "id": req_id, "kernel": kernel,
                         "procs": procs, "backend": backend}
        for name, value in (("n", n), ("strip", strip),
                            ("tenant", tenant)):
            if value is not None:
                message[name] = value
        return self.request(message)
