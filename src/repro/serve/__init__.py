"""``repro serve``: the compile-and-execute service daemon.

The execution stack built by the earlier PRs — plan → structural
signature → plan cache → jit/mpjit with point-to-point sync and a
persisted auto-tuner — is shaped like a server's hot path, but every
``repro exec`` still pays process startup and owns its worker pool.
This package puts a long-running service in front of the stack:

* :mod:`.protocol` — the newline-delimited-JSON wire protocol
  (``compile`` / ``exec`` / ``status`` / ``drain`` requests with ids,
  tenants and deadlines);
* :mod:`.admission` — the bounded request queue with per-tenant
  weighted fair dequeue, the signature-keyed batcher, and the
  measured-cost model (auto-tuner winners seed projected-wait
  estimates) behind load shedding;
* :mod:`.server` — the asyncio daemon sharing ONE plan cache and ONE
  persistent mpjit worker pool across every client, with graceful
  drain on SIGTERM;
* :mod:`.client` — a small blocking client used by the load generator,
  the tests and external tooling;
* :mod:`.loadgen` — ``repro loadgen``: a closed-loop load generator
  recording sustained req/s and p50/p95/p99 + deadline-miss latency
  into the immutable benchmark trajectory store.

Everything is stdlib + numpy — no new dependencies.
"""

from .admission import AdmissionController, Batch, CostModel, QueuedRequest
from .client import ServeClient
from .protocol import (
    PROTOCOL,
    ProtocolError,
    Request,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from .server import FusionServer, ServerConfig

__all__ = [
    "AdmissionController",
    "Batch",
    "CostModel",
    "FusionServer",
    "PROTOCOL",
    "ProtocolError",
    "QueuedRequest",
    "Request",
    "STATUS_DRAINING",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "ServeClient",
    "ServerConfig",
    "decode_line",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
]
