"""Wire protocol of the ``repro serve`` daemon.

One request or response per line, encoded as UTF-8 JSON — trivially
speakable from any language (``nc``, ``socat``, a five-line python
script) and safely framable without length prefixes.  Requests::

    {"op": "exec", "id": 1, "kernel": "jacobi", "n": 65, "procs": 4,
     "backend": "jit", "tenant": "team-a", "deadline_ms": 250}
    {"op": "compile", "id": 2, "kernel": "ll18", "n": 65, "procs": 4}
    {"op": "status", "id": 3}
    {"op": "drain", "id": 4}
    {"op": "ping", "id": 5}
    {"op": "health", "id": 6}
    {"op": "chaos", "id": 7, "spec": "crash@run=3,9;cache_corrupt@exec=5"}

Responses always echo the request ``id`` and carry ``ok`` plus a
``status`` discriminator::

    {"id": 1, "ok": true, "status": "ok", "result": {...}}
    {"id": 1, "ok": false, "status": "overloaded", "error": "..."}
    {"id": 1, "ok": false, "status": "draining", "error": "..."}
    {"id": 1, "ok": false, "status": "error", "error": "..."}

``overloaded`` is the admission controller shedding load (bounded
queue, or the projected wait — seeded from the auto-tuner's measured
costs — already exceeds the request deadline); clients are expected to
back off and retry.  ``draining`` means the daemon is shutting down
gracefully and accepting no new work; in-flight requests still get
their ``ok`` responses before the process exits.

An exec that fails after the server's retries additionally carries a
structured ``failure`` object (the runtime's error taxonomy —
``worker_crash`` / ``sync_timeout`` / ``compile_error`` /
``cache_corrupt`` / ``overload``)::

    {"id": 1, "ok": false, "status": "error", "error": "...",
     "failure": {"kind": "worker_crash", "retryable": true, ...}}

``health`` reports liveness beyond ``status``: pool supervision
(respawns, quarantined workers), circuit-breaker state, failure counts
by kind, and the active fault plan.  ``chaos`` installs a deterministic
fault plan at runtime (spec grammar in :mod:`repro.runtime.faults`);
an empty ``spec`` clears it.

This module is pure data — no asyncio, no kernels, no numpy — so the
client, the tests and the server all share one source of truth for
field names and validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

PROTOCOL = "repro-serve/1"

OPS = ("compile", "exec", "status", "drain", "ping", "health", "chaos")

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_OVERLOADED = "overloaded"
STATUS_DRAINING = "draining"

DEFAULT_TENANT = "default"

#: Fields an ``exec``/``compile`` request may set to pick its
#: configuration; everything else is rejected loudly rather than
#: silently ignored (a typoed ``dedline_ms`` must not admit a request
#: that should have been shed).
CONFIG_FIELDS = ("kernel", "n", "procs", "strip", "backend", "sync",
                 "max_workers")
REQUEST_FIELDS = frozenset(("op", "id", "tenant", "deadline_ms", "spec",
                            *CONFIG_FIELDS))


class ProtocolError(ValueError):
    """A malformed line or an invalid field; the server answers with a
    ``status: error`` response instead of dropping the connection."""


@dataclass(frozen=True)
class ExecKey:
    """The batching equivalence class of an exec/compile request.

    Two requests with equal keys run the same compiled plan with the
    same runtime options, so the batcher may coalesce them: the plan is
    prepared once and the executions run back-to-back on the shared
    pool.
    """

    kernel: str
    n: Optional[int] = None
    procs: int = 4
    strip: Optional[int] = None
    backend: str = "jit"
    sync: Optional[str] = None
    max_workers: Optional[int] = None

    def describe(self) -> str:
        shape = f"n={self.n}" if self.n is not None else "n=default"
        return f"{self.kernel}[{shape}] {self.backend} P={self.procs}"


@dataclass
class Request:
    """One validated request line."""

    op: str
    id: Any
    tenant: str = DEFAULT_TENANT
    deadline_ms: Optional[float] = None
    key: Optional[ExecKey] = field(default=None)
    spec: Optional[str] = None

    @property
    def wants_execution(self) -> bool:
        return self.op in ("exec", "compile")


def _opt_int(raw: Mapping[str, Any], name: str,
             minimum: int = 1) -> Optional[int]:
    value = raw.get(name)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise ProtocolError(f"{name} must be an integer >= {minimum}, "
                            f"got {value!r}")
    return value


def parse_request(line: bytes | str) -> Request:
    """Decode and validate one request line (raises :class:`ProtocolError`).

    Field presence and types are checked here; *semantic* validation
    (does the kernel exist, is the backend registered) belongs to the
    server, which owns the registries.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from None
    try:
        raw = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(raw, dict):
        raise ProtocolError("request must be a JSON object")
    unknown = set(raw) - REQUEST_FIELDS
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    op = raw.get("op")
    if op not in OPS:
        raise ProtocolError(f"op must be one of {OPS}, got {op!r}")
    if "id" not in raw:
        raise ProtocolError("request needs an id (echoed in the response)")
    req_id = raw["id"]
    if not isinstance(req_id, (str, int)) or isinstance(req_id, bool):
        raise ProtocolError("id must be a string or integer")
    tenant = raw.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("tenant must be a non-empty string")
    deadline_ms = raw.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) \
                or isinstance(deadline_ms, bool) or deadline_ms <= 0:
            raise ProtocolError("deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    spec = raw.get("spec")
    if spec is not None:
        if op != "chaos":
            raise ProtocolError(f"spec is meaningless for op {op!r}")
        if not isinstance(spec, str):
            raise ProtocolError("spec must be a string (fault-plan spec; "
                                "empty clears the active plan)")
    elif op == "chaos":
        raise ProtocolError("chaos needs a spec (empty string clears "
                            "the active plan)")
    key = None
    if op in ("exec", "compile"):
        kernel = raw.get("kernel")
        if not isinstance(kernel, str) or not kernel:
            raise ProtocolError(f"{op} needs a kernel name")
        backend = raw.get("backend", "jit")
        if not isinstance(backend, str):
            raise ProtocolError("backend must be a string")
        sync = raw.get("sync")
        if sync is not None and sync not in ("p2p", "barrier"):
            raise ProtocolError("sync must be 'p2p' or 'barrier'")
        key = ExecKey(
            kernel=kernel,
            n=_opt_int(raw, "n", minimum=3),
            procs=_opt_int(raw, "procs") or 4,
            strip=_opt_int(raw, "strip"),
            backend=backend,
            sync=sync,
            max_workers=_opt_int(raw, "max_workers"),
        )
    else:
        for name in CONFIG_FIELDS:
            if name in raw:
                raise ProtocolError(f"{name} is meaningless for op {op!r}")
    return Request(op=op, id=req_id, tenant=tenant,
                   deadline_ms=deadline_ms, key=key, spec=spec)


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Decode one response line into a dict (raises ProtocolError)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        raw = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from None
    if not isinstance(raw, dict):
        raise ProtocolError("response must be a JSON object")
    return raw


def ok_response(req_id: Any, result: Mapping[str, Any]) -> dict:
    return {"id": req_id, "ok": True, "status": STATUS_OK,
            "result": dict(result)}


def error_response(req_id: Any, status: str, message: str,
                   **extra: Any) -> dict:
    resp = {"id": req_id, "ok": False, "status": status, "error": message}
    resp.update(extra)
    return resp
