"""``repro loadgen``: a closed-loop load generator for the daemon.

``concurrency`` worker threads each hold one connection and fire
``exec`` requests back-to-back for ``duration`` seconds — the classic
closed-loop client model, so measured latency includes queueing behind
other tenants and the batcher's coalescing shows up as throughput.

What it proves, in one run:

* **correctness** — every successful response's checksum is compared
  against a direct in-process execution of the same kernel/shape (the
  backends are bit-identical by construction, so the reference uses
  the plain vector backend); any mismatch is a hard failure;
* **tail latency** — per-request latencies aggregate through the same
  :func:`repro.bench.telemetry.summarize_samples` the offline suite
  uses, yielding p50/p95/p99 and deadline-miss counts;
* **batching and shedding** — the daemon's ``status`` op is sampled at
  the end, recording ``batched_requests``, shed counts and per-tenant
  service shares next to the client-side numbers.

The run is persisted as a normal immutable benchmark run directory
(``benchmarks/results/<run_id>/`` with ``telemetry.json`` +
``summary.csv`` and a trajectory line), so ``repro bench --trend`` and
``check_bench_regression.py --compare`` work on service runs unchanged
— this is the ROADMAP item 5 wiring for deadline-miss telemetry.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Optional

from ..bench.telemetry import machine_snapshot, summarize_samples
from .client import ServeClient, ServeClientError
from .protocol import STATUS_DRAINING, STATUS_OK, STATUS_OVERLOADED

#: Back off this long after a shed response so an overloaded daemon
#: spends its cycles executing, not refusing.
SHED_BACKOFF_SECONDS = 0.002


class _WorkerLog:
    """One worker's observations (merged after the join)."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.checksums: dict[str, int] = {}
        self.shapes: set[str] = set()
        self.ok = 0
        self.overloaded = 0
        self.draining = 0
        self.errors = 0
        self.batched = 0
        self.retried = 0
        self.degraded = 0
        self.failure_kinds: dict[str, int] = {}
        self.failure: Optional[str] = None


def _worker(log: _WorkerLog, stop: threading.Event, deadline: float,
            connect: Callable[[], ServeClient], tenant: str,
            exec_kwargs: dict) -> None:
    try:
        client = connect()
    except OSError as exc:
        log.failure = f"connect failed: {exc}"
        return
    try:
        seq = 0
        while not stop.is_set() and time.monotonic() < deadline:
            seq += 1
            t0 = time.monotonic()
            try:
                resp = client.exec(tenant=tenant,
                                   req_id=f"{tenant}-{seq}", **exec_kwargs)
            except (ServeClientError, OSError) as exc:
                log.failure = f"request failed: {exc}"
                return
            latency = time.monotonic() - t0
            status = resp.get("status")
            if status == STATUS_OK:
                log.ok += 1
                log.latencies.append(latency)
                result = resp.get("result", {})
                digest = result.get("checksum")
                if digest:
                    log.checksums[digest] = log.checksums.get(digest, 0) + 1
                if result.get("shape"):
                    log.shapes.add(result["shape"])
                if result.get("batched"):
                    log.batched += 1
                if result.get("retries"):
                    log.retried += 1
                if result.get("degraded"):
                    log.degraded += 1
            elif status == STATUS_OVERLOADED:
                log.overloaded += 1
                time.sleep(SHED_BACKOFF_SECONDS)
            elif status == STATUS_DRAINING:
                log.draining += 1
                return
            else:
                log.errors += 1
                kind = (resp.get("failure") or {}).get("kind", "unknown")
                log.failure_kinds[kind] = log.failure_kinds.get(kind, 0) + 1
    finally:
        client.close()


def reference_checksum(kernel: str, n: Optional[int], procs: int) -> str:
    """Direct in-process execution for the correctness cross-check.

    The vector backend needs no cache, no pool and no compilation, and
    every backend is proven bit-identical to it, so its checksum is the
    ground truth any service response must reproduce.
    """
    from ..runtime.benchmarking import execute_prepared, prepare_kernel

    prep = prepare_kernel(kernel, n=n, procs=procs, backend="vector")
    _seconds, _counters, digest = execute_prepared(prep, "vector")
    return digest


def run_loadgen(
    kernel: str = "jacobi",
    n: Optional[int] = None,
    procs: int = 4,
    backend: str = "jit",
    strip: Optional[int] = None,
    sync: Optional[str] = None,
    max_workers: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 7455,
    socket_path: Optional[str] = None,
    concurrency: int = 8,
    duration: float = 10.0,
    deadline_ms: Optional[float] = None,
    tenants: int = 1,
    chaos: Optional[str] = None,
    results_root: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = print,
) -> tuple[dict, Optional[Path]]:
    """Drive the daemon; returns ``(payload, run_dir)``.

    ``payload`` is a standard telemetry payload whose single entry is
    the service run (samples = per-request latencies); ``run_dir`` is
    the immutable results directory (None when ``results_root`` is).

    When ``chaos`` is set, the spec is installed on the daemon via the
    ``chaos`` op *after* the warm-up request (so the plan's run/exec
    counters start from the measured window) and cleared again once the
    window closes — the soak then reads ``availability`` and
    ``checksum_mismatches`` out of the entry to gate on.
    """

    def connect() -> ServeClient:
        return ServeClient(host=host, port=port, socket_path=socket_path)

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    reference = reference_checksum(kernel, n, procs)
    exec_kwargs = {"kernel": kernel, "n": n, "procs": procs,
                   "backend": backend, "strip": strip, "sync": sync,
                   "max_workers": max_workers, "deadline_ms": deadline_ms}
    # Warm the daemon (plan + compile + first pool spawn happen here,
    # outside the measured window) and fail fast on an unreachable or
    # misconfigured target.
    with connect() as warm:
        resp = warm.exec(tenant="warmup", req_id="warmup", **exec_kwargs)
        if resp.get("status") not in (STATUS_OK, STATUS_OVERLOADED):
            raise RuntimeError(f"warm-up request failed: {resp}")
        if chaos:
            resp = warm.chaos(chaos, req_id="chaos-install")
            if not resp.get("ok"):
                raise RuntimeError(f"chaos install failed: {resp}")
            say(f"loadgen: chaos plan installed: {chaos}")
    say(f"loadgen: {concurrency} workers x {duration:.0f}s against "
        f"{kernel} n={n} P={procs} backend={backend} "
        f"({tenants} tenant(s), deadline "
        f"{deadline_ms if deadline_ms is not None else '-'} ms)")
    stop = threading.Event()
    logs = [_WorkerLog() for _ in range(concurrency)]
    t_start = time.monotonic()
    deadline = t_start + duration
    threads = [
        threading.Thread(
            target=_worker,
            args=(logs[w], stop, deadline, connect,
                  f"tenant-{w % max(1, tenants)}", exec_kwargs),
            daemon=True,
        )
        for w in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=duration + 60.0)
    stop.set()
    elapsed = time.monotonic() - t_start
    server_stats = None
    server_health = None
    try:
        with connect() as control:
            status = control.status()
            if status.get("ok"):
                server_stats = status["result"]
            health = control.health()
            if health.get("ok"):
                server_health = health["result"]
            if chaos:
                control.chaos("", req_id="chaos-clear")
    except (OSError, ServeClientError, RuntimeError):
        pass  # the daemon may already be draining; client stats stand alone
    latencies = sorted(
        lat for log in logs for lat in log.latencies)
    counts = {
        "ok": sum(log.ok for log in logs),
        "overloaded": sum(log.overloaded for log in logs),
        "draining": sum(log.draining for log in logs),
        "errors": sum(log.errors for log in logs),
        "batched": sum(log.batched for log in logs),
        "retried": sum(log.retried for log in logs),
        "degraded": sum(log.degraded for log in logs),
    }
    failure_kinds: dict[str, int] = {}
    for log in logs:
        for kind, count in log.failure_kinds.items():
            failure_kinds[kind] = failure_kinds.get(kind, 0) + count
    answered = counts["ok"] + counts["errors"]
    availability = counts["ok"] / answered if answered else 1.0
    failures = [log.failure for log in logs if log.failure]
    checksums: dict[str, int] = {}
    for log in logs:
        for digest, count in log.checksums.items():
            checksums[digest] = checksums.get(digest, 0) + count
    mismatches = sum(count for digest, count in checksums.items()
                     if digest != reference)
    shapes = {shape for log in logs for shape in log.shapes}
    shape = shapes.pop() if shapes else (f"n={n}" if n else "n=default")
    rps = counts["ok"] / elapsed if elapsed > 0 else 0.0
    entry = {
        "kernel": kernel,
        "backend": f"serve-{backend}",
        "shape": shape,
        "procs": procs,
        "checksum": reference,
        "iterations": None,
        "samples": [{"seconds": round(lat, 6)} for lat in latencies],
        "requests": counts,
        "requests_per_second": round(rps, 3),
        "concurrency": concurrency,
        "tenants": tenants,
        "duration_seconds": round(elapsed, 3),
        "checksum_mismatches": mismatches,
        "client_failures": failures,
        "availability": round(availability, 6),
        "failure_kinds": failure_kinds,
    }
    if latencies:
        entry["seconds"] = round(min(latencies), 6)
        entry.update(summarize_samples(
            latencies,
            deadline_seconds=(deadline_ms / 1000.0
                              if deadline_ms is not None else None)))
    payload = machine_snapshot()
    payload.update({
        "suite": {
            "service": True,
            "kernel": kernel, "n": n, "procs": procs, "backend": backend,
            "concurrency": concurrency, "tenants": tenants,
            "duration_seconds": duration, "deadline_ms": deadline_ms,
            "chaos": chaos,
        },
        "server": server_stats,
        "health": server_health,
        "entries": [entry],
    })
    run_dir = None
    if results_root is not None:
        from ..bench.store import write_run

        run_dir = write_run(payload, root=Path(results_root))
        payload["run_id"] = run_dir.name
    if latencies:
        say(f"  {counts['ok']} ok ({rps:.1f} req/s sustained), "
            f"{counts['overloaded']} overloaded, "
            f"{counts['errors']} errors, {mismatches} checksum mismatches, "
            f"availability {availability * 100:.2f}%")
        if counts["retried"] or counts["degraded"] or failure_kinds:
            kinds = ", ".join(f"{k}={v}" for k, v
                              in sorted(failure_kinds.items())) or "-"
            say(f"  recovery: {counts['retried']} retried, "
                f"{counts['degraded']} degraded, failure kinds: {kinds}")
        say(f"  latency p50 {entry['p50_seconds'] * 1000:.2f} ms, "
            f"p95 {entry['p95_seconds'] * 1000:.2f} ms, "
            f"p99 {entry['p99_seconds'] * 1000:.2f} ms, "
            f"deadline misses {entry.get('deadline_misses', 0)}")
    else:
        say(f"  no successful responses ({counts['overloaded']} "
            f"overloaded, {counts['errors']} errors)")
    if server_stats is not None:
        admission = server_stats.get("admission", {})
        say(f"  server: {admission.get('batches', 0)} batches, "
            f"{admission.get('batched_requests', 0)} batched requests "
            f"(max batch {admission.get('max_batch_size', 0)}), "
            f"{admission.get('shed_queue_full', 0)} shed on queue, "
            f"{admission.get('shed_deadline', 0)} shed on deadline")
    if run_dir is not None:
        say(f"  run dir: {run_dir}")
    return payload, run_dir
