"""Admission control for the service daemon: bounded queueing, weighted
fair scheduling across tenants, signature-keyed batching and
measured-cost load shedding.

The controller is deliberately synchronous and asyncio-free — plain
data structures driven from the server's event loop (single-threaded,
so no locking) and unit-testable without sockets.

**Fairness** is stride scheduling: every tenant carries a virtual
``pass``; dequeuing always picks the backlogged tenant with the lowest
pass and advances it by ``1/weight`` per request served.  A tenant with
weight 2 therefore drains twice as fast as a weight-1 tenant under
contention, and an idle tenant re-enters at the current virtual time
instead of burning saved-up credit.

**Batching** is keyed by the execution signature (the structural plan
signature plus runtime options): dequeuing one request also pulls every
other queued request with the same signature — across tenants, each
charged to its own tenant's pass — so the plan is prepared once and the
executions run back-to-back on the warm pool.

**Load shedding** keeps latency bounded instead of queues unbounded: a
request is refused with ``overloaded`` when the queue is full, or when
its ``deadline_ms`` is provably hopeless — the projected wait (cost of
everything queued plus the in-flight batch, estimated from the online
EWMA of observed executions seeded by the auto-tuner's persisted
measured winners) already exceeds the deadline.  A *cold* signature has
no estimate and contributes zero projected wait: with no measurement
there is no evidence to shed on, so cold traffic is admitted.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from .protocol import ExecKey, Request

#: EWMA smoothing for observed execution costs: heavy enough that one
#: scheduler hiccup cannot triple the estimate, light enough that a
#: real shift shows up within a few batches.
EWMA_ALPHA = 0.3


class CostModel:
    """Per-signature execution-cost estimates (seconds).

    Two sources, in order of trust: the **online EWMA** of executions
    this daemon has actually run, and — before the first observation —
    the **auto-tuner's persisted winner** for the same (kernel IR,
    shape, procs, machine), whose ``seconds`` field is a real
    measurement from :func:`repro.runtime.autotune.resolve_config`.
    A signature with neither returns ``None``: unknown, not free.
    """

    def __init__(self, tuner=None) -> None:
        self._tuner = tuner
        self._ewma: dict[str, float] = {}
        self._tuner_cost: dict[str, Optional[float]] = {}

    def observe(self, signature: str, seconds: float) -> None:
        prev = self._ewma.get(signature)
        if prev is None:
            self._ewma[signature] = seconds
        else:
            self._ewma[signature] = (EWMA_ALPHA * seconds
                                     + (1.0 - EWMA_ALPHA) * prev)

    def _tuner_estimate(self, signature: str,
                        key: Optional[ExecKey]) -> Optional[float]:
        if signature in self._tuner_cost:
            return self._tuner_cost[signature]
        seconds: Optional[float] = None
        if self._tuner is not None and key is not None:
            try:
                from ..kernels import get_kernel
                from ..runtime.autotune import tuning_key
                from ..runtime.benchmarking import resolve_params

                info = get_kernel(key.kernel)
                program = info.program()
                params = resolve_params(info, program, n=key.n)
                payload = self._tuner.lookup(
                    tuning_key(program, params, key.procs))
                if payload is not None:
                    raw = payload["winner"].get("seconds")
                    if isinstance(raw, (int, float)) and raw > 0:
                        seconds = float(raw)
            except (KeyError, TypeError, ValueError):
                seconds = None
        self._tuner_cost[signature] = seconds
        return seconds

    def estimate(self, signature: str,
                 key: Optional[ExecKey] = None) -> Optional[float]:
        """Best cost estimate for one execution, or None when cold."""
        hit = self._ewma.get(signature)
        if hit is not None:
            return hit
        return self._tuner_estimate(signature, key)

    def snapshot(self) -> dict:
        return {"ewma_signatures": len(self._ewma),
                "tuner_seeded": sum(1 for v in self._tuner_cost.values()
                                    if v is not None)}


@dataclass
class QueuedRequest:
    """One admitted request waiting for (or riding in) a batch.

    ``ticket`` is an opaque slot for the caller — the server parks the
    asyncio future that resolves the client response here; the
    controller never touches it.
    """

    request: Request
    signature: str
    enqueued: float = field(default_factory=time.monotonic)
    ticket: Any = None

    @property
    def key(self) -> ExecKey:
        return self.request.key


@dataclass
class Batch:
    """Identical-signature requests executed back-to-back."""

    signature: str
    requests: list[QueuedRequest]

    @property
    def key(self) -> ExecKey:
        return self.requests[0].key

    def __len__(self) -> int:
        return len(self.requests)


class AdmissionController:
    """Bounded per-tenant queues with weighted fair, batch-coalescing
    dequeue and measured-cost load shedding."""

    def __init__(
        self,
        max_queue: int = 64,
        max_batch: int = 16,
        weights: Optional[Mapping[str, float]] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.cost_model = cost_model or CostModel()
        self._weights = dict(weights or {})
        # OrderedDict so equal-pass ties break round-robin, not by name.
        self._queues: OrderedDict[str, deque[QueuedRequest]] = OrderedDict()
        self._pass: dict[str, float] = {}
        self._vtime = 0.0
        self.depth = 0
        self.inflight_cost = 0.0
        self.inflight = 0
        self.stats = {
            "admitted": 0, "shed_queue_full": 0, "shed_deadline": 0,
            "batches": 0, "batched_requests": 0, "max_batch_size": 0,
        }
        self._tenant_stats: dict[str, dict[str, int]] = {}

    # -- bookkeeping -------------------------------------------------------

    def weight(self, tenant: str) -> float:
        return max(float(self._weights.get(tenant, 1.0)), 1e-6)

    def _tenant(self, tenant: str) -> dict[str, int]:
        return self._tenant_stats.setdefault(
            tenant, {"admitted": 0, "served": 0, "shed": 0})

    def queued_cost(self) -> float:
        """Estimated seconds of work sitting in the queues (cold
        signatures count zero — no measurement, no projection)."""
        total = 0.0
        for queue in self._queues.values():
            for qreq in queue:
                est = self.cost_model.estimate(qreq.signature, qreq.key)
                if est is not None:
                    total += est
        return total

    def projected_wait_seconds(self) -> float:
        """What a newly admitted request is expected to wait before it
        starts executing: everything queued plus the in-flight batch."""
        return self.queued_cost() + self.inflight_cost

    # -- admission ---------------------------------------------------------

    def try_admit(self, qreq: QueuedRequest) -> tuple[bool, str]:
        """Admit or shed one request; returns ``(admitted, reason)``.

        Shedding reasons are wire-visible so clients can distinguish a
        full queue (back off) from a hopeless deadline (raise it or ask
        for a cheaper config).
        """
        tenant = qreq.request.tenant
        if self.depth >= self.max_queue:
            self.stats["shed_queue_full"] += 1
            self._tenant(tenant)["shed"] += 1
            return False, (f"queue full ({self.depth}/{self.max_queue} "
                           f"requests queued)")
        deadline_ms = qreq.request.deadline_ms
        if deadline_ms is not None:
            wait_ms = self.projected_wait_seconds() * 1000.0
            if wait_ms > deadline_ms:
                self.stats["shed_deadline"] += 1
                self._tenant(tenant)["shed"] += 1
                return False, (f"projected wait {wait_ms:.1f} ms exceeds "
                               f"deadline {deadline_ms:.1f} ms")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # An idle tenant re-enters at the current virtual time; it
            # must not cash in credit saved while it sent nothing.
            self._pass[tenant] = max(self._pass.get(tenant, 0.0),
                                     self._vtime)
        queue.append(qreq)
        self.depth += 1
        self.stats["admitted"] += 1
        self._tenant(tenant)["admitted"] += 1
        return True, "admitted"

    # -- dequeue + batching ------------------------------------------------

    def _charge(self, tenant: str, count: int = 1) -> None:
        self._pass[tenant] = (self._pass.get(tenant, self._vtime)
                              + count / self.weight(tenant))
        self._tenant(tenant)["served"] += count

    def next_batch(self) -> Optional[Batch]:
        """The next identical-signature batch, fairness first.

        The head request comes from the lowest-pass backlogged tenant
        (stride scheduling); everything else queued with the same
        signature coalesces into the batch — riders are charged to
        their own tenants, so batching never distorts fairness
        accounting.
        """
        head_tenant = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            if head_tenant is None \
                    or self._pass[tenant] < self._pass[head_tenant]:
                head_tenant = tenant
        if head_tenant is None:
            return None
        self._vtime = self._pass[head_tenant]
        head = self._queues[head_tenant].popleft()
        self._charge(head_tenant)
        self.depth -= 1
        members = [head]
        for tenant, queue in self._queues.items():
            if len(members) >= self.max_batch:
                break
            taken = 0
            kept: deque[QueuedRequest] = deque()
            while queue:
                qreq = queue.popleft()
                if (qreq.signature == head.signature
                        and len(members) < self.max_batch):
                    members.append(qreq)
                    taken += 1
                else:
                    kept.append(qreq)
            queue.extend(kept)
            if taken:
                self._charge(tenant, taken)
                self.depth -= taken
        self.stats["batches"] += 1
        self.stats["batched_requests"] += len(members) - 1
        self.stats["max_batch_size"] = max(self.stats["max_batch_size"],
                                           len(members))
        return Batch(signature=head.signature, requests=members)

    # -- in-flight accounting ---------------------------------------------

    def mark_inflight(self, batch: Batch) -> None:
        est = self.cost_model.estimate(batch.signature, batch.key)
        self.inflight_cost = (est or 0.0) * len(batch)
        self.inflight = len(batch)

    def mark_done(self, batch: Batch) -> None:
        self.inflight_cost = 0.0
        self.inflight = 0

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "depth": self.depth,
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "inflight": self.inflight,
            "projected_wait_ms": round(
                self.projected_wait_seconds() * 1000.0, 3),
            "tenants": {
                tenant: dict(stats, queued=len(self._queues.get(tenant, ())),
                             weight=self.weight(tenant))
                for tenant, stats in sorted(self._tenant_stats.items())
            },
            "cost_model": self.cost_model.snapshot(),
            **self.stats,
        }
