"""The asyncio service daemon behind ``repro serve``.

One process, one event loop, ONE shared plan cache and ONE persistent
mpjit worker pool for every client:

* each client connection speaks the newline-delimited JSON protocol
  (:mod:`.protocol`) and may pipeline requests;
* ``exec``/``compile`` requests pass admission control
  (:mod:`.admission`) and park on a future; a single scheduler
  coroutine dequeues signature-keyed batches and runs them on a
  one-thread executor, so executions are strictly serialized — exactly
  the discipline the shared worker pool requires — while the event
  loop keeps accepting, answering ``status`` and shedding load;
* plan preparation (analysis → fuse → plan → compile) happens at most
  once per signature per daemon lifetime: a small LRU of
  :class:`~repro.runtime.benchmarking.PreparedKernel` sits on top of
  the process-wide plan cache, so a batch of identical requests pays
  one compile and N executions;
* every observed execution feeds the admission cost model
  (EWMA, seeded by the auto-tuner's persisted winners), closing the
  static + dynamic loop: measured costs drive load-shedding decisions;
* SIGTERM (and the ``drain`` op) triggers a graceful drain — stop
  admitting, finish everything queued and in-flight, answer the drain
  request, close the shared pool via its idempotent ``close()`` — so a
  supervisor restart never loses accepted work.
"""

from __future__ import annotations

import asyncio
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from .admission import AdmissionController, Batch, CostModel, QueuedRequest
from .protocol import (
    PROTOCOL,
    ExecKey,
    ProtocolError,
    Request,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OVERLOADED,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)

#: Prepared-kernel LRU size: distinct (kernel, shape, procs, options)
#: configurations kept hot.  Eviction only costs re-preparation through
#: the on-disk plan cache (one compile(), no emission).
PREPARED_SLOTS = 32


@dataclass
class ServerConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 7455
    socket_path: Optional[str] = None
    max_queue: int = 64
    max_batch: int = 16
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    seed: int = 7
    grace_seconds: float = 0.1
    #: retry budget per exec request (attempts = retries + 1), stepping
    #: down the degradation ladder; 0 disables the retry machinery
    retries: int = 2
    #: fault-plan spec installed at boot (``repro serve --chaos``)
    chaos: Optional[str] = None


class FusionServer:
    """The daemon.  Construct, then ``asyncio.run(server.serve())``.

    ``on_listening`` (if given) is called once with the bound address
    string — the CLI prints it, tests parse it.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 tuner=None,
                 on_listening: Optional[Callable[[str], None]] = None,
                 ) -> None:
        from ..runtime.autotune import default_tuner

        self.config = config or ServerConfig()
        self.cost_model = CostModel(tuner=tuner or default_tuner())
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            weights=self.config.tenant_weights,
            cost_model=self.cost_model,
        )
        from ..runtime.supervisor import CircuitBreaker, RetryPolicy

        self.on_listening = on_listening
        self.address: Optional[str] = None
        self.stats = {
            "received": 0, "completed": 0, "errors": 0,
            "rejected_draining": 0, "protocol_errors": 0,
            "connections": 0, "retries": 0, "degraded": 0,
            "exec_failures": 0,
        }
        self.breaker = CircuitBreaker()
        self.retry_policy = RetryPolicy(
            max_attempts=max(1, self.config.retries + 1))
        self._failure_counts: dict[str, int] = {}
        self.started_monotonic = time.monotonic()
        self._sig_cache: dict[ExecKey, str] = {}
        self._prepared: OrderedDict[str, object] = OrderedDict()
        self._prepared_seconds = {"plan": 0.0, "compile": 0.0}
        self._kernels: Optional[frozenset[str]] = None
        self._backends: Optional[tuple[str, ...]] = None
        self._draining = False
        self._executor = None
        self._work: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None

    # -- validation and signatures ----------------------------------------

    def _known_kernels(self) -> frozenset[str]:
        if self._kernels is None:
            from ..kernels import all_kernels

            self._kernels = frozenset(k.name for k in all_kernels())
        return self._kernels

    def _known_backends(self) -> tuple[str, ...]:
        if self._backends is None:
            from ..runtime import available_backends

            self._backends = available_backends()
        return self._backends

    def validate_key(self, key: ExecKey) -> Optional[str]:
        if key.kernel not in self._known_kernels():
            return (f"unknown kernel {key.kernel!r}; known: "
                    f"{', '.join(sorted(self._known_kernels()))}")
        if key.backend not in self._known_backends():
            return (f"unknown backend {key.backend!r}; known: "
                    f"{', '.join(self._known_backends())}")
        return None

    def signature_for(self, op: str, key: ExecKey) -> str:
        """The batching signature: the structural program signature (the
        plan cache's program-alias key) plus the runtime options that
        change how the compiled plan executes.  Cached per key — the
        program build behind it costs about a millisecond."""
        base = self._sig_cache.get(key)
        if base is None:
            from ..kernels import get_kernel
            from ..runtime.benchmarking import resolve_params
            from ..runtime.plancache import program_signature

            info = get_kernel(key.kernel)
            program = info.program()
            params = resolve_params(info, program, n=key.n)
            base = program_signature(program, params, key.procs, key.strip)
            self._sig_cache[key] = base
        return (f"{op}:{base}:{key.backend}:{key.sync or '-'}"
                f":{key.max_workers or '-'}")

    # -- executor-thread work ----------------------------------------------

    def _prepare(self, signature: str, key: ExecKey):
        """PreparedKernel for ``key``, LRU-cached (executor thread only)."""
        from ..runtime.benchmarking import prepare_kernel

        prep = self._prepared.get(signature)
        if prep is not None:
            self._prepared.move_to_end(signature)
            return prep
        prep = prepare_kernel(
            key.kernel, n=key.n, procs=key.procs, seed=self.config.seed,
            backend=key.backend, strip=key.strip,
        )
        self._prepared_seconds["plan"] += prep.plan_seconds
        self._prepared_seconds["compile"] += prep.compile_seconds
        self._prepared[signature] = prep
        while len(self._prepared) > PREPARED_SLOTS:
            self._prepared.popitem(last=False)
        return prep

    def _maybe_cache_fault(self) -> None:
        """Chaos hook: fire any due ``cache_corrupt`` fault (executor
        thread).  Garbles one on-disk plan-cache module and drops both
        in-memory tiers, so a later prepare must take the quarantine +
        recompile path."""
        from ..runtime.faults import active_plan, corrupt_cache_entry

        try:
            plan = active_plan()
        except Exception:
            return  # a bad env spec is reported by the exec path
        if plan is None or not plan.take_cache_fault():
            return
        from ..runtime.plancache import default_cache

        corrupt_cache_entry(default_cache())
        self._prepared.clear()

    def _execute_batch(self, batch: Batch) -> list[tuple]:
        """Run one batch on the executor thread: prepare once, execute
        each member back-to-back.  Returns one ``("ok", result)`` or
        ``("err", failure_dict, message)`` per member (same order) —
        members are retried individually with backend degradation, so a
        poisoned request fails alone instead of taking its riders down.
        """
        from ..runtime.benchmarking import execute_resilient
        from ..runtime.fastexec import FastExecError
        from ..runtime.supervisor import classify_failure

        key = batch.key
        try:
            prep = self._prepare(batch.signature, key)
        except Exception as exc:  # noqa: BLE001 - reported per member
            failure = classify_failure(exc) if isinstance(
                exc, FastExecError) else None
            payload = (failure.as_dict() if failure is not None
                       else {"kind": "compile_error", "retryable": False})
            message = f"{type(exc).__name__}: {exc}"
            return [("err", payload, message) for _ in batch.requests]
        results: list[tuple] = []
        for index, qreq in enumerate(batch.requests):
            t0 = time.perf_counter()
            if qreq.request.op == "compile":
                seconds = time.perf_counter() - t0
                results.append(("ok", {
                    "kernel": key.kernel, "shape": prep.shape,
                    "procs": key.procs, "backend": key.backend,
                    "plan_seconds": round(prep.plan_seconds, 6),
                    "compile_seconds": round(prep.compile_seconds, 6),
                    "signatures": [m.signature for m in prep.modules]
                    if prep.modules else [p.signature(strip=key.strip)
                                          for p in prep.plans],
                    "cache": dict(prep.cache_stats),
                    "seconds": round(seconds, 6),
                }))
                continue
            self._maybe_cache_fault()
            try:
                seconds, counters, digest, recovery = execute_resilient(
                    prep, key.backend, strip=key.strip,
                    max_workers=key.max_workers, sync=key.sync,
                    policy=self.retry_policy, breaker=self.breaker,
                    signature=batch.signature,
                )
            except FastExecError as exc:
                failure = classify_failure(exc)
                self.stats["exec_failures"] += 1
                self._failure_counts[failure.kind] = (
                    self._failure_counts.get(failure.kind, 0) + 1)
                results.append(("err", failure.as_dict(),
                                f"{type(exc).__name__}: {exc}"))
                continue
            result = {
                "kernel": key.kernel, "shape": prep.shape,
                "procs": key.procs, "backend": key.backend,
                "seconds": round(seconds, 6),
                "iterations": (counters["fused_iterations"]
                               + counters["peeled_iterations"]),
                "checksum": digest,
                "batch_size": len(batch), "batch_index": index,
                "batched": len(batch) > 1,
            }
            if recovery["retries"] or recovery["degraded"]:
                self.stats["retries"] += recovery["retries"]
                self.stats["degraded"] += int(recovery["degraded"])
                result["retries"] = recovery["retries"]
                result["backend_used"] = recovery["backend_used"]
                result["degraded"] = recovery["degraded"]
            results.append(("ok", result))
        return results

    # -- the scheduler -----------------------------------------------------

    async def _scheduler(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self.admission.depth == 0:
                if self._draining:
                    break
                self._work.clear()
                await self._work.wait()
                continue
            batch = self.admission.next_batch()
            if batch is None:  # pragma: no cover - depth>0 implies a batch
                continue
            self.admission.mark_inflight(batch)
            try:
                results = await loop.run_in_executor(
                    self._executor, self._execute_batch, batch)
            except Exception as exc:  # noqa: BLE001 - reported to clients
                self.stats["errors"] += len(batch)
                message = f"{type(exc).__name__}: {exc}"
                for qreq in batch.requests:
                    self._resolve(qreq, error_response(
                        qreq.request.id, STATUS_ERROR, message))
            else:
                exec_seconds = [r[1]["seconds"] for r in results
                                if r[0] == "ok" and "checksum" in r[1]]
                if exec_seconds:
                    self.cost_model.observe(
                        batch.signature,
                        sum(exec_seconds) / len(exec_seconds))
                now = time.monotonic()
                for qreq, outcome in zip(batch.requests, results):
                    if outcome[0] == "err":
                        _, failure, message = outcome
                        self.stats["errors"] += 1
                        self._resolve(qreq, error_response(
                            qreq.request.id, STATUS_ERROR, message,
                            failure=failure))
                        continue
                    result = outcome[1]
                    result["queue_ms"] = round(
                        (now - qreq.enqueued) * 1000.0, 3)
                    self.stats["completed"] += 1
                    self._resolve(qreq, ok_response(qreq.request.id, result))
            finally:
                self.admission.mark_done(batch)
        self._drained.set()

    @staticmethod
    def _resolve(qreq: QueuedRequest, response: dict) -> None:
        future = qreq.ticket
        if future is not None and not future.done():
            future.set_result(response)

    # -- request handling --------------------------------------------------

    def status_snapshot(self) -> dict:
        from ..runtime.plancache import default_cache
        from ..runtime.pool import pool_stats

        return {
            "protocol": PROTOCOL,
            "address": self.address,
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3),
            "draining": self._draining,
            **{k: v for k, v in self.stats.items()},
            "admission": self.admission.snapshot(),
            "prepared": {
                "entries": len(self._prepared),
                "plan_seconds": round(self._prepared_seconds["plan"], 6),
                "compile_seconds": round(
                    self._prepared_seconds["compile"], 6),
            },
            "plancache": default_cache().stats.as_dict(),
            "pool": pool_stats(),
        }

    def health_snapshot(self) -> dict:
        """The ``health`` op: recovery-focused liveness — pool
        supervision, breaker state, failure taxonomy counts and the
        active fault plan (``status`` stays throughput-focused)."""
        from ..runtime.faults import active_plan
        from ..runtime.pool import pool_stats
        from ..runtime.supervisor import default_supervisor

        try:
            plan = active_plan()
        except Exception:
            plan = None
        return {
            "protocol": PROTOCOL,
            "draining": self._draining,
            "pool": pool_stats(),
            "supervisor": default_supervisor().stats(),
            "breaker": self.breaker.snapshot(),
            "failures": dict(self._failure_counts),
            "retries": self.stats["retries"],
            "degraded": self.stats["degraded"],
            "exec_failures": self.stats["exec_failures"],
            "retry_budget": self.config.retries,
            "faults": plan.describe() if plan is not None else None,
        }

    def _handle_chaos(self, req: Request) -> dict:
        from ..runtime import faults

        spec = (req.spec or "").strip()
        if not spec:
            faults.install_plan(None)
            return ok_response(req.id, {"chaos": None})
        try:
            plan = faults.FaultPlan.parse(spec, source="chaos op")
        except faults.FaultSpecError as exc:
            self.stats["errors"] += 1
            return error_response(req.id, STATUS_ERROR, str(exc))
        faults.install_plan(plan)
        return ok_response(req.id, {"chaos": plan.describe()})

    async def handle_request(self, req: Request) -> dict:
        if req.op == "ping":
            return ok_response(req.id, {"protocol": PROTOCOL})
        if req.op == "status":
            return ok_response(req.id, self.status_snapshot())
        if req.op == "health":
            return ok_response(req.id, self.health_snapshot())
        if req.op == "chaos":
            return self._handle_chaos(req)
        if req.op == "drain":
            self.begin_drain()
            await self._drained.wait()
            return ok_response(req.id, {
                "drained": True,
                "completed": self.stats["completed"],
                "admission": self.admission.snapshot(),
            })
        # exec / compile
        if self._draining:
            self.stats["rejected_draining"] += 1
            return error_response(req.id, STATUS_DRAINING,
                                  "daemon is draining; no new work accepted")
        problem = self.validate_key(req.key)
        if problem is not None:
            self.stats["errors"] += 1
            return error_response(req.id, STATUS_ERROR, problem)
        signature = self.signature_for(req.op, req.key)
        qreq = QueuedRequest(request=req, signature=signature,
                             ticket=asyncio.get_running_loop()
                             .create_future())
        admitted, reason = self.admission.try_admit(qreq)
        if not admitted:
            return error_response(
                req.id, STATUS_OVERLOADED, reason,
                queue_depth=self.admission.depth,
                projected_wait_ms=round(
                    self.admission.projected_wait_seconds() * 1000.0, 3),
            )
        self._work.set()
        return await qreq.ticket

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           lock: asyncio.Lock) -> None:
        try:
            req = parse_request(line)
        except ProtocolError as exc:
            self.stats["protocol_errors"] += 1
            response = error_response(None, STATUS_ERROR, str(exc))
        else:
            self.stats["received"] += 1
            response = await self.handle_request(req)
        async with lock:
            try:
                writer.write(encode_message(response))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; nothing to tell it

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats["connections"] += 1
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                # Pipelining: each request is its own task so a queued
                # exec never blocks a status probe on the same socket.
                task = asyncio.create_task(
                    self._handle_line(line, writer, lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already gone
                pass

    # -- lifecycle ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting, let the scheduler finish what was accepted.
        Idempotent; safe to call from a signal handler on the loop."""
        if self._draining:
            return
        self._draining = True
        if self._work is not None:
            self._work.set()

    async def serve(self) -> None:
        """Run until drained (``drain`` op or SIGTERM/SIGINT)."""
        from concurrent.futures import ThreadPoolExecutor

        if self.config.chaos:
            from ..runtime import faults

            faults.install_plan(faults.FaultPlan.parse(
                self.config.chaos, source="--chaos"))
        loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec")
        if self.config.socket_path:
            server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.socket_path)
            self.address = f"unix:{self.config.socket_path}"
        else:
            server = await asyncio.start_server(
                self._on_connection, host=self.config.host,
                port=self.config.port)
            host, port = server.sockets[0].getsockname()[:2]
            self.address = f"{host}:{port}"
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or exotic platform: drain op only
        if self.on_listening is not None:
            self.on_listening(self.address)
        scheduler = asyncio.create_task(self._scheduler())
        try:
            await self._drained.wait()
            # Give drain-op handlers a beat to flush their responses
            # before the sockets disappear.
            await asyncio.sleep(self.config.grace_seconds)
        finally:
            server.close()
            await server.wait_closed()
            await scheduler
            self._executor.shutdown(wait=True)
            from ..runtime import faults
            from ..runtime.pool import shutdown_pool
            from ..runtime.supervisor import default_supervisor

            # Clear any runtime-installed fault plan (env-based plans
            # are unaffected) and let an in-flight background respawn
            # settle before the pool is retired for good.
            faults.install_plan(None)
            default_supervisor().wait(timeout=5.0)
            shutdown_pool()
