"""Command-line interface: the source-to-source compiler and the
experiment harness as a tool.

Usage::

    python -m repro transform FILE [--style stripmined|direct|spmd]
    python -m repro analyze FILE
    python -m repro simulate KERNEL [--machine ksr2|convex] [--procs ...]
    python -m repro exec KERNEL [--backend interp|vector|mp|jit|mpjit|cjit]
                         [--n N] [--sync p2p|barrier] [--autotune]
    python -m repro bench [--smoke] [--repeats R] [--run-dir DIR] [--trend]
    python -m repro serve [--port P | --socket PATH] [--max-queue Q]
    python -m repro loadgen [--concurrency N] [--duration S]
    python -m repro experiment NAME        # table1, table2, fig18..fig26
    python -m repro list

``transform`` reads a DSL loop program and writes the fused source;
``analyze`` prints the dependence summary, the derived shift/peel plan and
a legality/profitability report; ``simulate`` runs a kernel on a simulated
machine; ``exec`` really executes a kernel through one of the runtime
backends and reports wall-clock time plus a checksum; ``bench`` runs the
whole fastexec suite into an immutable ``results/<run_id>/`` telemetry
directory; ``serve`` runs the long-lived compile-and-execute daemon
(one shared plan cache and worker pool for all clients); ``loadgen``
drives a running daemon and records service latency telemetry;
``experiment`` regenerates one table/figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import (
    evaluate_profitability,
    fuse_sequence,
    max_processors,
)
from .dependence import analyze_sequence
from .experiments import (
    fig15_16,
    fig18,
    fig20,
    fig21,
    fig22,
    fig23,
    fig24,
    fig25,
    fig26,
    setup_kernel,
    table1,
    table2,
)
from .kernels import all_kernels
from .lang import parse_program, transform_source
from .machine import convex_spp1000, ksr2
from .runtime import available_backends

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig15": fig15_16,
    "fig18": fig18,
    "fig20": fig20,
    "fig21": fig21,
    "fig22": fig22,
    "fig23": fig23,
    "fig24": fig24,
    "fig25": fig25,
    "fig26": fig26,
}

MACHINES = {"ksr2": ksr2, "convex": convex_spp1000}


def cmd_transform(args: argparse.Namespace) -> int:
    """``repro transform``: DSL file in, fused source out."""
    source = _read(args.file)
    print(transform_source(source, name=args.file, style=args.style))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """``repro analyze``: dependences, derived plan, legality, advice."""
    source = _read(args.file)
    program = parse_program(source, name=args.file)
    seq = program.sequences[0]
    summary = analyze_sequence(seq, program.params)
    print(f"{len(seq)} nests, {summary.edge_count()} uniform dependences "
          f"({summary.pairs_tested} reference pairs tested, "
          f"{summary.independent_pairs} proved independent)")
    for dep in summary.deps:
        print(f"  {dep}")
    result = fuse_sequence(seq, program.params)
    print()
    print(result.plan.describe())
    params = {p: args.n for p in program.params}
    ceiling = max_processors(result.plan, params)
    print(f"\nwith {'/'.join(f'{p}={args.n}' for p in program.params)}: "
          f"legal up to {ceiling[0]} processors (Theorem 1)")
    machine = MACHINES[args.machine]()
    advice = evaluate_profitability(
        program, result.plan, params, args.procs, machine.cache.capacity_bytes
    )
    print(f"profitability at P={args.procs} on {machine.name}: {advice}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: speedup sweep of a kernel on a machine model."""
    machine = MACHINES[args.machine]()
    exp = setup_kernel(args.kernel, machine, dims_div=args.scale)
    counts = [int(p) for p in args.procs.split(",")]
    print(f"{args.kernel} on {exp.machine.name} "
          f"(cache {exp.machine.cache.capacity_bytes // 1024} KB, "
          f"params {exp.params}, strip {exp.strip})")
    print(f"{'P':>3} {'unfused':>9} {'fused':>9} {'improvement':>12}")
    for point in exp.curves(counts):
        print(f"{point.num_procs:3d} {point.speedup_unfused:9.2f} "
              f"{point.speedup_fused:9.2f} "
              f"{100 * (point.improvement - 1):+11.1f}%")
    return 0


def cmd_exec(args: argparse.Namespace) -> int:
    """``repro exec``: really run a kernel through a runtime backend.

    ``--json PATH`` also writes the record as JSON; ``--json -`` writes
    it to **stdout** (the human-readable report moves to stderr), so
    pipelines and external clients consume records without temp files.
    """
    import builtins
    import functools
    import json

    from .runtime.benchmarking import measure_kernel

    json_to_stdout = args.json == "-"
    print = functools.partial(  # noqa: A001 - deliberate local rebind
        builtins.print, file=sys.stderr if json_to_stdout else sys.stdout)
    record = measure_kernel(
        args.kernel,
        args.backend,
        n=args.n,
        procs=args.procs,
        strip=args.strip,
        repeat=args.repeat,
        verify=args.verify,
        use_cache=not args.no_cache,
        max_workers=args.max_workers,
        sync=args.sync,
        autotune=args.autotune,
        retries=args.retries,
    )
    sync_note = f", sync={record['sync']}" if "sync" in record else ""
    print(f"{record['kernel']} [{record['shape']}] on backend "
          f"{record['backend']}{sync_note} with {record['procs']} processors:")
    if "autotune" in record:
        tune = record["autotune"]
        stats = tune.get("stats", {})
        winner = tune.get("winner", {}).get("config", {})
        what = ", ".join(f"{k}={v}" for k, v in sorted(winner.items()))
        if tune.get("hit"):
            print(f"  auto-tuner: hit (persisted winner reused, "
                  f"0 candidates timed) -> {what}")
        else:
            print(f"  auto-tuner: miss ({tune.get('candidates_timed', 0)} "
                  f"candidates timed in {tune.get('tune_seconds', 0.0):.3f} s)"
                  f" -> {what}")
        print(f"  auto-tuner stats: {stats.get('hits', 0)} hits, "
              f"{stats.get('misses', 0)} misses, "
              f"{stats.get('stores', 0)} stores, "
              f"{stats.get('invalid', 0)} invalid")
    print(f"  {record['seconds']:.6f} s for {record['iterations']} iterations"
          f"{' (verified against interp)' if args.verify else ''}")
    print(f"  cold {record['cold_seconds']:.6f} s "
          f"(plan {record['plan_seconds']:.6f} s, "
          f"compile {record['compile_seconds']:.6f} s), "
          f"warm {record['warm_seconds']:.6f} s")
    if "cache" in record:
        cache = record["cache"]
        print(f"  plan cache: {cache.get('memory_hits', 0)} memory hits, "
              f"{cache.get('disk_hits', 0)} disk hits, "
              f"{cache.get('misses', 0)} misses, "
              f"{cache.get('alias_hits', 0)} alias hits")
    if "cjit" in record:
        cjit = record["cjit"]
        if cjit.get("native"):
            print(f"  native tier: live "
                  f"(compiler {cjit.get('compiler_fingerprint', '?')})")
        else:
            print(f"  native tier: fell back to jit — "
                  f"{cjit.get('fallback_reason', 'unknown reason')}")
    if "pool_workers" in record:
        if record["pool_workers"]:
            print(f"  worker pool: {record['pool_workers']} workers "
                  f"(spawned in {record['pool_spawn_seconds']:.6f} s, "
                  f"{record['pool_runs']} runs), "
                  f"steady-state {record['steady_seconds']:.6f} s")
        else:
            print("  worker pool: bypassed (one worker resolved; "
                  "ran the compiled module serially)")
    if "recovery" in record:
        recovery = record["recovery"]
        print(f"  recovery: {recovery['retries']} retries, "
              f"{recovery['degraded_runs']} degraded runs "
              f"(budget {recovery['budget']})")
    print(f"  checksum {record['checksum']}")
    if json_to_stdout:
        json.dump(record, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.json}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run the fastexec suite into an immutable run dir."""
    import json
    from pathlib import Path

    from .bench.harness import run_suite
    from .bench.store import write_run

    if args.trend:
        from .bench.trend import render_trend

        print(render_trend(Path(args.run_dir), markdown=args.markdown,
                           last=args.last))
        return 0
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    payload = run_suite(smoke=args.smoke, repeat=args.repeats,
                        deadline_seconds=deadline)
    run_dir = write_run(payload, root=Path(args.run_dir))
    print(f"run dir: {run_dir}")
    print(f"  {len(payload['entries'])} entries x {args.repeats} repeats, "
          f"calibration {payload['calibration_seconds']}s, "
          f"git {payload.get('git_sha') or 'unknown'}")
    if args.out:
        stamped = json.loads((run_dir / "telemetry.json").read_text())
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
        print(f"  also wrote {out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the long-lived compile-and-execute daemon."""
    import asyncio

    from .serve.server import FusionServer, ServerConfig

    weights: dict[str, float] = {}
    for spec in args.tenant_weight or ():
        name, _, raw = spec.partition("=")
        try:
            weight = float(raw)
        except ValueError:
            weight = 0.0
        if not name or weight <= 0:
            print(f"bad --tenant-weight {spec!r} (want NAME=WEIGHT with "
                  f"a positive weight)", file=sys.stderr)
            return 2
        weights[name] = weight
    if args.chaos:
        from .runtime.faults import FaultPlan, FaultSpecError

        try:
            FaultPlan.parse(args.chaos, source="--chaos")
        except FaultSpecError as exc:
            print(f"bad --chaos spec: {exc}", file=sys.stderr)
            return 2
    config = ServerConfig(
        host=args.host, port=args.port, socket_path=args.socket,
        max_queue=args.max_queue, max_batch=args.max_batch,
        tenant_weights=weights, retries=args.retries, chaos=args.chaos,
    )

    def announce(address: str) -> None:
        print(f"repro-serve listening on {address} "
              f"(max queue {config.max_queue}, max batch "
              f"{config.max_batch})", flush=True)

    server = FusionServer(config, on_listening=announce)
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive ^C race
        pass
    print(f"repro-serve drained: {server.stats['completed']} completed, "
          f"{server.admission.stats['batched_requests']} batched, "
          f"{server.admission.stats['shed_queue_full'] + server.admission.stats['shed_deadline']} shed",
          flush=True)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: drive a daemon, record service telemetry."""
    import json
    from pathlib import Path

    from .serve.loadgen import run_loadgen

    say = print if args.json != "-" else (
        lambda message: print(message, file=sys.stderr))
    try:
        payload, _run_dir = run_loadgen(
            kernel=args.kernel, n=args.n, procs=args.procs,
            backend=args.backend, strip=args.strip, sync=args.sync,
            max_workers=args.max_workers,
            host=args.host, port=args.port, socket_path=args.socket,
            concurrency=args.concurrency, duration=args.duration,
            deadline_ms=args.deadline_ms, tenants=args.tenants,
            chaos=args.chaos,
            results_root=None if args.no_store else Path(args.run_dir),
            progress=say,
        )
    except (OSError, RuntimeError) as exc:
        print(f"loadgen failed: {exc}", file=sys.stderr)
        return 2
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif args.json:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        say(f"  wrote {args.json}")
    entry = payload["entries"][0]
    if entry["checksum_mismatches"]:
        print(f"loadgen: {entry['checksum_mismatches']} responses "
              f"disagreed with the direct-exec checksum", file=sys.stderr)
        return 3
    if entry["client_failures"]:
        print(f"loadgen: worker failures: {entry['client_failures']}",
              file=sys.stderr)
        return 2
    if not entry["requests"]["ok"]:
        print("loadgen: no successful responses", file=sys.stderr)
        return 2
    if args.require_batching:
        server = payload.get("server") or {}
        batched = server.get("admission", {}).get("batched_requests", 0)
        if not batched:
            print("loadgen: --require-batching set but the server "
                  "coalesced nothing", file=sys.stderr)
            return 4
    if args.min_availability is not None:
        floor = args.min_availability / 100.0
        availability = entry.get("availability", 0.0)
        if availability < floor:
            print(f"loadgen: availability {availability * 100:.2f}% is "
                  f"below the --min-availability floor "
                  f"{args.min_availability:.2f}%", file=sys.stderr)
            return 5
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment``: regenerate one named table/figure."""
    fn = EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    print(fn().format())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments import generate_report

    report = generate_report(quick=not args.full)
    print(report.format())
    return 0 if report.all_ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list``: enumerate kernels and experiments."""
    print("kernels/applications:")
    for info in sorted(all_kernels(), key=lambda k: k.name):
        kind = "application" if info.is_application else "kernel"
        print(f"  {info.name:8s} ({kind}): {info.description}")
    print("\nexperiments:", ", ".join(sorted(EXPERIMENTS)))
    print("plus: report (all of the above with claim checks)")
    return 0


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (kept separate for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="shift-and-peel loop fusion (ICPP 1995 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("transform", help="fuse a DSL loop program")
    p.add_argument("file", help="DSL source file ('-' for stdin)")
    p.add_argument("--style", default="stripmined",
                   choices=("stripmined", "direct", "spmd"))
    p.set_defaults(fn=cmd_transform)

    p = sub.add_parser("analyze", help="dependences, plan, profitability")
    p.add_argument("file")
    p.add_argument("--n", type=int, default=512, help="size parameter value")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--machine", default="convex", choices=tuple(MACHINES))
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("simulate", help="run a kernel on a simulated machine")
    p.add_argument("kernel", choices=sorted(k.name for k in all_kernels()))
    p.add_argument("--machine", default="convex", choices=tuple(MACHINES))
    p.add_argument("--procs", default="1,2,4,8,16")
    p.add_argument("--scale", type=int, default=4,
                   help="linear scale divisor for arrays and caches")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("exec", help="execute a kernel through a backend")
    p.add_argument("kernel", choices=sorted(k.name for k in all_kernels()))
    p.add_argument("--backend", default="vector",
                   choices=available_backends())
    p.add_argument("--n", type=int, default=None,
                   help="size parameter value (default: kernel default)")
    p.add_argument("--procs", type=int, default=4)
    p.add_argument("--strip", type=int, default=None,
                   help="strip-mine the fused phase like the interpreter")
    p.add_argument("--repeat", type=int, default=3,
                   help="timing repeats (best is reported)")
    p.add_argument("--verify", action="store_true",
                   help="cross-check bit-identical against the interpreter "
                        "(the reported time then includes that check)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the jit/cjit plan cache (recompile from "
                        "scratch, touch no cache files); no effect on other "
                        "backends")
    p.add_argument("--max-workers", type=int, default=None,
                   help="cap the mp/mpjit worker count (default: the "
                        "machine's core count)")
    p.add_argument("--sync", default=None, choices=("p2p", "barrier"),
                   help="mp/mpjit phase synchronization: point-to-point "
                        "neighbor events (default) or the paper's global "
                        "barrier")
    p.add_argument("--autotune", action="store_true", dest="autotune",
                   help="pick backend/strip/workers/sync by measured cost "
                        "(winner persisted next to the plan cache; warm "
                        "runs reuse it without re-timing)")
    p.add_argument("--no-autotune", action="store_false", dest="autotune",
                   help="disable the auto-tuner (the default)")
    p.add_argument("--retries", type=int, default=0,
                   help="retry a failed run up to this many times, "
                        "degrading mpjit -> jit -> vector (bit-identical "
                        "results either way); 0 fails fast")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the record as JSON")
    p.set_defaults(fn=cmd_exec, autotune=False)

    p = sub.add_parser("bench",
                       help="run the fastexec benchmark suite into an "
                            "immutable results/<run_id>/ directory")
    p.add_argument("--smoke", action="store_true",
                   help="tiny shapes only (the CI configuration)")
    p.add_argument("--repeats", type=int, default=3,
                   help="samples per config (all are recorded in the "
                        "telemetry, the gate aggregates medians)")
    p.add_argument("--run-dir", default="benchmarks/results",
                   help="results root; each run creates an immutable "
                        "<run_id>/ inside and appends to trajectory.jsonl")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the flat telemetry JSON (the "
                        "committed-baseline shape)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="count repeats slower than this as deadline misses")
    p.add_argument("--trend", action="store_true",
                   help="render the recorded trajectory (per-config median "
                        "and jitter across run ids) instead of benchmarking")
    p.add_argument("--markdown", action="store_true",
                   help="with --trend: emit a markdown table")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="with --trend: only the N most recent runs")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("serve",
                       help="run the compile-and-execute service daemon "
                            "(newline-delimited JSON over TCP or a unix "
                            "socket; one shared plan cache and worker "
                            "pool for all clients)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7455,
                   help="TCP port (0 picks a free one; the bound address "
                        "is printed on startup)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="serve on a unix domain socket instead of TCP")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission bound: requests queued beyond this "
                        "are shed with an 'overloaded' response")
    p.add_argument("--max-batch", type=int, default=16,
                   help="most identical-signature requests coalesced "
                        "into one compile-once run-back-to-back batch")
    p.add_argument("--tenant-weight", action="append", metavar="NAME=W",
                   help="weighted fair share for a tenant (repeatable; "
                        "unlisted tenants weigh 1)")
    p.add_argument("--retries", type=int, default=2,
                   help="server-side retry budget per exec request; "
                        "retries degrade mpjit -> jit -> vector "
                        "(bit-identical results)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="install a deterministic fault plan at boot "
                        "(e.g. 'crash@run=3,9;cache_corrupt@exec=5'; "
                        "grammar in repro.runtime.faults)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("loadgen",
                       help="drive a running daemon with closed-loop "
                            "clients and record sustained req/s + "
                            "p50/p95/p99 + deadline-miss telemetry")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7455)
    p.add_argument("--socket", default=None, metavar="PATH")
    p.add_argument("--kernel", default="jacobi",
                   choices=sorted(k.name for k in all_kernels()))
    p.add_argument("--n", type=int, default=65)
    p.add_argument("--procs", type=int, default=4)
    p.add_argument("--backend", default="jit",
                   choices=available_backends())
    p.add_argument("--strip", type=int, default=None)
    p.add_argument("--sync", default=None, choices=("p2p", "barrier"))
    p.add_argument("--max-workers", type=int, default=None,
                   help="worker-pool size for mp/mpjit requests (forces "
                        "a real pool on few-core hosts so chaos worker "
                        "faults can actually fire)")
    p.add_argument("--concurrency", type=int, default=8,
                   help="closed-loop worker connections")
    p.add_argument("--duration", type=float, default=10.0,
                   help="measured seconds (a warm-up request runs first)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request deadline: the daemon sheds "
                        "hopeless requests, the report counts misses")
    p.add_argument("--tenants", type=int, default=1,
                   help="spread workers across this many tenant names")
    p.add_argument("--run-dir", default="benchmarks/results",
                   help="results root for the immutable service run dir")
    p.add_argument("--no-store", action="store_true",
                   help="skip writing the run dir")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the telemetry payload ('-' for "
                        "stdout; progress then goes to stderr)")
    p.add_argument("--require-batching", action="store_true",
                   help="exit 4 unless the server reports "
                        "batched_requests > 0 (CI asserts coalescing)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="install this fault plan on the daemon for the "
                        "measured window (cleared afterwards)")
    p.add_argument("--min-availability", type=float, default=None,
                   metavar="PCT",
                   help="exit 5 if ok/(ok+errors) lands below this "
                        "percentage (the chaos-soak gate)")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("experiment", help="regenerate one table/figure")
    p.add_argument("name")
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser("report", help="regenerate the whole evaluation")
    p.add_argument("--full", action="store_true",
                   help="full sweeps (minutes) instead of quick ones")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("list", help="list kernels and experiments")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
