"""repro: reproduction of Manjikian & Abdelrahman, *Fusion of Loops for
Parallelism and Locality* (ICPP 1995).

The package provides:

* a loop-nest IR and Fortran-like DSL front end (:mod:`repro.ir`,
  :mod:`repro.lang`),
* exact uniform dependence analysis (:mod:`repro.dependence`),
* the shift-and-peel fusion transformation (:mod:`repro.core`),
* cache partitioning and padding layouts (:mod:`repro.partition`),
* trace-driven cache simulation and SSMM machine models
  (:mod:`repro.cachesim`, :mod:`repro.machine`),
* baselines including alignment-with-replication (:mod:`repro.baselines`),
* the paper's kernels and applications (:mod:`repro.kernels`), and
* the experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import fuse_sequence
    from repro.kernels import ll18
    prog = ll18.program()
    result = fuse_sequence(prog.sequences[0], prog.params)
    print(result.plan.describe())
"""

from .core import (
    FusionResult,
    ShiftPeelPlan,
    build_execution_plan,
    derive_shift_peel,
    fuse_program,
    fuse_sequence,
)
from .ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Assign,
    Loop,
    LoopNest,
    LoopSequence,
    Program,
    assign,
    load,
    single_sequence_program,
)

__version__ = "1.0.0"

__all__ = [
    "Affine",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "FusionResult",
    "Loop",
    "LoopNest",
    "LoopSequence",
    "Program",
    "ShiftPeelPlan",
    "__version__",
    "assign",
    "build_execution_plan",
    "derive_shift_peel",
    "fuse_program",
    "fuse_sequence",
    "load",
    "single_sequence_program",
]
