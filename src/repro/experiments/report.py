"""Consolidated reproduction report: every table/figure in one run.

``generate_report()`` regenerates the full evaluation and returns one text
document (the content behind EXPERIMENTS.md); ``quick=True`` shrinks the
sweeps for CI-speed smoke runs.  The report also records the qualitative
checks (the same assertions the benchmarks make) so a reader can see at a
glance which paper claims hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from .alignment_fig import fig26
from .app_figs import fig25
from .jacobi_fig import fig15_16
from .kernel_figs import fig22, fig23, fig24
from .padding_figs import fig18
from .tables import table1, table2


@dataclass(frozen=True)
class SectionResult:
    name: str
    text: str
    checks: tuple[tuple[str, bool], ...]

    @property
    def ok(self) -> bool:
        return all(passed for _, passed in self.checks)


@dataclass(frozen=True)
class Report:
    sections: tuple[SectionResult, ...]

    @property
    def all_ok(self) -> bool:
        return all(s.ok for s in self.sections)

    def format(self) -> str:
        blocks = []
        for s in self.sections:
            marks = "\n".join(
                f"  [{'x' if passed else ' '}] {claim}" for claim, passed in s.checks
            )
            blocks.append(f"## {s.name}\n{s.text}\n\nclaims:\n{marks}")
        verdict = "ALL CLAIMS REPRODUCED" if self.all_ok else "SOME CLAIMS FAILED"
        return f"# Reproduction report — {verdict}\n\n" + "\n\n".join(blocks)


def generate_report(quick: bool = True) -> Report:
    sections: list[SectionResult] = []

    t1 = table1()
    sections.append(
        SectionResult(
            "Table 1",
            t1.format(),
            (("all inventory rows match the paper",
              all(r.matches_paper for r in t1.rows)),),
        )
    )

    t2 = table2()
    sections.append(
        SectionResult(
            "Table 2",
            t2.format(),
            (("derived shifts/peels match the paper exactly", t2.all_match()),),
        )
    )

    pads = (0, 1, 9, 17) if quick else None
    f18 = fig18(pads=pads)
    sections.append(
        SectionResult(
            "Fig. 18",
            f18.format(),
            (
                ("padding behaves erratically", f18.erratic_ratio > 2),
                ("partitioning at/below the padding minimum",
                 f18.partitioning_at_or_below_min()),
            ),
        )
    )

    procs22 = (1, 4, 16, 32, 56) if quick else None
    f22 = fig22(proc_counts=procs22) if procs22 else fig22()
    curves22 = {c.kernel: c for c in f22}
    sections.append(
        SectionResult(
            "Fig. 22 (KSR2)",
            f22.format(),
            (
                ("fusion wins at low processor counts",
                 curves22["ll18"].points[0].improvement > 1.05),
                ("a crossover exists for both kernels",
                 curves22["ll18"].crossover() is not None
                 and curves22["calc"].crossover() is not None),
                ("calc (6 arrays) crosses no later than LL18 (9 arrays)",
                 curves22["calc"].crossover() <= curves22["ll18"].crossover()),
            ),
        )
    )

    procs23 = (1, 8, 16) if quick else None
    f23 = fig23(proc_counts=procs23) if procs23 else fig23()
    curves23 = {c.kernel: c for c in f23}
    sections.append(
        SectionResult(
            "Fig. 23 (Convex)",
            f23.format(),
            (
                ("larger improvements than on the KSR2",
                 curves23["ll18"].max_improvement()
                 > curves22["ll18"].max_improvement()),
                ("LL18 positive through 16 processors",
                 all(p.improvement > 1.0 for p in curves23["ll18"].points)),
            ),
        )
    )

    f24 = fig24(array_dims=(64, 256), proc_counts=(8,)) if quick else fig24()
    sections.append(
        SectionResult(
            "Fig. 24",
            f24.format(),
            (
                ("fusion pays only once data exceeds the caches",
                 f24.improvement("ll18", 256, 8) > f24.improvement("ll18", 64, 8)),
            ),
        )
    )

    procs_app = (1, 8, 12, 16) if quick else None
    f25 = fig25(proc_counts=procs_app) if procs_app else fig25()
    series25 = {s.app: s for s in f25.series}
    sections.append(
        SectionResult(
            "Fig. 25 (applications)",
            f25.format(),
            (
                ("tomcatv improves consistently",
                 all(p.improvement > 1.05 for p in series25["tomcatv"].points)),
                ("spem dips past one hypernode",
                 series25["spem"].dips_at(12) or series25["spem"].dips_at(16)),
            ),
        )
    )

    f26 = fig26(ksr2_procs=(1, 8, 32), convex_procs=(1, 8)) if quick else fig26()
    sections.append(
        SectionResult(
            "Fig. 26 (vs alignment/replication)",
            f26.format(),
            (
                ("peeling wins everywhere",
                 all(s.peeling_wins_everywhere() for s in f26.series)),
                ("LL18 replicates exactly 2 arrays + 2 statements",
                 all(len(s.replicated_arrays) == 2
                     and s.replicated_statements == 2 for s in f26.series)),
            ),
        )
    )

    fj = fig15_16(grids=((1, 1), (2, 2)))
    sections.append(
        SectionResult(
            "Figs. 15/16 (Jacobi)",
            fj.format().split("generated SPMD code:")[0].rstrip(),
            (
                ("derived 2-D shift/peel = (1,1)/(1,1)",
                 fj.shifts == ((0, 0), (1, 1)) and fj.peels == ((0, 0), (1, 1))),
            ),
        )
    )

    return Report(tuple(sections))
