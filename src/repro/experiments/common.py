"""Shared harness for the paper's experiments.

Scaling rule (see DESIGN.md): kernels shrink array dimensions by
``dims_div`` and cache capacity by the *same linear* factor — that
preserves the rows-per-cache-partition ratio which governs the inter-nest
reuse fusion exploits, while the total-data/cache ratio (and with it every
fits-in-cache crossover) shifts to roughly (paper processor count) /
``dims_div``.  Applications use quadratic cache scaling instead (their
inner rows are short, so both ratios survive it).  Each figure module
documents its own divisor, chosen so the paper's processor counts remain
legal (Theorem 1 needs blocks of at least ``Nt`` iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.fuse import FusionResult, fuse_sequence
from ..ir.sequence import LoopSequence, Program
from ..kernels.base import KernelInfo, get_kernel
from ..machine.memory import MemoryLayout, layout_from_decls
from ..machine.simulator import (
    SpeedupPoint,
    measure_fused,
    measure_unfused,
    speedup_series,
)
from ..machine.specs import MachineSpec
from ..partition.greedy import partitioned_layout_from_decls


def params_for(info: KernelInfo, dims_div: int) -> dict[str, int]:
    """Concrete size parameters: the paper's array extents divided by
    ``dims_div``, mapped onto the kernel's parameter names."""
    elems = info.paper_array_elems
    names = tuple(info.program().params)
    if not elems:
        raise ValueError(f"kernel {info.name} lacks paper array extents")
    # +2 keeps trip counts (bounds are typically 2..n-1) at the scaled
    # paper extent, so processor counts divide the iteration space evenly.
    scaled = [max(16, e // dims_div) + 2 for e in elems]
    if names == ("n",):
        return {"n": scaled[0]}
    if names == ("m", "n"):
        return {"m": scaled[0], "n": scaled[1]}
    if names == ("n", "p"):
        # spem: (levels, lat, lon) -> lat/lon extent n, levels p.
        return {"n": scaled[1], "p": max(4, elems[0] // dims_div)}
    raise ValueError(f"unrecognized parameter names {names}")


def make_layout(
    program: Program,
    params: Mapping[str, int],
    machine: MachineSpec,
    kind: str = "partitioned",
    pad: int = 0,
) -> MemoryLayout:
    """Build the memory layout named by ``kind``: ``'contiguous'``,
    ``'padded'`` (intra-array padding of ``pad`` elements) or
    ``'partitioned'`` (greedy cache partitioning, Fig. 19)."""
    if kind == "contiguous":
        return layout_from_decls(program.arrays, params)
    if kind == "padded":
        return layout_from_decls(program.arrays, params, pad_inner=pad)
    if kind == "partitioned":
        return partitioned_layout_from_decls(
            program.arrays, params, machine.cache
        ).layout
    raise ValueError(f"unknown layout kind {kind!r}")


def choose_strip(
    program: Program,
    seq: LoopSequence,
    params: Mapping[str, int],
    machine: MachineSpec,
    lo: int = 2,
    hi: int = 256,
) -> int:
    """Strip size from the cache-partition size (Sec. 4): the data each
    array streams per strip (strip x widest inner row) must fit one
    partition."""
    narrays = max(1, len(seq.arrays()))
    partition = machine.cache.capacity_bytes // narrays
    inner = 1
    for nest in seq:
        row = 1
        for lp in nest.loops[1:]:
            row *= max(1, lp.trip_count(params))
        inner = max(inner, row)
    elem = program.arrays[0].elem_size if program.arrays else 8
    strip = partition // max(1, inner * elem)
    return max(lo, min(hi, strip))


@dataclass(frozen=True)
class KernelExperiment:
    """Everything needed to simulate one kernel at one scale."""

    info: KernelInfo
    program: Program
    seq: LoopSequence
    fusion: FusionResult
    params: dict[str, int]
    machine: MachineSpec
    layout: MemoryLayout
    strip: int

    def exec_plan(self, num_procs: int):
        return self.fusion.execution_plan(
            self.params, grid_shape=(num_procs,) + (1,) * (self.fusion.depth - 1)
        )

    def max_procs(self) -> int:
        return self.fusion.max_procs(self.params)[0]

    def curves(
        self, proc_counts: Sequence[int], warm: bool = True
    ) -> list[SpeedupPoint]:
        counts = [p for p in proc_counts if p <= self.max_procs()]
        return speedup_series(
            self.exec_plan,
            self.seq,
            self.params,
            self.layout,
            self.machine,
            counts,
            strip=self.strip,
            warm=warm,
        )


def setup_kernel(
    name: str,
    machine: MachineSpec,
    dims_div: int,
    layout_kind: str = "partitioned",
    pad: int = 0,
    params: Mapping[str, int] | None = None,
) -> KernelExperiment:
    info = get_kernel(name)
    program = info.program()
    concrete = dict(params) if params is not None else params_for(info, dims_div)
    scaled_machine = machine.scaled(dims_div) if dims_div > 1 else machine
    seq = program.sequences[0]
    fusion = fuse_sequence(seq, program.params, depth=info.fuse_depth)
    layout = make_layout(program, concrete, scaled_machine, layout_kind, pad)
    strip = choose_strip(program, seq, concrete, scaled_machine)
    return KernelExperiment(
        info=info,
        program=program,
        seq=fusion.sequence,
        fusion=fusion,
        params=concrete,
        machine=scaled_machine,
        layout=layout,
        strip=strip,
    )


# ---------------------------------------------------------------------------
# Applications: several sequences + an untransformed parallel remainder.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AppPoint:
    num_procs: int
    speedup_unfused: float
    speedup_fused: float

    @property
    def improvement(self) -> float:
        return self.speedup_fused / self.speedup_unfused


@dataclass(frozen=True)
class AppExperiment:
    info: KernelInfo
    program: Program
    fusions: tuple[FusionResult, ...]
    params: dict[str, int]
    machine: MachineSpec
    layout: MemoryLayout
    strips: tuple[int, ...]

    def _seq_times(self, num_procs: int) -> tuple[float, float]:
        """(unfused, fused) total cycles over all transformed sequences."""
        t_unf = 0.0
        t_fus = 0.0
        for fusion, strip in zip(self.fusions, self.strips):
            seq = fusion.sequence
            unf = measure_unfused(
                seq, self.params, self.layout, self.machine, num_procs
            )
            legal = min(num_procs, fusion.max_procs(self.params)[0])
            if legal == num_procs:
                plan = fusion.execution_plan(self.params, num_procs=num_procs)
                fus = measure_fused(
                    plan, self.layout, self.machine, strip=strip
                ).time_cycles
            else:
                fus = unf.time_cycles  # fusion not legal here: keep original
            t_unf += unf.time_cycles
            t_fus += fus
        return t_unf, t_fus

    def app_times(self, proc_counts: Sequence[int]) -> list[tuple[int, float, float]]:
        """Raw whole-application times ``(P, unfused, fused)`` in cycles,
        including the untransformed remainder (Amdahl term, perfectly
        parallel and cache-neutral)."""
        frac = self.info.transformed_fraction
        base_unf, _ = self._seq_times(1)
        other1 = base_unf * (1.0 - frac) / frac  # untransformed remainder
        amp = self.info.remainder_remote_amp
        out = []
        for num_procs in proc_counts:
            unf, fus = self._seq_times(num_procs)
            other = other1 / num_procs
            if amp:
                other *= 1.0 + amp * self.machine.remote_fraction(num_procs)
            out.append((num_procs, unf + other, fus + other))
        return out

    def baseline_time(self) -> float:
        frac = self.info.transformed_fraction
        base_unf, _ = self._seq_times(1)
        return base_unf / frac

    def curves(self, proc_counts: Sequence[int]) -> list[AppPoint]:
        t1 = self.baseline_time()
        points = []
        for num_procs, t_unf, t_fus in self.app_times(proc_counts):
            points.append(
                AppPoint(
                    num_procs=num_procs,
                    speedup_unfused=t1 / t_unf,
                    speedup_fused=t1 / t_fus,
                )
            )
        return points


def setup_application(
    name: str,
    machine: MachineSpec,
    dims_div: int,
    layout_kind: str = "partitioned",
    cache_div: int | None = None,
    params: Mapping[str, int] | None = None,
) -> AppExperiment:
    """Applications default to *quadratic* cache scaling (their inner rows
    are short, so the rows-per-partition ratio survives it, and the
    data-to-cache ratio of the paper is preserved exactly)."""
    info = get_kernel(name)
    program = info.program()
    params = dict(params) if params is not None else params_for(info, dims_div)
    cache_div = cache_div if cache_div is not None else dims_div * dims_div
    scaled_machine = machine.scaled(cache_div) if cache_div > 1 else machine
    layout = make_layout(program, params, scaled_machine, layout_kind)
    fusions = tuple(
        fuse_sequence(seq, program.params, depth=info.fuse_depth)
        for seq in program.sequences
    )
    strips = tuple(
        choose_strip(program, seq, params, scaled_machine)
        for seq in program.sequences
    )
    return AppExperiment(
        info=info,
        program=program,
        fusions=fusions,
        params=params,
        machine=scaled_machine,
        layout=layout,
        strips=strips,
    )


# ---------------------------------------------------------------------------
# Output formatting
# ---------------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
