"""Experiment harness: one entry point per table/figure of the paper.

Every function regenerates the corresponding result from scratch —
dependence analysis, shift/peel derivation, trace-driven cache simulation
and the machine cost model — and returns a structured result whose
``format()`` method prints the same rows/series the paper reports.
"""

from .alignment_fig import Fig26Result, fig26, measure_aligned
from .app_figs import Fig21Result, Fig25Result, fig21, fig25
from .common import (
    AppExperiment,
    AppPoint,
    KernelExperiment,
    choose_strip,
    format_table,
    make_layout,
    params_for,
    setup_application,
    setup_kernel,
)
from .jacobi_fig import JacobiResult, fig15_16
from .kernel_figs import (
    Fig24Result,
    KernelCurves,
    MultiCurves,
    fig22,
    fig23,
    fig24,
)
from .padding_figs import Fig20Result, PaddingSeries, fig18, fig20
from .report import Report, SectionResult, generate_report
from .tables import Table1Result, Table2Result, table1, table2

__all__ = [
    "AppExperiment",
    "AppPoint",
    "Fig20Result",
    "Fig21Result",
    "Fig24Result",
    "Fig25Result",
    "Fig26Result",
    "JacobiResult",
    "KernelCurves",
    "KernelExperiment",
    "MultiCurves",
    "PaddingSeries",
    "Report",
    "SectionResult",
    "Table1Result",
    "Table2Result",
    "choose_strip",
    "fig15_16",
    "fig18",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "format_table",
    "generate_report",
    "make_layout",
    "measure_aligned",
    "params_for",
    "setup_application",
    "setup_kernel",
    "table1",
    "table2",
]
