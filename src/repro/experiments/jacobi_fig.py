"""Figures 15/16: multidimensional shift-and-peel on the Jacobi pair.

Demonstrates (a) the derived two-dimensional shift/peel amounts, (b) the
generated SPMD code with its boundary-case prologue, and (c) the locality
effect of fusing both dimensions on a processor grid (misses fused vs.
unfused).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.execplan import verify_coverage
from ..core.fuse import fuse_sequence
from ..lang.emit import emit_spmd
from ..machine.simulator import measure_fused, measure_unfused
from ..machine.specs import convex_spp1000
from .common import format_table, make_layout, params_for
from ..kernels.base import get_kernel


@dataclass(frozen=True)
class JacobiResult:
    shifts: tuple[tuple[int, ...], ...]  # per nest, per dim
    peels: tuple[tuple[int, ...], ...]
    spmd_code: str
    grid_results: tuple[tuple[tuple[int, int], int, int], ...]
    # (grid shape, misses unfused, misses fused)

    def format(self) -> str:
        rows = [
            (f"{g[0]}x{g[1]}", mu, mf, f"{mu / max(1, mf):.2f}x")
            for g, mu, mf in self.grid_results
        ]
        table = format_table(
            ["grid", "misses unfused", "misses fused", "ratio"], rows
        )
        return (
            f"derived shifts {self.shifts}, peels {self.peels}\n{table}\n\n"
            f"generated SPMD code:\n{self.spmd_code}"
        )


def fig15_16(
    grids: Sequence[tuple[int, int]] = ((1, 1), (2, 2), (4, 2), (4, 4)),
    dims_div: int = 2,
) -> JacobiResult:
    info = get_kernel("jacobi")
    program = info.program()
    params = params_for(info, dims_div)
    machine = convex_spp1000().scaled(dims_div * dims_div)
    seq = program.sequences[0]
    fusion = fuse_sequence(seq, program.params, depth=2)
    layout = make_layout(program, params, machine, "partitioned")

    results = []
    for grid in grids:
        plan = fusion.execution_plan(params, grid_shape=grid)
        assert verify_coverage(plan)
        procs = grid[0] * grid[1]
        unf = measure_unfused(seq, params, layout, machine, procs)
        fus = measure_fused(plan, layout, machine, strip=48)
        results.append((grid, unf.misses, fus.misses))
    return JacobiResult(
        shifts=tuple(fusion.plan.shift_vector(k) for k in range(len(seq))),
        peels=tuple(fusion.plan.peel_vector(k) for k in range(len(seq))),
        spmd_code=emit_spmd(fusion.plan),
        grid_results=tuple(results),
    )
