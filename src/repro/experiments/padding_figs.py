"""Figures 18 and 20: cache misses under padding vs. cache partitioning.

LL18's fused loop references nine arrays; with a conventional contiguous
layout all nine map on top of each other in the cache.  The experiments
sweep the intra-array padding amount (1..21 elements) and compare against
the single layout produced by the greedy cache-partitioning algorithm:

* Fig. 18 — fused LL18, padding sweep vs. partitioning (one machine).
* Fig. 20 — unfused+padding, fused+padding and fused+partitioning on both
  the KSR2 (2-way) and the Convex (direct-mapped).

The paper's observations to reproduce: padding behaves erratically, can
even lose fusion's whole benefit, while partitioning sits at (or below)
the padding sweep's minimum — predictably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..machine.simulator import measure_fused, measure_unfused
from ..machine.specs import MachineSpec, convex_spp1000, ksr2
from ..partition.padding import padding_sweep
from .common import format_table, setup_kernel

#: Scaled LL18 size for the padding experiments (paper: 512x512, /4).
#: The parameter makes the declared array extents exactly 128 (a power of
#: two, like the paper's 512) — the worst case for self/cross conflicts,
#: where unpadded arrays all map on top of each other.
DIMS_DIV = 4
PARAMS = {"n": 127}


@dataclass(frozen=True)
class PaddingSeries:
    machine: str
    pads: tuple[int, ...]
    misses_unfused_padding: tuple[int, ...]
    misses_fused_padding: tuple[int, ...]
    misses_fused_partitioning: int
    misses_unfused_partitioning: int

    @property
    def padding_min(self) -> int:
        return min(self.misses_fused_padding)

    @property
    def padding_max(self) -> int:
        return max(self.misses_fused_padding)

    @property
    def erratic_ratio(self) -> float:
        """Spread of the padding sweep (erratic behaviour indicator)."""
        return self.padding_max / max(1, self.padding_min)

    def partitioning_at_or_below_min(self, slack: float = 1.05) -> bool:
        return self.misses_fused_partitioning <= self.padding_min * slack

    def format(self) -> str:
        rows = [
            (pad, uf, f)
            for pad, uf, f in zip(
                self.pads, self.misses_unfused_padding, self.misses_fused_padding
            )
        ]
        table = format_table(["pad", "unfused misses", "fused misses"], rows)
        return (
            f"{self.machine}: cache partitioning misses "
            f"fused={self.misses_fused_partitioning} "
            f"unfused={self.misses_unfused_partitioning}\n{table}"
        )


def padding_comparison(
    machine: MachineSpec,
    pads: Sequence[int] | None = None,
    num_procs: int = 1,
    kernel: str = "ll18",
) -> PaddingSeries:
    pads = tuple(pads) if pads is not None else (0,) + tuple(padding_sweep())
    unfused_pad = []
    fused_pad = []
    for pad in pads:
        exp = setup_kernel(
            kernel, machine, DIMS_DIV, layout_kind="padded", pad=pad, params=PARAMS
        )
        unfused_pad.append(
            measure_unfused(
                exp.seq, exp.params, exp.layout, exp.machine, num_procs
            ).misses
        )
        fused_pad.append(
            measure_fused(
                exp.exec_plan(num_procs), exp.layout, exp.machine, strip=exp.strip
            ).misses
        )
    part = setup_kernel(
        kernel, machine, DIMS_DIV, layout_kind="partitioned", params=PARAMS
    )
    fused_part = measure_fused(
        part.exec_plan(num_procs), part.layout, part.machine, strip=part.strip
    ).misses
    unfused_part = measure_unfused(
        part.seq, part.params, part.layout, part.machine, num_procs
    ).misses
    return PaddingSeries(
        machine=machine.name,
        pads=pads,
        misses_unfused_padding=tuple(unfused_pad),
        misses_fused_padding=tuple(fused_pad),
        misses_fused_partitioning=fused_part,
        misses_unfused_partitioning=unfused_part,
    )


def fig18(pads: Sequence[int] | None = None) -> PaddingSeries:
    """Misses vs. padding for the fused LL18 loop (Sec. 4's motivating
    measurement; direct-mapped Convex cache shows the effect starkest)."""
    return padding_comparison(convex_spp1000(), pads)


@dataclass(frozen=True)
class Fig20Result:
    ksr2: PaddingSeries
    convex: PaddingSeries

    def format(self) -> str:
        return f"{self.ksr2.format()}\n\n{self.convex.format()}"


def fig20(pads: Sequence[int] | None = None) -> Fig20Result:
    return Fig20Result(
        ksr2=padding_comparison(ksr2(), pads),
        convex=padding_comparison(convex_spp1000(), pads),
    )
