"""Figure 26: shift-and-peel peeling vs. alignment with replication.

Both techniques parallelize the fused LL18 loop; the difference is the
price.  Alignment/replication (Callahan; Appelbe & Smith) needs two arrays
snapshot-copied every invocation and two statements recomputed every
iteration, while peeling only re-executes a boundary sliver after one
barrier.  The simulated comparison charges alignment for its copy-loop
sweeps (extra references and misses) and its inlined recomputation, and
charges peeling for its peeled iterations and extra barrier — reproducing
the paper's verdict that peeling is uniformly faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..baselines.alignment import AlignmentResult, derive_alignment
from ..core.schedule import BlockSchedule
from ..machine.memory import MemoryLayout
from ..machine.simulator import RunMeasurement, _proc_misses, _tile_count
from ..machine.specs import MachineSpec, convex_spp1000, ksr2
from ..machine.trace import fused_proc_trace, nest_block_trace
from ..partition.greedy import greedy_memory_layout
from .common import format_table, setup_kernel


def aligned_layout(
    alignment: AlignmentResult, params, machine: MachineSpec
) -> MemoryLayout:
    """Cache-partitioned layout including the shadow (replicated) arrays."""
    decls = list(alignment.program.arrays) + list(alignment.shadow_decls())
    return greedy_memory_layout(
        [(d.name, d.concrete_shape(params)) for d in decls],
        machine.cache,
        elem_size=decls[0].elem_size,
    ).layout


def measure_aligned(
    alignment: AlignmentResult,
    params,
    layout: MemoryLayout,
    machine: MachineSpec,
    num_procs: int,
    strip: int = 16,
    warm: bool = True,
) -> RunMeasurement:
    """Simulate alignment/replication: the prologue copy loops (each a
    parallel loop with a barrier), then the synchronization-free aligned
    fused loop."""
    exec_plan = alignment.execution_plan(params, num_procs)
    penalty = machine.miss_penalty(num_procs)
    worst = 0.0
    total_misses = 0
    total_refs = 0
    for p, proc in enumerate(exec_plan.processors, start=1):
        parts = []
        for cn in alignment.copy_nests:
            lo, hi = cn.loops[0].bounds(params)
            nblocks = min(num_procs, hi - lo + 1)
            if p <= nblocks:
                sched = BlockSchedule(lo, hi, nblocks)
                parts.append(nest_block_trace(cn, params, layout, sched.block(p)))
        fused, peeled = fused_proc_trace(exec_plan, proc, layout, strip)
        parts.extend([fused, peeled])
        trace = np.concatenate(parts)
        stats = _proc_misses(trace, machine, warm)
        ntiles = _tile_count(exec_plan, proc, strip)
        overhead = (
            machine.guard_overhead * stats.accesses
            + machine.loop_overhead * ntiles * len(alignment.seq)
        )
        cycles = stats.accesses * machine.ref_cycles + overhead + stats.misses * penalty
        worst = max(worst, cycles)
        total_misses += stats.misses
        total_refs += stats.accesses
    barriers = len(alignment.copy_nests) + 1
    time = worst + barriers * machine.barrier_cycles(num_procs)
    return RunMeasurement(
        version="aligned",
        machine=machine.name,
        num_procs=num_procs,
        time_cycles=time,
        misses=total_misses,
        refs=total_refs,
        barriers=barriers,
    )


@dataclass(frozen=True)
class Fig26Series:
    machine: str
    num_procs: tuple[int, ...]
    speedup_peeling: tuple[float, ...]
    speedup_alignment: tuple[float, ...]
    replicated_arrays: tuple[str, ...]
    replicated_statements: int

    def peeling_wins_everywhere(self) -> bool:
        return all(
            p >= a for p, a in zip(self.speedup_peeling, self.speedup_alignment)
        )

    def format(self) -> str:
        rows = [
            (p, f"{pe:.2f}", f"{al:.2f}")
            for p, pe, al in zip(
                self.num_procs, self.speedup_peeling, self.speedup_alignment
            )
        ]
        head = (
            f"{self.machine}: alignment replicates "
            f"{len(self.replicated_arrays)} arrays "
            f"({', '.join(self.replicated_arrays)}) and "
            f"{self.replicated_statements} statements"
        )
        return head + "\n" + format_table(
            ["P", "peeling", "alignment/replication"], rows
        )


@dataclass(frozen=True)
class Fig26Result:
    series: tuple[Fig26Series, ...]

    def format(self) -> str:
        return "\n\n".join(s.format() for s in self.series)


def _series(
    machine: MachineSpec,
    dims_div: int,
    params,
    proc_counts: Sequence[int],
) -> Fig26Series:
    from ..machine.simulator import measure_fused, measure_unfused

    exp = setup_kernel("ll18", machine, dims_div, params=params)
    alignment = derive_alignment(exp.program)
    layout = aligned_layout(alignment, exp.params, exp.machine)
    counts = [p for p in proc_counts if p <= exp.max_procs()]

    baseline = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 1)
    peel = []
    align = []
    for np_ in counts:
        fused = measure_fused(
            exp.exec_plan(np_), exp.layout, exp.machine, strip=exp.strip
        )
        aligned = measure_aligned(
            alignment, exp.params, layout, exp.machine, np_, strip=exp.strip
        )
        peel.append(baseline.time_cycles / fused.time_cycles)
        align.append(baseline.time_cycles / aligned.time_cycles)
    return Fig26Series(
        machine=exp.machine.name,
        num_procs=tuple(counts),
        speedup_peeling=tuple(peel),
        speedup_alignment=tuple(align),
        replicated_arrays=alignment.replicated_arrays,
        replicated_statements=alignment.replicated_statements,
    )


def fig26(
    ksr2_procs: Sequence[int] = (1, 2, 4, 8, 16, 24, 32, 40, 48, 56),
    convex_procs: Sequence[int] = (1, 2, 4, 8, 12, 16),
) -> Fig26Result:
    return Fig26Result(
        series=(
            _series(ksr2(), 2, None, ksr2_procs),
            _series(convex_spp1000(), 3, {"n": 1024 // 3 + 2}, convex_procs),
        )
    )
