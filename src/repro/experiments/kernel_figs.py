"""Figures 22, 23 and 24: kernel speedups, misses and size sensitivity.

* Fig. 22 — LL18 and calc on the KSR2 up to 56 processors (512² arrays,
  linear scale 2): fusion wins by ~10-30% at low-to-moderate processor
  counts, the benefit diminishes as per-processor data begins to fit in
  the caches, and the unfused version eventually wins.
* Fig. 23 — LL18, calc (1024²) and filter (1602x640) on the Convex up to
  16 processors: larger improvements than the KSR2 because the Convex's
  miss penalty relative to compute is higher.
* Fig. 24 — relative improvement from fusion as array size varies, at 8
  and 16 processors: below the cache-capacity threshold fusion stops
  paying; LL18 (9 arrays) keeps benefiting at sizes where calc (6 arrays)
  no longer does.

Legality bound: calc's threshold ``Nt = 7`` caps its processor count at
``trip/7``; sweeps clip to the legal maximum (the paper's full-size runs
had proportionally larger trips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..machine.simulator import SpeedupPoint, measure_fused, measure_unfused
from ..machine.specs import convex_spp1000, ksr2
from .common import format_table, setup_kernel

KSR2_PROCS = (1, 2, 4, 8, 16, 24, 32, 40, 48, 56)
CONVEX_PROCS = (1, 2, 4, 8, 12, 16)


@dataclass(frozen=True)
class KernelCurves:
    kernel: str
    machine: str
    points: tuple[SpeedupPoint, ...]

    def crossover(self) -> int | None:
        """First processor count where the unfused version wins."""
        for p in self.points:
            if p.improvement < 1.0 and p.num_procs > 1:
                return p.num_procs
        return None

    def max_improvement(self) -> float:
        return max(p.improvement for p in self.points)

    def format(self) -> str:
        rows = [
            (
                p.num_procs,
                f"{p.speedup_unfused:.2f}",
                f"{p.speedup_fused:.2f}",
                f"{100 * (p.improvement - 1):+.1f}%",
                p.misses_unfused,
                p.misses_fused,
            )
            for p in self.points
        ]
        table = format_table(
            ["P", "speedup unfused", "speedup fused", "improv", "misses unf", "misses fus"],
            rows,
        )
        return f"{self.kernel} on {self.machine}:\n{table}"


@dataclass(frozen=True)
class MultiCurves:
    curves: tuple[KernelCurves, ...]

    def format(self) -> str:
        return "\n\n".join(c.format() for c in self.curves)

    def __iter__(self):
        return iter(self.curves)


def fig22(proc_counts: Sequence[int] = KSR2_PROCS) -> MultiCurves:
    """Kernel speedup and misses on the KSR2 (scale 2 of 512² arrays)."""
    machine = ksr2()
    out = []
    for name in ("ll18", "calc"):
        exp = setup_kernel(name, machine, dims_div=2)
        pts = exp.curves(proc_counts)
        out.append(KernelCurves(name, exp.machine.name, tuple(pts)))
    return MultiCurves(tuple(out))


def fig23(proc_counts: Sequence[int] = CONVEX_PROCS) -> MultiCurves:
    """Kernel speedup and misses on the Convex.

    LL18/calc use 1024² arrays in the paper; the scale-3 equivalents keep
    the data-to-cache ratios that make fusion profitable through 16
    processors (calc's smaller array count needs the slightly larger grid
    to preserve its paper ratio — see EXPERIMENTS.md)."""
    machine = convex_spp1000()
    configs = (
        ("ll18", {"n": 1024 // 3 + 2}, 3),
        ("calc", {"n": 460}, 3),
        ("filter", None, 4),
    )
    out = []
    for name, params, div in configs:
        exp = setup_kernel(name, machine, dims_div=div, params=params)
        pts = exp.curves(proc_counts)
        out.append(KernelCurves(name, exp.machine.name, tuple(pts)))
    return MultiCurves(tuple(out))


@dataclass(frozen=True)
class SizePoint:
    kernel: str
    array_dim: int
    num_procs: int
    improvement: float  # ratio of unfused to fused execution time


@dataclass(frozen=True)
class Fig24Result:
    points: tuple[SizePoint, ...]

    def improvement(self, kernel: str, dim: int, procs: int) -> float | None:
        """Improvement ratio, or None when the point is not legal at the
        scaled size (Theorem 1's block-size bound)."""
        for p in self.points:
            if (p.kernel, p.array_dim, p.num_procs) == (kernel, dim, procs):
                return p.improvement
        return None

    def format(self) -> str:
        procs = sorted({p.num_procs for p in self.points})
        dims = sorted({p.array_dim for p in self.points})
        kernels = sorted({p.kernel for p in self.points})
        blocks = []
        for np_ in procs:
            rows = []
            for k in kernels:
                cells = []
                for d in dims:
                    value = self.improvement(k, d, np_)
                    cells.append("-" if value is None else f"{value:.2f}")
                rows.append([k] + cells)
            table = format_table(["kernel"] + [f"{d}^2" for d in dims], rows)
            blocks.append(f"{np_} processors:\n{table}")
        return "\n\n".join(blocks)


def fig24(
    array_dims: Sequence[int] = (64, 128, 256),
    proc_counts: Sequence[int] = (8, 16),
) -> Fig24Result:
    """Improvement from fusion vs. array size (paper sizes 256/512/1024
    squared, scale 4) for LL18 (9 arrays) and calc (6 arrays) on the
    Convex.  Values above 1.0 mean fusion improves performance."""
    machine = convex_spp1000()
    points = []
    for name in ("ll18", "calc"):
        for dim in array_dims:
            exp = setup_kernel(name, machine, dims_div=4, params={"n": dim + 2})
            for np_ in proc_counts:
                if np_ > exp.max_procs():
                    continue
                unf = measure_unfused(
                    exp.seq, exp.params, exp.layout, exp.machine, np_
                )
                fus = measure_fused(
                    exp.exec_plan(np_), exp.layout, exp.machine, strip=exp.strip
                )
                points.append(
                    SizePoint(
                        kernel=name,
                        array_dim=dim,
                        num_procs=np_,
                        improvement=unf.time_cycles / fus.time_cycles,
                    )
                )
    return Fig24Result(tuple(points))
