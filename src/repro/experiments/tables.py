"""Tables 1 and 2: workload inventory and derived shift/peel amounts.

Table 1 reports, per kernel/application, the number of transformable loop
sequences, the longest sequence and the maximum shift/peel.  Table 2 lists
the per-loop shift and peel amounts for the three kernels.  Everything here
is *derived* by the dependence analysis and traversal algorithms — the
paper's published values live in the kernel metadata purely as expectations
to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fuse import fuse_sequence
from ..kernels.base import all_kernels, get_kernel
from .common import format_table


@dataclass(frozen=True)
class Table1Row:
    name: str
    description: str
    num_sequences: int
    longest_sequence: int
    max_shift: int
    max_peel: int
    matches_paper: bool


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]

    def format(self) -> str:
        return format_table(
            ["Name", "Description", "Seqs", "Longest", "Max shift/peel", "Paper?"],
            [
                (
                    r.name,
                    r.description,
                    r.num_sequences,
                    r.longest_sequence,
                    f"{r.max_shift}/{r.max_peel}",
                    "yes" if r.matches_paper else "NO",
                )
                for r in self.rows
            ],
        )


def table1() -> Table1Result:
    rows = []
    for info in sorted(all_kernels(), key=lambda k: k.name):
        program = info.program()
        max_shift = 0
        max_peel = 0
        longest = 0
        for seq in program.sequences:
            result = fuse_sequence(seq, program.params, depth=info.fuse_depth)
            longest = max(longest, len(seq))
            for k in range(len(seq)):
                max_shift = max(max_shift, result.plan.shift(k, 0))
                max_peel = max(max_peel, result.plan.peel(k, 0))
        matches = (
            len(program.sequences) == info.num_sequences
            and longest == info.longest_sequence
            and max_shift == info.max_shift
            and max_peel == info.max_peel
        )
        rows.append(
            Table1Row(
                name=info.name,
                description=info.description,
                num_sequences=len(program.sequences),
                longest_sequence=longest,
                max_shift=max_shift,
                max_peel=max_peel,
                matches_paper=matches,
            )
        )
    return Table1Result(tuple(rows))


@dataclass(frozen=True)
class Table2Result:
    kernels: tuple[str, ...]
    derived: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    expected: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]

    def matches(self, name: str) -> bool:
        return self.derived[name] == self.expected[name]

    def all_match(self) -> bool:
        return all(self.matches(k) for k in self.kernels)

    def format(self) -> str:
        blocks = []
        for name in self.kernels:
            shifts, peels = self.derived[name]
            rows = [
                (loop + 1, s, p) for loop, (s, p) in enumerate(zip(shifts, peels))
            ]
            table = format_table(["Loop", "shifts", "peels"], rows)
            verdict = "matches paper" if self.matches(name) else "MISMATCH"
            blocks.append(f"{name} ({verdict}):\n{table}")
        return "\n\n".join(blocks)


def table2(kernel_names=("ll18", "calc", "filter")) -> Table2Result:
    derived = {}
    expected = {}
    for name in kernel_names:
        info = get_kernel(name)
        program = info.program()
        seq = program.sequences[0]
        result = fuse_sequence(seq, program.params, depth=info.fuse_depth)
        shifts = tuple(result.plan.shift(k, 0) for k in range(len(seq)))
        peels = tuple(result.plan.peel(k, 0) for k in range(len(seq)))
        derived[name] = (shifts, peels)
        expected[name] = (info.paper_shifts, info.paper_peels)
    return Table2Result(tuple(kernel_names), derived, expected)
