"""Figures 21 and 25: whole-application results on the Convex.

* Fig. 21 — cache partitioning matters for applications: tomcatv and
  hydro2d speedups for (a) the original code with cache partitioning,
  (b) the original code without it, and (c) the fused code *without*
  partitioning.  Conflicts hurt all three, and can erase fusion's benefit
  entirely — motivating partitioning as a companion transformation.
* Fig. 25 — with partitioning everywhere, fused vs. unfused for tomcatv,
  hydro2d and spem.  tomcatv improves ~10%, hydro2d starts near 20% and
  dilutes as data fits, spem improves ~20% up to 8 processors and both
  versions dip at 16 when the partition spans two hypernodes (remote
  traffic).

Applications are proxies (see DESIGN.md): the transformable sequences are
simulated exactly; the untransformed remainder enters as an Amdahl term
via each application's ``transformed_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..machine.specs import convex_spp1000
from .common import AppPoint, format_table, setup_application

CONVEX_PROCS = (1, 2, 4, 8, 12, 16)

#: Per-application scaling: (dims_div, cache_div, params override).
#: Applications use quadratic cache scaling where their short inner rows
#: allow it; spem keeps its paper horizontal grid (67 points) with fewer
#: vertical levels so its 3-D rows still fit cache partitions.
APP_CONFIGS: dict[str, tuple[int, int, dict | None]] = {
    "tomcatv": (2, 16, None),
    "hydro2d": (4, 16, None),
    "spem": (2, 4, {"n": 67, "p": 16}),
}


@dataclass(frozen=True)
class Fig21Series:
    app: str
    num_procs: tuple[int, ...]
    orig_partitioned: tuple[float, ...]
    orig_contiguous: tuple[float, ...]
    fused_contiguous: tuple[float, ...]

    def format(self) -> str:
        rows = [
            (p, f"{a:.2f}", f"{b:.2f}", f"{c:.2f}")
            for p, a, b, c in zip(
                self.num_procs,
                self.orig_partitioned,
                self.orig_contiguous,
                self.fused_contiguous,
            )
        ]
        return f"{self.app}:\n" + format_table(
            ["P", "orig w/ part.", "orig w/o part.", "fused w/o part."], rows
        )


@dataclass(frozen=True)
class Fig21Result:
    series: tuple[Fig21Series, ...]

    def format(self) -> str:
        return "\n\n".join(s.format() for s in self.series)


#: Fig. 21 exercises the conflict pathology, so tomcatv uses an array
#: extent whose footprint lands near a multiple of the cache way size
#: (the paper's 513x513 arrays against the 1 MB direct-mapped cache):
#: contiguously laid out arrays then partially map on top of each other.
FIG21_PARAMS: dict[str, dict | None] = {"tomcatv": {"n": 251}, "hydro2d": None}


def fig21(
    apps: Sequence[str] = ("hydro2d", "tomcatv"),
    proc_counts: Sequence[int] = CONVEX_PROCS,
) -> Fig21Result:
    machine = convex_spp1000()
    out = []
    for app in apps:
        dd, cd, params = APP_CONFIGS[app]
        params = FIG21_PARAMS.get(app, params) or params
        part = setup_application(
            app, machine, dd, "partitioned", cache_div=cd, params=params
        )
        cont = setup_application(
            app, machine, dd, "contiguous", cache_div=cd, params=params
        )
        t1 = part.baseline_time()  # normalize all curves to the same base
        part_times = part.app_times(proc_counts)
        cont_times = cont.app_times(proc_counts)
        out.append(
            Fig21Series(
                app=app,
                num_procs=tuple(proc_counts),
                orig_partitioned=tuple(t1 / t for _, t, _ in part_times),
                orig_contiguous=tuple(t1 / t for _, t, _ in cont_times),
                fused_contiguous=tuple(t1 / t for _, _, t in cont_times),
            )
        )
    return Fig21Result(tuple(out))


@dataclass(frozen=True)
class Fig25Series:
    app: str
    points: tuple[AppPoint, ...]

    def improvement_at(self, num_procs: int) -> float:
        for p in self.points:
            if p.num_procs == num_procs:
                return p.improvement
        raise KeyError(num_procs)

    def dips_at(self, num_procs: int) -> bool:
        """True when both curves fall below their previous point (the
        hypernode-crossing dip of spem at 16 processors)."""
        prev = None
        for p in self.points:
            if p.num_procs == num_procs and prev is not None:
                return (
                    p.speedup_fused < prev.speedup_fused
                    and p.speedup_unfused < prev.speedup_unfused
                )
            prev = p
        return False

    def format(self) -> str:
        rows = [
            (
                p.num_procs,
                f"{p.speedup_unfused:.2f}",
                f"{p.speedup_fused:.2f}",
                f"{100 * (p.improvement - 1):+.1f}%",
            )
            for p in self.points
        ]
        return f"{self.app}:\n" + format_table(
            ["P", "unfused", "fused", "improv"], rows
        )


@dataclass(frozen=True)
class Fig25Result:
    series: tuple[Fig25Series, ...]

    def format(self) -> str:
        return "\n\n".join(s.format() for s in self.series)


def fig25(
    apps: Sequence[str] = ("tomcatv", "hydro2d", "spem"),
    proc_counts: Sequence[int] = CONVEX_PROCS,
) -> Fig25Result:
    machine = convex_spp1000()
    out = []
    for app in apps:
        dd, cd, params = APP_CONFIGS[app]
        exp = setup_application(
            app, machine, dd, "partitioned", cache_div=cd, params=params
        )
        out.append(Fig25Series(app=app, points=tuple(exp.curves(proc_counts))))
    return Fig25Result(tuple(out))
