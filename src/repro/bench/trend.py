"""Render the benchmark trajectory as per-config trend series.

The store (:mod:`repro.bench.store`) accumulates immutable run
directories plus a ``trajectory.jsonl`` index; this module turns that
history into something a human can read at a glance: one row per
(kernel, backend, shape, procs) config, its median wall-clock and jitter
for every recorded run id, and the drift between the first and the
latest run.  ``python -m repro bench --trend`` prints the plain-text
table; ``--markdown`` emits the same series as a GitHub-flavored table
for CI job summaries.

Only runs of the same tier are comparable — a smoke run times tiny
shapes — so series are keyed per config, never across shapes, and the
run-level header lists each run's tier next to its id.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .store import TELEMETRY_NAME, list_runs, read_trajectory


def config_key(entry: dict) -> tuple:
    return (
        entry.get("kernel"), entry.get("backend"),
        entry.get("shape"), entry.get("procs"),
    )


def collect_series(root: Path, last: Optional[int] = None) -> dict:
    """Per-config median/jitter series over the run history under ``root``.

    Returns ``{"runs": [...], "series": [...]}``: ``runs`` is one dict
    per run id (oldest first, truncated to the ``last`` most recent when
    given) with the trajectory-index facts; each ``series`` element is
    one config with a ``points`` list aligned to ``runs`` (``None``
    where a run did not measure that config).  Unreadable run
    directories are skipped, never fatal — the trajectory is append-only
    and old runs may predate the current schema.
    """
    root = Path(root)
    index = {line.get("run_id"): line for line in read_trajectory(root)}
    run_dirs = list_runs(root)
    if last is not None and last > 0:
        run_dirs = run_dirs[-last:]
    runs: list[dict] = []
    series: dict[tuple, dict] = {}
    for run_dir in run_dirs:
        try:
            payload = json.loads((run_dir / TELEMETRY_NAME).read_text())
        except (OSError, ValueError):
            continue
        rid = payload.get("run_id") or run_dir.name
        line = index.get(rid, {})
        runs.append({
            "run_id": rid,
            "created_utc": payload.get("created_utc"),
            "git_sha": payload.get("git_sha"),
            "smoke": payload.get("suite", {}).get("smoke"),
            "geomean_median_seconds": line.get("geomean_median_seconds"),
        })
        for entry in payload.get("entries", []):
            key = config_key(entry)
            cfg = series.setdefault(key, {
                "kernel": key[0], "backend": key[1],
                "shape": key[2], "procs": key[3], "points": [],
            })
            while len(cfg["points"]) < len(runs) - 1:
                cfg["points"].append(None)
            cfg["points"].append({
                "median_seconds": entry.get("median_seconds",
                                            entry.get("seconds")),
                "jitter": entry.get("jitter"),
            })
    for cfg in series.values():
        while len(cfg["points"]) < len(runs):
            cfg["points"].append(None)
    ordered = sorted(series.values(),
                     key=lambda c: (str(c["kernel"]), str(c["shape"]),
                                    str(c["backend"]), c["procs"] or 0))
    return {"runs": runs, "series": ordered}


def _fmt_point(point: Optional[dict]) -> str:
    if point is None or point.get("median_seconds") is None:
        return "-"
    med = point["median_seconds"]
    jit = point.get("jitter")
    return f"{med:.6f}" + (f"±{jit:.0%}" if jit is not None else "")


def _drift(points: list) -> str:
    timed = [p["median_seconds"] for p in points
             if p is not None and p.get("median_seconds")]
    if len(timed) < 2 or timed[0] <= 0:
        return "-"
    return f"{100.0 * (timed[-1] - timed[0]) / timed[0]:+.1f}%"


def render_trend(root: Path, markdown: bool = False,
                 last: Optional[int] = None) -> str:
    """The trajectory under ``root`` as a text or markdown table."""
    data = collect_series(root, last=last)
    runs, series = data["runs"], data["series"]
    if not runs:
        return f"no benchmark runs under {root} (run `repro bench` first)"
    lines = [f"benchmark trajectory: {len(runs)} run(s) under {root}"]
    for i, run in enumerate(runs, 1):
        tier = "smoke" if run.get("smoke") else "full"
        geo = run.get("geomean_median_seconds")
        lines.append(
            f"  r{i}: {run['run_id']}  [{tier}] "
            f"git {run.get('git_sha') or 'unknown'}  "
            f"geomean {geo if geo is not None else '-'}"
        )
    lines.append("")
    headers = (["kernel", "backend", "shape", "P"]
               + [f"r{i}" for i in range(1, len(runs) + 1)]
               + ["drift"])
    rows = []
    for cfg in series:
        rows.append(
            [str(cfg["kernel"]), str(cfg["backend"]), str(cfg["shape"]),
             str(cfg["procs"])]
            + [_fmt_point(p) for p in cfg["points"]]
            + [_drift(cfg["points"])]
        )
    if markdown:
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
    else:
        widths = [max(len(headers[c]), *(len(r[c]) for r in rows))
                  if rows else len(headers[c]) for c in range(len(headers))]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
