"""Telemetry schema for benchmark runs.

A telemetry payload (``telemetry.json`` inside a run directory) is a
plain-JSON dict::

    {
      "schema": "repro-bench-telemetry/1",
      "version": 5,
      "run_id": "20260809T120301Z-ab12cd3-01",   # stamped by the store
      "created_utc": "2026-08-09T12:03:01Z",
      "git_sha": "ab12cd3",                      # null outside a checkout
      "python": "3.11.7",
      "platform": "Linux-...",
      "cpu_count": 4,
      "calibration_seconds": 0.19,               # pure-Python proxy speed
      "cache_state": {"jit_cache": "isolated-cold"},
      "suite": {"smoke": true, "repeat": 3, "deadline_seconds": null},
      "entries": [ ... ]
    }

Each entry describes one (kernel, backend, shape, procs) config and keeps
**every repeat** as a sample — the regression gate aggregates medians
itself rather than trusting a single pre-aggregated number::

    {
      "kernel": "jacobi", "backend": "jit", "shape": "n=65", "procs": 4,
      "iterations": 7938, "checksum": "142b91d7f4a947cd",
      "samples": [{"seconds": ..., "plan_seconds": ..., ...}, ...],
      "seconds": <best>, "median_seconds": ..., "warm_median_seconds": ...,
      "p50_seconds": ..., "p95_seconds": ..., "p99_seconds": ...,
      "iqr_seconds": ..., "jitter": <IQR/median or null>,
      "deadline_seconds": null, "deadline_misses": 0,
      ... plus the plan/compile/cold/warm/pool fields of
      repro.runtime.benchmarking.measure_kernel ...
    }

The tail-latency fields (p50/p95/p99, deadline misses) are the ones the
planned service benchmarks consume; for the offline suite they summarize
repeats of one kernel execution.

Since version 5 an entry's ``backend`` may be a *labeled variant* such as
``mpjit-barrier`` (the real mpjit backend forced onto the global-barrier
sync path) so sync strategies gate against each other as first-class
configs; mp/mpjit entries also record their effective ``sync`` mode, and
entries measured through ``--autotune`` carry the tuner's key, hit/miss
flag and counters under ``autotune``.

This module must not import anything from :mod:`repro` outside the
package — :mod:`repro.runtime.benchmarking` imports it to aggregate its
per-repeat samples.
"""

from __future__ import annotations

import csv
import io
import math
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Optional, Sequence

SCHEMA = "repro-bench-telemetry/1"
PAYLOAD_VERSION = 5

SUMMARY_COLUMNS = (
    "kernel", "backend", "shape", "procs", "samples",
    "median_seconds", "p50_seconds", "p95_seconds", "p99_seconds",
    "iqr_seconds", "jitter", "best_seconds", "warm_median_seconds",
    "cold_seconds", "deadline_misses", "checksum",
)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default method without requiring numpy here.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    return data[lo] + (data[hi] - data[lo]) * (pos - lo)


def summarize_samples(
    seconds: Sequence[float],
    deadline_seconds: Optional[float] = None,
) -> dict:
    """Aggregate per-repeat wall-clock samples into the entry statistics.

    ``seconds[0]`` is the cold run (preparation already paid separately);
    the warm median is taken over the remaining samples when there are
    any.  ``jitter`` is IQR/median — the gate's noise metric — and is
    ``None`` when fewer than two samples make spread meaningless.
    """
    if not seconds:
        raise ValueError("no samples to summarize")
    med = percentile(seconds, 50)
    iqr = percentile(seconds, 75) - percentile(seconds, 25)
    warm = list(seconds[1:]) or list(seconds)
    jitter = round(iqr / med, 4) if (med > 0 and len(seconds) >= 2) else None
    misses = (
        sum(1 for s in seconds if s > deadline_seconds)
        if deadline_seconds is not None else 0
    )
    return {
        "median_seconds": round(med, 6),
        "warm_median_seconds": round(percentile(warm, 50), 6),
        "p50_seconds": round(med, 6),
        "p95_seconds": round(percentile(seconds, 95), 6),
        "p99_seconds": round(percentile(seconds, 99), 6),
        "iqr_seconds": round(iqr, 6),
        "jitter": jitter,
        "deadline_seconds": deadline_seconds,
        "deadline_misses": misses,
    }


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """Short git sha of the surrounding checkout, or None outside one."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd or Path(__file__).parent), capture_output=True,
            text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def machine_snapshot() -> dict:
    """The machine/config facts a run is conditioned on."""
    return {
        "schema": SCHEMA,
        "version": PAYLOAD_VERSION,
        "created_utc": utc_now(),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _geomean(values: Iterable[float]) -> Optional[float]:
    logs = [math.log(v) for v in values if v and v > 0]
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def trajectory_line(payload: dict) -> dict:
    """The one-line-per-run index record appended to trajectory.jsonl."""
    entries = payload.get("entries", [])
    medians = [e.get("median_seconds") or e.get("seconds") for e in entries]
    geo = _geomean(m for m in medians if m)
    return {
        "run_id": payload.get("run_id"),
        "created_utc": payload.get("created_utc"),
        "git_sha": payload.get("git_sha"),
        "python": payload.get("python"),
        "cpu_count": payload.get("cpu_count"),
        "calibration_seconds": payload.get("calibration_seconds"),
        "smoke": payload.get("suite", {}).get("smoke"),
        "entries": len(entries),
        "geomean_median_seconds": round(geo, 6) if geo else None,
    }


def summary_csv(payload: dict) -> str:
    """Render the per-config aggregate table (``summary.csv``)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(SUMMARY_COLUMNS)
    for entry in payload.get("entries", []):
        writer.writerow([
            entry.get("kernel"), entry.get("backend"), entry.get("shape"),
            entry.get("procs"), len(entry.get("samples", [])) or 1,
            entry.get("median_seconds", entry.get("seconds")),
            entry.get("p50_seconds"), entry.get("p95_seconds"),
            entry.get("p99_seconds"), entry.get("iqr_seconds"),
            entry.get("jitter"), entry.get("seconds"),
            entry.get("warm_median_seconds", entry.get("warm_seconds")),
            entry.get("cold_seconds"), entry.get("deadline_misses", 0),
            entry.get("checksum"),
        ])
    return buf.getvalue()
