"""Benchmark telemetry and trajectory subsystem.

Replaces the ad-hoc single-file benchmark artifact with an immutable
*trajectory*: every harness run writes a ``benchmarks/results/<run_id>/``
directory containing ``telemetry.json`` (per-repeat samples for every
(kernel, shape, backend) config plus a machine/config snapshot) and
``summary.csv``, and appends one line to ``trajectory.jsonl`` so
successive runs form a comparable series.

Layout:

* :mod:`repro.bench.telemetry` — the telemetry schema: per-sample
  statistics (median, IQR, jitter, p50/p95/p99, deadline misses) and the
  machine snapshot.  No repro imports; safe to use from anywhere.
* :mod:`repro.bench.store` — the immutable run-directory store and the
  ``trajectory.jsonl`` index.
* :mod:`repro.bench.trend` — per-config median/jitter series over the
  run history, rendered as text or markdown (``repro bench --trend``).
* :mod:`repro.bench.harness` — runs the fastexec suite through
  :mod:`repro.runtime.benchmarking` and produces a telemetry payload.

``harness`` is deliberately *not* imported here: it imports the runtime,
and the runtime imports :mod:`repro.bench.telemetry` to aggregate
per-repeat samples — importing the harness eagerly would make that a
cycle.  Import it explicitly: ``from repro.bench.harness import
run_suite``.
"""

from .store import (  # noqa: F401
    TRAJECTORY_NAME,
    append_trajectory,
    latest_run,
    list_runs,
    read_run,
    read_trajectory,
    write_run,
)
from .telemetry import (  # noqa: F401
    SCHEMA,
    git_sha,
    machine_snapshot,
    percentile,
    summarize_samples,
    summary_csv,
    trajectory_line,
)
from .trend import collect_series, render_trend  # noqa: F401
