"""The fastexec benchmark harness: configs → telemetry payload.

This is the engine behind ``python -m repro bench`` and
``benchmarks/bench_fastexec.py``: it runs the fixed (kernel, shape,
procs, backends) suite through :func:`repro.runtime.benchmarking.
measure_kernel` under an isolated jit cache and returns a telemetry
payload (see :mod:`repro.bench.telemetry`) ready for
:func:`repro.bench.store.write_run`.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Optional

from ..runtime.benchmarking import calibrate, measure_kernel
from ..runtime.plancache import ENV_CACHE_DIR, reset_default_cache
from .telemetry import machine_snapshot

# (kernel, n, procs, backends) — smoke tier runs everywhere, full tier adds
# the paper-size shapes.  Checksums are machine-independent, so the smoke
# entries force the pooled-parallel execution on a multi-core CI host to
# reproduce the bits a single-core machine committed (and vice versa).
#
# "mpjit-barrier" is a labeled variant, not a registry backend: the real
# mpjit backend forced onto sync="barrier", recorded under its own name so
# the regression gate can hold point-to-point sync to the barrier baseline.
SMOKE_CONFIGS = [
    ("jacobi", 65, 4, ("interp", "vector", "mp", "jit", "mpjit", "cjit")),
    ("ll18", 65, 4, ("interp", "vector", "mp", "jit", "mpjit", "cjit")),
    ("filter", 65, 4, ("interp", "vector", "jit", "mpjit", "cjit")),
    ("calc", 65, 4, ("interp", "vector", "jit", "mpjit", "cjit")),
    ("jacobi", 255, 4, ("interp", "vector", "jit", "mpjit", "mpjit-barrier",
                        "cjit")),
    ("jacobi", 255, 1, ("vector", "jit", "cjit")),
]
FULL_CONFIGS = [
    ("jacobi", 511, 4, ("interp", "vector", "mp", "jit", "mpjit",
                        "mpjit-barrier", "cjit")),
    ("ll18", 511, 4, ("vector", "jit", "mpjit", "mpjit-barrier", "cjit")),
    ("calc", 513, 4, ("vector", "jit", "mpjit", "cjit")),
    ("filter", 512, 4, ("vector", "jit", "mpjit", "cjit")),
]

#: label → (real backend, forced options) for the pseudo-backends above.
VARIANTS = {
    "mpjit-barrier": ("mpjit", {"sync": "barrier"}),
}


def run_suite(
    smoke: bool = True,
    repeat: int = 3,
    deadline_seconds: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = print,
) -> dict:
    """Run the suite and return the telemetry payload (not yet stored).

    Every config keeps all ``repeat`` samples (the interpreter runs once
    — it is slow by design and only anchors speedup floors).  A fresh,
    private jit cache makes the first repeat a true cold compile — a
    warm leftover from yesterday would fake ``cold_seconds``.
    """
    configs = SMOKE_CONFIGS + ([] if smoke else FULL_CONFIGS)
    cache_dir = tempfile.TemporaryDirectory(prefix="repro-bench-jit-")
    saved_env = os.environ.get(ENV_CACHE_DIR)
    os.environ[ENV_CACHE_DIR] = cache_dir.name
    reset_default_cache()
    try:
        entries = _run_configs(configs, repeat, deadline_seconds, progress)
    finally:
        if saved_env is None:
            os.environ.pop(ENV_CACHE_DIR, None)
        else:
            os.environ[ENV_CACHE_DIR] = saved_env
        reset_default_cache()
        cache_dir.cleanup()
    payload = machine_snapshot()
    payload.update({
        "calibration_seconds": round(calibrate(), 6),
        "cache_state": {"jit_cache": "isolated-cold"},
        "suite": {
            "smoke": smoke,
            "repeat": repeat,
            "deadline_seconds": deadline_seconds,
            "configs": len(configs),
        },
        "entries": entries,
    })
    return payload


def _run_configs(configs, repeat, deadline_seconds, progress) -> list[dict]:
    entries = []
    for kernel, n, procs, backends in configs:
        for backend in backends:
            # The interpreter is slow by design; one round is plenty.
            reps = 1 if backend == "interp" else repeat
            real, options = VARIANTS.get(backend, (backend, {}))
            label = backend if backend != real else None
            record = measure_kernel(kernel, real, n=n, procs=procs,
                                    repeat=reps,
                                    deadline_seconds=deadline_seconds,
                                    label=label, **options)
            entries.append(record)
            if progress is not None:
                jitter = record.get("jitter")
                progress(
                    f"  {kernel:8s} {backend:6s} n={n:<4d} P={procs} "
                    f"median {record['median_seconds']:10.6f}s "
                    f"(best {record['seconds']:.6f}s, "
                    f"jitter {jitter if jitter is not None else '-'})  "
                    f"cold {record['cold_seconds']:.6f}s "
                    f"warm {record['warm_seconds']:.6f}s  "
                    f"{record['checksum']}"
                )
    return entries
