"""Immutable run-directory store and the trajectory index.

Every benchmark run becomes one ``<results_root>/<run_id>/`` directory::

    benchmarks/results/
      trajectory.jsonl                  # one line per run, append-only
      20260809T120301Z-ab12cd3-01/
        telemetry.json                  # full payload, per-repeat samples
        summary.csv                     # per-config aggregates
      20260809T120344Z-ab12cd3-02/
        ...

Run directories are **immutable**: they are assembled in a temp
directory, their files are made read-only, and the directory is moved
into place with a single rename — a second run can never rewrite an
existing ``run_id`` (id collisions pick a fresh sequence number instead).
The results root is created on demand; it is scratch from git's point of
view (ignored), persistence across CI runs comes from uploading it as an
artifact.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import Optional

from .telemetry import summary_csv, trajectory_line, utc_now

TRAJECTORY_NAME = "trajectory.jsonl"
TELEMETRY_NAME = "telemetry.json"
SUMMARY_NAME = "summary.csv"

DEFAULT_RESULTS_ROOT = Path("benchmarks") / "results"


def _compact_timestamp(created_utc: str) -> str:
    return re.sub(r"[^0-9TZ]", "", created_utc)


def new_run_id(created_utc: str, git_sha: Optional[str],
               root: Path) -> str:
    """A unique ``<utc>-<sha>-<seq>`` id under ``root``."""
    prefix = f"{_compact_timestamp(created_utc)}-{git_sha or 'nogit'}"
    seq = 1
    while (root / f"{prefix}-{seq:02d}").exists():
        seq += 1
    return f"{prefix}-{seq:02d}"


def write_run(payload: dict, root: Path = DEFAULT_RESULTS_ROOT,
              run_id: Optional[str] = None) -> Path:
    """Persist one run immutably; returns the new run directory.

    The payload is stamped with its ``run_id`` (an explicit ``run_id`` is
    honored only while unused — a collision allocates a fresh id rather
    than ever touching an existing run).  The trajectory index gains one
    line.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    created = payload.get("created_utc") or utc_now()
    while True:
        if run_id and not (root / run_id).exists():
            rid = run_id
        else:
            rid = new_run_id(created, payload.get("git_sha"), root)
        run_id = None  # an explicit id is only tried once
        stamped = dict(payload, run_id=rid, created_utc=created)
        tmp = root / f".tmp-{rid}-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        (tmp / TELEMETRY_NAME).write_text(
            json.dumps(stamped, indent=2, sort_keys=True) + "\n")
        (tmp / SUMMARY_NAME).write_text(summary_csv(stamped))
        for name in (TELEMETRY_NAME, SUMMARY_NAME):
            os.chmod(tmp / name, 0o444)
        try:
            os.rename(tmp, root / rid)
        except OSError:
            # Lost a race for this id — clean up and pick the next one.
            shutil.rmtree(tmp, ignore_errors=True)
            continue
        break
    append_trajectory(root, trajectory_line(stamped))
    return root / rid


def append_trajectory(root: Path, line: dict) -> None:
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    with open(root / TRAJECTORY_NAME, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")


def read_trajectory(root: Path) -> list[dict]:
    path = Path(root) / TRAJECTORY_NAME
    if not path.is_file():
        return []
    return [json.loads(line) for line in path.read_text().splitlines()
            if line.strip()]


def list_runs(root: Path) -> list[Path]:
    """Run directories under ``root``, oldest first (ids sort by time)."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(d for d in root.iterdir()
                  if d.is_dir() and (d / TELEMETRY_NAME).is_file())


def latest_run(root: Path) -> Optional[Path]:
    runs = list_runs(root)
    return runs[-1] if runs else None


def read_run(path: Path) -> dict:
    """Load a telemetry payload from a run dir, a results root, or a
    flat JSON file (the legacy ``BENCH_fastexec.json`` shape)."""
    path = Path(path)
    if path.is_dir():
        telemetry = path / TELEMETRY_NAME
        if not telemetry.is_file():
            latest = latest_run(path)
            if latest is None:
                raise FileNotFoundError(
                    f"no run directory with {TELEMETRY_NAME} under {path}")
            telemetry = latest / TELEMETRY_NAME
        return json.loads(telemetry.read_text())
    return json.loads(path.read_text())
