"""Dependence analysis: exact uniform distances for affine references,
inter-loop analysis over sequences, and dependence-chain multigraphs."""

from .analysis import (
    analyze_pair,
    analyze_sequence,
    carried_dependences,
    parallel_loops_sound,
)
from .model import (
    Dependence,
    DependenceSummary,
    DepKind,
    NonUniformDependenceError,
    classify,
)
from .multigraph import (
    ChainGraph,
    DependenceChainMultigraph,
    Edge,
    multigraphs_per_dim,
)
from .solver import (
    DistanceSolution,
    banerjee_test,
    gcd_test,
    solve_uniform_distance,
)

__all__ = [
    "ChainGraph",
    "DepKind",
    "Dependence",
    "DependenceChainMultigraph",
    "DependenceSummary",
    "DistanceSolution",
    "Edge",
    "NonUniformDependenceError",
    "analyze_pair",
    "analyze_sequence",
    "banerjee_test",
    "carried_dependences",
    "classify",
    "gcd_test",
    "multigraphs_per_dim",
    "parallel_loops_sound",
    "solve_uniform_distance",
]
