"""Inter-loop dependence analysis over admissible loop sequences.

For every ordered pair of nests ``(La, Lb)`` with ``a < b`` and every pair
of references to a common array where at least one reference writes, the
exact solver computes the uniform distance of the relation (or proves
independence / flags non-uniformity).  The result feeds the
dependence-chain multigraph (Figs. 9/10) from which shifts and peels are
derived.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.loop import LoopNest
from ..ir.sequence import LoopSequence
from ..ir.validate import canonical_fused_vars, validate_sequence
from .model import Dependence, DependenceSummary, NonUniformDependenceError, classify
from .solver import solve_uniform_distance


def _ref_sites(nest: LoopNest):
    """All (ref, is_write) sites of a nest's body, in statement order."""
    for st in nest.body:
        for ref in st.reads():
            yield ref, False
        yield st.target, True


def analyze_pair(
    src_nest: LoopNest,
    dst_nest: LoopNest,
    src_idx: int,
    dst_idx: int,
    fused_vars: Sequence[str],
    strict: bool = True,
) -> tuple[list[Dependence], int, int]:
    """Dependences from ``src_nest`` to ``dst_nest``.

    Returns ``(deps, pairs_tested, independent_pairs)``.  With
    ``strict=True`` a non-uniform relation raises
    :class:`NonUniformDependenceError`; otherwise it is skipped (used by
    exploratory tooling).
    """
    inner_vars = tuple(
        dict.fromkeys(
            [v for v in src_nest.loop_vars if v not in fused_vars]
            + [v for v in dst_nest.loop_vars if v not in fused_vars]
        )
    )
    deps: list[Dependence] = []
    seen: set[tuple] = set()
    tested = 0
    independent = 0
    for src_ref, src_w in _ref_sites(src_nest):
        for dst_ref, dst_w in _ref_sites(dst_nest):
            if src_ref.array != dst_ref.array:
                continue
            if not (src_w or dst_w):
                continue  # read-read is reuse, not dependence
            tested += 1
            sol = solve_uniform_distance(src_ref, dst_ref, fused_vars, inner_vars)
            if sol.status == "independent":
                independent += 1
                continue
            if sol.status == "nonuniform":
                if strict:
                    raise NonUniformDependenceError(
                        src_ref.array,
                        src_idx,
                        dst_idx,
                        f"{src_ref} vs {dst_ref}: dims {sol.free_dims} underdetermined",
                    )
                independent += 1
                continue
            kind = classify(src_w, dst_w)
            key = (kind, src_ref.array, sol.distance, str(src_ref), str(dst_ref))
            if key in seen:
                continue
            seen.add(key)
            deps.append(
                Dependence(
                    src=src_idx,
                    dst=dst_idx,
                    kind=kind,
                    array=src_ref.array,
                    distance=sol.distance,
                    src_ref=src_ref,
                    dst_ref=dst_ref,
                )
            )
    return deps, tested, independent


def analyze_sequence(
    seq: LoopSequence,
    params: Sequence[str] = ("n",),
    depth: Optional[int] = None,
    strict: bool = True,
) -> DependenceSummary:
    """Compute all uniform inter-loop dependences of ``seq`` for fusion of
    the ``depth`` outermost dimensions (default: common nest depth)."""
    fuse_depth = depth if depth is not None else seq.common_depth()
    validate_sequence(seq, params, fuse_depth).raise_if_bad()
    canon = canonical_fused_vars(seq, fuse_depth)
    fused_vars = canon[0].loop_vars[:fuse_depth]

    all_deps: list[Dependence] = []
    tested = 0
    independent = 0
    for a in range(len(canon)):
        for b in range(a + 1, len(canon)):
            deps, t, ind = analyze_pair(
                canon[a], canon[b], a, b, fused_vars, strict=strict
            )
            all_deps.extend(deps)
            tested += t
            independent += ind
    return DependenceSummary(
        deps=tuple(all_deps),
        fused_vars=tuple(fused_vars),
        pairs_tested=tested,
        independent_pairs=independent,
    )


def carried_dependences(
    nest: LoopNest, strict: bool = False
) -> list[tuple[str, tuple[int, ...]]]:
    """Loop-carried dependences *within* a single nest.

    Used to check that loops declared ``doall`` really are parallel: any
    dependence with a nonzero distance in a parallel dimension makes the
    declaration unsound.  Returns ``(array, distance)`` pairs with nonzero
    distance.
    """
    vars_ = nest.loop_vars
    carried: list[tuple[str, tuple[int, ...]]] = []
    sites = list(_ref_sites(nest))
    for i, (ref_a, w_a) in enumerate(sites):
        for ref_b, w_b in sites:
            if ref_a.array != ref_b.array or not (w_a or w_b):
                continue
            sol = solve_uniform_distance(ref_a, ref_b, vars_, ())
            if sol.status == "uniform" and any(d != 0 for d in sol.distance):
                carried.append((ref_a.array, sol.distance))
            elif sol.status == "nonuniform" and strict:
                raise NonUniformDependenceError(
                    ref_a.array, 0, 1, f"intra-nest {ref_a} vs {ref_b}"
                )
    return carried


def parallel_loops_sound(nest: LoopNest) -> bool:
    """True when no loop-carried dependence contradicts a ``doall`` flag."""
    parallel_dims = [k for k, lp in enumerate(nest.loops) if lp.parallel]
    for _, distance in carried_dependences(nest):
        for k in parallel_dims:
            # A dependence carried by parallel dim k: nonzero at k and zero
            # in every outer dimension.
            if distance[k] != 0 and all(distance[j] == 0 for j in range(k)):
                return False
    return True
