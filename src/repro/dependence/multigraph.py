"""Dependence-chain multigraphs and their reductions (paper Figs. 9/10).

One vertex per loop nest, one edge per uniform inter-loop dependence,
weighted by its distance in a chosen fused dimension.  The multigraph is
reduced to a simple *chain graph* by keeping, per vertex pair, the minimum
edge weight (for deriving shifts) or the maximum (for deriving peels); both
reductions preserve the structure of the dependence chains (Sec. 3.3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .model import DependenceSummary


@dataclass(frozen=True)
class Edge:
    """A weighted edge ``src -> dst`` of a dependence-chain (multi)graph."""

    src: int
    dst: int
    weight: int
    label: str = ""

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"L{self.src + 1} -({self.weight})-> L{self.dst + 1}{tag}"


@dataclass(frozen=True)
class ChainGraph:
    """A simple acyclic graph (one edge per ordered vertex pair)."""

    num_vertices: int
    edges: tuple[Edge, ...]

    def out_edges(self, v: int) -> tuple[Edge, ...]:
        return tuple(e for e in self.edges if e.src == v)

    def in_edges(self, v: int) -> tuple[Edge, ...]:
        return tuple(e for e in self.edges if e.dst == v)

    def topological_order(self) -> range:
        """Vertices in topological order.  Edges always point from earlier
        to later nests, so program order *is* a topological order (the paper
        notes no sort is needed)."""
        return range(self.num_vertices)


@dataclass(frozen=True)
class DependenceChainMultigraph:
    """The multigraph of Fig. 9(b)/10(a): possibly multiple edges per pair."""

    num_vertices: int
    edges: tuple[Edge, ...]

    @staticmethod
    def from_summary(
        summary: DependenceSummary, dim: int = 0, num_vertices: int | None = None
    ) -> "DependenceChainMultigraph":
        nv = num_vertices
        if nv is None:
            nv = 1 + max(
                (max(d.src, d.dst) for d in summary.deps), default=0
            )
        edges = tuple(
            Edge(d.src, d.dst, d.distance[dim], label=f"{d.kind}:{d.array}")
            for d in summary.deps
        )
        return DependenceChainMultigraph(nv, edges)

    def edge_count(self) -> int:
        return len(self.edges)

    def between(self, src: int, dst: int) -> tuple[Edge, ...]:
        return tuple(e for e in self.edges if e.src == src and e.dst == dst)

    def _reduce(self, pick) -> ChainGraph:
        grouped: dict[tuple[int, int], list[int]] = defaultdict(list)
        for e in self.edges:
            grouped[(e.src, e.dst)].append(e.weight)
        reduced = tuple(
            Edge(src, dst, pick(weights))
            for (src, dst), weights in sorted(grouped.items())
        )
        return ChainGraph(self.num_vertices, reduced)

    def reduce_min(self) -> ChainGraph:
        """Per-pair minimum weight: the reduction used to derive *shifts*
        (negative minima dictate how far the sink nest must be shifted)."""
        return self._reduce(min)

    def reduce_max(self) -> ChainGraph:
        """Per-pair maximum weight: the reduction used to derive *peels*."""
        return self._reduce(max)

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self.edges)


def multigraphs_per_dim(
    summary: DependenceSummary, num_vertices: int
) -> list[DependenceChainMultigraph]:
    """One multigraph per fused dimension, outermost first (the technique is
    applied dimension by dimension, working inward — Sec. 3.3)."""
    return [
        DependenceChainMultigraph.from_summary(summary, dim, num_vertices)
        for dim in range(len(summary.fused_vars))
    ]
