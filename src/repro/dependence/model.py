"""Dependence model (paper Sec. 2.1 and Appendix Defs. 3/4).

Inter-loop dependences are classified as flow, anti or output, carry an
integer distance vector over the fused loop dimensions, and are *uniform*
when that distance is the same for all iterations.  Shift-and-peel consumes
only uniform distances; non-uniform relations are represented explicitly so
the driver can refuse to transform (rather than silently miscompile).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.access import ArrayRef


class DepKind(enum.Enum):
    """Flow (true), anti, or output dependence."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify(source_is_write: bool, sink_is_write: bool) -> DepKind:
    if source_is_write and sink_is_write:
        return DepKind.OUTPUT
    if source_is_write:
        return DepKind.FLOW
    if sink_is_write:
        return DepKind.ANTI
    raise ValueError("read-read pairs are reuse, not dependence")


@dataclass(frozen=True)
class Dependence:
    """A uniform inter-loop dependence ``S_src(i) delta S_dst(i + d)``.

    ``src``/``dst`` index loop nests within the analyzed sequence
    (``src < dst`` — sources always precede sinks in an admissible
    sequence).  ``distance`` is the per-fused-dimension distance ``d``:
    positive = forward (potentially serializing), negative = backward
    (fusion-preventing), zero = loop-independent after fusion.
    """

    src: int
    dst: int
    kind: DepKind
    array: str
    distance: tuple[int, ...]
    src_ref: ArrayRef
    dst_ref: ArrayRef

    def __post_init__(self) -> None:
        if self.src >= self.dst:
            raise ValueError("inter-loop dependences must flow forward in the sequence")

    @property
    def is_backward(self) -> bool:
        """Fusion-preventing: first nonzero distance component negative."""
        for d in self.distance:
            if d < 0:
                return True
            if d > 0:
                return False
        return False

    @property
    def is_forward(self) -> bool:
        for d in self.distance:
            if d > 0:
                return True
            if d < 0:
                return False
        return False

    @property
    def is_loop_independent(self) -> bool:
        return all(d == 0 for d in self.distance)

    def direction(self) -> tuple[int, ...]:
        """Sign vector of the distance (the paper's sig(d))."""
        return tuple((d > 0) - (d < 0) for d in self.distance)

    def __str__(self) -> str:
        return (
            f"{self.kind} {self.array}: L{self.src + 1}({self.src_ref}) -> "
            f"L{self.dst + 1}({self.dst_ref}) d={self.distance}"
        )


class NonUniformDependenceError(ValueError):
    """Raised when a dependence between candidate nests is not uniform in the
    fused dimensions (shift-and-peel is then inapplicable, Sec. 3.3)."""

    def __init__(self, array: str, src: int, dst: int, reason: str):
        super().__init__(
            f"non-uniform dependence on {array!r} between L{src + 1} and "
            f"L{dst + 1}: {reason}"
        )
        self.array = array
        self.src = src
        self.dst = dst
        self.reason = reason


@dataclass(frozen=True)
class DependenceSummary:
    """All uniform dependences of a sequence plus bookkeeping counters."""

    deps: tuple[Dependence, ...]
    fused_vars: tuple[str, ...]
    pairs_tested: int = 0
    independent_pairs: int = 0

    def between(self, src: int, dst: int) -> tuple[Dependence, ...]:
        return tuple(d for d in self.deps if d.src == src and d.dst == dst)

    def backward(self) -> tuple[Dependence, ...]:
        return tuple(d for d in self.deps if d.is_backward)

    def forward(self) -> tuple[Dependence, ...]:
        return tuple(d for d in self.deps if d.is_forward)

    def on_array(self, array: str) -> tuple[Dependence, ...]:
        return tuple(d for d in self.deps if d.array == array)

    def edge_count(self) -> int:
        return len(self.deps)

    def max_abs_distance(self, dim: int = 0) -> int:
        if not self.deps:
            return 0
        return max(abs(d.distance[dim]) for d in self.deps)
