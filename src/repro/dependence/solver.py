"""Exact dependence-distance solver for affine references.

The paper uses the Omega test because shift-and-peel *requires distances*,
not just a dependent/independent verdict (Sec. 2.1).  For the program class
considered here — affine subscripts over loop variables — the element
equality ``h_a . i1 + c_a = h_b . i2 + c_b`` with the uniform ansatz
``i2 = i1 + d`` reduces to the integer linear system ``H . d = c_a - c_b``
restricted to variables the references actually use.  We solve that system
exactly over the integers with fraction-free Gaussian elimination, and
report one of three outcomes per fused dimension:

* a unique integer distance (the uniform case shift-and-peel needs),
* *no* solution — the references are independent (a GCD-style proof), or
* an underdetermined dimension — a non-uniform ("star") relation.

Classic GCD and Banerjee tests are also provided as stand-alone
independence filters (used as cross-checks in the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..ir.access import ArrayRef


@dataclass(frozen=True)
class DistanceSolution:
    """Outcome of solving for a uniform distance vector.

    ``status`` is ``'independent'`` (no integer solution exists),
    ``'uniform'`` (unique distance per fused dimension, in ``distance``), or
    ``'nonuniform'`` (solutions exist but some fused dimension is not
    uniquely determined; ``free_dims`` lists which).
    """

    status: str
    distance: Optional[tuple[int, ...]] = None
    free_dims: tuple[int, ...] = ()


def solve_uniform_distance(
    src_ref: ArrayRef,
    dst_ref: ArrayRef,
    fused_vars: Sequence[str],
    inner_vars: Sequence[str] = (),
) -> DistanceSolution:
    """Solve for the uniform distance of ``dst`` relative to ``src``.

    Unknowns are the fused-dimension distances ``d_v`` plus, for inner
    (non-fused) loop variables, independent source/sink instances — an
    element touched at any inner iteration of the source may be re-touched
    at any inner iteration of the sink.  Inner variables therefore
    contribute two unknowns each (source and sink occurrence), which are
    existentially quantified: they only affect feasibility, never the
    reported fused distance.
    """
    if src_ref.array != dst_ref.array:
        raise ValueError("references must name the same array")
    if src_ref.ndim != dst_ref.ndim:
        return DistanceSolution("independent")

    fused = list(fused_vars)
    inner = list(inner_vars)
    # Column layout: [d_v for fused vars] + [src inner vars] + [dst inner vars]
    ncols = len(fused) + 2 * len(inner)
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []

    for dim in range(src_ref.ndim):
        sa = src_ref.subscripts[dim]
        sb = dst_ref.subscripts[dim]
        row = [Fraction(0)] * ncols
        # h_a . i1 + c_a = h_b . (i1 + d) + c_b for fused vars requires the
        # fused-var coefficients to match; otherwise the relation between the
        # iterations is not a pure translation (non-uniform).
        for vi, v in enumerate(fused):
            ca = sa.coeff(v)
            cb = sb.coeff(v)
            if ca != cb:
                return DistanceSolution("nonuniform", free_dims=(vi,))
            row[vi] = Fraction(-cb)  # move h_b . d to LHS: -coeff * d_v
        for vi, v in enumerate(inner):
            row[len(fused) + vi] = Fraction(sa.coeff(v))
            row[len(fused) + len(inner) + vi] = Fraction(-sb.coeff(v))
        # Symbolic parameters (e.g. n) must match exactly for equality to be
        # possible for all parameter values.
        extra = set(sa.names) | set(sb.names)
        extra -= set(fused) | set(inner)
        for p in extra:
            if sa.coeff(p) != sb.coeff(p):
                return DistanceSolution("independent")
        rows.append(row)
        rhs.append(Fraction(sb.const - sa.const))

    solution = _solve_integer_system(rows, rhs, ncols)
    if solution is None:
        return DistanceSolution("independent")
    values, determined = solution
    free = tuple(vi for vi in range(len(fused)) if not determined[vi])
    if free:
        return DistanceSolution("nonuniform", free_dims=free)
    distance = tuple(int(values[vi]) for vi in range(len(fused)))
    return DistanceSolution("uniform", distance=distance)


def _solve_integer_system(
    rows: list[list[Fraction]], rhs: list[Fraction], ncols: int
) -> Optional[tuple[list[Fraction], list[bool]]]:
    """Gaussian elimination over Q with an integrality check.

    Returns ``(values, determined)`` where ``values[c]`` is meaningful only
    when ``determined[c]`` is True, or ``None`` if the system has no
    rational solution or a determined unknown is non-integral.
    """
    m = [row[:] + [b] for row, b in zip(rows, rhs)]
    nrows = len(m)
    pivot_col_of_row: list[int] = []
    r = 0
    for c in range(ncols):
        pivot = None
        for rr in range(r, nrows):
            if m[rr][c] != 0:
                pivot = rr
                break
        if pivot is None:
            continue
        m[r], m[pivot] = m[pivot], m[r]
        pv = m[r][c]
        m[r] = [x / pv for x in m[r]]
        for rr in range(nrows):
            if rr != r and m[rr][c] != 0:
                factor = m[rr][c]
                m[rr] = [x - factor * y for x, y in zip(m[rr], m[r])]
        pivot_col_of_row.append(c)
        r += 1
        if r == nrows:
            break
    # Inconsistent row: 0 = nonzero.
    for rr in range(r, nrows):
        if m[rr][ncols] != 0:
            return None
    values = [Fraction(0)] * ncols
    determined = [False] * ncols
    for row_idx, col in enumerate(pivot_col_of_row):
        # The unknown is uniquely determined only if no free column feeds it.
        has_free = any(
            m[row_idx][c2] != 0
            for c2 in range(ncols)
            if c2 != col and c2 not in pivot_col_of_row
        )
        if has_free:
            continue
        val = m[row_idx][ncols]
        if val.denominator != 1:
            return None  # rational but non-integer solution: independent
        values[col] = val
        determined[col] = True
    return values, determined


# ---------------------------------------------------------------------------
# Classic independence filters (cross-checks; paper Sec. 2.1)
# ---------------------------------------------------------------------------


def gcd_test(coeffs: Sequence[int], const: int) -> bool:
    """GCD test for ``sum(coeffs . x) = const``: returns True when a
    dependence is *possible* (False proves independence)."""
    nz = [abs(c) for c in coeffs if c != 0]
    if not nz:
        return const == 0
    g = nz[0]
    for c in nz[1:]:
        g = math.gcd(g, c)
    return const % g == 0


def banerjee_test(
    coeffs: Sequence[int],
    const: int,
    bounds: Sequence[tuple[int, int]],
) -> bool:
    """Banerjee bounds test for ``sum(coeffs[k] * x_k) = const`` with
    ``bounds[k] = (lo_k, hi_k)``: True when a (real-valued) solution may
    exist within bounds, False when independence is proven."""
    lo = hi = 0
    for c, (lo_k, hi_k) in zip(coeffs, bounds):
        if c >= 0:
            lo += c * lo_k
            hi += c * hi_k
        else:
            lo += c * hi_k
            hi += c * lo_k
    return lo <= const <= hi
