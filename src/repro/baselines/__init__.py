"""Baselines: unfused execution, naive fusion, alignment with replication."""

from .alignment import AlignmentError, AlignmentResult, derive_alignment
from .naive import FusionPartition, naive_fusion_partition

__all__ = [
    "AlignmentError",
    "AlignmentResult",
    "FusionPartition",
    "derive_alignment",
    "naive_fusion_partition",
]
