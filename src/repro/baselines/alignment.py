"""Alignment with replication: the prior-art baseline of paper Fig. 26.

Callahan [8] and Appelbe & Smith [2] make a fused loop synchronization-free
by *aligning* iteration spaces so every inter-loop dependence becomes
loop-independent.  When alignment requirements conflict (Fig. 14), they
*replicate*:

* a violated **flow** dependence is resolved by replicating computation —
  the consumer inlines the producer statement's right-hand side (shifted to
  the iteration it needs), paying extra work every iteration;
* a violated **anti** dependence is resolved by replicating data — the
  overwritten array is snapshot into a shadow copy by a prologue loop, and
  the endangered read retargets the snapshot, paying extra memory and an
  extra array sweep.

The module derives the alignment, applies both replication mechanisms
(iterating, since inlined computation introduces new reads), and packages
the result so the correctness executor and the machine simulator can run
it.  Shift-and-peel needs none of this — that contrast is Fig. 26.

Known boundary caveat: inlined computation recomputes the producer formula
even at iterations whose read would have returned a stale boundary value
in the original program (a production compiler emits guards for these
edge iterations).  Data replication is exact everywhere; computation
replication is exact on the interior, which is what the correctness tests
assert and all the performance measurements use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.derive import DimensionPlan, ShiftPeelPlan
from ..core.execplan import ExecutionPlan
from ..dependence.analysis import analyze_sequence
from ..dependence.model import DepKind
from ..ir.access import ArrayRef
from ..ir.expr import Affine
from ..ir.loop import Loop, LoopNest
from ..ir.sequence import ArrayDecl, LoopSequence, Program
from ..ir.stmt import Assign, BinOp, Expr, Load, UnaryOp
from ..ir.validate import canonical_fused_vars


class AlignmentError(ValueError):
    """Raised when alignment + replication cannot resolve the conflicts."""


@dataclass(frozen=True)
class AlignmentResult:
    """The aligned, replication-resolved program."""

    program: Program  # original program (for array decls)
    seq: LoopSequence  # transformed nests (aligned bodies, retargeted reads)
    offsets: tuple[int, ...]  # per-nest alignment offsets (lags)
    replicated_arrays: tuple[str, ...]  # data replication (shadow copies)
    replicated_statements: int  # computation replication count
    copy_nests: tuple[LoopNest, ...]  # prologue loops filling the shadows

    @property
    def fused_var(self) -> str:
        return self.seq[0].loop_vars[0]

    def shadow_decls(self) -> tuple[ArrayDecl, ...]:
        """Declarations for the shadow arrays (same shapes as originals)."""
        out = []
        for name in self.replicated_arrays:
            orig = self.program.array(name)
            out.append(ArrayDecl(_shadow(name), orig.shape, orig.elem_size))
        return tuple(out)

    def execution_plan(
        self, params: Mapping[str, int], num_procs: int
    ) -> ExecutionPlan:
        """The aligned fused loop as an execution plan.

        Unlike shift-and-peel, alignment partitions the fused *position*
        space: every dependence is loop-independent (gap zero), so a block
        of positions is self-contained and no peeling exists.  Processor
        ``p`` owning positions ``[istart, iend]`` executes nest ``k``'s
        iterations ``[istart - offset_k, iend - offset_k]`` (clamped; the
        last processor absorbs the shifted tails).
        """
        from ..core.execplan import ProcessorPlan
        from ..core.schedule import BlockSchedule, GridSchedule

        plan = ShiftPeelPlan(
            seq=self.seq,
            depth=1,
            dims=(
                DimensionPlan(
                    var=self.fused_var,
                    shifts=self.offsets,
                    peels=(0,) * len(self.offsets),
                ),
            ),
            summary=analyze_sequence(self.seq, self.program.params, 1),
        )
        lo = min(nest.loops[0].lower.eval(params) for nest in self.seq)
        hi = max(nest.loops[0].upper.eval(params) for nest in self.seq)
        sched = BlockSchedule(lo, hi, num_procs)
        grid = GridSchedule((sched,))
        procs = []
        for p in range(1, num_procs + 1):
            istart, iend = sched.block(p)
            fused = []
            for k, nest in enumerate(self.seq):
                off = self.offsets[k]
                lo_k, hi_k = nest.loops[0].bounds(params)
                start = max(lo_k, istart - off) if p > 1 else lo_k
                end = min(hi_k, iend - off) if p < num_procs else hi_k
                box = ((start, end),)
                for lp in nest.loops[1:]:
                    box = box + (lp.bounds(params),)
                fused.append(box)
            procs.append(
                ProcessorPlan(
                    coord=(p,),
                    block=((istart, iend),),
                    fused=tuple(fused),
                    peeled=(),
                )
            )
        return ExecutionPlan(
            plan=plan, params=dict(params), grid=grid, processors=tuple(procs)
        )


def _shadow(name: str) -> str:
    return f"{name}0"


def _retarget_reads(expr: Expr, array: str, new_array: str) -> Expr:
    if isinstance(expr, Load):
        if expr.ref.array == array:
            return Load(ArrayRef(new_array, expr.ref.subscripts))
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _retarget_reads(expr.left, array, new_array),
            _retarget_reads(expr.right, array, new_array),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _retarget_reads(expr.operand, array, new_array))
    return expr


def _site_shift(read: ArrayRef, target: ArrayRef) -> dict[str, int] | None:
    """Per-variable iteration shift taking the producer's iteration to the
    one whose value this read site consumes: the read ``X[.. v+c_r ..]``
    consumes the value written when the producer's ``v+c_t`` equaled it,
    i.e. at iteration ``v + (c_r - c_t)`` — per loop variable.  Returns
    None when the subscripts are not unit-coefficient translates."""
    if read.ndim != target.ndim:
        return None
    shift: dict[str, int] = {}
    for sr, st in zip(read.subscripts, target.subscripts):
        if sr.coeffs != st.coeffs:
            return None
        for v, c in sr.coeffs:
            if c != 1:
                return None
            delta = sr.const - st.const
            prev = shift.get(v)
            if prev is not None and prev != delta:
                return None
            shift[v] = delta
    return shift


def _inline_reads(
    expr: Expr, array: str, producer: Assign
) -> tuple[Expr, int]:
    """Replace every read of ``array`` with the producer RHS shifted to the
    producing iteration (computation replication).  Returns the new
    expression and the number of inlined sites."""
    if isinstance(expr, Load):
        if expr.ref.array == array:
            shift = _site_shift(expr.ref, producer.target)
            if shift is None:
                raise AlignmentError(
                    f"cannot inline non-translate read {expr.ref} of {array}"
                )
            inlined = producer.rhs
            for v, delta in shift.items():
                if delta:
                    inlined = inlined.shift_var(v, delta)
            return inlined, 1
        return expr, 0
    if isinstance(expr, BinOp):
        left, n1 = _inline_reads(expr.left, array, producer)
        right, n2 = _inline_reads(expr.right, array, producer)
        return BinOp(expr.op, left, right), n1 + n2
    if isinstance(expr, UnaryOp):
        inner, n = _inline_reads(expr.operand, array, producer)
        return UnaryOp(expr.op, inner), n
    return expr, 0


def _copy_nest(decl: ArrayDecl, index: int) -> LoopNest:
    """``doall``: shadow = original, over the whole array."""
    vars_ = [f"c{index}_{d}" for d in range(decl.ndim)]
    loops = tuple(
        Loop.make(v, 0, extent - 1, parallel=(d == 0))
        for d, (v, extent) in enumerate(zip(vars_, decl.shape))
    )
    subs = tuple(Affine.var(v) for v in vars_)
    body = (Assign(ArrayRef(_shadow(decl.name), subs), Load(ArrayRef(decl.name, subs))),)
    return LoopNest(loops, body, name=f"copy_{decl.name}")


def derive_alignment(
    program: Program,
    seq: Optional[LoopSequence] = None,
    max_rounds: int = 4,
) -> AlignmentResult:
    """Derive alignment offsets and apply replication until every
    dependence of the (to-be-)fused loop is loop-independent."""
    seq = seq if seq is not None else program.sequences[0]
    seq = canonical_fused_vars(seq, 1)
    params = program.params

    # --- choose offsets from flow dependences (BFS in sequence order) ----
    summary = analyze_sequence(seq, params, 1)
    offsets = [0] * len(seq)
    for b in range(1, len(seq)):
        required = set()
        for dep in summary.deps:
            if dep.dst == b and dep.kind == DepKind.FLOW:
                required.add(offsets[dep.src] - dep.distance[0])
        if required:
            # On conflict, prefer the largest lag: the remaining flow
            # violations then have positive gaps... any residual violation
            # is resolved by replication below regardless of the choice.
            offsets[b] = max(required)

    nests = list(seq)
    replicated_arrays: list[str] = []
    replicated_statements = 0

    for _round in range(max_rounds):
        work = LoopSequence(tuple(nests), name=f"{seq.name}.aligned")
        summary = analyze_sequence(work, params, 1, strict=True)
        violations = [
            dep
            for dep in summary.deps
            if dep.distance[0] + offsets[dep.dst] - offsets[dep.src] != 0
        ]
        if not violations:
            break
        progress = False
        for dep in violations:
            gap = dep.distance[0] + offsets[dep.dst] - offsets[dep.src]
            if gap == 0:
                continue
            if dep.kind == DepKind.FLOW:
                # Computation replication: inline the producer into the
                # consumer so the consumer no longer reads the array.
                producer = None
                for st in nests[dep.src].body:
                    if st.target.array == dep.array:
                        producer = st
                if producer is None:
                    raise AlignmentError(f"no producer for {dep}")
                new_body = []
                inlined = 0
                for st in nests[dep.dst].body:
                    rhs, n = _inline_reads(st.rhs, dep.array, producer)
                    inlined += n
                    new_body.append(Assign(st.target, rhs))
                if not inlined:
                    # An earlier violation on the same array already
                    # inlined every read site; nothing left to do.
                    continue
                replicated_statements += 1
                nests[dep.dst] = LoopNest(
                    nests[dep.dst].loops, tuple(new_body), nests[dep.dst].name
                )
                progress = True
            elif dep.kind == DepKind.ANTI:
                # Data replication: the early reader must see the old
                # values; retarget its reads to a prologue snapshot.
                if dep.array not in replicated_arrays:
                    replicated_arrays.append(dep.array)
                src_nest = nests[dep.src]
                new_body = tuple(
                    Assign(
                        st.target,
                        _retarget_reads(st.rhs, dep.array, _shadow(dep.array)),
                    )
                    for st in src_nest.body
                )
                nests[dep.src] = LoopNest(src_nest.loops, new_body, src_nest.name)
                progress = True
            else:
                raise AlignmentError(
                    f"output dependence {dep} cannot be resolved by replication"
                )
        if not progress:
            raise AlignmentError("alignment failed to converge")
    else:
        raise AlignmentError(f"replication did not converge in {max_rounds} rounds")

    # Normalize offsets to be non-negative lags (a uniform shift of every
    # loop changes nothing about relative alignment).
    low = min(offsets)
    if low < 0:
        offsets = [o - low for o in offsets]

    copy_nests = tuple(
        _copy_nest(program.array(a), idx) for idx, a in enumerate(replicated_arrays)
    )
    return AlignmentResult(
        program=program,
        seq=LoopSequence(tuple(nests), name=f"{seq.name}.aligned"),
        offsets=tuple(offsets),
        replicated_arrays=tuple(replicated_arrays),
        replicated_statements=replicated_statements,
        copy_nests=copy_nests,
    )
