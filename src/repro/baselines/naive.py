"""Naive fusion partitioner: prior art that refuses difficult fusions.

Warren [30] and Kennedy & McKinley [16] fuse only when it is *directly*
legal: identical iteration spaces, no resulting loop-carried dependences
(no shifting) and no serializing dependences (no peeling).  This module
implements that policy as a partitioner: it greedily grows fusible groups
of adjacent nests and stops a group at the first nest that would need a
shift or a peel.  Comparing its groups against shift-and-peel's single
fused loop quantifies how much reuse the older approaches leave behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..dependence.analysis import analyze_sequence
from ..ir.sequence import LoopSequence


@dataclass(frozen=True)
class FusionPartition:
    """Result: consecutive groups of nest indices that may fuse directly."""

    groups: tuple[tuple[int, ...], ...]

    @property
    def num_fused_loops(self) -> int:
        return len(self.groups)

    @property
    def largest_group(self) -> int:
        return max(len(g) for g in self.groups)

    def synchronizations(self) -> int:
        """Barriers still required after naive fusion (one per group)."""
        return len(self.groups)


def _same_iteration_space(seq: LoopSequence, a: int, b: int) -> bool:
    la, lb = seq[a].loops, seq[b].loops
    if len(la) != len(lb):
        return False
    return all(
        (x.lower, x.upper) == (y.lower, y.upper) for x, y in zip(la, lb)
    )


def naive_fusion_partition(
    seq: LoopSequence, params: Sequence[str] = ("n",), depth: int = 1
) -> FusionPartition:
    """Greedy grouping: nest ``b`` joins the current group only if every
    dependence from every group member has distance zero in all fused
    dimensions and the iteration spaces match."""
    summary = analyze_sequence(seq, params, depth)
    groups: list[list[int]] = [[0]]
    for b in range(1, len(seq)):
        current = groups[-1]
        ok = all(_same_iteration_space(seq, a, b) for a in current)
        if ok:
            for dep in summary.deps:
                if dep.dst == b and dep.src in current:
                    if any(d != 0 for d in dep.distance[:depth]):
                        ok = False
                        break
        if ok:
            current.append(b)
        else:
            groups.append([b])
    return FusionPartition(tuple(tuple(g) for g in groups))
