"""Executable code generation: CIR nodes, strip-mined SPMD, direct method,
and the numpy-source jit emitter behind the ``jit`` backend."""

from .cir import (
    CodeBarrier,
    CodeBlock,
    CodeFor,
    CodeIf,
    CodeLet,
    CodeNode,
    CodeStmt,
    Compare,
    block,
    loop,
    run_code,
)
from .direct import direct_fused_code, run_direct
from .emitpy import (
    CODEGEN_VERSION,
    JitCompileError,
    JitEmitError,
    JitModule,
    compile_plan,
    compile_source,
    emit_plan_source,
)
from .stripmine import (
    SpmdProcessorCode,
    fused_block_code,
    fused_tile_loops,
    peeled_loops,
    run_spmd,
    spmd_codes,
)

__all__ = [
    "CODEGEN_VERSION",
    "CodeBarrier",
    "CodeBlock",
    "CodeFor",
    "CodeIf",
    "CodeLet",
    "CodeNode",
    "CodeStmt",
    "Compare",
    "JitCompileError",
    "JitEmitError",
    "JitModule",
    "SpmdProcessorCode",
    "block",
    "compile_plan",
    "compile_source",
    "direct_fused_code",
    "emit_plan_source",
    "fused_block_code",
    "fused_tile_loops",
    "loop",
    "peeled_loops",
    "run_code",
    "run_direct",
    "run_spmd",
    "spmd_codes",
]
