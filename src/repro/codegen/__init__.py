"""Executable code generation: CIR nodes, strip-mined SPMD, direct method."""

from .cir import (
    CodeBarrier,
    CodeBlock,
    CodeFor,
    CodeIf,
    CodeLet,
    CodeNode,
    CodeStmt,
    Compare,
    block,
    loop,
    run_code,
)
from .direct import direct_fused_code, run_direct
from .stripmine import (
    SpmdProcessorCode,
    fused_block_code,
    fused_tile_loops,
    peeled_loops,
    run_spmd,
    spmd_codes,
)

__all__ = [
    "CodeBarrier",
    "CodeBlock",
    "CodeFor",
    "CodeIf",
    "CodeLet",
    "CodeNode",
    "CodeStmt",
    "Compare",
    "SpmdProcessorCode",
    "block",
    "direct_fused_code",
    "fused_block_code",
    "fused_tile_loops",
    "loop",
    "peeled_loops",
    "run_code",
    "run_direct",
    "run_spmd",
    "spmd_codes",
]
