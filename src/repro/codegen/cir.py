"""CIR: a small structured IR for *generated* code.

The loop-nest IR of :mod:`repro.ir` describes source programs; transformed
code needs richer constructs — ``min``/``max`` loop bounds (strip-mined
inner loops, Fig. 12), guarded statements (the direct method, Fig. 11(a)),
and barriers.  CIR provides exactly those nodes, an interpreter (so
generated code is executable and therefore testable), and a printer.

Nodes evaluate bounds against an integer environment, which lets the same
tree serve both the symbolic rendering (``istart``/``iend`` as free names)
and concrete per-processor execution (names bound by a prologue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, MutableMapping

import numpy as np

from ..ir.expr import Affine, BoundExpr, as_affine
from ..ir.stmt import Assign


class CodeNode:
    """Base class for generated-code nodes."""

    def execute(self, env: MutableMapping[str, int], arrays) -> None:
        raise NotImplementedError

    def render(self, indent: int = 0) -> list[str]:
        raise NotImplementedError

    def statements(self) -> Iterator[Assign]:
        """All embedded assignments (for analysis/testing)."""
        return iter(())

    def __str__(self) -> str:
        return "\n".join(self.render())


IND = "    "


@dataclass(frozen=True)
class CodeStmt(CodeNode):
    stmt: Assign

    def execute(self, env, arrays) -> None:
        self.stmt.execute(env, arrays)

    def render(self, indent: int = 0) -> list[str]:
        return [f"{IND * indent}{self.stmt}"]

    def statements(self):
        yield self.stmt


@dataclass(frozen=True)
class CodeBlock(CodeNode):
    items: tuple[CodeNode, ...]

    def execute(self, env, arrays) -> None:
        for item in self.items:
            item.execute(env, arrays)

    def render(self, indent: int = 0) -> list[str]:
        out: list[str] = []
        for item in self.items:
            out.extend(item.render(indent))
        return out

    def statements(self):
        for item in self.items:
            yield from item.statements()


@dataclass(frozen=True)
class CodeFor(CodeNode):
    """``do var = lower, upper [, step]`` with min/max-capable bounds."""

    var: str
    lower: BoundExpr
    upper: BoundExpr
    body: CodeNode
    step: int = 1
    parallel: bool = False

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("loop step must be positive")

    def execute(self, env, arrays) -> None:
        lo = self.lower.eval(env)
        hi = self.upper.eval(env)
        saved = env.get(self.var)
        for value in range(lo, hi + 1, self.step):
            env[self.var] = value
            self.body.execute(env, arrays)
        if saved is None:
            env.pop(self.var, None)
        else:
            env[self.var] = saved

    def render(self, indent: int = 0) -> list[str]:
        kw = "doall" if self.parallel else "do"
        step = f", {self.step}" if self.step != 1 else ""
        head = f"{IND * indent}{kw} {self.var} = {self.lower}, {self.upper}{step}"
        return [head] + self.body.render(indent + 1) + [f"{IND * indent}end do"]

    def statements(self):
        yield from self.body.statements()


@dataclass(frozen=True)
class Compare:
    """``lhs op rhs`` over affine expressions; op in <=, <, >=, >, ==."""

    lhs: Affine
    op: str
    rhs: Affine

    OPS = ("<=", "<", ">=", ">", "==")

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise ValueError(f"bad comparison operator {self.op!r}")

    def eval(self, env: Mapping[str, int]) -> bool:
        a = self.lhs.eval(env)
        b = self.rhs.eval(env)
        return {
            "<=": a <= b,
            "<": a < b,
            ">=": a >= b,
            ">": a > b,
            "==": a == b,
        }[self.op]

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class CodeIf(CodeNode):
    """Guarded node (the direct method's per-statement guards)."""

    cond: Compare
    body: CodeNode

    def execute(self, env, arrays) -> None:
        if self.cond.eval(env):
            self.body.execute(env, arrays)

    def render(self, indent: int = 0) -> list[str]:
        body_lines = self.body.render(0)
        if len(body_lines) == 1:
            return [f"{IND * indent}if ({self.cond}) {body_lines[0]}"]
        out = [f"{IND * indent}if ({self.cond}) then"]
        out += self.body.render(indent + 1)
        out.append(f"{IND * indent}end if")
        return out

    def statements(self):
        yield from self.body.statements()


@dataclass(frozen=True)
class CodeBarrier(CodeNode):
    """Synchronization point.  Executing a barrier in the single-threaded
    interpreter is a no-op; the SPMD driver uses it to split phases."""

    label: str = ""

    def execute(self, env, arrays) -> None:
        return None

    def render(self, indent: int = 0) -> list[str]:
        tag = f" ! {self.label}" if self.label else ""
        return [f"{IND * indent}<BARRIER>{tag}"]


@dataclass(frozen=True)
class CodeLet(CodeNode):
    """``name = affine`` binding in the environment (prologue variables)."""

    name: str
    value: BoundExpr

    def execute(self, env, arrays) -> None:
        env[self.name] = self.value.eval(env)

    def render(self, indent: int = 0) -> list[str]:
        return [f"{IND * indent}{self.name} = {self.value}"]


def block(*items: CodeNode) -> CodeBlock:
    return CodeBlock(tuple(items))


def loop(
    var: str,
    lower: "BoundExpr | Affine | int | str",
    upper: "BoundExpr | Affine | int | str",
    *body: CodeNode,
    step: int = 1,
    parallel: bool = False,
) -> CodeFor:
    lo = lower if isinstance(lower, BoundExpr) else BoundExpr.affine(as_affine(lower))
    hi = upper if isinstance(upper, BoundExpr) else BoundExpr.affine(as_affine(upper))
    return CodeFor(var, lo, hi, block(*body), step=step, parallel=parallel)


def run_code(
    node: CodeNode,
    bindings: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
) -> None:
    """Execute a code tree under the given name bindings."""
    env = dict(bindings)
    node.execute(env, arrays)
