"""Executable code generation for shift-and-peel fusion.

Two layers:

* :func:`fused_block_code` — the strip-mined fused loop of paper Fig. 12
  for *one* processor block, as executable CIR.  Bound names
  (``istart``/``iend`` etc.) stay symbolic, so the same tree renders as the
  generic code a compiler would emit and executes once a prologue binds
  the names.
* :func:`spmd_codes` / :func:`run_spmd` — the complete SPMD structure of
  Fig. 16: per-processor prologue bindings, the fused phase, the barrier,
  and the peeled rectangles; executing it must be bit-identical to the
  serial original (tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, MutableMapping, Sequence

import numpy as np

from ..core.derive import ShiftPeelPlan
from ..core.execplan import ExecutionPlan, ProcessorPlan
from ..ir.expr import Affine, BoundExpr
from ..ir.loop import LoopNest
from .cir import (
    CodeBarrier,
    CodeBlock,
    CodeFor,
    CodeNode,
    CodeStmt,
    block,
    run_code,
)


def _const(value: int) -> BoundExpr:
    return BoundExpr.affine(Affine.constant(value))


def _inner_loops(nest: LoopNest, body: CodeNode, params, start_level: int) -> CodeNode:
    """Wrap ``body`` in the nest's non-fused inner loops (full ranges)."""
    for lp in reversed(nest.loops[start_level:]):
        lo, hi = lp.bounds(params)
        body = CodeFor(lp.var, _const(lo), _const(hi), body)
    return body


def _nest_body(nest: LoopNest) -> CodeNode:
    return block(*(CodeStmt(st) for st in nest.body))


def fused_tile_loops(
    plan: ShiftPeelPlan,
    params: Mapping[str, int],
    proc: ProcessorPlan,
    strip: int,
) -> CodeNode:
    """The fused phase for one processor: control loops ``vv`` over
    position-space tiles; per tile, each nest's inner loops with shift and
    peel folded into min/max bounds (Fig. 12 / Fig. 16)."""
    ndims = plan.depth
    fused_vars = [d.var for d in plan.dims]

    # Position-space extent of this processor's fused phase.
    pos_lo = [None] * ndims
    pos_hi = [None] * ndims
    for k in range(plan.num_nests):
        for d in range(ndims):
            lo, hi = proc.fused[k][d]
            if hi < lo:
                continue
            s = plan.shift(k, d)
            pos_lo[d] = lo + s if pos_lo[d] is None else min(pos_lo[d], lo + s)
            pos_hi[d] = hi + s if pos_hi[d] is None else max(pos_hi[d], hi + s)
    if any(lo is None for lo in pos_lo):
        return block()

    # Per-tile body: nests in sequence order, each with min/max bounds.
    nest_chunks: list[CodeNode] = []
    for k, nest in enumerate(plan.seq):
        body = _nest_body(nest)
        body = _inner_loops(nest, body, params, ndims)
        for d in reversed(range(ndims)):
            v = fused_vars[d]
            vv = f"{v}{v}"
            s = plan.shift(k, d)
            flo, fhi = proc.fused[k][d]
            lower = BoundExpr.maximum(
                Affine.var(vv) - s, Affine.constant(flo)
            )
            upper = BoundExpr.minimum(
                Affine.var(vv) + (strip - 1 - s), Affine.constant(fhi)
            )
            body = CodeFor(v, lower, upper, body)
        nest_chunks.append(body)
    tile_body: CodeNode = block(*nest_chunks)

    # Control loops over tiles, outermost first.
    for d in reversed(range(ndims)):
        v = fused_vars[d]
        tile_body = CodeFor(
            f"{v}{v}", _const(pos_lo[d]), _const(pos_hi[d]), tile_body,
            step=strip, parallel=(d == 0),
        )
    return tile_body


def peeled_loops(
    plan: ShiftPeelPlan, params: Mapping[str, int], proc: ProcessorPlan
) -> CodeNode:
    """The post-barrier peeled rectangles for one processor, nests in
    sequence order (Sec. 3.4's dependence-closed grouping)."""
    chunks: list[CodeNode] = []
    for rect in sorted(proc.peeled, key=lambda r: r.nest_idx):
        if rect.is_empty():
            continue
        nest = plan.seq[rect.nest_idx]
        body = _nest_body(nest)
        for d in reversed(range(nest.depth)):
            lo, hi = rect.ranges[d]
            body = CodeFor(nest.loops[d].var, _const(lo), _const(hi), body)
        chunks.append(body)
    return block(*chunks)


@dataclass(frozen=True)
class SpmdProcessorCode:
    """Generated code for one processor: fused phase, then peeled phase."""

    coord: tuple[int, ...]
    fused: CodeNode
    peeled: CodeNode

    def render(self) -> str:
        lines = [f"! processor {self.coord}"]
        lines += self.fused.render()
        lines += CodeBarrier("wait for all fused blocks").render()
        lines += self.peeled.render()
        return "\n".join(lines)


def spmd_codes(
    exec_plan: ExecutionPlan, strip: int = 8
) -> list[SpmdProcessorCode]:
    """Generate the executable SPMD code of every processor."""
    plan = exec_plan.plan
    params = exec_plan.params
    return [
        SpmdProcessorCode(
            coord=proc.coord,
            fused=fused_tile_loops(plan, params, proc, strip),
            peeled=peeled_loops(plan, params, proc),
        )
        for proc in exec_plan.processors
    ]


def run_spmd(
    exec_plan: ExecutionPlan,
    arrays: MutableMapping[str, np.ndarray],
    strip: int = 8,
    proc_order: Sequence[int] | None = None,
) -> None:
    """Execute the generated SPMD code: all fused phases (in ``proc_order``,
    default program order — any order is legal), the barrier, then all
    peeled phases."""
    codes = spmd_codes(exec_plan, strip)
    order = list(proc_order) if proc_order is not None else list(range(len(codes)))
    bindings = dict(exec_plan.params)
    for idx in order:
        run_code(codes[idx].fused, bindings, arrays)
    # ---- barrier ----
    for idx in order:
        run_code(codes[idx].peeled, bindings, arrays)


def fused_block_code(
    plan: ShiftPeelPlan,
    params: Mapping[str, int],
    strip: int,
    num_procs: int = 1,
) -> CodeNode:
    """Convenience: the whole-domain fused code (single block) as one
    executable tree — the Fig. 12 listing with concrete bounds."""
    from ..core.execplan import build_execution_plan

    exec_plan = build_execution_plan(plan, params, num_procs=num_procs)
    pieces: list[CodeNode] = []
    for proc in exec_plan.processors:
        pieces.append(fused_tile_loops(plan, exec_plan.params, proc, strip))
    pieces.append(CodeBarrier("peeled iterations follow"))
    for proc in exec_plan.processors:
        pieces.append(peeled_loops(plan, exec_plan.params, proc))
    return CodeBlock(tuple(pieces))
