"""Lower an :class:`~repro.core.execplan.ExecutionPlan` to native C.

The numpy codegen (:mod:`repro.codegen.emitpy`) removed the plan
*interpretation* cost, but every generated statement still pays numpy's
per-call overhead — temporaries, broadcasting setup, dispatch — which
dominates on small shapes, exactly the regime where fusion's locality win
should show.  This module renders the same plan as a self-contained C
translation unit with the identical module shape:

* one function per processor phase (``_fused_p<i>`` / ``_peeled_p<i>``),
  every fused box and peeled rectangle as literal ``for`` loops with the
  plan's parameters folded into the bounds;
* the same exported metadata the Python module carries — signature,
  ``NPROCS``, per-processor iteration counts and the ``PEEL_DEPS``
  point-to-point sync map — as ``REPRO_*`` symbols, so a cold process can
  validate and run a cached ``.so`` without the ``.c`` or ``.py`` source;
* ``long run_fused(long proc, double **arrays, const long *dims)`` /
  ``run_peeled`` entry points (array pointers and concrete shapes are
  runtime inputs: shapes are deliberately *not* part of the structural
  plan signature, mirroring how the numpy module reads them off the
  arrays it is handed).

Bit-identity with the interpreter is preserved by construction.  The
numpy module executes each statement as "evaluate the RHS over the whole
box, then store"; a naive C loop interleaves loads and stores
element-by-element.  The two agree unless a statement *reads the array it
writes* at overlapping locations inside the vectorized sub-box, so the
emitter performs that hazard analysis per (statement, box): provably safe
statements (identical subscripts, or a dimension with provably disjoint
index ranges) become direct elementwise loops, anything else evaluates
into a scratch buffer first and stores after — exactly numpy's
semantics.  Scalar (non-vectorized) dimensions stay ordered outer loops
in both tiers, so dependences they carry behave identically.  Arithmetic
is plain IEEE-754 double with the same expression-tree shape numpy
evaluates, compiled with ``-O2`` and **without** ``-ffast-math``, so
every element's value is bit-identical.

The compiled ``.so`` is cached by :mod:`repro.runtime.plancache` next to
the ``.py`` source, keyed by the structural plan signature *plus* a
compiler fingerprint (:func:`compiler_fingerprint`), and loaded with
:mod:`ctypes`.  When no compiler is present or compilation fails, the
``cjit`` backend falls back to ``jit`` with a one-line note and a
counter (:func:`note_fallback`) — never an error.
"""

from __future__ import annotations

import ctypes
import math
import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import MutableMapping, Optional, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan
from ..ir.access import ArrayRef
from ..ir.expr import Affine
from ..ir.loop import LoopNest
from ..ir.stmt import BinOp, Const, Expr, Load, UnaryOp
from .emitpy import CODEGEN_VERSION, JitEmitError, _box_volume

IND = "    "

#: Exactly what the issue gates on: portable IEEE-754 codegen.  No
#: ``-ffast-math`` (would break bit-identity), no ``-march`` (the cache
#: may be shared between machines of one ISA family).
CFLAGS = ("-O2", "-shared", "-fPIC")

ENV_CC = "REPRO_CC"

#: Seconds before a hung compiler invocation is abandoned (and the
#: backend falls back to jit).
COMPILE_TIMEOUT = 120.0


class CJitError(RuntimeError):
    """Base class for native-tier failures."""


class CJitEmitError(CJitError, JitEmitError):
    """The plan contains a construct the C emitter cannot lower."""


class CJitCompileError(CJitError):
    """Compilation failed or a cached ``.so`` is corrupt/stale."""


class NativeUnavailable(CJitError):
    """No C compiler on this machine — callers fall back to ``jit``."""


# ---------------------------------------------------------------------------
# Compiler discovery and fingerprinting.
# ---------------------------------------------------------------------------


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler to use, or None.

    ``$REPRO_CC`` pins (or, when set to something unresolvable, disables)
    the compiler; otherwise the conventional names are probed in order.
    """
    env = os.environ.get(ENV_CC)
    if env is not None:
        return shutil.which(env)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


_fingerprints: dict[str, str] = {}


def compiler_fingerprint(compiler: Optional[str] = None) -> Optional[str]:
    """Short stable digest of (compiler identity, flags), or None.

    Part of the ``.so`` cache key and of the auto-tuner's machine
    fingerprint: a compiler upgrade must recompile cached objects and
    invalidate persisted tuning winners instead of replaying stale ones.
    """
    import hashlib

    if compiler is None:
        compiler = find_compiler()
    if compiler is None:
        return None
    cached = _fingerprints.get(compiler)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [compiler, "--version"], capture_output=True, text=True,
            timeout=10.0,
        )
        identity = (out.stdout or out.stderr).splitlines()[0:1]
        identity = identity[0] if identity else compiler
    except (OSError, subprocess.SubprocessError, IndexError):
        identity = compiler
    digest = hashlib.sha256(
        f"{identity}|{' '.join(CFLAGS)}".encode()
    ).hexdigest()[:12]
    _fingerprints[compiler] = digest
    return digest


# ---------------------------------------------------------------------------
# Fallback accounting: cjit never errors for a missing/broken compiler,
# it falls back to jit with a note and a counter.
# ---------------------------------------------------------------------------

_fallbacks = {"count": 0, "last_reason": None}
_noted_reasons: set[str] = set()


def note_fallback(reason: str) -> None:
    """Record one cjit→jit fallback; print each distinct reason once."""
    _fallbacks["count"] += 1
    _fallbacks["last_reason"] = reason
    if reason not in _noted_reasons:
        _noted_reasons.add(reason)
        print(f"cjit: falling back to jit — {reason}", file=sys.stderr)


def fallback_stats() -> dict:
    return dict(_fallbacks)


def reset_fallback_stats() -> None:
    _fallbacks["count"] = 0
    _fallbacks["last_reason"] = None
    _noted_reasons.clear()


# ---------------------------------------------------------------------------
# Rendering helpers.
# ---------------------------------------------------------------------------


def _c_double(value: float) -> str:
    """A Python float as a C double literal with identical bits
    (``repr`` round-trips through ``strtod``)."""
    if not math.isfinite(value):
        raise CJitEmitError(f"non-finite constant {value!r}")
    text = repr(float(value))
    if "." not in text and "e" not in text and "E" not in text:
        text += ".0"
    return f"({text})"


def _linear_c(const: int, terms: Sequence[tuple[str, int]]) -> str:
    """Render ``sum(c * v_var) + const`` as a C long expression."""
    parts: list[str] = []
    for var, coeff in terms:
        name = f"v_{var}"
        if coeff == 1:
            parts.append(name)
        elif coeff == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{coeff}*{name}")
    if const or not parts:
        parts.append(str(const))
    return " + ".join(parts)


@dataclass(frozen=True)
class _ArrayLayout:
    """Global array table of one plan: pointer index and dims offset."""

    order: tuple[str, ...]
    ndims: dict[str, int]
    index: dict[str, int]
    dims_offset: dict[str, int]

    @property
    def total_dims(self) -> int:
        return sum(self.ndims[name] for name in self.order)

    def spec_string(self) -> str:
        return ",".join(f"{name}:{self.ndims[name]}" for name in self.order)


def _collect_refs(nests: Sequence[LoopNest]):
    for nest in nests:
        for stmt in nest.body:
            yield stmt.target
            yield from stmt.rhs.loads()


def _array_layout(nests: Sequence[LoopNest]) -> _ArrayLayout:
    ndims: dict[str, int] = {}
    for ref in _collect_refs(nests):
        rank = len(ref.subscripts)
        seen = ndims.setdefault(ref.array, rank)
        if seen != rank:
            raise CJitEmitError(
                f"array {ref.array!r} referenced with both {seen} and "
                f"{rank} subscripts"
            )
    order = tuple(sorted(ndims))
    index = {name: k for k, name in enumerate(order)}
    dims_offset: dict[str, int] = {}
    offset = 0
    for name in order:
        dims_offset[name] = offset
        offset += ndims[name]
    return _ArrayLayout(order=order, ndims=ndims, index=index,
                        dims_offset=dims_offset)


class _CBoxCtx:
    """Static rendering context for one (nest, box) pair, C flavour.

    Unlike :class:`emitpy._BoxCtx`, every dimension becomes a ``for``
    loop; the vectorized/scalar split (the same
    :func:`~repro.runtime.fastexec.vector_dims` legality analysis) only
    drives the *ordering semantics*: scalar dims are outer ordered
    loops shared by all statements, and each statement iterates the
    vector sub-box on its own — with a buffered store when it reads its
    own target at potentially overlapping locations (numpy evaluates
    the whole RHS before storing; C must too, there).
    """

    def __init__(self, nest: LoopNest, box, vdims: tuple[int, ...],
                 params, layout: _ArrayLayout) -> None:
        self.nest = nest
        self.box = box
        self.vdims = vdims
        self.params = params
        self.layout = layout
        self.vvar_dim = {nest.loops[d].var: d for d in vdims}
        self.svars = {
            nest.loops[d].var for d in range(nest.depth) if d not in vdims
        }

    def split(self, sub: Affine):
        """Fold ``sub`` into (const, scalar terms, vector-dim terms)."""
        const = sub.const
        terms: list[tuple[str, int]] = []
        vds: list[tuple[int, int]] = []
        for var, coeff in sub.coeffs:
            if var in self.vvar_dim:
                vds.append((self.vvar_dim[var], coeff))
            elif var in self.svars:
                terms.append((var, coeff))
            elif var in self.params:
                const += coeff * self.params[var]
            else:
                raise CJitEmitError(
                    f"unknown name {var!r} in subscript of nest "
                    f"{self.nest.name!r}"
                )
        return const, terms, vds

    # -- hazard analysis ---------------------------------------------------

    def _vrange(self, const: int, vds) -> tuple[int, int]:
        """Value interval of ``const + sum(c * v_d)`` over the box."""
        lo = hi = const
        for d, coeff in vds:
            blo, bhi = self.box[d]
            a, b = coeff * blo, coeff * bhi
            lo += min(a, b)
            hi += max(a, b)
        return lo, hi

    def _dim_disjoint(self, write: Affine, read: Affine) -> bool:
        """True when this dimension provably separates the write region
        from the read region for every fixed scalar iteration."""
        wc, wt, wv = self.split(write)
        rc, rt, rv = self.split(read)
        if wt != rt:
            return False  # scalar offsets differ: cannot cancel them
        wlo, whi = self._vrange(wc, wv)
        rlo, rhi = self._vrange(rc, rv)
        return whi < rlo or rhi < wlo

    def stmt_needs_buffer(self, stmt) -> bool:
        """Does numpy's evaluate-all-then-store order matter here?

        Only when the statement loads its own target array at subscripts
        that are neither identical to the write map nor provably
        disjoint from it inside the vector sub-box.  Dependences carried
        by scalar dimensions are executed in the same order by both
        tiers and need no buffering.
        """
        for ref in stmt.rhs.loads():
            if ref.array != stmt.target.array:
                continue
            if ref.subscripts == stmt.target.subscripts:
                continue  # element reads exactly itself
            if any(self._dim_disjoint(w, r) for w, r in
                   zip(stmt.target.subscripts, ref.subscripts)):
                continue
            return True
        return False

    # -- source fragments --------------------------------------------------

    def _index_c(self, sub: Affine) -> str:
        const, terms, vds = self.split(sub)
        all_terms = list(terms) + [
            (self.nest.loops[d].var, coeff) for d, coeff in vds
        ]
        return _linear_c(const, all_terms)

    def addr_c(self, ref: ArrayRef) -> str:
        """The flat C index expression of ``ref`` (row-major strides)."""
        rank = self.layout.ndims[ref.array]
        if len(ref.subscripts) != rank:  # pragma: no cover - layout guards
            raise CJitEmitError(f"rank mismatch on {ref.array!r}")
        pieces: list[str] = []
        for d, sub in enumerate(ref.subscripts):
            idx = self._index_c(sub)
            if d == rank - 1:
                pieces.append(f"({idx})")
            else:
                pieces.append(f"({idx})*s_{ref.array}_{d}")
        return " + ".join(pieces)

    def expr_c(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return _c_double(expr.value)
        if isinstance(expr, Load):
            return f"a_{expr.ref.array}[{self.addr_c(expr.ref)}]"
        if isinstance(expr, BinOp):
            left = self.expr_c(expr.left)
            right = self.expr_c(expr.right)
            return f"({left} {expr.op} {right})"
        if isinstance(expr, UnaryOp):
            return f"(-{self.expr_c(expr.operand)})"
        raise CJitEmitError(f"cannot lower expression {expr!r}")

    def _vloops(self, depth: int) -> tuple[list[str], int]:
        lines = []
        for d in self.vdims:
            lo, hi = self.box[d]
            var = f"v_{self.nest.loops[d].var}"
            lines.append(
                f"{IND * depth}for (long {var} = {lo}; {var} <= {hi}; "
                f"{var}++) {{"
            )
            depth += 1
        return lines, depth

    def stmt_lines(self, stmt, depth: int) -> tuple[list[str], int]:
        """C lines executing ``stmt`` over the vector sub-box at
        ``depth``; returns (lines, scratch doubles needed)."""
        store = f"a_{stmt.target.array}[{self.addr_c(stmt.target)}]"
        rhs = self.expr_c(stmt.rhs)
        vbox_volume = 1
        for d in self.vdims:
            lo, hi = self.box[d]
            vbox_volume *= max(0, hi - lo + 1)
        if not self.stmt_needs_buffer(stmt):
            lines, inner = self._vloops(depth)
            lines.append(f"{IND * inner}{store} = {rhs};")
            for level in range(inner - 1, depth - 1, -1):
                lines.append(f"{IND * level}}}")
            return lines, 0
        # Buffered store: evaluate the whole RHS first (numpy semantics),
        # then copy it into place in the same traversal order.
        lines = [f"{IND * depth}{{ long _k = 0;"]
        loops, inner = self._vloops(depth + 1)
        lines.extend(loops)
        lines.append(f"{IND * inner}_buf[_k++] = {rhs};")
        for level in range(inner - 1, depth, -1):
            lines.append(f"{IND * level}}}")
        lines.append(f"{IND * (depth + 1)}_k = 0;")
        loops, inner = self._vloops(depth + 1)
        lines.extend(loops)
        lines.append(f"{IND * inner}{store} = _buf[_k++];")
        for level in range(inner - 1, depth, -1):
            lines.append(f"{IND * level}}}")
        lines.append(f"{IND * depth}}}")
        return lines, vbox_volume


def emit_box_c(nest: LoopNest, box, params, layout: _ArrayLayout,
               vdims: Optional[tuple[int, ...]] = None
               ) -> tuple[list[str], int]:
    """C lines executing every iteration of ``nest`` inside ``box``.

    Returns (lines, scratch doubles needed).  Empty boxes produce no
    code, like :func:`emitpy.emit_box`.
    """
    if any(hi < lo for lo, hi in box):
        return [], 0
    if vdims is None:
        from ..runtime.fastexec import vector_dims

        vdims = vector_dims(nest)
    sdims = [d for d in range(nest.depth) if d not in vdims]
    ctx = _CBoxCtx(nest, box, vdims, params, layout)
    out: list[str] = ["{"]
    depth = 1
    for d in sdims:
        lo, hi = box[d]
        var = f"v_{nest.loops[d].var}"
        out.append(
            f"{IND * depth}for (long {var} = {lo}; {var} <= {hi}; {var}++) {{"
        )
        depth += 1
    scratch = 0
    for stmt in nest.body:
        lines, need = ctx.stmt_lines(stmt, depth)
        out.extend(lines)
        scratch = max(scratch, need)
    for level in range(depth - 1, 0, -1):
        out.append(f"{IND * level}}}")
    out.append("}")
    return out, scratch


# ---------------------------------------------------------------------------
# Whole-plan emission.
# ---------------------------------------------------------------------------


def _stride_lines(arrays: set[str], layout: _ArrayLayout) -> list[str]:
    """Per-function pointer and row-major stride bindings."""
    lines = []
    for name in sorted(arrays):
        lines.append(f"{IND}double *a_{name} = A[{layout.index[name]}];")
        rank = layout.ndims[name]
        offset = layout.dims_offset[name]
        for d in range(rank - 1):
            factors = [f"D[{offset + k}]" for k in range(d + 1, rank)]
            lines.append(
                f"{IND}const long s_{name}_{d} = {' * '.join(factors)};"
            )
    return lines


def _phase_function_c(name: str, chunks, params, nest_vdims,
                      layout: _ArrayLayout) -> tuple[list[str], int]:
    """One processor-phase function from (nest_idx, nest, box) chunks.

    Returns (lines, iteration count).  Phase functions return 0 on
    success, nonzero on scratch-allocation failure.
    """
    body: list[str] = []
    count = 0
    arrays: set[str] = set()
    scratch = 0
    for nest_idx, nest, box in chunks:
        lines, need = emit_box_c(nest, box, params, layout,
                                 vdims=nest_vdims[nest_idx])
        if not lines:
            continue
        count += _box_volume(box)
        scratch = max(scratch, need)
        arrays |= nest.arrays()
        body.append(f"{IND}/* nest {nest_idx} box={box} */")
        body.extend(f"{IND}{line}" for line in lines)
    out = [f"static int {name}(double **A, const long *D) {{"]
    if body:
        out.append(f"{IND}(void)A; (void)D;")
        out.extend(_stride_lines(arrays, layout))
        if scratch:
            out.append(
                f"{IND}double *_buf = (double *)malloc({scratch} * "
                f"sizeof(double));"
            )
            out.append(f"{IND}if (!_buf) return 1;")
        out.extend(body)
        if scratch:
            out.append(f"{IND}free(_buf);")
    else:
        out.append(f"{IND}(void)A; (void)D;")
    out.append(f"{IND}return 0;")
    out.append("}")
    return out, count


def _long_array(name: str, values: Sequence[int]) -> str:
    vals = ", ".join(str(v) for v in values) if values else "0"
    return f"const long {name}[] = {{{vals}}};"


def emit_plan_c_source(exec_plan: ExecutionPlan,
                       strip: Optional[int] = None) -> str:
    """Render ``exec_plan`` as a self-contained C translation unit.

    Same module shape as :func:`emitpy.emit_plan_source`: per-processor
    fused functions, a barrier comment, per-processor peeled functions,
    then the exported metadata and the two entry points the worker pool
    (and the serial ``run`` wrapper) call.
    """
    from ..core.syncdeps import peel_predecessors
    from ..runtime.fastexec import _sorted_rects, vector_dims
    from ..runtime.parallel import fused_tile_boxes

    plan = exec_plan.plan
    nests = list(plan.seq)
    params = exec_plan.params
    nest_vdims = [vector_dims(nest) for nest in nests]
    layout = _array_layout(nests)
    signature = exec_plan.signature(strip=strip)
    nprocs = len(exec_plan.processors)

    lines: list[str] = [
        "/* Generated by repro.codegen.emitc — do not edit. */",
        f"/* codegen-version: {CODEGEN_VERSION} */",
        "#include <stdlib.h>",
        "",
        f'const char *REPRO_SIGNATURE = "{signature}";',
        f"const long REPRO_CODEGEN_VERSION = {CODEGEN_VERSION};",
        f"const long REPRO_NPROCS = {nprocs};",
        f'const char *REPRO_ARRAYS = "{layout.spec_string()}";',
        "",
    ]
    fused_names: list[str] = []
    peeled_names: list[str] = []
    fused_counts: list[int] = []
    peeled_counts: list[int] = []
    for p, proc in enumerate(exec_plan.processors):
        if strip is None:
            chunks = [(k, nests[k], tuple(proc.fused[k]))
                      for k in range(len(nests))]
        else:
            chunks = [(k, nests[k], box)
                      for k, box in fused_tile_boxes(proc, plan.depth, nests,
                                                     plan.shift, strip)]
        name = f"_fused_p{p}"
        src, count = _phase_function_c(name, chunks, params, nest_vdims,
                                       layout)
        lines.extend(src)
        lines.append("")
        fused_names.append(name)
        fused_counts.append(count)

        rect_chunks = [(rect.nest_idx, nests[rect.nest_idx], rect.ranges)
                       for rect in _sorted_rects(proc)]
        name = f"_peeled_p{p}"
        src, count = _phase_function_c(name, rect_chunks, params, nest_vdims,
                                       layout)
        lines.extend(src)
        lines.append("")
        peeled_names.append(name)
        peeled_counts.append(count)

    deps = peel_predecessors(exec_plan)
    offsets = [0]
    flat: list[int] = []
    for preds in deps:
        flat.extend(preds)
        offsets.append(len(flat))

    lines.append(_long_array("REPRO_FUSED_COUNTS", fused_counts))
    lines.append(_long_array("REPRO_PEELED_COUNTS", peeled_counts))
    lines.append("/* Point-to-point sync map (see emitpy PEEL_DEPS): the")
    lines.append("   predecessors of processor p occupy")
    lines.append("   REPRO_PEEL_DEPS[REPRO_PEEL_DEPS_OFF[p] ..")
    lines.append("   REPRO_PEEL_DEPS_OFF[p+1]). */")
    lines.append(_long_array("REPRO_PEEL_DEPS_OFF", offsets))
    lines.append(_long_array("REPRO_PEEL_DEPS", flat))
    lines.append("")
    dispatch = ", ".join(fused_names)
    lines.append(f"static int (*const _FUSED_FNS[])(double **, const long *) "
                 f"= {{{dispatch}}};")
    dispatch = ", ".join(peeled_names)
    lines.append(f"static int (*const _PEELED_FNS[])(double **, const long *)"
                 f" = {{{dispatch}}};")
    lines.append("")
    lines.append("long run_fused(long proc, double **arrays, "
                 "const long *dims) {")
    lines.append(f"{IND}if (proc < 0 || proc >= REPRO_NPROCS) return -1;")
    lines.append(f"{IND}if (_FUSED_FNS[proc](arrays, dims)) return -1;")
    lines.append(f"{IND}return REPRO_FUSED_COUNTS[proc];")
    lines.append("}")
    lines.append("")
    lines.append("/* ---- barrier (Sec. 3.4) ---- */")
    lines.append("")
    lines.append("long run_peeled(long proc, double **arrays, "
                 "const long *dims) {")
    lines.append(f"{IND}if (proc < 0 || proc >= REPRO_NPROCS) return -1;")
    lines.append(f"{IND}if (_PEELED_FNS[proc](arrays, dims)) return -1;")
    lines.append(f"{IND}return REPRO_PEELED_COUNTS[proc];")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The ctypes module wrapper.
# ---------------------------------------------------------------------------


@dataclass
class CJitModule:
    """A compiled-and-loaded native plan with the JitModule interface.

    ``run``/``run_fused``/``run_peeled`` take the same arguments as the
    Python :class:`~repro.codegen.emitpy.JitModule` entry points (the
    pool calls them interchangeably); pointers and concrete shapes are
    marshalled from the arrays dict on each call and memoized while the
    arrays stay put.
    """

    signature: str
    source: str
    path: str
    nprocs: int
    peel_deps: tuple[tuple[int, ...], ...]
    fused_counts: tuple[int, ...]
    peeled_counts: tuple[int, ...]
    array_spec: tuple[tuple[str, int], ...]
    kind: str = "cjit"
    _lib: object = field(default=None, repr=False)
    _args_cache: tuple = field(default=None, repr=False)

    def _marshal(self, arrays: MutableMapping[str, np.ndarray]):
        key = tuple(
            (name, arrays[name].ctypes.data, arrays[name].shape)
            for name, _ in self.array_spec
        )
        if self._args_cache is not None and self._args_cache[0] == key:
            return self._args_cache[1], self._args_cache[2]
        ptrs = (ctypes.POINTER(ctypes.c_double) * len(self.array_spec))()
        dims: list[int] = []
        for k, (name, ndim) in enumerate(self.array_spec):
            try:
                arr = arrays[name]
            except KeyError:
                raise CJitError(f"missing array {name!r}") from None
            if arr.dtype != np.float64 or not arr.flags.c_contiguous:
                raise CJitError(
                    f"array {name!r} must be C-contiguous float64 for the "
                    f"native tier"
                )
            if arr.ndim != ndim:
                raise CJitError(
                    f"array {name!r} has rank {arr.ndim}, plan expects {ndim}"
                )
            ptrs[k] = arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
            dims.extend(int(d) for d in arr.shape)
        dims_arr = (ctypes.c_long * max(1, len(dims)))(*dims)
        self._args_cache = (key, ptrs, dims_arr)
        return ptrs, dims_arr

    def run_fused(self, proc: int,
                  arrays: MutableMapping[str, np.ndarray]) -> int:
        ptrs, dims = self._marshal(arrays)
        count = self._lib.run_fused(proc, ptrs, dims)
        if count < 0:
            raise CJitError(f"native run_fused({proc}) failed")
        return count

    def run_peeled(self, proc: int,
                   arrays: MutableMapping[str, np.ndarray]) -> int:
        ptrs, dims = self._marshal(arrays)
        count = self._lib.run_peeled(proc, ptrs, dims)
        if count < 0:
            raise CJitError(f"native run_peeled({proc}) failed")
        return count

    def run(self, arrays: MutableMapping[str, np.ndarray]) -> dict:
        fused = 0
        for proc in range(self.nprocs):
            fused += self.run_fused(proc, arrays)
        # ---- barrier (Sec. 3.4) ----
        peeled = 0
        for proc in range(self.nprocs):
            peeled += self.run_peeled(proc, arrays)
        return {"fused_iterations": fused, "peeled_iterations": peeled}


def _read_long(lib, name: str) -> int:
    return int(ctypes.c_long.in_dll(lib, name).value)


def _read_longs(lib, name: str, count: int) -> tuple[int, ...]:
    return tuple(int(v) for v in (ctypes.c_long * count).in_dll(lib, name))


def load_native(path, expected_signature: Optional[str] = None,
                source: str = "") -> CJitModule:
    """dlopen a compiled plan and validate it against its expected shape.

    Raises :class:`CJitCompileError` for anything suspect — unloadable
    file, missing symbols, stale codegen version or signature mismatch —
    so callers can quarantine the entry and recompile.
    """
    path = Path(path)
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        raise CJitCompileError(f"cannot load {path.name}: {exc}") from exc
    try:
        signature = ctypes.c_char_p.in_dll(lib, "REPRO_SIGNATURE").value
        signature = signature.decode() if signature else ""
        version = _read_long(lib, "REPRO_CODEGEN_VERSION")
        nprocs = _read_long(lib, "REPRO_NPROCS")
        spec_raw = ctypes.c_char_p.in_dll(lib, "REPRO_ARRAYS").value
        spec_raw = spec_raw.decode() if spec_raw else ""
        if nprocs <= 0:
            raise CJitCompileError(f"{path.name}: bad NPROCS {nprocs}")
        fused_counts = _read_longs(lib, "REPRO_FUSED_COUNTS", nprocs)
        peeled_counts = _read_longs(lib, "REPRO_PEELED_COUNTS", nprocs)
        offsets = _read_longs(lib, "REPRO_PEEL_DEPS_OFF", nprocs + 1)
        flat = _read_longs(lib, "REPRO_PEEL_DEPS", max(1, offsets[-1]))
        lib.run_fused.argtypes = [
            ctypes.c_long, ctypes.POINTER(ctypes.POINTER(ctypes.c_double)),
            ctypes.POINTER(ctypes.c_long),
        ]
        lib.run_fused.restype = ctypes.c_long
        lib.run_peeled.argtypes = lib.run_fused.argtypes
        lib.run_peeled.restype = ctypes.c_long
    except CJitCompileError:
        raise
    except (ValueError, AttributeError) as exc:
        raise CJitCompileError(
            f"{path.name} lacks the native entry points/metadata "
            f"(produced by an older codegen?): {exc}"
        ) from exc
    if version != CODEGEN_VERSION:
        raise CJitCompileError(
            f"stale native module: codegen v{version}, expected "
            f"v{CODEGEN_VERSION}"
        )
    if expected_signature is not None and signature != expected_signature:
        raise CJitCompileError(
            f"stale native module: signature {signature[:12]}... does not "
            f"match expected {expected_signature[:12]}..."
        )
    array_spec = []
    try:
        if spec_raw:
            for item in spec_raw.split(","):
                name, ndim = item.split(":")
                array_spec.append((name, int(ndim)))
    except ValueError as exc:
        raise CJitCompileError(
            f"{path.name}: bad REPRO_ARRAYS {spec_raw!r}"
        ) from exc
    peel_deps = tuple(
        tuple(flat[offsets[p]:offsets[p + 1]]) for p in range(nprocs)
    )
    return CJitModule(
        signature=signature, source=source, path=str(path), nprocs=nprocs,
        peel_deps=peel_deps, fused_counts=fused_counts,
        peeled_counts=peeled_counts, array_spec=tuple(array_spec),
        _lib=lib,
    )


def compile_c(source: str, so_path, compiler: Optional[str] = None,
              c_path=None) -> Path:
    """Compile ``source`` into ``so_path`` (atomically) and return it.

    ``c_path`` optionally persists the intermediate ``.c`` next to the
    object for post-mortem reading; otherwise a scratch file is used.
    """
    if compiler is None:
        compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailable(
            "no C compiler found (set $REPRO_CC or install cc)"
        )
    so_path = Path(so_path)
    so_path.parent.mkdir(parents=True, exist_ok=True)
    scratch = None
    if c_path is None:
        scratch = tempfile.NamedTemporaryFile(
            mode="w", suffix=".c", dir=so_path.parent, delete=False,
            encoding="utf-8",
        )
        scratch.write(source)
        scratch.close()
        c_path = Path(scratch.name)
    else:
        c_path = Path(c_path)
        tmp = c_path.with_suffix(f".ctmp{os.getpid()}")
        tmp.write_text(source, encoding="utf-8")
        os.replace(tmp, c_path)
    tmp_so = so_path.with_suffix(f".sotmp{os.getpid()}")
    cmd = [compiler, *CFLAGS, "-o", str(tmp_so), str(c_path)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=COMPILE_TIMEOUT)
    except (OSError, subprocess.SubprocessError) as exc:
        raise CJitCompileError(f"{compiler} failed to run: {exc}") from exc
    finally:
        if scratch is not None:
            try:
                os.unlink(scratch.name)
            except OSError:
                pass
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip()[-500:]
        try:
            tmp_so.unlink()
        except OSError:
            pass
        raise CJitCompileError(
            f"{compiler} exited {proc.returncode}: {tail}"
        )
    os.replace(tmp_so, so_path)
    return so_path


def compile_plan_native(exec_plan: ExecutionPlan,
                        strip: Optional[int] = None,
                        compiler: Optional[str] = None) -> CJitModule:
    """Emit and compile ``exec_plan`` without touching any cache.

    Raises :class:`NativeUnavailable` when no compiler is present and
    :class:`CJitCompileError` when compilation fails — the ``cjit``
    backend converts both into a counted fallback to ``jit``.
    """
    if compiler is None:
        compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailable(
            "no C compiler found (set $REPRO_CC or install cc)"
        )
    signature = exec_plan.signature(strip=strip)
    source = emit_plan_c_source(exec_plan, strip=strip)
    with tempfile.TemporaryDirectory(prefix="repro-cjit-") as workdir:
        so_path = Path(workdir) / f"{signature}.so"
        compile_c(source, so_path, compiler=compiler)
        # dlopen keeps the mapping alive after the directory is removed.
        return load_native(so_path, expected_signature=signature,
                           source=source)
