"""Lower an :class:`~repro.core.execplan.ExecutionPlan` to numpy source.

The fast vectorized backend (:mod:`repro.runtime.fastexec`) interprets a
plan structurally on every call: it walks expression trees, rebuilds
broadcasting environments and re-renders slice objects box by box.  The
shift-and-peel construction of the paper is, however, explicitly a *code
generation* scheme (Figs. 11-16) — the plan is static, so all of that
interpretation can happen once.  This module renders a plan as a
self-contained Python module:

* one function per processor phase (``_fused_p<i>`` / ``_peeled_p<i>``),
  mirroring the SPMD structure — fused functions, a barrier comment, then
  peeled functions;
* every fused box and peeled rectangle rendered as *literal* numpy
  indexing: vectorizable dimensions (per the same
  :func:`~repro.runtime.fastexec.vector_dims` legality analysis the
  vector backend uses) become concrete slices or ``np.arange`` index
  grids with the plan's parameters folded into the constants, and the
  remaining dimensions become ordinary scalar ``for`` loops in original
  order;
* iteration counters precomputed as module constants, since box volumes
  are known at generation time.

The generated module is compiled with :func:`compile`/``exec`` into a
:class:`JitModule` whose ``run(arrays)`` callable returns the same
counters as :func:`~repro.runtime.fastexec.run_vector` and is bit-identical
to the interpreter whenever the plan is legal (it performs exactly the
whole-array operations the vector backend performs, in the same order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, MutableMapping, Optional, Sequence

import numpy as np

from ..core.execplan import ExecutionPlan
from ..ir.access import ArrayRef
from ..ir.expr import Affine
from ..ir.loop import LoopNest
from ..ir.stmt import BinOp, Const, Expr, Load, UnaryOp

#: Bumped whenever the shape of generated code changes; part of the plan
#: signature's on-disk directory name so stale cache trees are never read.
#: v3: modules additionally carry ``PEEL_DEPS`` — the per-processor
#: point-to-point predecessor map consumed by the mpjit pool.
CODEGEN_VERSION = 3

IND = "    "


class JitEmitError(RuntimeError):
    """The plan contains a construct the emitter cannot lower."""


class JitCompileError(RuntimeError):
    """Generated (or cached) source failed to compile or looks stale."""


@dataclass(frozen=True)
class JitModule:
    """A compiled plan: structural signature, source text and entry points.

    ``run`` executes the whole plan serially (every processor's fused
    function, the barrier point, every processor's peeled function).
    ``run_fused``/``run_peeled`` execute *one* processor's phase and return
    its iteration count — the entry points the ``mpjit`` worker pool calls
    so each OS process runs only its assigned processors between real
    barriers.  ``peel_deps[p]`` is the sorted tuple of processors whose
    fused phase must complete before processor ``p``'s peeled phase (see
    :mod:`repro.core.syncdeps`); the pool's point-to-point sync mode waits
    on exactly these instead of a global barrier."""

    signature: str
    source: str
    run: Callable[[MutableMapping[str, np.ndarray]], dict]
    run_fused: Callable[[int, MutableMapping[str, np.ndarray]], int]
    run_peeled: Callable[[int, MutableMapping[str, np.ndarray]], int]
    nprocs: int
    peel_deps: tuple[tuple[int, ...], ...]


# ---------------------------------------------------------------------------
# Rendering helpers: affine pieces with parameters folded in.
# ---------------------------------------------------------------------------


def _linear_src(const: int, terms: Sequence[tuple[str, int]]) -> str:
    """Render ``sum(c * v_var) + const`` as a Python expression."""
    parts: list[str] = []
    for var, coeff in terms:
        name = f"v_{var}"
        if coeff == 1:
            parts.append(name)
        elif coeff == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{coeff}*{name}")
    if const or not parts:
        parts.append(str(const))
    return " + ".join(parts)


class _BoxCtx:
    """Static rendering context for one (nest, box) pair.

    The codegen analogue of ``fastexec._BoxEnv``: parameters are concrete
    ints folded into subscript constants, scalar (non-vectorized) loop
    variables stay symbolic (they become generated ``for`` variables), and
    each vectorized dimension renders as a literal slice or an
    ``np.arange`` grid shaped for broadcasting.
    """

    def __init__(self, nest: LoopNest, box, vdims: tuple[int, ...],
                 params) -> None:
        self.nest = nest
        self.box = box
        self.vdims = vdims
        self.rank_of = {d: r for r, d in enumerate(vdims)}
        self.shape = tuple(box[d][1] - box[d][0] + 1 for d in vdims)
        self.params = params
        self.vvar_dim = {nest.loops[d].var: d for d in vdims}
        self.svars = {
            nest.loops[d].var for d in range(nest.depth) if d not in vdims
        }
        self.grids: set[int] = set()

    # -- subscript decomposition (static _subscript_index) ----------------

    def split(self, sub: Affine):
        """Fold ``sub`` into (const, scalar terms, vector-dim terms)."""
        const = sub.const
        terms: list[tuple[str, int]] = []
        vds: list[tuple[int, int]] = []
        for var, coeff in sub.coeffs:
            if var in self.vvar_dim:
                vds.append((self.vvar_dim[var], coeff))
            elif var in self.svars:
                terms.append((var, coeff))
            elif var in self.params:
                const += coeff * self.params[var]
            else:
                raise JitEmitError(
                    f"unknown name {var!r} in subscript of nest "
                    f"{self.nest.name!r}"
                )
        return const, terms, vds

    def part(self, sub: Affine):
        """One subscript as ('int'|'slice'|'grid', ...) like fastexec."""
        const, terms, vds = self.split(sub)
        if not vds:
            return ("int", const, terms, None)
        if len(vds) == 1 and vds[0][1] == 1:
            return ("slice", const, terms, vds[0][0])
        return ("grid", const, terms, tuple(vds))

    @staticmethod
    def _sliceable(parts) -> bool:
        if any(kind == "grid" for kind, *_ in parts):
            return False
        present = [d for kind, _c, _t, d in parts if kind == "slice"]
        return len(present) == len(set(present))

    # -- source fragments --------------------------------------------------

    def _grid_term(self, d: int, coeff: int) -> str:
        self.grids.add(d)
        return f"_g{d}" if coeff == 1 else f"{coeff}*_g{d}"

    def _fancy_src(self, part) -> str:
        """Render a part as a broadcasted integer index (advanced indexing)."""
        kind, const, terms, extra = part
        if kind == "int":
            return _linear_src(const, terms)
        pieces: list[str] = []
        if const or terms:
            pieces.append(_linear_src(const, terms))
        if kind == "slice":
            pieces.append(self._grid_term(extra, 1))
        else:
            for d, coeff in extra:
                pieces.append(self._grid_term(d, coeff))
        return " + ".join(pieces)

    def _slice_src(self, part) -> str:
        kind, const, terms, d = part
        assert kind == "slice"
        lo, hi = self.box[d]
        start = _linear_src(const + lo, terms)
        stop = _linear_src(const + hi + 1, terms)
        return f"{start}:{stop}"

    def ref_index(self, ref: ArrayRef):
        """Return (index source, slice ranks, sliceable flag)."""
        parts = [self.part(s) for s in ref.subscripts]
        if not self._sliceable(parts):
            idx = ", ".join(self._fancy_src(p) for p in parts)
            return idx, [], False
        srcs: list[str] = []
        ranks: list[int] = []
        for p in parts:
            if p[0] == "int":
                srcs.append(_linear_src(p[1], p[2]))
            else:
                srcs.append(self._slice_src(p))
                ranks.append(self.rank_of[p[3]])
        return ", ".join(srcs), ranks, True

    def load_src(self, ref: ArrayRef) -> tuple[str, str]:
        """Render a load; returns (source, kind) with kind one of
        'scalar' (a numpy scalar), 'view' (may share memory with the
        array) or 'array' (a fresh full-rank array)."""
        idx, ranks, sliceable = self.ref_index(ref)
        src = f"a_{ref.array}[{idx}]"
        if not sliceable:
            return src, "array"  # advanced indexing copies, full rank
        if not ranks:
            return src, "scalar"
        perm = sorted(range(len(ranks)), key=lambda a: ranks[a])
        if perm != list(range(len(ranks))):
            src += f".transpose({tuple(perm)})"
        have = sorted(ranks)
        if len(have) < len(self.vdims):
            expander = ", ".join(
                ":" if r in have else "None" for r in range(len(self.vdims))
            )
            src += f"[{expander}]"
        return src, "view"

    def expr_src(self, expr: Expr) -> tuple[str, str]:
        if isinstance(expr, Const):
            return repr(expr.value), "scalar"
        if isinstance(expr, Load):
            return self.load_src(expr.ref)
        if isinstance(expr, BinOp):
            left, lk = self.expr_src(expr.left)
            right, rk = self.expr_src(expr.right)
            kind = "scalar" if lk == rk == "scalar" else "array"
            return f"({left} {expr.op} {right})", kind
        if isinstance(expr, UnaryOp):
            src, k = self.expr_src(expr.operand)
            return f"(-{src})", "scalar" if k == "scalar" else "array"
        raise JitEmitError(f"cannot lower expression {expr!r}")

    def stmt_lines(self, stmt) -> list[str]:
        """Render one assignment over the box's vector dimensions."""
        rhs_src, rhs_kind = self.expr_src(stmt.rhs)
        # A bare load can be a view of the written array; copy it before
        # the store exactly like fastexec's may_share_memory guard.
        needs_copy = (
            rhs_kind == "view"
            and isinstance(stmt.rhs, Load)
            and stmt.rhs.ref.array == stmt.target.array
        )
        idx, ranks, sliceable = self.ref_index(stmt.target)
        target = f"a_{stmt.target.array}[{idx}]"
        if not sliceable:
            if needs_copy:
                return [f"_v = {rhs_src}.copy()", f"{target} = _v"]
            return [f"{target} = {rhs_src}"]
        if ranks and len(ranks) != len(self.vdims):  # pragma: no cover
            raise JitEmitError(
                f"write map of {stmt} does not span the vector dimensions"
            )
        if ranks == sorted(ranks) or rhs_kind == "scalar":
            value = f"{rhs_src}.copy()" if needs_copy else rhs_src
            return [f"{target} = {value}"]
        # Permuted target subscripts: broadcast to rank order, then put
        # the value's axes in subscript order (fastexec._store_box).
        lines = [f"_v = {rhs_src}"]
        if needs_copy:
            lines.append("_v = _v.copy()")
        lines.append(
            f"_v = np.broadcast_to(_v, {self.shape!r})"
            f".transpose({tuple(ranks)})"
        )
        lines.append(f"{target} = _v")
        return lines

    def grid_lines(self) -> list[str]:
        out = []
        for d in sorted(self.grids):
            lo, hi = self.box[d]
            shape = [1] * len(self.vdims)
            shape[self.rank_of[d]] = hi - lo + 1
            out.append(
                f"_g{d} = np.arange({lo}, {hi + 1}).reshape({tuple(shape)})"
            )
        return out


def _box_volume(box) -> int:
    total = 1
    for lo, hi in box:
        total *= max(0, hi - lo + 1)
    return total


def emit_box(nest: LoopNest, box, params,
             vdims: Optional[tuple[int, ...]] = None) -> list[str]:
    """Source lines executing every iteration of ``nest`` inside ``box``
    (the codegen analogue of :func:`~repro.runtime.fastexec.exec_box`):
    vectorized dimensions as literal indexing, the rest as scalar loops
    in lexicographic order.  Empty boxes produce no code."""
    if any(hi < lo for lo, hi in box):
        return []
    if vdims is None:
        from ..runtime.fastexec import vector_dims

        vdims = vector_dims(nest)
    sdims = [d for d in range(nest.depth) if d not in vdims]
    ctx = _BoxCtx(nest, box, vdims, params)
    stmt_blocks = [ctx.stmt_lines(st) for st in nest.body]
    out = ctx.grid_lines()
    depth = 0
    for d in sdims:
        lo, hi = box[d]
        var = nest.loops[d].var
        out.append(f"{IND * depth}for v_{var} in range({lo}, {hi + 1}):")
        depth += 1
    for block in stmt_blocks:
        out.extend(f"{IND * depth}{line}" for line in block)
    return out


# ---------------------------------------------------------------------------
# Whole-plan emission.
# ---------------------------------------------------------------------------


def _phase_function(name: str, chunks: list[tuple[int, LoopNest, tuple]],
                    params, nest_vdims) -> tuple[list[str], int]:
    """Emit one processor-phase function from (nest_idx, nest, box) chunks.

    Returns (source lines, iteration count).  Empty boxes are dropped; a
    phase with no work still gets a function so the run loop stays uniform.
    """
    body: list[str] = []
    count = 0
    arrays: set[str] = set()
    for nest_idx, nest, box in chunks:
        lines = emit_box(nest, box, params, vdims=nest_vdims[nest_idx])
        if not lines:
            continue
        count += _box_volume(box)
        arrays |= nest.arrays()
        body.append(f"{IND}# nest {nest_idx} box={box}")
        body.extend(f"{IND}{line}" for line in lines)
    header = [f"def {name}(A):"]
    binds = [f"{IND}a_{a} = A['{a}']" for a in sorted(arrays)]
    if not body:
        body = [f"{IND}pass"]
    return header + binds + body, count


def emit_plan_source(exec_plan: ExecutionPlan,
                     strip: Optional[int] = None) -> str:
    """Render ``exec_plan`` as a self-contained Python/numpy module.

    The module exposes ``run(arrays)`` with the vector backend's phase
    structure: every processor's fused function, then (after the barrier
    point) every processor's peeled function.  ``strip`` reproduces the
    interpreter's strip-mined tile order, one literal box per tile.
    """
    from ..runtime.fastexec import _sorted_rects, vector_dims
    from ..runtime.parallel import fused_tile_boxes

    plan = exec_plan.plan
    nests = list(plan.seq)
    params = exec_plan.params
    nest_vdims = [vector_dims(nest) for nest in nests]
    signature = exec_plan.signature(strip=strip)

    lines: list[str] = [
        '"""Generated by repro.codegen.emitpy — do not edit."""',
        f"# codegen-version: {CODEGEN_VERSION}",
        f'SIGNATURE = "{signature}"',
        "",
        "import numpy as np",
        "",
    ]
    fused_names: list[str] = []
    peeled_names: list[str] = []
    fused_counts: list[int] = []
    peeled_counts: list[int] = []
    for p, proc in enumerate(exec_plan.processors):
        if strip is None:
            chunks = [(k, nests[k], tuple(proc.fused[k]))
                      for k in range(len(nests))]
        else:
            chunks = [(k, nests[k], box)
                      for k, box in fused_tile_boxes(proc, plan.depth, nests,
                                                     plan.shift, strip)]
        name = f"_fused_p{p}"
        src, count = _phase_function(name, chunks, params, nest_vdims)
        lines.extend(src)
        lines.append("")
        fused_names.append(name)
        fused_counts.append(count)

        rect_chunks = [(rect.nest_idx, nests[rect.nest_idx], rect.ranges)
                       for rect in _sorted_rects(proc)]
        name = f"_peeled_p{p}"
        src, count = _phase_function(name, rect_chunks, params, nest_vdims)
        lines.extend(src)
        lines.append("")
        peeled_names.append(name)
        peeled_counts.append(count)

    from ..core.syncdeps import peel_predecessors

    lines.append(f"NPROCS = {len(exec_plan.processors)}")
    lines.append("# Point-to-point sync map: PEEL_DEPS[p] lists the")
    lines.append("# processors whose fused phase must complete before")
    lines.append("# processor p's peeled phase may start (flow, anti and")
    lines.append("# output dependences across the barrier point).")
    lines.append(f"PEEL_DEPS = {peel_predecessors(exec_plan)!r}")
    lines.append(f"FUSED_COUNTS = {tuple(fused_counts)!r}")
    lines.append(f"PEELED_COUNTS = {tuple(peeled_counts)!r}")
    lines.append(f"FUSED_ITERATIONS = {sum(fused_counts)}")
    lines.append(f"PEELED_ITERATIONS = {sum(peeled_counts)}")
    lines.append(f"_FUSED_FNS = ({', '.join(fused_names)},)")
    lines.append(f"_PEELED_FNS = ({', '.join(peeled_names)},)")
    lines.append("")
    # Per-processor entry points: what one SPMD worker executes on its
    # side of the barrier (the mpjit pool calls exactly these).
    lines.append("def run_fused(proc, A):")
    lines.append(f"{IND}_FUSED_FNS[proc](A)")
    lines.append(f"{IND}return FUSED_COUNTS[proc]")
    lines.append("")
    lines.append("def run_peeled(proc, A):")
    lines.append(f"{IND}_PEELED_FNS[proc](A)")
    lines.append(f"{IND}return PEELED_COUNTS[proc]")
    lines.append("")
    lines.append("def run(A):")
    for name in fused_names:
        lines.append(f"{IND}{name}(A)")
    lines.append(f"{IND}# ---- barrier (Sec. 3.4) ----")
    for name in peeled_names:
        lines.append(f"{IND}{name}(A)")
    lines.append(
        f"{IND}return {{'fused_iterations': FUSED_ITERATIONS, "
        f"'peeled_iterations': PEELED_ITERATIONS}}"
    )
    lines.append("")
    return "\n".join(lines)


def compile_source(source: str,
                   expected_signature: Optional[str] = None) -> JitModule:
    """Compile generated source into a :class:`JitModule`.

    Raises :class:`JitCompileError` when the source does not parse, lacks
    the expected entry points, or carries a signature different from
    ``expected_signature`` (a stale or corrupted cache entry).
    """
    try:
        tag = (expected_signature or "inline")[:12]
        code = compile(source, f"<repro-jit {tag}>", "exec")
        namespace: dict = {}
        exec(code, namespace)  # noqa: S102 - our own generated source
    except JitCompileError:
        raise
    except Exception as exc:
        raise JitCompileError(f"generated module failed to load: {exc}") from exc
    signature = namespace.get("SIGNATURE")
    run = namespace.get("run")
    run_fused = namespace.get("run_fused")
    run_peeled = namespace.get("run_peeled")
    nprocs = namespace.get("NPROCS")
    peel_deps = namespace.get("PEEL_DEPS")
    if not isinstance(signature, str) or not callable(run):
        raise JitCompileError("generated module lacks SIGNATURE/run")
    if (not callable(run_fused) or not callable(run_peeled)
            or not isinstance(nprocs, int)):
        raise JitCompileError(
            "generated module lacks the per-processor entry points "
            "(run_fused/run_peeled/NPROCS) — produced by an older codegen"
        )
    if (not isinstance(peel_deps, tuple) or len(peel_deps) != nprocs
            or not all(isinstance(d, tuple) for d in peel_deps)):
        raise JitCompileError(
            "generated module lacks the point-to-point sync map "
            "(PEEL_DEPS) — produced by an older codegen"
        )
    if expected_signature is not None and signature != expected_signature:
        raise JitCompileError(
            f"stale generated module: signature {signature[:12]}... does "
            f"not match expected {expected_signature[:12]}..."
        )
    return JitModule(signature=signature, source=source, run=run,
                     run_fused=run_fused, run_peeled=run_peeled,
                     nprocs=nprocs, peel_deps=peel_deps)


def compile_plan(exec_plan: ExecutionPlan,
                 strip: Optional[int] = None) -> JitModule:
    """Emit and compile ``exec_plan`` without touching any cache."""
    return compile_source(
        emit_plan_source(exec_plan, strip=strip),
        expected_signature=exec_plan.signature(strip=strip),
    )
