"""Executable direct-method code generation (paper Fig. 11(a)).

The direct method folds all nests into a single fused loop body: shifted
statements get their subscripts rewritten (``i -> i - shift``) and a guard
``i >= start + shift`` so the first iterations of lagging nests are
skipped; the iterations shifted past the block end run in an epilogue.
Strip-mining is the paper's preferred implementation (Sec. 3.4), but the
direct method is implemented — and tested for equivalence — because the
paper presents both and the comparison is part of the design space.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping

import numpy as np

from ..core.derive import ShiftPeelPlan
from ..ir.expr import Affine, BoundExpr
from .cir import (
    CodeBarrier,
    CodeBlock,
    CodeFor,
    CodeIf,
    CodeNode,
    CodeStmt,
    Compare,
    block,
    run_code,
)


def _const(value: int) -> BoundExpr:
    return BoundExpr.affine(Affine.constant(value))


def direct_fused_code(
    plan: ShiftPeelPlan, params: Mapping[str, int]
) -> CodeNode:
    """Whole-domain direct-method code (serial legality form, depth 1).

    Produces: one fused loop over positions with guarded, subscript-shifted
    statements, then the epilogue loops executing iterations moved out by
    shifting — exactly Fig. 11(a)'s shape with concrete bounds.
    """
    if plan.depth != 1:
        raise ValueError("the direct method is implemented for depth-1 plans")
    var = plan.dims[0].var

    lo = min(nest.loops[0].lower.eval(params) for nest in plan.seq)
    hi = max(nest.loops[0].upper.eval(params) for nest in plan.seq)

    guarded: list[CodeNode] = []
    for k, nest in enumerate(plan.seq):
        shift = plan.shift(k, 0)
        nlo, nhi = nest.loops[0].bounds(params)
        body_stmts: list[CodeNode] = []
        for st in nest.body:
            shifted = st.shift_var(var, -shift) if shift else st
            body_stmts.append(CodeStmt(shifted))
        body: CodeNode = block(*body_stmts)
        # Inner (non-fused) loops keep their original ranges.
        for lp in reversed(nest.loops[1:]):
            ilo, ihi = lp.bounds(params)
            body = CodeFor(lp.var, _const(ilo), _const(ihi), body)
        # Guard: this nest is live for positions [nlo+shift, nhi+shift].
        if nlo + shift > lo:
            body = CodeIf(
                Compare(Affine.var(var), ">=", Affine.constant(nlo + shift)), body
            )
        if nhi + shift < hi:
            body = CodeIf(
                Compare(Affine.var(var), "<=", Affine.constant(nhi + shift)), body
            )
        guarded.append(body)
    fused = CodeFor(var, _const(lo), _const(hi), block(*guarded), parallel=True)

    # Epilogue: iterations of shifted nests beyond the last position.
    epilogue: list[CodeNode] = []
    for k, nest in enumerate(plan.seq):
        shift = plan.shift(k, 0)
        nlo, nhi = nest.loops[0].bounds(params)
        if shift == 0 or nhi + shift <= hi:
            continue
        start = max(nlo, hi - shift + 1)
        body: CodeNode = block(*(CodeStmt(st) for st in nest.body))
        for lp in reversed(nest.loops[1:]):
            ilo, ihi = lp.bounds(params)
            body = CodeFor(lp.var, _const(ilo), _const(ihi), body)
        epilogue.append(CodeFor(var, _const(start), _const(nhi), body))
    if epilogue:
        return CodeBlock((fused, CodeBarrier("shifted tail"), *epilogue))
    return fused


def run_direct(
    plan: ShiftPeelPlan,
    params: Mapping[str, int],
    arrays: MutableMapping[str, np.ndarray],
) -> None:
    """Execute the direct-method code (serial fused semantics)."""
    run_code(direct_fused_code(plan, params), dict(params), arrays)
