"""Quickstart: fuse the paper's running example (Fig. 9) end to end.

Parses a small loop program from DSL source, derives the shift-and-peel
transformation, prints the generated strip-mined code (paper Fig. 12),
executes both versions and verifies they agree, and asks the profitability
model whether fusion pays off on a simulated Convex SPP-1000.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    build_execution_plan,
    evaluate_profitability,
    fuse_sequence,
)
from repro.lang import parse_program
from repro.lang.emit import emit_stripmined
from repro.machine import convex_spp1000
from repro.runtime import checksum, get_backend, run_parallel, run_sequence_serial

SOURCE = """
param n
real a(n+1), b(n+1), c(n+1), d(n+1)
doall i = 2, n-1
    a[i] = b[i]
end do
doall i = 2, n-1
    c[i] = a[i+1] + a[i-1]
end do
doall i = 2, n-1
    d[i] = c[i+1] + c[i-1]
end do
"""


def main() -> None:
    program = parse_program(SOURCE, name="fig9")
    seq = program.sequences[0]

    # 1. Derive shifts and peels from the dependence chains (Figs. 8-10).
    result = fuse_sequence(seq, program.params)
    print("derived plan:")
    print(result.plan.describe())

    # 2. Emit the transformed source (strip-mined form, Fig. 12).
    print("\ntransformed code:")
    print(emit_stripmined(result.plan))

    # 3. Execute original vs fused-parallel and compare.
    params = {"n": 64}
    rng = np.random.default_rng(0)
    base = {name: rng.random(65) for name in "abcd"}

    oracle = {k: v.copy() for k, v in base.items()}
    run_sequence_serial(seq, params, oracle)

    exec_plan = build_execution_plan(result.plan, params, num_procs=4)
    fused = {k: v.copy() for k, v in base.items()}
    stats = run_parallel(exec_plan, fused, interleave="random", rng=rng)
    ok = all(np.allclose(oracle[k], fused[k]) for k in base)
    print(f"\n4-processor fused execution matches serial oracle: {ok}")
    print(f"  fused iterations: {stats['fused_iterations']}, "
          f"peeled after barrier: {stats['peeled_iterations']}")

    # 3b. The same plan through the fast vectorized backend.  verify=True
    # cross-checks bit-identically against the interpreter reference.
    fast = {k: v.copy() for k, v in base.items()}
    get_backend("vector").run(exec_plan, fast, verify=True)
    same = all(np.array_equal(fused[k], fast[k]) for k in base)
    print(f"vector backend bit-identical to interpreter: {same} "
          f"(checksum {checksum(fast)})")

    # 4. Should we fuse?  (Paper Sec. 6: profitability needs data vs cache.)
    machine = convex_spp1000()
    for big_n in (1024, 2_000_000):
        advice = evaluate_profitability(
            program, result.plan, {"n": big_n}, num_procs=4,
            cache_bytes=machine.cache.capacity_bytes,
        )
        print(f"\nprofitability on {machine.name} at n={big_n}, P=4:\n  {advice}")


if __name__ == "__main__":
    main()
