"""Multidimensional shift-and-peel: the Jacobi pair of paper Figs. 15/16.

Fuses the 5-point relaxation with its copy-back in *both* dimensions,
prints the SPMD code with the boundary-case prologue, runs the fused loop
on a 4x4 simulated processor grid under an adversarial interleaving, and
reports the cache-miss effect of 2-D fusion.

Run:  python examples/jacobi_2d.py
"""

import numpy as np

from repro.core import build_execution_plan, fuse_sequence, verify_coverage
from repro.kernels import jacobi
from repro.lang.emit import emit_spmd
from repro.machine import (
    convex_spp1000,
    measure_fused,
    measure_unfused,
)
from repro.partition import partitioned_layout_from_decls
from repro.runtime import get_backend, run_parallel, run_sequence_serial


def main() -> None:
    program = jacobi.program()
    seq = program.sequences[0]
    result = fuse_sequence(seq, program.params, depth=2)

    print("derived 2-D shift/peel:")
    for k in range(len(seq)):
        print(f"  L{k + 1}: shift={result.plan.shift_vector(k)} "
              f"peel={result.plan.peel_vector(k)}")

    print("\nSPMD code (Fig. 16 form):")
    print(emit_spmd(result.plan))

    # Correctness on a 4x4 grid with random interleaving.
    params = {"n": 35}
    rng = np.random.default_rng(1)
    base = {name: rng.random((36, 36)) for name in ("a", "b")}
    oracle = {k: v.copy() for k, v in base.items()}
    run_sequence_serial(seq, params, oracle)

    plan = build_execution_plan(result.plan, params, grid_shape=(4, 4))
    assert verify_coverage(plan), "every iteration executed exactly once"
    fused = {k: v.copy() for k, v in base.items()}
    run_parallel(plan, fused, interleave="random", strip=4, rng=rng)
    ok = all(np.allclose(oracle[k], fused[k]) for k in base)
    print(f"\n4x4-grid fused execution matches serial oracle: {ok}")

    # The vectorized backend runs the identical plan bit-for-bit.
    fast = {k: v.copy() for k, v in base.items()}
    get_backend("vector").run(plan, fast, verify=True)
    assert all(np.array_equal(fused[k], fast[k]) for k in base)
    print("vector backend verified bit-identical on the 4x4 plan")
    print(f"peeled iterations (executed after one barrier): "
          f"{plan.total_peeled()} of {plan.total_fused() + plan.total_peeled()}")

    # Locality: misses with and without fusion on a scaled Convex.
    machine = convex_spp1000().scaled(4)
    sim_params = {"n": 258}
    layout = partitioned_layout_from_decls(
        program.arrays, sim_params, machine.cache
    ).layout
    sim_plan = build_execution_plan(result.plan, sim_params, grid_shape=(1, 1))
    unf = measure_unfused(seq, sim_params, layout, machine, 1)
    fus = measure_fused(sim_plan, layout, machine, strip=48)
    print(f"\nsimulated misses at n=258 on {machine.name}: "
          f"unfused={unf.misses}, fused={fus.misses} "
          f"({unf.misses / fus.misses:.2f}x fewer)")


if __name__ == "__main__":
    main()
