"""Domain example: the qgbox ocean-model kernel (calc) on a simulated
Convex SPP-1000.

Reproduces the workflow of the paper's Sec. 5 evaluation for one kernel:
derive the transformation, lay arrays out with cache partitioning, sweep
processor counts on the machine model, and compare against the
profitability predictor's advice.

Run:  python examples/ocean_model.py
"""

from repro.core import evaluate_profitability
from repro.experiments import setup_kernel
from repro.machine import convex_spp1000


def main() -> None:
    machine = convex_spp1000()
    exp = setup_kernel("calc", machine, dims_div=3, params={"n": 460})

    print(f"kernel: {exp.info.description}")
    print(f"machine: {exp.machine.name} "
          f"(cache {exp.machine.cache.capacity_bytes // 1024} KB, "
          f"{exp.machine.cache.associativity}-way)")
    print(f"array size: {exp.params['n'] - 1}^2 doubles x "
          f"{len(exp.program.arrays)} arrays")
    print(f"strip size from partition: {exp.strip}")
    print(f"derived shifts: {[exp.fusion.plan.shift(k, 0) for k in range(5)]}")
    print(f"derived peels:  {[exp.fusion.plan.peel(k, 0) for k in range(5)]}")
    print(f"legal processor ceiling (Theorem 1): {exp.max_procs()}")

    print("\nspeedup sweep (relative to unfused on 1 processor):")
    print(f"{'P':>3}  {'unfused':>8}  {'fused':>8}  {'improvement':>11}  advice")
    for point in exp.curves([1, 2, 4, 8, 12, 16]):
        advice = evaluate_profitability(
            exp.program,
            exp.fusion.plan,
            exp.params,
            point.num_procs,
            exp.machine.cache.capacity_bytes,
        )
        verdict = "fuse" if advice.profitable else "keep original"
        print(
            f"{point.num_procs:3d}  {point.speedup_unfused:8.2f}  "
            f"{point.speedup_fused:8.2f}  "
            f"{100 * (point.improvement - 1):+10.1f}%  {verdict}"
        )

    print("\nThe improvement shrinks as each processor's share of the data "
          "approaches its cache\n(the paper's central profitability "
          "observation, Figs. 22-24).")


if __name__ == "__main__":
    main()
