"""Source-to-source compiler usage: transform loop programs as text.

Shows the three code-generation styles (direct, strip-mined, SPMD), the
cache-partitioned memory layout the compiler would emit for the arrays,
and the comparison against the alignment/replication baseline of prior
work (Callahan; Appelbe & Smith) — including what it must replicate.

Run:  python examples/source_to_source.py
"""

from repro.baselines import derive_alignment
from repro.cachesim import CacheConfig
from repro.ir import format_sequence
from repro.lang import parse_program, transform_source
from repro.partition import partitioned_layout_from_decls

SOURCE = """
param n
real a(n), b(n), c(n), d(n), e(n)
doall i = 4, n-4
    b[i] = a[i-1] + a[i+1]
end do
doall i = 4, n-4
    c[i] = b[i+2] - b[i-2]
end do
doall i = 4, n-4
    d[i] = c[i+1] + e[i]
end do
"""


def main() -> None:
    program = parse_program(SOURCE, name="smooth")
    print("original program:")
    original = format_sequence(program.sequences[0])
    print(original)

    print("\n--- strip-mined shift-and-peel (Fig. 12 style) ---")
    print(transform_source(SOURCE, style="stripmined"))

    print("\n--- direct method (Fig. 11(a) style) ---")
    print(transform_source(SOURCE, style="direct"))

    # The memory layout a compiler would emit alongside the fused loop.
    cache = CacheConfig(capacity_bytes=64 * 1024, line_bytes=64)
    layout = partitioned_layout_from_decls(program.arrays, {"n": 1024}, cache)
    print("\ncache-partitioned layout (gaps between arrays, Fig. 19):")
    print(f"  partition size: {layout.partition_bytes} bytes")
    for rec in layout.assignments:
        pl = layout.layout[rec.array]
        print(f"  {rec.array}: start={pl.start:8d}  partition {rec.partition}"
              f"  gap inserted {rec.gap_bytes:6d} B")
    print(f"  total gap overhead: {layout.gap_overhead_bytes} bytes")

    # What would prior art have to do?
    alignment = derive_alignment(program)
    print("\nalignment/replication baseline would need:")
    print(f"  alignment offsets: {alignment.offsets}")
    print(f"  replicated arrays: {alignment.replicated_arrays or 'none'}")
    print(f"  replicated statements: {alignment.replicated_statements}")
    print("shift-and-peel needs no replication at all (Sec. 3.5).")


if __name__ == "__main__":
    main()
