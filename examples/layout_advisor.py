"""Data-layout decisions: compatibility, partitioning, strips, overheads.

Walks the compiler's cache-partitioning decision (paper Sec. 4) for LL18:
check that all references are compatible (same access matrices), lay the
nine arrays into distinct cache partitions with the greedy algorithm,
derive the strip size, and compare the memory overhead against padding.
Then shows the miss *classification* proving partitioning removes exactly
the conflict misses.

Run:  python examples/layout_advisor.py
"""

from repro.cachesim import classify_misses
from repro.experiments import setup_kernel
from repro.kernels import ll18
from repro.machine import convex_spp1000, unfused_proc_trace
from repro.partition import plan_layout


def main() -> None:
    program = ll18.program()
    machine = convex_spp1000().scaled(4)
    params = {"n": 127}  # power-of-two extents: the conflict worst case

    plan = plan_layout(program, program.sequences[0], params, machine.cache)
    print("layout advisor decision for LL18 "
          f"({machine.cache.capacity_bytes // 1024} KB direct-mapped cache):")
    print(plan.describe())

    # Miss classification: contiguous vs partitioned, unfused sweep.
    print("\nmiss classification (3-C) of one full sweep:")
    for kind in ("contiguous", "partitioned"):
        exp = setup_kernel(
            "ll18", convex_spp1000(), 4, layout_kind=kind, params=params
        )
        trace = unfused_proc_trace(exp.seq, exp.params, exp.layout)
        breakdown = classify_misses(trace, exp.machine.cache)
        print(f"  {kind:12s}: {breakdown}")
    print("\nPartitioning eliminates the conflict bucket and leaves the "
          "cold/capacity\nmisses — which no layout can remove — untouched.")


if __name__ == "__main__":
    main()
