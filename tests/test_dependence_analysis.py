"""Sequence-level dependence analysis and the chain multigraph."""

import pytest

from repro.dependence import (
    DepKind,
    NonUniformDependenceError,
    analyze_sequence,
    carried_dependences,
    classify,
    multigraphs_per_dim,
    parallel_loops_sound,
)
from repro.dependence.multigraph import DependenceChainMultigraph
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load

i = Affine.var("i")
n = Affine.var("n")


class TestClassification:
    def test_kinds(self):
        assert classify(True, False) == DepKind.FLOW
        assert classify(False, True) == DepKind.ANTI
        assert classify(True, True) == DepKind.OUTPUT

    def test_read_read_rejected(self):
        with pytest.raises(ValueError):
            classify(False, False)


class TestFig9Analysis:
    def test_edges(self, fig9_sequence):
        summary = analyze_sequence(fig9_sequence, ("n",))
        l1l2 = summary.between(0, 1)
        assert sorted(d.distance[0] for d in l1l2) == [-1, 1]
        assert all(d.kind == DepKind.FLOW for d in l1l2)
        l2l3 = summary.between(1, 2)
        assert sorted(d.distance[0] for d in l2l3) == [-1, 1]
        assert summary.between(0, 2) == ()

    def test_direction_properties(self, fig9_sequence):
        summary = analyze_sequence(fig9_sequence, ("n",))
        assert len(summary.backward()) == 2
        assert len(summary.forward()) == 2
        for dep in summary.backward():
            assert dep.direction()[0] == -1

    def test_counters(self, fig9_sequence):
        summary = analyze_sequence(fig9_sequence, ("n",))
        assert summary.pairs_tested > 0
        assert summary.edge_count() == 4


class TestFig13Analysis:
    def test_both_kinds(self, fig13_sequence):
        summary = analyze_sequence(fig13_sequence, ("n",))
        kinds = {(d.kind, d.distance[0]) for d in summary.deps}
        assert (DepKind.FLOW, 1) in kinds  # a: L1 writes, L2 reads a[i-1]
        assert (DepKind.ANTI, -1) in kinds  # b: L1 reads b[i-1], L2 writes


class TestNonUniform:
    def test_strict_raises(self):
        l1 = LoopNest(
            (Loop.make("i", 2, n - 1),), (assign("a", i * 2, 1.0),)
        )
        l2 = LoopNest(
            (Loop.make("i", 2, n - 1),), (assign("c", i, load("a", i)),)
        )
        with pytest.raises(NonUniformDependenceError):
            analyze_sequence(LoopSequence((l1, l2)), ("n",))

    def test_lenient_skips(self):
        l1 = LoopNest(
            (Loop.make("i", 2, n - 1),), (assign("a", i * 2, 1.0),)
        )
        l2 = LoopNest(
            (Loop.make("i", 2, n - 1),), (assign("c", i, load("a", i)),)
        )
        summary = analyze_sequence(LoopSequence((l1, l2)), ("n",), strict=False)
        assert summary.deps == ()


class TestIntraNest:
    def test_stencil_read_is_carried(self):
        nest = LoopNest(
            (Loop.make("i", 2, n - 1),),
            (assign("a", i, load("a", i - 1)),),
        )
        carried = carried_dependences(nest)
        assert any(d != (0,) for _, d in carried)
        assert not parallel_loops_sound(nest)

    def test_independent_nest_sound(self):
        nest = LoopNest(
            (Loop.make("i", 2, n - 1),),
            (assign("a", i, load("b", i)),),
        )
        assert parallel_loops_sound(nest)

    def test_kernel_doalls_sound(self):
        from repro.kernels import all_kernels

        for info in all_kernels():
            for seq in info.program().sequences:
                for nest in seq:
                    assert parallel_loops_sound(nest), (info.name, nest.name)


class TestMultigraph:
    def test_reductions(self, fig9_sequence):
        summary = analyze_sequence(fig9_sequence, ("n",))
        mg = DependenceChainMultigraph.from_summary(summary, 0, 3)
        assert mg.edge_count() == 4
        mins = {(e.src, e.dst): e.weight for e in mg.reduce_min().edges}
        assert mins == {(0, 1): -1, (1, 2): -1}
        maxs = {(e.src, e.dst): e.weight for e in mg.reduce_max().edges}
        assert maxs == {(0, 1): 1, (1, 2): 1}

    def test_per_dim(self, jacobi_sequence):
        summary = analyze_sequence(jacobi_sequence, ("n",))
        graphs = multigraphs_per_dim(summary, 2)
        assert len(graphs) == 2
        for g in graphs:
            weights = sorted(e.weight for e in g.between(0, 1))
            assert -1 in weights and 1 in weights

    def test_topological_order_is_program_order(self, fig9_sequence):
        summary = analyze_sequence(fig9_sequence, ("n",))
        mg = DependenceChainMultigraph.from_summary(summary, 0, 3)
        assert list(mg.reduce_min().topological_order()) == [0, 1, 2]

    def test_filter_multigraph_size(self):
        from repro.kernels import filterk

        prog = filterk.program()
        summary = analyze_sequence(prog.sequences[0], prog.params, depth=1)
        mg = DependenceChainMultigraph.from_summary(summary, 0, 10)
        # The real filter subroutine yields 149 edges (Sec. 5); the model
        # keeps the same chain structure with a leaner body.
        assert mg.edge_count() >= 20
