"""Cache simulator: geometry, direct-mapped, 2-way, general LRU, warm state."""

import numpy as np
import pytest

from repro.cachesim import (
    Cache,
    CacheConfig,
    CacheStats,
    simulate,
    simulate_2way_lru,
    simulate_direct_mapped,
)


class TestConfig:
    def test_geometry(self):
        cfg = CacheConfig(1024, 64, 2)
        assert cfg.num_lines == 16
        assert cfg.num_sets == 8
        assert cfg.way_bytes == 512

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 64, 1)
        with pytest.raises(ValueError):
            CacheConfig(0, 64, 1)

    def test_scaled(self):
        cfg = CacheConfig(1024 * 1024, 64, 2).scaled(3)
        assert cfg.capacity_bytes % 128 == 0
        assert cfg.capacity_bytes <= 1024 * 1024 // 3

    def test_map_address(self):
        cfg = CacheConfig(1024, 64, 1)
        assert cfg.map_address(1024 + 5) == 5


class TestDirectMapped:
    CFG = CacheConfig(256, 64, 1)  # 4 lines

    def test_cold_misses(self):
        addrs = np.array([0, 64, 128, 192], dtype=np.int64)
        stats = simulate_direct_mapped(addrs, self.CFG)
        assert stats.misses == 4

    def test_hits_within_line(self):
        addrs = np.array([0, 8, 16, 63], dtype=np.int64)
        assert simulate_direct_mapped(addrs, self.CFG).misses == 1

    def test_conflict_thrashing(self):
        # Two addresses mapping to the same set alternate: always miss.
        addrs = np.array([0, 256, 0, 256, 0, 256], dtype=np.int64)
        assert simulate_direct_mapped(addrs, self.CFG).misses == 6

    def test_reuse_hit(self):
        addrs = np.array([0, 64, 0, 64], dtype=np.int64)
        assert simulate_direct_mapped(addrs, self.CFG).misses == 2

    def test_empty_trace(self):
        stats = simulate_direct_mapped(np.empty(0, dtype=np.int64), self.CFG)
        assert stats.accesses == 0 and stats.misses == 0

    def test_stats_arithmetic(self):
        s = CacheStats(10, 4) + CacheStats(5, 1)
        assert (s.accesses, s.misses, s.hits) == (15, 5, 10)
        assert s.miss_rate == pytest.approx(1 / 3)


class TestTwoWay:
    CFG = CacheConfig(256, 64, 2)  # 2 sets, 2 ways

    def test_two_conflicting_lines_coexist(self):
        addrs = np.array([0, 128, 0, 128, 0, 128], dtype=np.int64)
        # Both map to set 0; 2-way keeps both: 2 cold misses only.
        assert simulate_2way_lru(addrs, self.CFG).misses == 2

    def test_three_way_thrash(self):
        addrs = np.array([0, 128, 256, 0, 128, 256], dtype=np.int64)
        # LRU with 3 distinct tags in a 2-way set: all miss.
        assert simulate_2way_lru(addrs, self.CFG).misses == 6

    def test_lru_order_matters(self):
        # 0, 128, 0, 256: the 256 evicts 128 (LRU), not 0.
        addrs = np.array([0, 128, 0, 256, 0], dtype=np.int64)
        assert simulate_2way_lru(addrs, self.CFG).misses == 3

    def test_requires_assoc2(self):
        with pytest.raises(ValueError):
            simulate_2way_lru(np.array([0]), CacheConfig(256, 64, 4))


def _reference_lru(addrs, config):
    """Straightforward per-access LRU simulation (test oracle)."""
    lines = addrs // config.line_bytes
    sets = lines % config.num_sets
    tags = lines // config.num_sets
    state: dict[int, list[int]] = {}
    misses = 0
    for s, t in zip(sets.tolist(), tags.tolist()):
        ways = state.setdefault(s, [])
        if t in ways:
            ways.remove(t)
            ways.insert(0, t)
        else:
            misses += 1
            ways.insert(0, t)
            if len(ways) > config.associativity:
                ways.pop()
    return misses


class TestAgainstReference:
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_random_traces(self, assoc):
        cfg = CacheConfig(2048, 64, assoc)
        rng = np.random.default_rng(assoc)
        for _ in range(12):
            n = int(rng.integers(1, 2000))
            addrs = rng.integers(0, 8192, n).astype(np.int64)
            assert simulate(addrs, cfg).misses == _reference_lru(addrs, cfg)

    def test_skewed_traces(self):
        cfg = CacheConfig(1024, 64, 2)
        rng = np.random.default_rng(9)
        # Hot-set heavy traces stress the collapse logic.
        addrs = (rng.integers(0, 4, 5000) * 512).astype(np.int64)
        assert simulate(addrs, cfg).misses == _reference_lru(addrs, cfg)


class TestStatefulCache:
    def test_warm_second_pass(self):
        cfg = CacheConfig(512, 64, 1)
        cache = Cache(cfg)
        trace = np.arange(0, 512, 64, dtype=np.int64)
        first = cache.access_trace(trace)
        second = cache.access_trace(trace)
        assert first.misses == 8
        assert second.misses == 0
        assert cache.stats.accesses == 16

    def test_reset(self):
        cfg = CacheConfig(512, 64, 1)
        cache = Cache(cfg)
        cache.access_trace(np.array([0], dtype=np.int64))
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access_trace(np.array([0], dtype=np.int64)).misses == 1

    def test_matches_functional_on_concat(self):
        cfg = CacheConfig(1024, 64, 2)
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4096, 500).astype(np.int64)
        b = rng.integers(0, 4096, 500).astype(np.int64)
        cache = Cache(cfg)
        total = cache.access_trace(a).misses + cache.access_trace(b).misses
        assert total == simulate(np.concatenate((a, b)), cfg).misses
