"""Layout advisor and the consolidated reproduction report."""

import pytest

from repro.ir import Affine, Loop, LoopNest, assign, load
from repro.kernels import get_kernel
from repro.machine import convex_spp1000
from repro.partition import plan_layout

i = Affine.var("i")
j = Affine.var("j")
n = Affine.var("n")


class TestLayoutAdvisor:
    def _plan(self, kernel="ll18", params=None, cache_scale=4):
        info = get_kernel(kernel)
        program = info.program()
        machine = convex_spp1000().scaled(cache_scale)
        return plan_layout(
            program,
            program.sequences[0],
            params or {"n": 127},
            machine.cache,
        )

    def test_ll18_fully_compatible(self):
        plan = self._plan()
        assert plan.fully_compatible
        assert plan.conflict_free
        assert plan.strip >= 1
        assert len(plan.layout.assignments) == 9

    def test_overhead_comparison(self):
        plan = self._plan()
        # Both overheads exist; gaps are bounded by n_arrays * way size.
        assert plan.gap_overhead_bytes >= 0
        assert plan.padding_overhead_bytes > 0

    def test_describe(self):
        text = self._plan().describe()
        assert "partition size" in text
        assert "conflict-free" in text

    def test_incompatible_pair_reported(self):
        from repro.ir import ArrayDecl, single_sequence_program

        nest = LoopNest(
            (Loop.make("j", 1, n - 2), Loop.make("i", 1, n - 2, parallel=False)),
            (
                assign("a", (j, i), load("b", i, j)),  # transposed read
            ),
        )
        prog = single_sequence_program(
            [nest],
            [ArrayDecl.make("a", n, n), ArrayDecl.make("b", n, n)],
            ("n",),
        )
        plan = plan_layout(
            prog, prog.sequences[0], {"n": 64},
            convex_spp1000().scaled(16).cache,
        )
        assert not plan.fully_compatible
        assert any("permute" in r for r in plan.repairs)
        assert plan.conflict_free  # a repair exists

    def test_strip_respects_partition(self):
        plan = self._plan()
        row_bytes = 125 * 8  # inner trip at n=127 (bounds 2..n-1)
        assert plan.strip * row_bytes <= plan.layout.partition_bytes


class TestReport:
    @pytest.mark.slow
    def test_quick_report_all_claims_hold(self):
        from repro.experiments import generate_report

        report = generate_report(quick=True)
        failed = [
            (s.name, claim)
            for s in report.sections
            for claim, ok in s.checks
            if not ok
        ]
        assert not failed, failed
        text = report.format()
        assert "ALL CLAIMS REPRODUCED" in text
        assert "Table 2" in text and "Fig. 26" in text
