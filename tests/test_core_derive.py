"""Traversal algorithm (Fig. 8) and shift/peel derivation (Sec. 3.3)."""

import pytest

from repro.core import derive_shift_peel, fuse_sequence, traverse_for_peels, traverse_for_shifts
from repro.dependence.multigraph import ChainGraph, Edge


def graph(num, edges):
    return ChainGraph(num, tuple(Edge(s, d, w) for s, d, w in edges))


class TestTraversal:
    def test_fig9_shifts(self):
        g = graph(3, [(0, 1, -1), (1, 2, -1)])
        assert traverse_for_shifts(g) == (0, 1, 2)

    def test_fig10_peels(self):
        g = graph(3, [(0, 1, 1), (1, 2, 1)])
        assert traverse_for_peels(g) == (0, 1, 2)

    def test_positive_edges_propagate_shifts(self):
        # Backward into v1, then a forward edge v1->v2 still propagates the
        # accumulated shift (treated as weight 0).
        g = graph(3, [(0, 1, -2), (1, 2, 5)])
        assert traverse_for_shifts(g) == (0, 2, 2)

    def test_negative_edges_propagate_peels(self):
        g = graph(3, [(0, 1, 3), (1, 2, -4)])
        assert traverse_for_peels(g) == (0, 3, 3)

    def test_min_accumulation_across_paths(self):
        # Two paths into v2: direct -1, via v1 accumulated -3.
        g = graph(3, [(0, 1, -2), (1, 2, -1), (0, 2, -1)])
        assert traverse_for_shifts(g) == (0, 2, 3)

    def test_max_accumulation_across_paths(self):
        g = graph(3, [(0, 1, 2), (1, 2, 1), (0, 2, 1)])
        assert traverse_for_peels(g) == (0, 2, 3)

    def test_empty_graph(self):
        g = graph(2, [])
        assert traverse_for_shifts(g) == (0, 0)
        assert traverse_for_peels(g) == (0, 0)

    def test_linear_complexity_smoke(self):
        edges = [(k, k + 1, -1) for k in range(200)]
        g = graph(201, edges)
        assert traverse_for_shifts(g)[-1] == 200


class TestDerivation:
    def test_fig9(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        assert plan.dims[0].shifts == (0, 1, 2)
        assert plan.dims[0].peels == (0, 1, 2)
        assert plan.max_shift == 2 and plan.max_peel == 2

    def test_fig13(self, fig13_sequence):
        plan = derive_shift_peel(fig13_sequence, ("n",))
        assert plan.dims[0].shifts == (0, 1)
        assert plan.dims[0].peels == (0, 1)

    def test_fig4_peel_only(self, fig4_sequence):
        plan = derive_shift_peel(fig4_sequence, ("n",))
        assert plan.dims[0].shifts == (0, 0)
        assert plan.dims[0].peels == (0, 1)

    def test_jacobi_both_dims(self, jacobi_sequence):
        plan = derive_shift_peel(jacobi_sequence, ("n",))
        assert plan.shift_vector(1) == (1, 1)
        assert plan.peel_vector(1) == (1, 1)

    def test_total_peel(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        assert plan.total_peel(2, 0) == 4  # shift 2 + peel 2

    def test_threshold(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        assert plan.dims[0].iteration_count_threshold == 5

    def test_plain_fusion_detected(self):
        from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load

        i = Affine.var("i")
        n = Affine.var("n")
        l1 = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", i, load("b", i)),))
        l2 = LoopNest((Loop.make("i", 2, n - 1),), (assign("c", i, load("a", i)),))
        plan = derive_shift_peel(LoopSequence((l1, l2)), ("n",))
        assert plan.is_plain_fusion()

    def test_table_rows(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        rows = plan.table_rows()
        assert rows[2] == (3, (2,), (2,))

    def test_describe(self, fig9_sequence):
        text = derive_shift_peel(fig9_sequence, ("n",)).describe()
        assert "L3" in text


class TestTable2:
    @pytest.mark.parametrize("kernel", ["ll18", "calc", "filter", "jacobi", "tomcatv"])
    def test_matches_paper(self, kernel):
        from repro.kernels import get_kernel

        info = get_kernel(kernel)
        program = info.program()
        result = fuse_sequence(program.sequences[0], program.params, info.fuse_depth)
        seq = result.sequence
        shifts = tuple(result.plan.shift(k, 0) for k in range(len(seq)))
        peels = tuple(result.plan.peel(k, 0) for k in range(len(seq)))
        assert shifts == info.paper_shifts
        assert peels == info.paper_peels
