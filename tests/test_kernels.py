"""Kernel/application models: registry, structure, Table 1 metadata."""

import pytest

from repro.core import fuse_sequence
from repro.ir import validate_program
from repro.kernels import all_kernels, get_kernel
from repro.kernels.base import register


class TestRegistry:
    def test_all_registered(self):
        names = {k.name for k in all_kernels()}
        assert names == {
            "ll18", "calc", "filter", "jacobi", "tomcatv", "hydro2d", "spem"
        }

    def test_get_kernel(self):
        assert get_kernel("ll18").longest_sequence == 3

    def test_duplicate_registration_rejected(self):
        info = get_kernel("ll18")
        with pytest.raises(ValueError):
            register(info)


class TestStructure:
    @pytest.mark.parametrize("name", [k.name for k in all_kernels()])
    def test_programs_valid(self, name):
        assert validate_program(get_kernel(name).program()).ok

    @pytest.mark.parametrize("name", [k.name for k in all_kernels()])
    def test_table1_metadata_derivable(self, name):
        info = get_kernel(name)
        program = info.program()
        assert len(program.sequences) == info.num_sequences
        longest = max(len(seq) for seq in program.sequences)
        assert longest == info.longest_sequence
        max_shift = max_peel = 0
        for seq in program.sequences:
            plan = fuse_sequence(seq, program.params, info.fuse_depth).plan
            for k in range(len(seq)):
                max_shift = max(max_shift, plan.shift(k, 0))
                max_peel = max(max_peel, plan.peel(k, 0))
        assert (max_shift, max_peel) == (info.max_shift, info.max_peel)

    def test_ll18_array_count(self):
        # Fig. 24 emphasizes LL18's nine arrays vs calc's six.
        assert len(get_kernel("ll18").program().arrays) == 9
        assert len(get_kernel("calc").program().arrays) == 6

    def test_filter_rectangular(self):
        prog = get_kernel("filter").program()
        assert prog.params == ("m", "n")

    def test_spem_3d(self):
        prog = get_kernel("spem").program()
        assert all(decl.ndim == 3 for decl in prog.arrays)
        assert len(prog.sequences) == 11

    def test_applications_flagged(self):
        for name in ("tomcatv", "hydro2d", "spem"):
            info = get_kernel(name)
            assert info.is_application
            assert 0 < info.transformed_fraction <= 1

    def test_default_params_legal(self):
        for info in all_kernels():
            program = info.program()
            for seq in program.sequences:
                result = fuse_sequence(seq, program.params, info.fuse_depth)
                assert result.max_procs(dict(info.default_params))[0] >= 1


class TestSynthHelpers:
    def test_stencil_nest(self):
        from repro.ir import Affine
        from repro.kernels import stencil_nest

        nest = stencil_nest(
            "t", "out", [("a", (1, 0)), ("b", (0, -1))],
            ("j", "i"), ((2, Affine.var("n") - 1), (2, Affine.var("n") - 1)),
        )
        body = str(nest.body[0])
        assert "a[j+1,i]" in body and "b[j,i-1]" in body
        assert nest.loops[0].parallel

    def test_stencil_nest_requires_reads(self):
        from repro.kernels import stencil_nest

        with pytest.raises(ValueError):
            stencil_nest("t", "out", [], ("i",), ((0, 1),))

    def test_chain_builder(self):
        from repro.ir import Affine
        from repro.kernels import chain_sequence_nests

        nests = chain_sequence_nests(
            "c",
            [[("src", (0,))], [("w1", (-1,))]],
            ["w1", "w2"],
            ("i",),
            ((2, Affine.var("n") - 1),),
        )
        assert len(nests) == 2
        assert nests[1].name == "cL2"
