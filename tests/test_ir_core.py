"""ArrayRef, statements, loops, sequences, programs, printer."""

import numpy as np
import pytest

from repro.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Loop,
    LoopNest,
    assign,
    compatible,
    format_nest,
    format_program,
    load,
    side_by_side,
    single_sequence_program,
)
from repro.ir.stmt import BinOp, Const, UnaryOp


i = Affine.var("i")
j = Affine.var("j")
n = Affine.var("n")


class TestArrayRef:
    def test_make_and_str(self):
        ref = ArrayRef.make("a", i + 1, j)
        assert str(ref) == "a[i+1,j]"
        assert ref.ndim == 2

    def test_access_matrix(self):
        ref = ArrayRef.make("a", i + 1, j - i)
        assert ref.access_matrix(("i", "j")) == ((1, 0), (-1, 1))

    def test_offset_vector(self):
        ref = ArrayRef.make("a", i + 1, j - 2)
        assert ref.offset_vector() == (1, -2)

    def test_index_tuple(self):
        ref = ArrayRef.make("a", i + 1, j)
        assert ref.index_tuple({"i": 2, "j": 5}) == (3, 5)

    def test_shift_var(self):
        ref = ArrayRef.make("a", i).shift_var("i", -2)
        assert ref.subscripts[0].const == -2

    def test_compatible(self):
        a = ArrayRef.make("a", i, j)
        b = ArrayRef.make("b", i + 3, j - 1)
        c = ArrayRef.make("c", j, i)
        assert compatible(a, b, ("i", "j"))
        assert not compatible(a, c, ("i", "j"))


class TestExpressions:
    def test_operator_sugar(self):
        e = load("a", i) + load("b", i) * 2 - 1
        arrays = {"a": np.array([1.0, 2.0]), "b": np.array([10.0, 20.0])}
        assert e.eval({"i": 1}, arrays) == 2.0 + 20.0 * 2 - 1

    def test_division(self):
        e = load("a", i) / 4
        assert e.eval({"i": 0}, {"a": np.array([8.0])}) == 2.0

    def test_negation(self):
        e = -load("a", i)
        assert e.eval({"i": 0}, {"a": np.array([3.0])}) == -3.0

    def test_loads_enumeration(self):
        e = load("a", i) + load("b", i + 1)
        assert [r.array for r in e.loads()] == ["a", "b"]

    def test_bad_binop(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1.0), Const(2.0))

    def test_bad_unary(self):
        with pytest.raises(ValueError):
            UnaryOp("+", Const(1.0))

    def test_shift_var_through_tree(self):
        e = (load("a", i) + load("b", i + 1)).shift_var("i", -1)
        refs = [str(r) for r in e.loads()]
        assert refs == ["a[i-1]", "b[i]"]


class TestAssign:
    def test_reads_writes(self):
        st = assign("c", i, load("a", i + 1) + load("b", i))
        assert [r.array for r in st.reads()] == ["a", "b"]
        assert st.writes()[0].array == "c"
        assert st.arrays() == {"a", "b", "c"}

    def test_execute(self):
        st = assign("c", i, load("a", i) * 2)
        arrays = {"a": np.array([1.0, 5.0]), "c": np.zeros(2)}
        st.execute({"i": 1}, arrays)
        assert arrays["c"][1] == 10.0

    def test_str(self):
        st = assign("c", i, load("a", i))
        assert str(st) == "c[i] = a[i]"


class TestLoopNest:
    def _nest(self):
        return LoopNest(
            (Loop.make("j", 2, n - 1), Loop.make("i", 2, n - 1, parallel=False)),
            (assign("b", (j, i), load("a", j, i)),),
            name="L1",
        )

    def test_properties(self):
        nest = self._nest()
        assert nest.depth == 2
        assert nest.loop_vars == ("j", "i")
        assert nest.parallel_depth() == 1
        assert nest.arrays_read() == {"a"}
        assert nest.arrays_written() == {"b"}

    def test_iteration_space_order(self):
        nest = self._nest()
        space = list(nest.iteration_space({"n": 4}))
        assert space == [(2, 2), (2, 3), (3, 2), (3, 3)]
        assert nest.iteration_count({"n": 4}) == 4

    def test_duplicate_loop_var_rejected(self):
        with pytest.raises(ValueError):
            LoopNest(
                (Loop.make("i", 0, 1), Loop.make("i", 0, 1)),
                (assign("a", i, 1),),
            )

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            LoopNest((Loop.make("i", 0, 1),), ())

    def test_rename_loop_vars(self):
        nest = self._nest().rename_loop_vars({"j": "k"})
        assert nest.loop_vars == ("k", "i")
        assert "k" in str(nest.body[0])

    def test_trip_count(self):
        assert Loop.make("i", 2, n - 1).trip_count({"n": 10}) == 8
        assert Loop.make("i", 5, n).trip_count({"n": 3}) == 0


class TestSequenceAndProgram:
    def test_auto_naming(self, fig9_sequence):
        assert [nest.name for nest in fig9_sequence] == ["L1", "L2", "L3"]

    def test_arrays(self, fig9_sequence):
        assert fig9_sequence.arrays() == {"a", "b", "c", "d"}

    def test_program_accessors(self):
        decls = (ArrayDecl.make("a", n + 1),)
        nest = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", i, 1),))
        prog = single_sequence_program([nest], decls, ("n",), "p")
        assert prog.array("a").ndim == 1
        with pytest.raises(KeyError):
            prog.array("zz")
        assert prog.total_data_bytes({"n": 9}) == 10 * 8

    def test_allocate_arrays(self):
        decls = (ArrayDecl.make("a", n + 1, n + 1),)
        nest = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", (i, i), 1.0),))
        prog = single_sequence_program([nest], decls)
        arrays = prog.allocate_arrays({"n": 4}, rng=np.random.default_rng(0))
        assert arrays["a"].shape == (5, 5)
        assert arrays["a"].any()


class TestPrinter:
    def test_format_nest(self, fig9_sequence):
        text = format_nest(fig9_sequence[0])
        assert "doall i = 2, n-1" in text
        assert "a[i] = b[i]" in text
        assert text.count("end do") == 1

    def test_format_program(self):
        from repro.kernels import jacobi

        text = format_program(jacobi.program())
        assert "real a(n+1,n+1)" in text
        assert "doall" in text

    def test_side_by_side(self):
        out = side_by_side("a\nbb", "c")
        lines = out.splitlines()
        assert len(lines) == 2
        assert "a" in lines[0] and "c" in lines[0]
