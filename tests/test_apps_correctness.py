"""Fusion correctness for every application sequence + barrier parsing."""

import numpy as np
import pytest

from conftest import arrays_equal, copy_arrays

from repro.core import build_execution_plan, derive_shift_peel, max_processors
from repro.kernels import get_kernel
from repro.runtime import run_parallel, run_sequence_serial


def _alloc(program, shape_params, seed):
    rng = np.random.default_rng(seed)
    return {
        d.name: rng.random(d.concrete_shape(shape_params)) + 1.0
        for d in program.arrays
    }


class TestApplicationSequences:
    @pytest.mark.parametrize("seq_idx", range(3))
    def test_hydro2d_sequences(self, seq_idx):
        info = get_kernel("hydro2d")
        program = info.program()
        seq = program.sequences[seq_idx]
        params = {"m": 41, "n": 25}
        base = _alloc(program, params, seed=seq_idx)
        oracle = copy_arrays(base)
        run_sequence_serial(seq, params, oracle)
        plan = derive_shift_peel(seq, program.params, 1)
        procs = min(3, max_processors(plan, params)[0])
        ep = build_execution_plan(plan, params, num_procs=procs)
        got = copy_arrays(base)
        run_parallel(ep, got, interleave="random", rng=np.random.default_rng(1))
        assert arrays_equal(oracle, got), seq.name

    @pytest.mark.parametrize("seq_idx", range(11))
    def test_spem_sequences(self, seq_idx):
        info = get_kernel("spem")
        program = info.program()
        seq = program.sequences[seq_idx]
        params = {"n": 17, "p": 5}
        base = _alloc(program, params, seed=seq_idx)
        oracle = copy_arrays(base)
        run_sequence_serial(seq, params, oracle)
        plan = derive_shift_peel(seq, program.params, 1)
        procs = min(3, max_processors(plan, params)[0])
        ep = build_execution_plan(plan, params, num_procs=procs)
        got = copy_arrays(base)
        run_parallel(ep, got, interleave="random", rng=np.random.default_rng(2))
        assert arrays_equal(oracle, got), seq.name

    def test_spem_whole_timestep(self):
        """All eleven sequences in program order, each fused: the whole
        time step must still match the unfused whole time step."""
        info = get_kernel("spem")
        program = info.program()
        params = {"n": 17, "p": 5}
        base = _alloc(program, params, seed=42)
        oracle = copy_arrays(base)
        for seq in program.sequences:
            run_sequence_serial(seq, params, oracle)
        got = copy_arrays(base)
        for seq in program.sequences:
            plan = derive_shift_peel(seq, program.params, 1)
            procs = min(2, max_processors(plan, params)[0])
            ep = build_execution_plan(plan, params, num_procs=procs)
            run_parallel(ep, got, interleave="roundrobin")
        assert arrays_equal(oracle, got)


class TestBarrierSeparatedParsing:
    SRC = """
param n
real a(n+1), b(n+1), c(n+1)
doall i = 2, n-1
    a[i] = b[i]
end do
doall i = 2, n-1
    c[i] = a[i+1] + a[i-1]
end do
barrier
doall i = 2, n-1
    b[i] = c[i]
end do
"""

    def test_two_sequences(self):
        from repro.lang import parse_program

        prog = parse_program(self.SRC, "two")
        assert len(prog.sequences) == 2
        assert len(prog.sequences[0]) == 2
        assert len(prog.sequences[1]) == 1
        assert prog.sequences[0].name.endswith("seq1")

    def test_single_sequence_name_unchanged(self):
        from repro.lang import parse_program

        prog = parse_program(
            "doall i = 1, n\n a[i] = b[i]\nend do", "one"
        )
        assert prog.sequences[0].name == "one.seq"

    def test_leading_barrier_ignored(self):
        from repro.lang import parse_program

        prog = parse_program(
            "barrier\ndoall i = 1, n\n a[i] = b[i]\nend do", "lead"
        )
        assert len(prog.sequences) == 1

    def test_each_sequence_fusable_independently(self):
        from repro.core import fuse_sequence
        from repro.lang import parse_program

        prog = parse_program(self.SRC, "two")
        results = [fuse_sequence(s, prog.params) for s in prog.sequences]
        assert results[0].plan.max_shift == 1
        assert results[1].plan.max_shift == 0
