"""Executable generated code (CIR): nodes, strip-mined SPMD, direct method."""

import numpy as np
import pytest

from conftest import alloc_1d, alloc_2d, arrays_equal, copy_arrays

from repro.codegen import (
    CodeBarrier,
    CodeFor,
    CodeIf,
    CodeLet,
    CodeStmt,
    Compare,
    block,
    direct_fused_code,
    fused_block_code,
    loop,
    run_code,
    run_direct,
    run_spmd,
    spmd_codes,
)
from repro.core import build_execution_plan, derive_shift_peel
from repro.ir import Affine, BoundExpr, assign, load
from repro.runtime import run_sequence_serial

i = Affine.var("i")
PARAMS = {"n": 37}
SIZE = 38


class TestCirNodes:
    def test_loop_executes_range(self):
        code = loop("i", 0, 4, CodeStmt(assign("a", i, load("a", i) + 1)))
        arrays = {"a": np.zeros(5)}
        run_code(code, {}, arrays)
        assert arrays["a"].tolist() == [1.0] * 5

    def test_loop_step(self):
        code = loop("i", 0, 8, CodeStmt(assign("a", i, 1.0)), step=4)
        arrays = {"a": np.zeros(9)}
        run_code(code, {}, arrays)
        assert arrays["a"].sum() == 3

    def test_loop_min_max_bounds(self):
        code = CodeFor(
            "i",
            BoundExpr.maximum(Affine.var("lo"), 2),
            BoundExpr.minimum(Affine.var("hi"), 5),
            block(CodeStmt(assign("a", i, 1.0))),
        )
        arrays = {"a": np.zeros(10)}
        run_code(code, {"lo": 0, "hi": 9}, arrays)
        assert arrays["a"][2:6].sum() == 4 and arrays["a"].sum() == 4

    def test_empty_loop(self):
        code = loop("i", 5, 4, CodeStmt(assign("a", i, 1.0)))
        arrays = {"a": np.zeros(6)}
        run_code(code, {}, arrays)
        assert arrays["a"].sum() == 0

    def test_if_guard(self):
        body = CodeStmt(assign("a", i, 1.0))
        code = loop(
            "i", 0, 9, CodeIf(Compare(i, ">=", Affine.constant(7)), body)
        )
        arrays = {"a": np.zeros(10)}
        run_code(code, {}, arrays)
        assert arrays["a"].sum() == 3

    def test_compare_ops(self):
        env = {"i": 5}
        assert Compare(i, "==", Affine.constant(5)).eval(env)
        assert Compare(i, "<", Affine.constant(6)).eval(env)
        assert not Compare(i, ">", Affine.constant(5)).eval(env)
        with pytest.raises(ValueError):
            Compare(i, "!=", Affine.constant(5))

    def test_let_binding(self):
        code = block(
            CodeLet("lim", BoundExpr.affine(Affine.var("n") - 35)),
            loop("i", 0, Affine.var("lim"), CodeStmt(assign("a", i, 1.0))),
        )
        arrays = {"a": np.zeros(10)}
        run_code(code, {"n": 37}, arrays)
        assert arrays["a"].sum() == 3

    def test_loop_restores_outer_binding(self):
        code = loop("i", 0, 2, CodeStmt(assign("a", i, 1.0)))
        env = {"i": 99}
        code.execute(env, {"a": np.zeros(3)})
        assert env["i"] == 99

    def test_render(self):
        code = loop("i", 0, 4, CodeStmt(assign("a", i, 1.0)), parallel=True)
        text = str(code)
        assert text.startswith("doall i = 0, 4")
        assert "end do" in text

    def test_render_if(self):
        node = CodeIf(Compare(i, ">=", Affine.constant(2)), CodeStmt(assign("a", i, 1.0)))
        assert str(node) == "if (i >= 2) a[i] = 1.0"

    def test_barrier_render(self):
        assert "<BARRIER>" in str(CodeBarrier("sync"))

    def test_statements_iteration(self):
        code = loop("i", 0, 1, CodeStmt(assign("a", i, 1.0)), CodeStmt(assign("b", i, 2.0)))
        assert len(list(code.statements())) == 2

    def test_bad_step(self):
        with pytest.raises(ValueError):
            loop("i", 0, 1, CodeStmt(assign("a", i, 1.0)), step=0)


class TestSpmdCodegen:
    def _plan(self, seq, procs):
        plan = derive_shift_peel(seq, ("n",))
        return build_execution_plan(plan, PARAMS, num_procs=procs)

    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_fig9_spmd_matches_oracle(self, fig9_sequence, procs):
        base = alloc_1d("abcd", SIZE, seed=1)
        oracle = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, oracle)
        ep = self._plan(fig9_sequence, procs)
        for order in (None, list(reversed(range(procs)))):
            got = copy_arrays(base)
            run_spmd(ep, got, strip=5, proc_order=order)
            assert arrays_equal(oracle, got), (procs, order)

    def test_fig13_spmd(self, fig13_sequence):
        base = alloc_1d("ab", SIZE, seed=2)
        oracle = copy_arrays(base)
        run_sequence_serial(fig13_sequence, PARAMS, oracle)
        ep = self._plan(fig13_sequence, 3)
        got = copy_arrays(base)
        run_spmd(ep, got, strip=4, proc_order=[2, 0, 1])
        assert arrays_equal(oracle, got)

    def test_jacobi_spmd_2d(self, jacobi_sequence):
        params = {"n": 19}
        base = alloc_2d("ab", (21, 21), seed=3)
        oracle = copy_arrays(base)
        run_sequence_serial(jacobi_sequence, params, oracle)
        plan = derive_shift_peel(jacobi_sequence, ("n",))
        ep = build_execution_plan(plan, params, grid_shape=(2, 2))
        got = copy_arrays(base)
        run_spmd(ep, got, strip=3, proc_order=[3, 1, 2, 0])
        assert arrays_equal(oracle, got)

    def test_rendered_code_shape(self, fig9_sequence):
        ep = self._plan(fig9_sequence, 2)
        codes = spmd_codes(ep, strip=5)
        assert len(codes) == 2
        text = codes[0].render()
        assert "doall ii = " in text  # strip-mined control loop
        assert "max(" in text and "min(" in text
        assert "<BARRIER>" in text

    def test_last_proc_has_empty_peel(self, fig9_sequence):
        ep = self._plan(fig9_sequence, 2)
        codes = spmd_codes(ep, strip=5)
        assert codes[-1].peeled.render() == []

    def test_fused_block_code_whole_domain(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        code = fused_block_code(plan, PARAMS, strip=6, num_procs=3)
        base = alloc_1d("abcd", SIZE, seed=4)
        oracle = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, oracle)
        got = copy_arrays(base)
        run_code(code, PARAMS, got)
        assert arrays_equal(oracle, got)

    def test_kernel_spmd(self):
        from repro.kernels import get_kernel

        info = get_kernel("calc")
        program = info.program()
        seq = program.sequences[0]
        params = {"n": 29}
        rng = np.random.default_rng(6)
        base = {d.name: rng.random((30, 30)) + 1.0 for d in program.arrays}
        oracle = copy_arrays(base)
        run_sequence_serial(seq, params, oracle)
        plan = derive_shift_peel(seq, program.params, 1)
        ep = build_execution_plan(plan, params, num_procs=2)
        got = copy_arrays(base)
        run_spmd(ep, got, strip=6, proc_order=[1, 0])
        assert arrays_equal(oracle, got)


class TestDirectMethod:
    def test_fig9_direct_matches_oracle(self, fig9_sequence):
        base = alloc_1d("abcd", SIZE, seed=7)
        oracle = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, oracle)
        plan = derive_shift_peel(fig9_sequence, ("n",))
        got = copy_arrays(base)
        run_direct(plan, PARAMS, got)
        assert arrays_equal(oracle, got)

    def test_fig13_direct(self, fig13_sequence):
        base = alloc_1d("ab", SIZE, seed=8)
        oracle = copy_arrays(base)
        run_sequence_serial(fig13_sequence, PARAMS, oracle)
        plan = derive_shift_peel(fig13_sequence, ("n",))
        got = copy_arrays(base)
        run_direct(plan, PARAMS, got)
        assert arrays_equal(oracle, got)

    def test_direct_guards_present(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        text = str(direct_fused_code(plan, PARAMS))
        assert "if (" in text
        assert "c[i-1]" in text  # shifted subscripts
        assert "d[i-2]" in text

    def test_direct_matches_stripmined(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        base = alloc_1d("abcd", SIZE, seed=9)
        a = copy_arrays(base)
        run_direct(plan, PARAMS, a)
        b = copy_arrays(base)
        run_code(fused_block_code(plan, PARAMS, strip=4), PARAMS, b)
        assert arrays_equal(a, b)

    def test_direct_rejects_multidim(self, jacobi_sequence):
        plan = derive_shift_peel(jacobi_sequence, ("n",))
        with pytest.raises(ValueError):
            direct_fused_code(plan, {"n": 19})

    def test_direct_2d_nests_depth1_fusion(self):
        """Direct method on 2-D nests fused in the outer dim only."""
        from repro.kernels import get_kernel

        info = get_kernel("ll18")
        program = info.program()
        seq = program.sequences[0]
        params = {"n": 21}
        rng = np.random.default_rng(10)
        base = {d.name: rng.random((22, 22)) + 1.0 for d in program.arrays}
        oracle = copy_arrays(base)
        run_sequence_serial(seq, params, oracle)
        plan = derive_shift_peel(seq, program.params, 1)
        got = copy_arrays(base)
        run_direct(plan, params, got)
        assert arrays_equal(oracle, got)
