"""Differential tests: fast backends must be bit-identical to the interpreter.

Sweeps every registered kernel (and every sequence of the applications)
through the ``vector``, ``jit``, ``mpjit`` and ``cjit`` backends —
strip-mined and whole-box — and spot-checks the ``mp`` backend, comparing
arrays *bitwise*
(``np.array_equal``, not allclose) against the ``interp`` reference, on odd
shapes including empty and single-iteration ranges.  The mp/mpjit sweeps
additionally run under both sync modes (point-to-point and barrier) —
the sync protocol may only change scheduling, never bits.  The mpjit
runs force ``max_workers=2`` so the pooled-parallel path executes even
on a one-core host.  Also unit-tests the vectorized box executor
on the awkward access patterns (diagonals, transposed subscripts, strided
subscripts, reductions over a missing target variable, sequential
dimensions).
"""

import dataclasses

import numpy as np
import pytest

from conftest import copy_arrays

from repro.core import (
    FusionLegalityError,
    build_execution_plan,
    derive_shift_peel,
    max_processors,
)
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.kernels import all_kernels, get_kernel
from repro.runtime import (
    Backend,
    BackendMismatch,
    available_backends,
    checksum,
    exec_box,
    get_backend,
    register_backend,
    run_parallel,
    vector_dims,
)

KERNEL_NAMES = sorted(info.name for info in all_kernels())


def _setup(kernel, n, procs):
    """Build per-sequence execution plans and seeded arrays for a kernel."""
    info = get_kernel(kernel)
    program = info.program()
    params = {p: n for p in program.params}
    if "p" in params:
        params["p"] = 4
    rng = np.random.default_rng(3)
    base = {
        d.name: rng.random(d.concrete_shape(params)) + 1.0
        for d in program.arrays
    }
    plans = []
    for seq in program.sequences:
        plan = derive_shift_peel(seq, tuple(program.params), seq.fusable_depth())
        legal = max_processors(plan, params)[0]
        for nprocs in (min(procs, legal), 1):
            try:
                plans.append(build_execution_plan(plan, params, num_procs=nprocs))
                break
            except FusionLegalityError:
                continue
        # A sequence whose plan is illegal even on one processor at this
        # problem size (Theorem 1) is skipped; other sequences still run.
    if not plans:
        pytest.skip(f"{kernel}: no sequence legal at n={n}")
    return base, plans


def _run_backend(plans, arrays, backend, **kw):
    totals = {"fused_iterations": 0, "peeled_iterations": 0}
    be = get_backend(backend)
    for ep in plans:
        stats = be.run(ep, arrays, **kw)
        for key in totals:
            totals[key] += stats[key]
    return totals


def _assert_identical(reference, candidate, context):
    for name in reference:
        assert np.array_equal(reference[name], candidate[name]), (context, name)


class TestAllKernelsAllBackends:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize("n", [13, 21])
    @pytest.mark.parametrize("procs", [1, 3])
    def test_fast_backends_match_interp(self, kernel, n, procs):
        base, plans = _setup(kernel, n, procs)
        ref = copy_arrays(base)
        ref_counts = _run_backend(plans, ref, "interp")
        for backend in ("vector", "jit", "mpjit", "cjit"):
            # mpjit: force two pooled workers so the parallel compiled
            # path runs even where os.cpu_count() == 1.  cjit needs no
            # gate: without a C compiler it falls back to jit, which this
            # sweep already holds to the interpreter.
            extra = {"max_workers": 2} if backend == "mpjit" else {}
            for strip in (None, 3):
                got = copy_arrays(base)
                counts = _run_backend(plans, got, backend, strip=strip,
                                      **extra)
                _assert_identical(ref, got, (backend, kernel, n, procs, strip))
                assert counts == ref_counts, (backend, kernel, n, procs, strip)

    @pytest.mark.parametrize("kernel", ["jacobi", "ll18"])
    def test_mp_matches_interp(self, kernel):
        base, plans = _setup(kernel, 21, 3)
        ref = copy_arrays(base)
        ref_counts = _run_backend(plans, ref, "interp")
        got = copy_arrays(base)
        counts = _run_backend(plans, got, "mp", max_workers=2)
        _assert_identical(ref, got, (kernel, "mp"))
        assert counts == ref_counts

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_mpjit_sync_modes_bit_identical(self, kernel):
        """Point-to-point neighbor sync must be bitwise indistinguishable
        from the global barrier (and the interpreter) — the sync mode may
        only change *when* a peeled phase starts, never what it computes."""
        base, plans = _setup(kernel, 21, 3)
        ref = copy_arrays(base)
        ref_counts = _run_backend(plans, ref, "interp")
        for sync in ("p2p", "barrier"):
            got = copy_arrays(base)
            counts = _run_backend(plans, got, "mpjit", max_workers=2,
                                  sync=sync)
            _assert_identical(ref, got, (kernel, "mpjit", sync))
            assert counts == ref_counts, (kernel, sync)

    @pytest.mark.parametrize("kernel", ["jacobi", "ll18"])
    def test_mp_sync_modes_bit_identical(self, kernel):
        base, plans = _setup(kernel, 21, 3)
        ref = copy_arrays(base)
        _run_backend(plans, ref, "interp")
        for sync in ("p2p", "barrier"):
            got = copy_arrays(base)
            _run_backend(plans, got, "mp", max_workers=2, sync=sync)
            _assert_identical(ref, got, (kernel, "mp", sync))

    @pytest.mark.slow
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_mp_matches_interp_all_kernels(self, kernel):
        base, plans = _setup(kernel, 21, 4)
        ref = copy_arrays(base)
        _run_backend(plans, ref, "interp")
        got = copy_arrays(base)
        _run_backend(plans, got, "mp", max_workers=2)
        _assert_identical(ref, got, (kernel, "mp"))


def _seq_1d():
    i = Affine.var("i")
    n = Affine.var("n")
    return LoopSequence(
        (
            LoopNest((Loop.make("i", 2, n - 1),),
                     (assign("a", i, load("b", i)),), name="L1"),
            LoopNest((Loop.make("i", 2, n - 1),),
                     (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
                     name="L2"),
        ),
        name="chain",
    )


def _degenerate_plan(fused_range, peel_range):
    """A 1-proc plan whose per-nest boxes are forced to the given ranges.

    ``build_execution_plan`` (correctly) refuses degenerate trip counts via
    Theorem 1, so empty/single-iteration work is produced by shrinking a
    legal plan's processor boxes — both backends consume exactly these.
    """
    seq = _seq_1d()
    plan = derive_shift_peel(seq, ("n",))
    ep = build_execution_plan(plan, {"n": 9}, num_procs=1)
    proc = ep.processors[0]
    proc = dataclasses.replace(
        proc,
        fused=tuple((fused_range,) for _ in proc.fused),
        peeled=tuple(
            dataclasses.replace(rect, ranges=(peel_range,))
            for rect in proc.peeled
        ),
    )
    return dataclasses.replace(ep, processors=(proc,))


class TestDegenerateRanges:
    @pytest.mark.parametrize("n", [5, 6, 7])
    def test_smallest_legal_sizes(self, n):
        """The smallest problem sizes Theorem 1 admits at all."""
        seq = _seq_1d()
        params = {"n": n}
        rng = np.random.default_rng(0)
        base = {name: rng.random(8) + 0.5 for name in "abc"}
        plan = derive_shift_peel(seq, ("n",))
        ep = build_execution_plan(plan, params, num_procs=1)
        ref = copy_arrays(base)
        ref_counts = run_parallel(ep, ref)
        for backend, kw in (("vector", {}), ("vector", {"strip": 2}),
                            ("jit", {}), ("jit", {"strip": 2}),
                            ("cjit", {}), ("cjit", {"strip": 2})):
            got = copy_arrays(base)
            counts = get_backend(backend).run(ep, got, **kw)
            _assert_identical(ref, got, (backend, n))
            assert counts == ref_counts

    @pytest.mark.parametrize(
        "fused_range,peel_range",
        [((5, 4), (3, 2)), ((5, 5), (3, 3)), ((4, 6), (3, 3))],
        ids=["empty", "single", "tiny"],
    )
    def test_empty_and_single_iteration_ranges(self, fused_range, peel_range):
        """Backends must agree on plans holding empty and one-iteration
        boxes (these arise as peel rectangles of interior processors)."""
        ep = _degenerate_plan(fused_range, peel_range)
        rng = np.random.default_rng(6)
        base = {name: rng.random(12) + 0.5 for name in "abc"}
        ref = copy_arrays(base)
        ref_counts = run_parallel(ep, ref)
        for backend, kw in (("vector", {}), ("vector", {"strip": 2}),
                            ("jit", {}), ("jit", {"strip": 2}),
                            ("cjit", {}), ("cjit", {"strip": 2})):
            got = copy_arrays(base)
            counts = get_backend(backend).run(ep, got, **kw)
            _assert_identical(ref, got, (backend, fused_range))
            assert counts == ref_counts
        if fused_range == (5, 4):
            assert ref_counts["fused_iterations"] == 0
        if peel_range == (3, 2):
            assert ref_counts["peeled_iterations"] == 0

    def test_exec_box_empty_box(self):
        seq = _seq_1d()
        arrays = {"a": np.ones(4), "b": np.ones(4), "c": np.ones(4)}
        assert exec_box(seq[0], ((3, 2),), {"n": 4}, arrays) == 0
        assert np.array_equal(arrays["a"], np.ones(4))


class TestExecBoxAccessPatterns:
    def _check(self, nest, params, arrays, box=None):
        """exec_box vs per-iteration interpretation over the full space."""
        if box is None:
            box = tuple(lp.bounds(params) for lp in nest.loops)
        expected = copy_arrays(arrays)
        env = dict(params)
        import itertools

        for ivec in itertools.product(
            *(range(lo, hi + 1) for lo, hi in box)
        ):
            for var, val in zip(nest.loop_vars, ivec):
                env[var] = val
            for st in nest.body:
                st.execute(env, expected)
        got = copy_arrays(arrays)
        count = exec_box(nest, box, params, got)
        _assert_identical(expected, got, nest.name)
        sizes = 1
        for lo, hi in box:
            sizes *= max(0, hi - lo + 1)
        assert count == sizes

    def test_diagonal_write(self):
        """a[i,i] writes the diagonal: basic slicing would cross-product."""
        i = Affine.var("i")
        n = Affine.var("n")
        nest = LoopNest(
            (Loop.make("i", 0, n - 1),),
            (assign("a", (i, i), load("b", i, i) * 2.0),),
            name="diag",
        )
        rng = np.random.default_rng(1)
        arrays = {"a": rng.random((6, 6)), "b": rng.random((6, 6))}
        self._check(nest, {"n": 6}, arrays)

    def test_transposed_subscripts(self):
        """Loops (j, i) writing a[i, j]: axes must be permuted, not mixed."""
        i, j, n = Affine.var("i"), Affine.var("j"), Affine.var("n")
        nest = LoopNest(
            (Loop.make("j", 1, n - 2), Loop.make("i", 0, n - 1)),
            (assign("a", (i, j), load("b", j, i) + load("b", i, j)),),
            name="transpose",
        )
        rng = np.random.default_rng(2)
        arrays = {"a": rng.random((7, 7)), "b": rng.random((7, 7))}
        self._check(nest, {"n": 7}, arrays)

    def test_strided_subscript(self):
        """Coefficient 2 forces the fancy-index path."""
        i, n = Affine.var("i"), Affine.var("n")
        nest = LoopNest(
            (Loop.make("i", 0, n - 1),),
            (assign("a", 2 * i, load("b", i) + 1.0),),
            name="stride2",
        )
        rng = np.random.default_rng(3)
        arrays = {"a": rng.random(12), "b": rng.random(6)}
        self._check(nest, {"n": 6}, arrays)

    def test_missing_target_var_demoted(self):
        """a[i] = b[i, j]: j cannot vectorize (last-write-wins ordering),
        so it must fall back to ordered scalar iteration."""
        i, j, n = Affine.var("i"), Affine.var("j"), Affine.var("n")
        nest = LoopNest(
            (Loop.make("i", 0, n - 1), Loop.make("j", 0, n - 1)),
            (assign("a", i, load("b", i, j)),),
            name="lastwrite",
        )
        assert 1 not in vector_dims(nest)
        rng = np.random.default_rng(4)
        arrays = {"a": rng.random(5), "b": rng.random((5, 5))}
        self._check(nest, {"n": 5}, arrays)

    def test_sequential_dimension_order(self):
        """A genuine recurrence must execute in order, never vectorized."""
        i, n = Affine.var("i"), Affine.var("n")
        nest = LoopNest(
            (Loop.make("i", 1, n - 1, parallel=False),),
            (assign("a", i, load("a", i - 1) + 1.0),),
            name="scan",
        )
        assert vector_dims(nest) == ()
        arrays = {"a": np.zeros(9)}
        exec_box(nest, ((1, 8),), {"n": 9}, arrays)
        assert np.array_equal(arrays["a"], np.arange(9.0))

    def test_do_loop_without_carried_dep_is_vectorized(self):
        """The analysis upgrades a conservative `do` marking (the ll18 /
        filter / calc pattern) when nothing is actually carried."""
        info = get_kernel("ll18")
        nest = info.program().sequences[0][0]
        assert vector_dims(nest) == (0, 1)


class TestBackendRegistry:
    def test_available(self):
        names = available_backends()
        for expected in ("interp", "vector", "mp", "jit", "mpjit", "cjit"):
            assert expected in names

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_verify_catches_divergence(self):
        def broken_runner(exec_plan, arrays, strip=None):
            stats = get_backend("vector").runner(exec_plan, arrays, strip=strip)
            next(iter(arrays.values()))[...] += 1.0
            return stats

        name = "broken-for-test"
        try:
            get_backend(name)
        except ValueError:
            register_backend(Backend(name, "deliberately wrong", broken_runner))
        seq = _seq_1d()
        plan = derive_shift_peel(seq, ("n",))
        ep = build_execution_plan(plan, {"n": 9}, num_procs=2)
        arrays = {name_: np.ones(10) for name_ in "abc"}
        with pytest.raises(BackendMismatch):
            get_backend(name).run(ep, arrays, verify=True)

    @pytest.mark.parametrize("backend", ["vector", "jit", "cjit"])
    def test_verify_passes_for_fast_backends(self, backend):
        seq = _seq_1d()
        plan = derive_shift_peel(seq, ("n",))
        ep = build_execution_plan(plan, {"n": 17}, num_procs=3)
        rng = np.random.default_rng(5)
        arrays = {name: rng.random(18) for name in "abc"}
        get_backend(backend).run(ep, arrays, verify=True)

    def test_checksum_deterministic_and_sensitive(self):
        arrays = {"a": np.arange(4.0), "b": np.ones((2, 2))}
        again = {"a": np.arange(4.0), "b": np.ones((2, 2))}
        assert checksum(arrays) == checksum(again)
        again["b"][0, 0] = 7.0
        assert checksum(arrays) != checksum(again)


class TestCliExec:
    def test_exec_json(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "record.json"
        rc = cli_main([
            "exec", "jacobi", "--backend", "vector", "--n", "21",
            "--repeat", "1", "--verify", "--json", str(out),
        ])
        assert rc == 0
        import json

        record = json.loads(out.read_text())
        assert record["kernel"] == "jacobi"
        assert record["backend"] == "vector"
        assert record["iterations"] > 0
        assert len(record["checksum"]) == 16
        assert "checksum" in capsys.readouterr().out

    def test_exec_json_to_stdout(self, capsys):
        """``--json -`` makes stdout pure machine-readable JSON; the
        human narration moves to stderr so pipelines stay parseable."""
        from repro.cli import main as cli_main

        rc = cli_main([
            "exec", "jacobi", "--backend", "vector", "--n", "21",
            "--repeat", "1", "--verify", "--json", "-",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        import json

        record = json.loads(captured.out)  # stdout is ONLY the record
        assert record["kernel"] == "jacobi"
        assert len(record["checksum"]) == 16
        assert "checksum" in captured.err  # narration intact, on stderr
