"""Emission edge cases and multi-sequence program printing."""


from repro.core import derive_shift_peel, fuse_sequence
from repro.ir import (
    Affine,
    ArrayDecl,
    Loop,
    LoopNest,
    LoopSequence,
    Program,
    assign,
    format_program,
    load,
)
from repro.lang.emit import emit_direct, emit_spmd, emit_stripmined

i = Affine.var("i")
j = Affine.var("j")
n = Affine.var("n")


def plain_pair():
    l1 = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", i, load("b", i)),))
    l2 = LoopNest((Loop.make("i", 2, n - 1),), (assign("c", i, load("a", i)),))
    return LoopSequence((l1, l2))


class TestEmitStripmined:
    def test_plain_fusion_has_no_barrier(self):
        plan = derive_shift_peel(plain_pair(), ("n",))
        text = emit_stripmined(plan)
        assert "<BARRIER>" not in text
        assert "max(" not in text  # no shifting -> unclamped lower bounds

    def test_custom_symbols(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        text = emit_stripmined(plan, strip=16, istart="LB", iend="UB")
        assert "do ii = LB, UB, 16" in text
        assert "LB+1" in text and "UB-1" in text

    def test_inner_loops_preserved(self):
        from repro.kernels import ll18

        prog = ll18.program()
        plan = derive_shift_peel(prog.sequences[0], prog.params, 1)
        text = emit_stripmined(plan)
        assert "do k = 2, n-1" in text  # the non-fused inner level


class TestEmitDirect:
    def test_plain_fusion_unguarded(self):
        plan = derive_shift_peel(plain_pair(), ("n",))
        text = emit_direct(plan)
        assert "if (" not in text
        assert "! iterations moved" not in text

    def test_epilogue_order_matches_nests(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        text = emit_direct(plan)
        c_pos = text.index("c[i] = ")
        d_pos = text.index("d[i] = ")
        assert c_pos < d_pos


class TestEmitSpmd:
    def test_depth1_spmd(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        text = emit_spmd(plan)
        assert "iblksz" in text
        assert text.count("<BARRIER>") == 1

    def test_peeled_rect_count_2d(self, jacobi_sequence):
        plan = derive_shift_peel(jacobi_sequence, ("n",))
        text = emit_spmd(plan)
        # One shifted nest, two pivot dimensions -> two post-barrier loops.
        post = text.split("<BARRIER>")[1]
        assert post.count("a[i,j] = b[i,j]") == 2


class TestProgramPrinting:
    def test_multi_sequence_program(self):
        seq1 = plain_pair()
        seq2 = LoopSequence(
            (LoopNest((Loop.make("i", 2, n - 1),), (assign("b", i, load("c", i)),)),),
            name="second",
        )
        prog = Program(
            arrays=(
                ArrayDecl.make("a", n + 1),
                ArrayDecl.make("b", n + 1),
                ArrayDecl.make("c", n + 1),
            ),
            sequences=(seq1, seq2),
            params=("n",),
            name="multi",
        )
        text = format_program(prog)
        assert text.count("! sequence") == 2
        assert "param n" in text

    def test_fuse_program_handles_all_sequences(self):
        from repro.core import fuse_program
        from repro.kernels import hydro2d

        results = fuse_program(hydro2d.program())
        assert len(results) == 3
        assert results[0].plan.max_shift == 5
        assert results[2].plan.is_plain_fusion()

    def test_summary_line(self, fig9_sequence):
        result = fuse_sequence(fig9_sequence, ("n",))
        line = result.summary_line()
        assert "3 nests" in line and "2/2" in line
