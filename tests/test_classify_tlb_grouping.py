"""Miss classification, TLB model, fusable-set grouping."""

import numpy as np
import pytest

from repro.cachesim import (
    CacheConfig,
    MissBreakdown,
    TLBConfig,
    classify_misses,
    simulate_tlb,
)
from repro.core import group_fusable
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load

i = Affine.var("i")
n = Affine.var("n")


class TestMissClassification:
    CFG = CacheConfig(256, 64, 1)  # 4 lines, direct-mapped

    def test_pure_cold(self):
        addrs = np.array([0, 64, 128, 192], dtype=np.int64)
        b = classify_misses(addrs, self.CFG)
        assert (b.cold, b.capacity, b.conflict) == (4, 0, 0)

    def test_pure_conflict(self):
        # Two lines in the same set, alternating: fully-associative holds
        # both, direct-mapped thrashes.
        addrs = np.array([0, 256] * 5, dtype=np.int64)
        b = classify_misses(addrs, self.CFG)
        assert b.cold == 2
        assert b.capacity == 0
        assert b.conflict == 8

    def test_pure_capacity(self):
        # Cycle over 8 distinct lines (> 4-line capacity): even the
        # fully-associative cache misses every access under LRU.
        addrs = np.tile(np.arange(8) * 64, 3).astype(np.int64)
        b = classify_misses(addrs, self.CFG)
        assert b.cold == 8
        assert b.capacity == 16
        assert b.total == 24

    def test_totals_consistent(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 4096, 2000).astype(np.int64)
        from repro.cachesim import simulate

        b = classify_misses(addrs, self.CFG)
        assert b.total == simulate(addrs, self.CFG).misses

    def test_partitioning_removes_conflict_not_capacity(self):
        """Cache partitioning's whole effect is on the conflict bucket."""
        from repro.experiments.common import setup_kernel
        from repro.machine import convex_spp1000, unfused_proc_trace

        cont = setup_kernel(
            "ll18", convex_spp1000(), 4, layout_kind="contiguous",
            params={"n": 63},
        )
        part = setup_kernel(
            "ll18", convex_spp1000(), 4, layout_kind="partitioned",
            params={"n": 63},
        )
        cfg = cont.machine.cache
        t_cont = unfused_proc_trace(cont.seq, cont.params, cont.layout)
        t_part = unfused_proc_trace(part.seq, part.params, part.layout)
        b_cont = classify_misses(t_cont, cfg)
        b_part = classify_misses(t_part, cfg)
        assert b_part.conflict < b_cont.conflict
        # Same data touched (up to line-alignment noise from layout offsets).
        assert abs(b_part.cold - b_cont.cold) <= 0.01 * b_cont.cold

    def test_str(self):
        assert "conflict" in str(MissBreakdown(10, 1, 2, 3))


class TestTLB:
    def test_reach(self):
        cfg = TLBConfig(entries=64, page_bytes=4096)
        assert cfg.reach_bytes == 256 * 1024

    def test_full_assoc_geometry(self):
        cache = TLBConfig(entries=8, page_bytes=4096).as_cache()
        assert cache.num_sets == 1
        assert cache.associativity == 8

    def test_sequential_pages(self):
        cfg = TLBConfig(entries=4, page_bytes=4096)
        addrs = np.arange(0, 8 * 4096, 8, dtype=np.int64)
        stats = simulate_tlb(addrs, cfg)
        assert stats.misses == 8  # one per page

    def test_thrash_beyond_entries(self):
        cfg = TLBConfig(entries=2, page_bytes=4096)
        addrs = np.array([0, 4096, 8192] * 4, dtype=np.int64)
        assert simulate_tlb(addrs, cfg).misses == 12

    def test_set_associative_variant(self):
        cfg = TLBConfig(entries=8, page_bytes=4096, associativity=2)
        assert cfg.as_cache().num_sets == 4

    def test_bad_config(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)
        with pytest.raises(ValueError):
            TLBConfig(entries=8, associativity=3)

    def test_gaps_cost_no_tlb_entries(self):
        """Partitioning gaps are never touched: TLB misses depend only on
        pages actually referenced, which padding *does* inflate."""
        from repro.experiments.common import setup_kernel
        from repro.machine import convex_spp1000, unfused_proc_trace

        tlb = TLBConfig(entries=16, page_bytes=4096)
        part = setup_kernel(
            "ll18", convex_spp1000(), 4, layout_kind="partitioned",
            params={"n": 63},
        )
        cont = setup_kernel(
            "ll18", convex_spp1000(), 4, layout_kind="contiguous",
            params={"n": 63},
        )
        t_part = unfused_proc_trace(part.seq, part.params, part.layout)
        t_cont = unfused_proc_trace(cont.seq, cont.params, cont.layout)
        m_part = simulate_tlb(t_part, tlb).misses
        m_cont = simulate_tlb(t_cont, tlb).misses
        assert m_part <= m_cont * 1.3  # gaps add at most page-rounding noise


def _nest(write, rhs_builder, depth2=False, parallel=True):
    loops = (Loop.make("i", 2, n - 1, parallel=parallel),)
    if depth2:
        loops = (Loop.make("j", 2, n - 1), Loop.make("i", 2, n - 1))
        return LoopNest(loops, (assign(write, (Affine.var("j"), i), rhs_builder(i)),))
    return LoopNest(loops, (assign(write, i, rhs_builder(i)),))


class TestGrouping:
    def test_single_group_when_all_fusable(self, fig9_sequence):
        result = group_fusable(fig9_sequence, ("n",))
        assert result.num_groups == 1
        assert result.groups[0].plan is not None
        assert result.groups[0].plan.max_shift == 2

    def test_breaks_on_nonuniform(self):
        l1 = _nest("a", lambda v: load("b", v))
        l2 = LoopNest(
            (Loop.make("i", 2, n - 1),), (assign("c", i * 2, load("a", i * 3)),)
        )
        l3 = _nest("d", lambda v: load("c", v))
        result = group_fusable(LoopSequence((l1, l2, l3)), ("n",))
        assert result.num_groups >= 2
        assert "non-uniform" in result.break_reasons[0]

    def test_breaks_on_sequential_loop(self):
        l1 = _nest("a", lambda v: load("b", v))
        l2 = _nest("c", lambda v: load("a", v), parallel=False)
        result = group_fusable(LoopSequence((l1, l2)), ("n",))
        assert result.num_groups == 2
        assert "sequential" in result.break_reasons[0]

    def test_barriers_accounting(self, fig9_sequence):
        result = group_fusable(fig9_sequence, ("n",))
        # One fused group: fused barrier + peel barrier.
        assert result.barriers_after() == 2

    def test_groups_wider_than_naive(self):
        """Shift-and-peel grouping keeps nests the naive partitioner splits
        (backward/forward uniform deps are fine here, fatal there)."""
        from repro.baselines import naive_fusion_partition

        from repro.kernels import get_kernel

        seq = get_kernel("filter").program().sequences[0]
        ours = group_fusable(seq, ("m", "n"))
        naive = naive_fusion_partition(seq, ("m", "n"))
        assert ours.num_groups < naive.num_fused_loops
        assert ours.num_groups == 1

    def test_describe(self, fig9_sequence):
        text = group_fusable(fig9_sequence, ("n",)).describe()
        assert "group 1 (fused): L1, L2, L3" in text
