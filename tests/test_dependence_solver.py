"""Exact distance solver, GCD and Banerjee tests."""

import pytest

from repro.dependence.solver import (
    banerjee_test,
    gcd_test,
    solve_uniform_distance,
)
from repro.ir import Affine, ArrayRef

i = Affine.var("i")
j = Affine.var("j")
k = Affine.var("k")


def ref(*subs):
    return ArrayRef.make("a", *subs)


class TestUniformDistances:
    def test_simple_forward(self):
        # src writes a[i], dst reads a[i-1]: element i touched at dst iter i+1
        sol = solve_uniform_distance(ref(i), ref(i - 1), ("i",))
        assert sol.status == "uniform"
        assert sol.distance == (1,)

    def test_simple_backward(self):
        sol = solve_uniform_distance(ref(i), ref(i + 1), ("i",))
        assert sol.distance == (-1,)

    def test_zero(self):
        sol = solve_uniform_distance(ref(i), ref(i), ("i",))
        assert sol.distance == (0,)

    def test_2d(self):
        sol = solve_uniform_distance(
            ref(i, j), ref(i - 2, j + 1), ("i", "j")
        )
        assert sol.distance == (2, -1)

    def test_inner_vars_existential(self):
        # Fused dim i; inner dim k appears in a separate subscript: any k
        # pairs match, distance in i still determined.
        sol = solve_uniform_distance(ref(i, k), ref(i - 1, k + 3), ("i",), ("k",))
        assert sol.status == "uniform"
        assert sol.distance == (1,)

    def test_coefficient_mismatch_is_nonuniform(self):
        sol = solve_uniform_distance(ref(i * 2), ref(i), ("i",))
        assert sol.status == "nonuniform"

    def test_scaled_but_matching_coefficients(self):
        # a[2i] vs a[2i-4]: uniform distance 2.
        sol = solve_uniform_distance(ref(i * 2), ref(i * 2 - 4), ("i",))
        assert sol.status == "uniform"
        assert sol.distance == (2,)

    def test_gcd_independence(self):
        # a[2i] vs a[2i+1]: parity differs -> no dependence.
        sol = solve_uniform_distance(ref(i * 2), ref(i * 2 + 1), ("i",))
        assert sol.status == "independent"

    def test_missing_fused_var_unconstrained(self):
        # a[k] vs a[k]: i unconstrained -> nonuniform in i.
        sol = solve_uniform_distance(ref(k), ref(k), ("i",), ("k",))
        assert sol.status == "nonuniform"
        assert sol.free_dims == (0,)

    def test_dimension_mismatch_independent(self):
        sol = solve_uniform_distance(ref(i), ref(i, j), ("i",))
        assert sol.status == "independent"

    def test_parameter_mismatch_independent(self):
        nvar = Affine.var("n")
        sol = solve_uniform_distance(ref(i + nvar), ref(i), ("i",))
        assert sol.status == "independent"

    def test_parameter_match_uniform(self):
        nvar = Affine.var("n")
        sol = solve_uniform_distance(ref(i + nvar), ref(i + nvar - 1), ("i",))
        assert sol.distance == (1,)

    def test_different_arrays_rejected(self):
        with pytest.raises(ValueError):
            solve_uniform_distance(
                ArrayRef.make("a", i), ArrayRef.make("b", i), ("i",)
            )

    def test_multidim_partial(self):
        sol = solve_uniform_distance(
            ref(i, j), ref(i - 1, j), ("i", "j")
        )
        assert sol.distance == (1, 0)

    def test_coupled_subscripts(self):
        # a[i+j] in both: distance underdetermined (di + dj = 0): nonuniform.
        sol = solve_uniform_distance(ref(i + j), ref(i + j), ("i", "j"))
        assert sol.status == "nonuniform"


class TestClassicFilters:
    def test_gcd_possible(self):
        assert gcd_test([2, 4], 6)
        assert gcd_test([3], 9)

    def test_gcd_proves_independence(self):
        assert not gcd_test([2, 4], 3)

    def test_gcd_empty(self):
        assert gcd_test([], 0)
        assert not gcd_test([0, 0], 5)

    def test_banerjee_within_bounds(self):
        assert banerjee_test([1, -1], 3, [(0, 10), (0, 10)])

    def test_banerjee_proves_independence(self):
        assert not banerjee_test([1], 100, [(0, 10)])

    def test_banerjee_negative_coeffs(self):
        assert banerjee_test([-2], -6, [(0, 10)])
        assert not banerjee_test([-2], 6, [(0, 10)])
