"""The native tier: C emission, the ``.so`` cache, fallback, quarantine.

Bit-identity of the compiled C against the interpreter is the
equivalence suite's job (``test_backend_equivalence.py`` sweeps ``cjit``
with every other backend); this file covers what is *specific* to the
native tier — the compiler discovery and fingerprinting, the
signature+fingerprint ``.so`` cache levels, the pool worker's
native-before-source resolution, the jit fallback when no compiler
exists (checksums must not move, the counter must), and the quarantine
coupling: a corrupt ``.py`` source takes its ``.so``/``.c`` siblings
with it, and a corrupt ``.so`` is never re-dlopened.
"""

import numpy as np
import pytest

from conftest import copy_arrays

from repro.codegen import emitc
from repro.core import build_execution_plan, derive_shift_peel
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.runtime.backend import checksum, get_backend
from repro.runtime.plancache import PlanCache, default_cache

HAVE_CC = emitc.find_compiler() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler on PATH")


@pytest.fixture(autouse=True)
def _fresh_fallback_counters():
    emitc.reset_fallback_stats()
    yield
    emitc.reset_fallback_stats()


def _chain(scale=2.0):
    i = Affine.var("i")
    n = Affine.var("n")
    return LoopSequence(
        (
            LoopNest((Loop.make("i", 2, n - 1),),
                     (assign("a", i, load("b", i) * scale),), name="L1"),
            LoopNest((Loop.make("i", 2, n - 1),),
                     (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
                     name="L2"),
        ),
        name="chain",
    )


def _plan(procs=2, n=17, scale=2.0):
    plan = derive_shift_peel(_chain(scale), ("n",))
    return build_execution_plan(plan, {"n": n}, num_procs=procs)


def _arrays(size=18, seed=0):
    rng = np.random.default_rng(seed)
    return {name: rng.random(size) + 0.5 for name in "abc"}


class TestCompilerDiscovery:
    def test_env_var_pins_and_disables(self, monkeypatch):
        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        assert emitc.find_compiler() is None
        assert emitc.compiler_fingerprint() is None

    @needs_cc
    def test_fingerprint_stable_and_flag_sensitive(self):
        fp = emitc.compiler_fingerprint()
        assert fp and fp == emitc.compiler_fingerprint()
        assert len(fp) == 12 and all(c in "0123456789abcdef" for c in fp)


@needs_cc
class TestNativeModule:
    def test_source_exports_module_metadata(self):
        ep = _plan()
        source = emitc.emit_plan_c_source(ep)
        for symbol in ("REPRO_SIGNATURE", "REPRO_CODEGEN_VERSION",
                       "REPRO_NPROCS", "REPRO_PEEL_DEPS",
                       "run_fused", "run_peeled"):
            assert symbol in source
        assert ep.signature() in source

    def test_compiled_module_matches_jit_bitwise(self):
        ep = _plan()
        native = emitc.compile_plan_native(ep)
        jit = default_cache().get(ep)
        assert native.nprocs == jit.nprocs
        assert native.peel_deps == jit.peel_deps
        base = _arrays()
        got, ref = copy_arrays(base), copy_arrays(base)
        stats = native.run(got)
        ref_stats = jit.run(ref)
        assert stats == ref_stats
        assert checksum(got) == checksum(ref)

    def test_out_of_range_proc_rejected(self):
        native = emitc.compile_plan_native(_plan())
        with pytest.raises(emitc.CJitError, match="run_fused"):
            native.run_fused(native.nprocs + 3, _arrays())


@needs_cc
class TestNativeCacheLevels:
    def test_miss_then_memory_then_disk_hit(self):
        cache = default_cache()
        ep = _plan()
        module, reason = cache.get_native(ep)
        assert module is not None and reason is None
        assert cache.stats.native_misses == 1
        assert cache.stats.native_compile_seconds > 0
        fp = emitc.compiler_fingerprint()
        assert cache.native_path(module.signature, fp).exists()
        assert cache.c_source_path(module.signature).exists()
        again, _ = cache.get_native(ep)
        assert again is module
        assert cache.stats.native_memory_hits == 1
        # a fresh instance (a fresh process, in effect) dlopens the .so
        fresh = PlanCache(root=cache.root)
        loaded, reason = fresh.get_native(ep)
        assert loaded is not None and reason is None
        assert fresh.stats.native_disk_hits == 1
        assert fresh.stats.native_misses == 0
        base = _arrays()
        a, b = copy_arrays(base), copy_arrays(base)
        loaded.run(a)
        module.run(b)
        assert checksum(a) == checksum(b)

    def test_corrupt_so_quarantined_never_redlopened(self):
        """The .so is built with :func:`emitc.compile_c` directly — not
        through ``get_native`` — so this process never dlopens the intact
        object (glibc dedupes dlopen by pathname, which would mask the
        corruption with the stale-but-valid mapping)."""
        cache = default_cache()
        ep = _plan()
        sig = ep.signature()
        fp = emitc.compiler_fingerprint()
        so = cache.native_path(sig, fp)
        so.parent.mkdir(parents=True, exist_ok=True)
        emitc.compile_c(emitc.emit_plan_c_source(ep), so)
        so.write_bytes(b"this is not an ELF shared object")
        fresh = PlanCache(root=cache.root)
        assert fresh.peek_native(sig) is None
        assert fresh.stats.native_quarantined == 1
        bad = so.parent / (so.name + ".bad")
        assert bad.exists() and not so.exists()
        # the next get_native recompiles instead of trusting the corpse
        recompiled, reason = fresh.get_native(ep)
        assert recompiled is not None and reason is None
        assert fresh.stats.native_misses == 1

    def test_py_quarantine_takes_native_siblings(self):
        """Satellite: a corrupt ``.py`` source quarantines its ``.so``
        and ``.c`` siblings too — whatever corrupted the source cannot
        be assumed to have spared the objects next to it."""
        cache = default_cache()
        ep = _plan()
        module, _ = cache.get_native(ep)
        sig = module.signature
        fp = emitc.compiler_fingerprint()
        cache.source_path(sig).write_text("def broken(", encoding="utf-8")
        fresh = PlanCache(root=cache.root)
        assert fresh.peek(sig) is None
        assert fresh.stats.quarantined == 1
        assert fresh.stats.native_quarantined >= 1
        assert not cache.source_path(sig).exists()
        assert not cache.native_path(sig, fp).exists()
        assert not cache.c_source_path(sig).exists()
        so = cache.native_path(sig, fp)
        assert (so.parent / (so.name + ".bad")).exists()
        assert cache.source_path(sig).with_suffix(".bad").exists()
        # and the quarantined .so is invisible to later native lookups
        assert fresh.peek_native(sig) is None

    def test_pool_worker_resolves_native_before_source(self):
        from repro.runtime.pool import _load_module

        cache = default_cache()
        ep = _plan()
        module, _ = cache.get_native(ep)
        jit = cache.get(ep)  # .py source also on disk
        loaded, mode = _load_module({}, jit.signature, str(cache.root),
                                    jit.source)
        assert mode == "native"
        assert loaded.kind == "cjit"
        base = _arrays()
        a, b = copy_arrays(base), copy_arrays(base)
        loaded.run(a)
        jit.run(b)
        assert checksum(a) == checksum(b)


class TestFallback:
    def test_no_compiler_backend_falls_back_bit_identical(self, monkeypatch):
        """The headline no-compiler contract: same bits as jit, one note,
        a counted fallback — never an exception."""
        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        ep = _plan()
        base = _arrays()
        got, ref = copy_arrays(base), copy_arrays(base)
        counts = get_backend("cjit").run(ep, got)
        ref_counts = get_backend("jit").run(ep, ref)
        assert counts == ref_counts
        assert checksum(got) == checksum(ref)
        stats = emitc.fallback_stats()
        assert stats["count"] == 1
        assert "no C compiler" in stats["last_reason"]

    def test_fallback_note_printed_once_counted_always(self, monkeypatch,
                                                       capsys):
        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        ep = _plan()
        for _ in range(3):
            get_backend("cjit").run(ep, _arrays())
        err = capsys.readouterr().err
        assert err.count("cjit: falling back to jit") == 1
        assert emitc.fallback_stats()["count"] == 3

    def test_no_cache_path_falls_back_too(self, monkeypatch):
        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        ep = _plan()
        base = _arrays()
        got, ref = copy_arrays(base), copy_arrays(base)
        get_backend("cjit").run(ep, got, no_cache=True)
        get_backend("jit").run(ep, ref, no_cache=True)
        assert checksum(got) == checksum(ref)
        assert emitc.fallback_stats()["count"] == 1


class TestBenchIntegration:
    def test_measure_kernel_records_native_tier(self):
        from repro.runtime.benchmarking import measure_kernel

        record = measure_kernel("jacobi", "cjit", n=21, procs=2, repeat=2)
        ref = measure_kernel("jacobi", "jit", n=21, procs=2, repeat=2)
        assert record["checksum"] == ref["checksum"]
        assert record["cjit"]["native"] is HAVE_CC
        assert "cache" in record
        if HAVE_CC:
            assert record["cjit"]["compiler_fingerprint"] \
                == emitc.compiler_fingerprint()
            assert record["cache"]["native_misses"] >= 1
        else:
            assert record["cjit"]["fallback_reason"]

    def test_measure_kernel_no_compiler_identical_checksum(self, monkeypatch):
        from repro.runtime.benchmarking import measure_kernel

        ref = measure_kernel("jacobi", "jit", n=21, procs=2, repeat=2)
        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        record = measure_kernel("jacobi", "cjit", n=21, procs=2, repeat=2)
        assert record["checksum"] == ref["checksum"]
        assert record["cjit"]["native"] is False
        assert "no C compiler" in record["cjit"]["fallback_reason"]
        assert emitc.fallback_stats()["count"] >= 1

    @needs_cc
    def test_warm_alias_reuses_cached_so(self):
        """Second prepare in the same cache: program alias plus cached
        ``.so`` — no planning, no compiling, native modules live."""
        from repro.runtime.benchmarking import (
            execute_prepared,
            prepare_kernel,
        )

        prepare_kernel("jacobi", n=21, procs=2, backend="cjit")
        prep = prepare_kernel("jacobi", n=21, procs=2, backend="cjit")
        assert prep.plans == [] and prep.native_modules
        assert prep.cache_stats.get("native_misses", 0) == 0
        _, counters, digest = execute_prepared(prep, "cjit")
        ref = prepare_kernel("jacobi", n=21, procs=2, backend="jit")
        _, ref_counters, ref_digest = execute_prepared(ref, "jit")
        assert digest == ref_digest and counters == ref_counters


class TestCliNarration:
    def test_exec_reports_native_tier(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["exec", "jacobi", "--backend", "cjit", "--n", "21",
                       "--repeat", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "native tier:" in out
        if HAVE_CC:
            assert "native tier: live" in out
        else:
            assert "fell back to jit" in out

    def test_exec_no_compiler_notes_fallback(self, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        rc = cli_main(["exec", "jacobi", "--backend", "cjit", "--n", "21",
                       "--repeat", "1"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "native tier: fell back to jit" in captured.out
        assert "no C compiler" in captured.out
