"""Affine expressions and bound expressions."""

import pytest

from repro.ir.expr import Affine, BoundExpr, as_affine


class TestAffineConstruction:
    def test_constant(self):
        e = Affine.constant(5)
        assert e.is_constant()
        assert e.const == 5
        assert e.coeffs == ()

    def test_var(self):
        e = Affine.var("i")
        assert e.coeff("i") == 1
        assert e.coeff("j") == 0
        assert not e.is_constant()

    def test_var_with_coeff_and_const(self):
        e = Affine.var("i", 3, 7)
        assert e.coeff("i") == 3
        assert e.const == 7

    def test_zero_coefficients_dropped(self):
        e = Affine.from_dict({"i": 0, "j": 2})
        assert e.names == ("j",)

    def test_canonical_ordering(self):
        a = Affine.from_dict({"b": 1, "a": 2})
        b = Affine.from_dict({"a": 2, "b": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_var_zero_coeff_is_constant(self):
        assert Affine.var("i", 0, 4) == Affine.constant(4)


class TestAffineArithmetic:
    def test_add_vars(self):
        e = Affine.var("i") + Affine.var("j")
        assert e.coeff("i") == 1 and e.coeff("j") == 1

    def test_add_int(self):
        e = Affine.var("i") + 3
        assert e.const == 3

    def test_radd(self):
        e = 3 + Affine.var("i")
        assert e.const == 3

    def test_sub_cancels(self):
        i = Affine.var("i")
        assert (i - i).is_constant()
        assert (i - i).const == 0

    def test_rsub(self):
        e = 10 - Affine.var("i")
        assert e.coeff("i") == -1
        assert e.const == 10

    def test_neg(self):
        e = -(Affine.var("i") + 2)
        assert e.coeff("i") == -1 and e.const == -2

    def test_scale(self):
        e = (Affine.var("i") + 1) * 3
        assert e.coeff("i") == 3 and e.const == 3

    def test_scale_by_zero(self):
        assert (Affine.var("i") * 0).is_constant()

    def test_mul_non_int_rejected(self):
        with pytest.raises(TypeError):
            Affine.var("i") * 1.5


class TestAffineSubstitution:
    def test_shift_var(self):
        e = Affine.var("i", 2, 1).shift_var("i", 3)
        assert e.const == 1 + 2 * 3

    def test_shift_absent_var_is_noop(self):
        e = Affine.var("i")
        assert e.shift_var("j", 5) is e

    def test_substitute(self):
        e = Affine.var("i", 2) + Affine.var("j")
        out = e.substitute("i", Affine.var("k") + 1)
        assert out.coeff("k") == 2 and out.coeff("j") == 1 and out.const == 2

    def test_rename(self):
        e = Affine.var("i") + Affine.var("j")
        out = e.rename({"i": "x"})
        assert set(out.names) == {"x", "j"}


class TestAffineEval:
    def test_eval(self):
        e = Affine.var("i", 2) - Affine.var("j") + 5
        assert e.eval({"i": 3, "j": 4}) == 2 * 3 - 4 + 5

    def test_eval_missing_raises(self):
        with pytest.raises(KeyError):
            Affine.var("i").eval({})

    def test_uses_only(self):
        e = Affine.var("i") + Affine.var("n")
        assert e.uses_only({"i", "n"})
        assert not e.uses_only({"i"})


class TestAffineStr:
    @pytest.mark.parametrize(
        "expr,text",
        [
            (Affine.var("i"), "i"),
            (Affine.var("i") + 1, "i+1"),
            (Affine.var("i") - 1, "i-1"),
            (Affine.var("i", -1), "-i"),
            (Affine.constant(0), "0"),
            (Affine.var("i", 2) + 3, "2*i+3"),
        ],
    )
    def test_str(self, expr, text):
        assert str(expr) == text


class TestAsAffine:
    def test_int(self):
        assert as_affine(4) == Affine.constant(4)

    def test_str(self):
        assert as_affine("k") == Affine.var("k")

    def test_passthrough(self):
        e = Affine.var("i")
        assert as_affine(e) is e

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_affine(1.5)


class TestBoundExpr:
    def test_affine_bound(self):
        b = BoundExpr.affine(Affine.var("i") + 1)
        assert b.eval({"i": 4}) == 5

    def test_min(self):
        b = BoundExpr.minimum(Affine.var("i"), Affine.constant(3))
        assert b.eval({"i": 10}) == 3
        assert b.eval({"i": 1}) == 1

    def test_max(self):
        b = BoundExpr.maximum(Affine.var("i"), 3)
        assert b.eval({"i": 10}) == 10

    def test_single_term_collapses_to_affine(self):
        assert BoundExpr.minimum(Affine.var("i")).kind == "affine"

    def test_shift(self):
        b = BoundExpr.minimum("i", 3).shift(2)
        assert b.eval({"i": 0}) == 2

    def test_str(self):
        assert str(BoundExpr.minimum("i", 3)) == "min(i,3)"

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            BoundExpr("median", (Affine.var("i"),))

    def test_empty_terms(self):
        with pytest.raises(ValueError):
            BoundExpr("min", ())
