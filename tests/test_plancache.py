"""Plan-signature and plan-cache correctness.

The jit backend is only sound if the cache key changes whenever execution
could differ: different shapes, processor counts, strip sizes, kernel
bodies and even hand-mutated processor boxes must all produce distinct
signatures, while an identical plan built twice must produce the same one.
On-disk entries are never trusted: corrupt or stale files are discarded
and regenerated.  Finally, the whole point of the cache is measured here —
a warm ``repro exec`` spends (essentially) nothing planning or compiling.
"""

import dataclasses

import numpy as np
import pytest

from conftest import copy_arrays

from repro.codegen.emitpy import JitCompileError, compile_plan, compile_source
from repro.core import build_execution_plan, derive_shift_peel, max_processors
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.kernels import get_kernel
from repro.runtime.backend import checksum, get_backend, run_jit
from repro.runtime.benchmarking import measure_kernel
from repro.runtime.plancache import (
    PlanCache,
    default_cache,
    program_signature,
)


def _chain(scale=2.0):
    i = Affine.var("i")
    n = Affine.var("n")
    return LoopSequence(
        (
            LoopNest((Loop.make("i", 2, n - 1),),
                     (assign("a", i, load("b", i) * scale),), name="L1"),
            LoopNest((Loop.make("i", 2, n - 1),),
                     (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
                     name="L2"),
        ),
        name="chain",
    )


def _chain_plan(n=13, procs=2, scale=2.0):
    seq = _chain(scale)
    plan = derive_shift_peel(seq, ("n",))
    return build_execution_plan(plan, {"n": n}, num_procs=procs)


def _kernel_plan(kernel="jacobi", n=13, procs=2):
    info = get_kernel(kernel)
    program = info.program()
    seq = program.sequences[0]
    plan = derive_shift_peel(seq, tuple(program.params), seq.fusable_depth())
    params = {p: n for p in program.params}
    legal = max_processors(plan, params)[0]
    return build_execution_plan(plan, params, num_procs=min(procs, legal))


class TestPlanSignature:
    def test_identical_plans_share_a_signature(self):
        assert _chain_plan().signature() == _chain_plan().signature()

    def test_shape_procs_strip_all_distinguish(self):
        base = _kernel_plan(n=13, procs=2)
        signatures = {
            base.signature(),
            base.signature(strip=3),
            base.signature(strip=4),
            _kernel_plan(n=21, procs=2).signature(),
            _kernel_plan(n=13, procs=3).signature(),
        }
        assert len(signatures) == 5

    def test_mutated_kernel_body_invalidates(self):
        assert (_chain_plan(scale=2.0).signature()
                != _chain_plan(scale=3.0).signature())

    def test_mutated_processor_boxes_invalidate(self):
        """Degenerate-range tests shrink boxes via dataclasses.replace; a
        cache keyed only on the source program would serve stale code."""
        ep = _chain_plan(n=9, procs=1)
        proc = ep.processors[0]
        shrunk = dataclasses.replace(
            proc, fused=tuple(((5, 4),) for _ in proc.fused)
        )
        mutated = dataclasses.replace(ep, processors=(shrunk,))
        assert ep.signature() != mutated.signature()


class TestProgramSignature:
    def test_sensitivity(self):
        program = get_kernel("jacobi").program()
        base = program_signature(program, {"n": 13}, 2, None)
        assert base == program_signature(program, {"n": 13}, 2, None)
        assert base != program_signature(program, {"n": 21}, 2, None)
        assert base != program_signature(program, {"n": 13}, 3, None)
        assert base != program_signature(program, {"n": 13}, 2, 3)

    def test_different_kernels_differ(self):
        params = {"n": 13}
        assert (program_signature(get_kernel("jacobi").program(), params, 2, None)
                != program_signature(get_kernel("ll18").program(), params, 2, None))


class TestPlanCacheLevels:
    def test_memory_then_disk_hits(self, tmp_path):
        cache = PlanCache(root=tmp_path / "c")
        ep = _chain_plan()
        module = cache.get(ep)
        assert cache.stats.misses == 1
        assert cache.get(ep) is module
        assert cache.stats.memory_hits == 1
        cache.clear_memory()
        again = cache.get(ep)
        assert cache.stats.disk_hits == 1
        assert again.signature == module.signature
        assert again.source == module.source

    def test_lru_eviction(self, tmp_path):
        cache = PlanCache(root=tmp_path / "c", memory_slots=2)
        for n in (9, 11, 13):
            cache.get(_chain_plan(n=n))
        assert cache.stats.evictions == 1
        assert len(cache._memory) == 2

    def test_corrupt_disk_entry_regenerated(self, tmp_path):
        cache = PlanCache(root=tmp_path / "c")
        ep = _chain_plan()
        module = cache.get(ep)
        path = cache.source_path(module.signature)
        path.write_text("this is not python (")
        cache.clear_memory()
        fresh = cache.get(ep)
        assert fresh.source == module.source
        assert path.read_text() == module.source  # rewritten, not trusted

    def test_stale_signature_entry_ignored(self, tmp_path):
        """A file whose embedded SIGNATURE disagrees with its name (e.g. a
        hand-edited or wrongly copied entry) is dropped and regenerated."""
        cache = PlanCache(root=tmp_path / "c")
        victim = cache.get(_chain_plan(n=9))
        other = cache.get(_chain_plan(n=13))
        path = cache.source_path(victim.signature)
        path.write_text(other.source)  # embedded SIGNATURE now mismatches
        cache.clear_memory()
        assert cache.peek(victim.signature) is None
        assert not path.exists()
        regenerated = cache.get(_chain_plan(n=9))
        assert regenerated.source == victim.source

    def test_compile_source_rejects_missing_signature(self):
        with pytest.raises(JitCompileError):
            compile_source("import numpy as np\ndef run(arrays):\n    pass\n")

    def test_alias_roundtrip(self, tmp_path):
        cache = PlanCache(root=tmp_path / "c")
        ep = _chain_plan()
        module = cache.get(ep)
        assert cache.lookup_alias("somekey") is None
        assert cache.stats.alias_misses == 1
        cache.link_alias("somekey", [module.signature])
        cache.clear_memory()
        modules = cache.lookup_alias("somekey")
        assert modules is not None and len(modules) == 1
        assert modules[0].signature == module.signature
        assert cache.stats.alias_hits == 1

    def test_alias_with_missing_plan_entry_misses(self, tmp_path):
        cache = PlanCache(root=tmp_path / "c")
        cache.link_alias("dangling", ["0" * 64])
        assert cache.lookup_alias("dangling") is None

    def test_default_cache_honours_env(self, tmp_path):
        # conftest's autouse fixture points REPRO_JIT_CACHE_DIR at tmp_path.
        assert str(default_cache().root).startswith(str(tmp_path))


class TestJitExecutionThroughCache:
    def _arrays(self):
        rng = np.random.default_rng(11)
        return {name: rng.random(14) + 0.5 for name in "abc"}

    def test_cached_and_fresh_results_identical(self):
        ep = _chain_plan()
        base = self._arrays()
        via_cache = copy_arrays(base)
        run_jit(ep, via_cache)
        again = copy_arrays(base)
        run_jit(ep, again)  # memory hit this time
        no_cache = copy_arrays(base)
        run_jit(ep, no_cache, no_cache=True)
        vector = copy_arrays(base)
        get_backend("vector").run(ep, vector)
        assert checksum(via_cache) == checksum(again)
        assert checksum(via_cache) == checksum(no_cache)
        assert checksum(via_cache) == checksum(vector)

    def test_no_cache_touches_no_files(self, tmp_path):
        ep = _chain_plan()
        run_jit(ep, self._arrays(), no_cache=True)
        cache_root = tmp_path / "jit-cache"
        assert not cache_root.exists() or not any(cache_root.rglob("*.py"))

    def test_compile_plan_counts_match_module_constants(self):
        ep = _chain_plan(n=17, procs=2)
        module = compile_plan(ep)
        rng = np.random.default_rng(0)
        stats = module.run({name: rng.random(18) + 0.5 for name in "abc"})
        assert stats["fused_iterations"] > 0
        assert stats["peeled_iterations"] > 0


class TestWarmExecOverhead:
    def test_warm_run_spends_under_5_percent_planning(self):
        """The acceptance bar for the cache: a warm ``repro exec`` must
        spend less than 5 % of its wall clock planning + compiling."""
        measure_kernel("jacobi", "jit", n=33, procs=2, repeat=2)  # cold
        warm = measure_kernel("jacobi", "jit", n=33, procs=2, repeat=2)
        overhead = warm["plan_seconds"] + warm["compile_seconds"]
        assert warm["cache"]["alias_hits"] == 1
        assert overhead == 0.0  # the alias hit skips planning entirely
        assert overhead < 0.05 * warm["total_seconds"]

    def test_cold_then_warm_checksums_match(self):
        cold = measure_kernel("ll18", "jit", n=17, procs=2, repeat=1)
        warm = measure_kernel("ll18", "jit", n=17, procs=2, repeat=1)
        assert cold["checksum"] == warm["checksum"]
        assert warm["plan_seconds"] == 0.0


class TestConcurrentCache:
    """Many processes hammering one cache directory (the daemon serves
    concurrent tenants, and several daemons may share a cache)."""

    CHILD = r"""
import sys
from repro.core import build_execution_plan, derive_shift_peel, max_processors
from repro.kernels import get_kernel
from repro.runtime.plancache import PlanCache

root = sys.argv[1]
info = get_kernel("jacobi")
program = info.program()
seq = program.sequences[0]
plan = derive_shift_peel(seq, tuple(program.params), seq.fusable_depth())
params = {p: 33 for p in program.params}
legal = max_processors(plan, params)[0]
ep = build_execution_plan(plan, params, num_procs=min(2, legal))
cache = PlanCache(root=root)
signatures = set()
for _ in range(8):
    module = cache.get(ep)          # races the atomic tmp+rename write
    signatures.add(module.signature)
    cache.link_alias("stress-key", [module.signature])
    cache.clear_memory()            # force the disk path next round
    modules = cache.lookup_alias("stress-key")
    assert modules is not None, "alias unreadable mid-race"
    assert modules[0].signature == module.signature
assert len(signatures) == 1, signatures
print(signatures.pop())
"""

    def test_multiprocess_stress_leaves_consistent_cache(self, tmp_path):
        """Six processes x eight rounds of get/link_alias/lookup_alias
        against one directory: every process sees one stable signature,
        the surviving entry compiles, and no temp files leak."""
        import json as json_mod
        import os
        import subprocess
        import sys as sys_mod
        from pathlib import Path

        root = tmp_path / "shared-cache"
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src)
        procs = [
            subprocess.Popen(
                [sys_mod.executable, "-c", self.CHILD, str(root)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=env)
            for _ in range(6)
        ]
        outputs = [p.communicate(timeout=120) for p in procs]
        for p, (out, err) in zip(procs, outputs):
            assert p.returncode == 0, err
        signatures = {out.strip() for out, _ in outputs}
        assert len(signatures) == 1
        signature = signatures.pop()
        expected = _kernel_plan(n=33, procs=2).signature()
        assert signature == expected
        # The surviving on-disk entry is intact and self-consistent.
        cache = PlanCache(root=root)
        source = cache.source_path(signature).read_text(encoding="utf-8")
        module = compile_source(source, expected_signature=signature)
        assert module.signature == signature
        alias = json_mod.loads(
            cache.alias_path("stress-key").read_text(encoding="utf-8"))
        assert alias == [signature]
        # Atomic writes: no orphaned .tmp<pid> files anywhere.
        stray = [p for p in root.rglob("*") if ".tmp" in p.name]
        assert stray == []
