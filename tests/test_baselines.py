"""Baselines: naive fusion partitioner, alignment with replication."""

import numpy as np

from conftest import alloc_1d, copy_arrays

from repro.baselines import derive_alignment, naive_fusion_partition
from repro.ir import (
    Affine,
    ArrayDecl,
    Loop,
    LoopNest,
    LoopSequence,
    assign,
    load,
    single_sequence_program,
)
from repro.runtime import run_nest, run_parallel, run_sequence_serial

i = Affine.var("i")
n = Affine.var("n")


class TestNaivePartition:
    def test_fig9_cannot_fuse(self, fig9_sequence):
        part = naive_fusion_partition(fig9_sequence, ("n",))
        assert part.groups == ((0,), (1,), (2,))
        assert part.synchronizations() == 3

    def test_plain_chain_fuses(self):
        l1 = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", i, load("b", i)),))
        l2 = LoopNest((Loop.make("i", 2, n - 1),), (assign("c", i, load("a", i)),))
        part = naive_fusion_partition(LoopSequence((l1, l2)), ("n",))
        assert part.groups == ((0, 1),)
        assert part.largest_group == 2

    def test_bound_mismatch_blocks(self):
        l1 = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", i, load("b", i)),))
        l2 = LoopNest((Loop.make("i", 1, n),), (assign("c", i, load("a", i)),))
        part = naive_fusion_partition(LoopSequence((l1, l2)), ("n",))
        assert part.num_fused_loops == 2

    def test_shift_and_peel_beats_naive_on_kernels(self):
        from repro.kernels import get_kernel

        for name in ("ll18", "calc", "filter"):
            info = get_kernel(name)
            seq = info.program().sequences[0]
            part = naive_fusion_partition(seq, info.program().params)
            # Naive fusion leaves more than one loop (and hence barriers);
            # shift-and-peel always reaches a single fused loop.
            assert part.num_fused_loops > 1, name


def fig14_program():
    """Paper Fig. 14: L1 a[i]=b[i-1]; L2 b[i]=a[i-1] — alignment conflict."""
    l1 = LoopNest(
        (Loop.make("i", 2, n - 1),), (assign("a", i, load("b", i - 1)),), name="L1"
    )
    l2 = LoopNest(
        (Loop.make("i", 2, n - 1),), (assign("b", i, load("a", i - 1)),), name="L2"
    )
    decls = [ArrayDecl.make("a", n + 1), ArrayDecl.make("b", n + 1)]
    return single_sequence_program([l1, l2], decls, ("n",), "fig14")


class TestAlignmentFig14:
    def test_replicates_data_only(self):
        # Fig. 14's published resolution: replicate array b into b0; the
        # flow dependence on a is handled purely by alignment.
        res = derive_alignment(fig14_program())
        assert res.replicated_arrays == ("b",)
        assert res.replicated_statements == 0
        assert [c.name for c in res.copy_nests] == ["copy_b"]
        assert min(res.offsets) == 0  # normalized lags

    def test_exact_correctness(self):
        prog = fig14_program()
        res = derive_alignment(prog)
        params = {"n": 25}
        base = alloc_1d("ab", 26, seed=3)
        oracle = copy_arrays(base)
        run_sequence_serial(prog.sequences[0], params, oracle)
        for procs in (1, 2, 4):
            got = copy_arrays(base)
            for name in res.replicated_arrays:
                got[name + "0"] = np.zeros(26)
            for cn in res.copy_nests:
                run_nest(cn, params, got)
            ep = res.execution_plan(params, procs)
            run_parallel(ep, got, interleave="random", rng=np.random.default_rng(1))
            for name in ("a", "b"):
                assert np.allclose(got[name], oracle[name]), (procs, name)


class TestAlignmentLL18:
    def test_paper_replication_counts(self):
        """Sec. 5: LL18 needs two arrays and two statements replicated."""
        from repro.kernels import ll18

        res = derive_alignment(ll18.program())
        assert sorted(res.replicated_arrays) == ["zr", "zz"]
        assert res.replicated_statements == 2

    def test_interior_correctness(self):
        from repro.kernels import ll18

        prog = ll18.program()
        res = derive_alignment(prog)
        params = {"n": 20}
        rng = np.random.default_rng(5)
        base = {a: rng.random((21, 21)) + 1.0 for a in ll18.ARRAYS}
        oracle = copy_arrays(base)
        run_sequence_serial(prog.sequences[0], params, oracle)
        got = copy_arrays(base)
        for name in res.replicated_arrays:
            got[name + "0"] = np.zeros((21, 21))
        for cn in res.copy_nests:
            run_nest(cn, params, got)
        ep = res.execution_plan(params, 3)
        run_parallel(ep, got, interleave="random", rng=np.random.default_rng(2))
        interior = (slice(3, 18), slice(3, 18))
        for name in base:
            assert np.allclose(got[name][interior], oracle[name][interior]), name

    def test_shadow_decls(self):
        from repro.kernels import ll18

        res = derive_alignment(ll18.program())
        decls = res.shadow_decls()
        assert {d.name for d in decls} == {"zr0", "zz0"}
        assert decls[0].shape == ll18.program().array("zr").shape

    def test_offsets_synchronization_free(self):
        """After replication, every remaining dependence is loop-independent
        (gap zero) — the defining property of the alignment baseline."""
        from repro.dependence import analyze_sequence
        from repro.kernels import ll18

        prog = ll18.program()
        res = derive_alignment(prog)
        summary = analyze_sequence(res.seq, prog.params, 1)
        for dep in summary.deps:
            gap = dep.distance[0] + res.offsets[dep.dst] - res.offsets[dep.src]
            assert gap == 0, str(dep)
