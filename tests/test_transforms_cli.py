"""Loop transformations (distribution, interchange, strip-mine) and CLI."""

import pytest

from conftest import alloc_2d, arrays_equal, copy_arrays

from repro.cli import main as cli_main
from repro.ir import (
    Affine,
    Loop,
    LoopNest,
    TransformError,
    assign,
    distribute_nest,
    interchange,
    interchange_legal,
    load,
    reversal_legal,
    strip_mine,
)
from repro.runtime import run_nest, run_sequence_serial

i = Affine.var("i")
j = Affine.var("j")
n = Affine.var("n")


def two_stmt_nest():
    return LoopNest(
        (Loop.make("j", 1, n - 1), Loop.make("i", 1, n - 1)),
        (
            assign("a", (j, i), load("x", j, i) + load("y", j, i)),
            assign("b", (j, i), load("a", j, i) * 2.0),
        ),
        name="L",
    )


class TestDistribution:
    def test_splits_statements(self):
        seq = distribute_nest(two_stmt_nest())
        assert len(seq) == 2
        assert [len(nest.body) for nest in seq] == [1, 1]
        assert seq[0].body[0].target.array == "a"
        assert seq[1].body[0].target.array == "b"

    def test_semantics_preserved(self):
        nest = two_stmt_nest()
        params = {"n": 12}
        base = alloc_2d(["a", "b", "x", "y"], (12, 12), seed=0)
        direct = copy_arrays(base)
        run_nest(nest, params, direct)
        split = copy_arrays(base)
        run_sequence_serial(distribute_nest(nest), params, split)
        assert arrays_equal(direct, split)

    def test_distributed_then_refused(self):
        """Distribution produces a sequence shift-and-peel can re-fuse."""
        from repro.core import fuse_sequence

        seq = distribute_nest(two_stmt_nest())
        result = fuse_sequence(seq, ("n",), depth=1)
        assert result.plan.is_plain_fusion()  # a->b at distance 0

    def test_singleton_noop(self):
        nest = LoopNest(
            (Loop.make("i", 0, n),), (assign("a", i, load("b", i)),)
        )
        seq = distribute_nest(nest)
        assert len(seq) == 1

    def test_order_preserved_through_chain(self):
        nest = LoopNest(
            (Loop.make("i", 1, n - 1),),
            (
                assign("a", i, load("x", i)),
                assign("b", i, load("a", i)),
                assign("c", i, load("b", i)),
            ),
        )
        seq = distribute_nest(nest)
        assert [nest.body[0].target.array for nest in seq] == ["a", "b", "c"]


class TestInterchange:
    def test_legal_swap(self):
        nest = two_stmt_nest()
        assert interchange_legal(nest, 0, 1)
        swapped = interchange(nest, 0, 1)
        assert swapped.loop_vars == ("i", "j")

    def test_semantics_preserved(self):
        nest = two_stmt_nest()
        params = {"n": 10}
        base = alloc_2d(["a", "b", "x", "y"], (10, 10), seed=1)
        one = copy_arrays(base)
        run_nest(nest, params, one)
        two = copy_arrays(base)
        run_nest(interchange(nest, 0, 1), params, two)
        assert arrays_equal(one, two)

    def test_illegal_swap_detected(self):
        # a[j][i] = a[j-1][i+1]: distance (1, -1); swapping makes it (-1, 1).
        nest = LoopNest(
            (Loop.make("j", 1, n - 1, parallel=False),
             Loop.make("i", 1, n - 2, parallel=False)),
            (assign("a", (j, i), load("a", j - 1, i + 1)),),
        )
        assert not interchange_legal(nest, 0, 1)
        with pytest.raises(TransformError):
            interchange(nest, 0, 1)

    def test_bad_levels(self):
        with pytest.raises(TransformError):
            interchange(two_stmt_nest(), 0, 5)

    def test_same_level_noop(self):
        nest = two_stmt_nest()
        assert interchange(nest, 1, 1) is nest


class TestStripMineAndReversal:
    def test_strip_mine_structure(self):
        mined = strip_mine(two_stmt_nest(), 0, 8)
        assert mined.depth == 3
        assert mined.loop_vars == ("jj", "j", "i")

    def test_strip_mine_bad_args(self):
        with pytest.raises(TransformError):
            strip_mine(two_stmt_nest(), 0, 0)
        with pytest.raises(TransformError):
            strip_mine(two_stmt_nest(), 9, 4)

    def test_reversal(self):
        nest = two_stmt_nest()
        assert reversal_legal(nest, 0)
        recur = LoopNest(
            (Loop.make("i", 1, n - 1, parallel=False),),
            (assign("a", i, load("a", i - 1)),),
        )
        assert not reversal_legal(recur, 0)


FIG9 = """
param n
real a(n+1), b(n+1), c(n+1), d(n+1)
doall i = 2, n-1
    a[i] = b[i]
end do
doall i = 2, n-1
    c[i] = a[i+1] + a[i-1]
end do
"""


class TestCli:
    def test_transform(self, tmp_path, capsys):
        src = tmp_path / "prog.loop"
        src.write_text(FIG9)
        assert cli_main(["transform", str(src)]) == 0
        out = capsys.readouterr().out
        assert "do ii = istart, iend" in out
        assert "<BARRIER>" in out

    def test_transform_direct_style(self, tmp_path, capsys):
        src = tmp_path / "prog.loop"
        src.write_text(FIG9)
        assert cli_main(["transform", str(src), "--style", "direct"]) == 0
        assert "if (" in capsys.readouterr().out

    def test_analyze(self, tmp_path, capsys):
        src = tmp_path / "prog.loop"
        src.write_text(FIG9)
        assert cli_main(["analyze", str(src), "--n", "100000"]) == 0
        out = capsys.readouterr().out
        assert "shift=(1,)" in out
        assert "legal up to" in out
        assert "profitability" in out

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ll18" in out and "fig22" in out

    def test_experiment_table2(self, capsys):
        assert cli_main(["experiment", "table2"]) == 0
        assert "matches paper" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert cli_main(["experiment", "fig99"]) == 2

    def test_simulate(self, capsys):
        assert cli_main(
            ["simulate", "jacobi", "--procs", "1,4", "--scale", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "jacobi on" in out
