"""Fusion profitability predictor (Secs. 5-6) and its simulator validation."""

import pytest

from repro.core import (
    derive_shift_peel,
    evaluate_profitability,
    peel_overhead_fraction,
    shared_data_bytes,
)
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def ll18_setup():
    info = get_kernel("ll18")
    program = info.program()
    plan = derive_shift_peel(program.sequences[0], program.params, 1)
    return program, plan


class TestDataFootprint:
    def test_shared_data_bytes(self, ll18_setup):
        program, _ = ll18_setup
        # 9 arrays of (n+1)^2 doubles.
        assert shared_data_bytes(program, {"n": 127}) == 9 * 128 * 128 * 8


class TestPeelOverhead:
    def test_zero_for_one_proc(self, ll18_setup):
        program, plan = ll18_setup
        assert peel_overhead_fraction(plan, {"n": 127}, 1) == 0.0

    def test_grows_with_procs(self, ll18_setup):
        program, plan = ll18_setup
        f8 = peel_overhead_fraction(plan, {"n": 127}, 8)
        f32 = peel_overhead_fraction(plan, {"n": 127}, 32)
        assert 0 < f8 < f32 < 1


class TestAdvice:
    def test_profitable_when_data_large(self, ll18_setup):
        program, plan = ll18_setup
        advice = evaluate_profitability(
            program, plan, {"n": 127}, num_procs=4, cache_bytes=64 * 1024
        )
        assert advice.profitable
        assert "exceeds cache" in advice.reason

    def test_unprofitable_when_data_fits(self, ll18_setup):
        program, plan = ll18_setup
        advice = evaluate_profitability(
            program, plan, {"n": 127}, num_procs=64, cache_bytes=1024 * 1024
        )
        assert not advice.profitable
        assert "fits in cache" in advice.reason

    def test_unprofitable_when_overhead_dominates(self, ll18_setup):
        program, plan = ll18_setup
        advice = evaluate_profitability(
            program, plan, {"n": 34}, num_procs=8, cache_bytes=1024,
            overhead_threshold=0.05,
        )
        assert not advice.profitable
        assert "overhead" in advice.reason

    def test_crossover_estimate(self, ll18_setup):
        program, plan = ll18_setup
        advice = evaluate_profitability(
            program, plan, {"n": 127}, num_procs=2, cache_bytes=64 * 1024
        )
        data = shared_data_bytes(program, {"n": 127})
        assert advice.crossover_procs == data // (64 * 1024)

    def test_str(self, ll18_setup):
        program, plan = ll18_setup
        advice = evaluate_profitability(
            program, plan, {"n": 127}, 4, 64 * 1024
        )
        assert "fuse" in str(advice)


class TestPredictorAgainstSimulator:
    def test_predicts_simulated_crossover_direction(self):
        """Where the predictor says 'do not fuse', the simulator should show
        little or negative benefit; where it says 'fuse', clear benefit."""
        from repro.experiments.common import setup_kernel
        from repro.machine import convex_spp1000, measure_fused, measure_unfused

        exp = setup_kernel("ll18", convex_spp1000(), dims_div=4)
        program = exp.program
        plan = exp.fusion.plan
        cache = exp.machine.cache.capacity_bytes

        profitable = evaluate_profitability(program, plan, exp.params, 1, cache)
        assert profitable.profitable
        unf = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 1)
        fus = measure_fused(exp.exec_plan(1), exp.layout, exp.machine, strip=exp.strip)
        assert fus.time_cycles < unf.time_cycles

        crowded = evaluate_profitability(
            program, plan, exp.params, num_procs=30, cache_bytes=cache
        )
        assert not crowded.profitable
