"""The point-to-point sync map: sound, tight on neighbors, and emitted.

``peel_predecessors`` replaces the global barrier between the fused and
peeled phases, so its correctness budget is asymmetric: missing a real
fused(q) -> peeled(p) dependence is a race, while an extra predecessor
only costs waiting.  The soundness test therefore compares the
rectangular-footprint map against an exact per-iteration oracle (every
concrete read/write address of every phase, intersected directly) across
kernels, sizes and processor counts, asserting the map is a superset of
the oracle.  Tightness is only spot-checked on the paper's
uniform-dependence kernels, where footprints are exact and the sets must
collapse to the geometric neighbors.
"""

import pytest

from repro.codegen.emitpy import compile_plan
from repro.core import (
    FusionLegalityError,
    build_execution_plan,
    derive_shift_peel,
    max_processors,
)
from repro.core.syncdeps import peel_predecessors, phase_footprints
from repro.kernels import all_kernels, get_kernel

KERNEL_NAMES = sorted(info.name for info in all_kernels())


def _plans(kernel, n, procs):
    """Per-sequence execution plans (legality-clamped like the harness)."""
    info = get_kernel(kernel)
    program = info.program()
    params = {p: n for p in program.params}
    plans = []
    for seq in program.sequences:
        plan = derive_shift_peel(seq, tuple(program.params),
                                 seq.fusable_depth())
        legal = max_processors(plan, params)[0]
        try:
            plans.append(
                build_execution_plan(plan, params,
                                     num_procs=min(procs, legal))
            )
        except FusionLegalityError:
            continue
    if not plans:
        pytest.skip(f"{kernel}: no sequence legal at n={n}")
    return plans


def _iter_box(box):
    import itertools

    if any(hi < lo for lo, hi in box):
        return iter(())
    return itertools.product(*(range(lo, hi + 1) for lo, hi in box))


def _exact_addresses(nest, boxes, params):
    """Every concrete (array, index-tuple) written/read over ``boxes``."""
    writes, reads = set(), set()
    for box in boxes:
        for ivec in _iter_box(box):
            env = dict(params)
            for var, val in zip(nest.loop_vars, ivec):
                env[var] = val
            for ref in (r for st in nest.body for r in st.writes()):
                writes.add((ref.array,
                            tuple(s.eval(env) for s in ref.subscripts)))
            for ref in (r for st in nest.body for r in st.reads()):
                reads.add((ref.array,
                           tuple(s.eval(env) for s in ref.subscripts)))
    return writes, reads


def _oracle_predecessors(exec_plan):
    """Predecessor sets from exact addresses — no over-approximation."""
    nests = list(exec_plan.plan.seq)
    params = exec_plan.params
    phases = []
    for proc in exec_plan.processors:
        fw, fr = set(), set()
        for k, nest in enumerate(nests):
            w, r = _exact_addresses(nest, [tuple(proc.fused[k])], params)
            fw |= w
            fr |= r
        pw, pr = set(), set()
        for rect in proc.peeled:
            w, r = _exact_addresses(nests[rect.nest_idx], [rect.ranges],
                                    params)
            pw |= w
            pr |= r
        phases.append((fw, fr, pw, pr))
    out = []
    for p, (_, _, pw, pr) in enumerate(phases):
        preds = set()
        for q, (qw, qr, _, _) in enumerate(phases):
            if q == p:
                continue
            if (qw & pr) or (qr & pw) or (qw & pw):
                preds.add(q)
        out.append(preds)
    return out


class TestSoundness:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize("n,procs", [(13, 3), (21, 4)])
    def test_map_covers_exact_dependences(self, kernel, n, procs):
        """The conservative map must be a superset of the exact oracle —
        a missed predecessor would be a data race under p2p sync."""
        for ep in _plans(kernel, n, procs):
            deps = peel_predecessors(ep)
            oracle = _oracle_predecessors(ep)
            assert len(deps) == len(ep.processors)
            for p, exact in enumerate(oracle):
                assert exact <= set(deps[p]), (
                    f"{kernel} P={len(oracle)} proc {p}: map {deps[p]} "
                    f"misses exact predecessors {exact - set(deps[p])}"
                )

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_no_self_and_in_range(self, kernel):
        for ep in _plans(kernel, 21, 4):
            nprocs = len(ep.processors)
            for p, preds in enumerate(peel_predecessors(ep)):
                assert p not in preds
                assert tuple(sorted(preds)) == preds
                assert all(0 <= q < nprocs for q in preds)


class TestNeighborhoods:
    def test_1d_chain_depends_on_successor_only(self):
        """ll18's 1-D blocks peel at the upper boundary: each processor
        waits only on the block after it, and the last on nobody."""
        [ep] = _plans("ll18", 33, 4)
        deps = peel_predecessors(ep)
        nprocs = len(ep.processors)
        assert deps[nprocs - 1] == ()
        for p in range(nprocs - 1):
            assert deps[p] == (p + 1,)

    def test_2d_grid_depends_on_neighbors_only(self):
        """jacobi on a 2x2 grid: predecessors are grid neighbors, never
        the full peer set, and the last processor waits on nobody."""
        [ep] = _plans("jacobi", 33, 4)
        deps = peel_predecessors(ep)
        assert deps == ((1, 2, 3), (3,), (3,), ())

    def test_single_processor_has_no_deps(self):
        for kernel in ("jacobi", "ll18"):
            for ep in _plans(kernel, 21, 1):
                assert peel_predecessors(ep) == ((),)

    def test_footprints_shape(self):
        [ep] = _plans("jacobi", 21, 4)
        fps = phase_footprints(ep)
        assert len(fps) == len(ep.processors)
        for fw, fr, _pw, _pr in fps:
            # every fused block both reads and writes something
            assert fw and fr


class TestCodegenEmission:
    def test_module_peel_deps_matches_analysis(self):
        """Generated modules carry PEEL_DEPS identical to the analysis —
        the pool trusts the module, so the two must never diverge."""
        for kernel, procs in (("jacobi", 4), ("ll18", 3)):
            for ep in _plans(kernel, 21, procs):
                module = compile_plan(ep)
                assert module.peel_deps == peel_predecessors(ep)
                assert "PEEL_DEPS" in module.source
                assert module.nprocs == len(module.peel_deps)
