"""Failure injection: the verification harness must *catch* miscompiles.

A correctness harness is only trustworthy if it fails when the
transformation is wrong.  These tests build deliberately broken
shift-and-peel plans — shift too small, peeling skipped, nest order
swapped — and assert that the adversarial executor detects the divergence
from the serial oracle, and that the structural validators reject what
they can reject statically.
"""

import dataclasses

import numpy as np

from conftest import alloc_1d, arrays_equal, copy_arrays

from repro.core import build_execution_plan, derive_shift_peel, verify_coverage
from repro.core.derive import DimensionPlan, ShiftPeelPlan
from repro.ir import LoopSequence
from repro.runtime import run_parallel, run_sequence_serial

PARAMS = {"n": 41}
SIZE = 42


def _tampered(plan: ShiftPeelPlan, shifts=None, peels=None) -> ShiftPeelPlan:
    dim = plan.dims[0]
    new_dim = DimensionPlan(
        var=dim.var,
        shifts=tuple(shifts) if shifts is not None else dim.shifts,
        peels=tuple(peels) if peels is not None else dim.peels,
    )
    return dataclasses.replace(plan, dims=(new_dim,))


def _diverges(seq, plan, procs, interleaves=("sequential", "random")) -> bool:
    """True when some interleave of the (possibly broken) plan differs from
    the serial oracle."""
    base = alloc_1d(sorted(seq.arrays()), SIZE, seed=13)
    oracle = copy_arrays(base)
    run_sequence_serial(seq, PARAMS, oracle)
    ep = build_execution_plan(plan, PARAMS, num_procs=procs, validate=False)
    for mode in interleaves:
        got = copy_arrays(base)
        run_parallel(
            ep, got, interleave=mode, strip=4, rng=np.random.default_rng(0)
        )
        if not arrays_equal(oracle, got):
            return True
    return False


class TestInjectedShiftErrors:
    def test_missing_shift_detected(self, fig9_sequence):
        """Without shifting, the backward dependence reads not-yet-written
        values even serially: the harness must flag it."""
        plan = derive_shift_peel(fig9_sequence, ("n",))
        broken = _tampered(plan, shifts=(0, 0, 0))
        assert _diverges(fig9_sequence, broken, procs=1)

    def test_undersized_shift_detected(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        broken = _tampered(plan, shifts=(0, 1, 1))  # L3 needs 2
        assert _diverges(fig9_sequence, broken, procs=1)

    def test_oversized_shift_is_still_correct(self, fig9_sequence):
        """Extra shifting wastes locality but never breaks correctness."""
        plan = derive_shift_peel(fig9_sequence, ("n",))
        over = _tampered(plan, shifts=(0, 2, 4), peels=(0, 1, 2))
        assert not _diverges(fig9_sequence, over, procs=3)


class TestInjectedPeelErrors:
    def test_missing_peel_detected_in_parallel(self, fig4_sequence):
        """Fig. 4's serializing dependence: without peeling, adversarial
        interleaving of blocks produces wrong results — while the
        sequential block order happens to mask it (which is exactly why
        the harness uses adversarial orders)."""
        plan = derive_shift_peel(fig4_sequence, ("n",))
        broken = _tampered(plan, peels=(0, 0))
        assert not _diverges(fig4_sequence, broken, procs=1)
        assert not _diverges(
            fig4_sequence, broken, procs=4, interleaves=("sequential",)
        )
        assert _diverges(
            fig4_sequence, broken, procs=4, interleaves=("reversed",)
        )

    def test_missing_peel_serial_is_fine(self, fig4_sequence):
        plan = derive_shift_peel(fig4_sequence, ("n",))
        broken = _tampered(plan, peels=(0, 0))
        assert not _diverges(fig4_sequence, broken, procs=1)


class TestInjectedStructureErrors:
    def test_swapped_nest_order_detected(self, fig9_sequence):
        swapped = LoopSequence(
            (fig9_sequence[1], fig9_sequence[0], fig9_sequence[2]),
            name="swapped",
        )
        plan_good = derive_shift_peel(fig9_sequence, ("n",))
        plan_swapped = dataclasses.replace(plan_good, seq=swapped)
        base = alloc_1d("abcd", SIZE, seed=3)
        oracle = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, oracle)
        ep = build_execution_plan(plan_swapped, PARAMS, num_procs=1, validate=False)
        got = copy_arrays(base)
        run_parallel(ep, got)
        assert not arrays_equal(oracle, got)

    def test_tampered_amounts_keep_coverage_but_break_order(self, fig9_sequence):
        """Shift/peel tampering never breaks *coverage* — the FUSED/PEELED
        formulas partition the space for any non-negative amounts — it
        breaks *ordering*.  Both facts are asserted."""
        plan = derive_shift_peel(fig9_sequence, ("n",))
        broken = _tampered(plan, peels=(0, 0, 0))
        ep = build_execution_plan(broken, PARAMS, num_procs=4, validate=False)
        assert verify_coverage(ep)  # still a partition...
        assert _diverges(
            fig9_sequence, broken, procs=4, interleaves=("reversed",)
        )  # ...but dependences cross the barrier the wrong way

    def test_coverage_check_catches_dropped_iterations(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, PARAMS, num_procs=4)
        proc0 = ep.processors[0]
        lo, hi = proc0.fused[0][0]
        shrunk = dataclasses.replace(
            proc0, fused=(((lo, hi - 1),),) + proc0.fused[1:]
        )
        broken = dataclasses.replace(
            ep, processors=(shrunk,) + ep.processors[1:]
        )
        assert not verify_coverage(broken)

    def test_coverage_check_catches_double_execution(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, PARAMS, num_procs=4)
        proc0 = ep.processors[0]
        lo, hi = proc0.fused[0][0]
        grown = dataclasses.replace(
            proc0, fused=(((lo, hi + 1),),) + proc0.fused[1:]
        )
        broken = dataclasses.replace(
            ep, processors=(grown,) + ep.processors[1:]
        )
        assert not verify_coverage(broken)


class TestHarnessEdgeCases:
    def test_block_size_exactly_nt(self, fig9_sequence):
        """Theorem 1's boundary: block == Nt must still be correct."""
        plan = derive_shift_peel(fig9_sequence, ("n",))
        nt = plan.dims[0].iteration_count_threshold
        trip = 39  # n=41: bounds 2..40
        procs = trip // nt
        base = alloc_1d("abcd", SIZE, seed=5)
        oracle = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, oracle)
        ep = build_execution_plan(plan, PARAMS, num_procs=procs)
        got = copy_arrays(base)
        run_parallel(ep, got, interleave="reversed")
        assert arrays_equal(oracle, got)

    def test_single_iteration_inner_ranges(self):
        from repro.ir import Affine, Loop, LoopNest, assign, load

        i = Affine.var("i")
        l1 = LoopNest((Loop.make("i", 5, 5),), (assign("a", i, load("b", i)),))
        l2 = LoopNest((Loop.make("i", 5, 5),), (assign("c", i, load("a", i)),))
        seq = LoopSequence((l1, l2))
        plan = derive_shift_peel(seq, ("n",))
        ep = build_execution_plan(plan, {"n": 10}, num_procs=1)
        assert verify_coverage(ep)
