"""Property-based tests (hypothesis) for the core invariants.

The headline property: for *any* randomly generated admissible chain of
stencil loops, any legal processor count and any adversarial interleaving,
shift-and-peel execution is bit-identical to the serial oracle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cachesim import CacheConfig, simulate
from repro.core import (
    BlockSchedule,
    build_execution_plan,
    derive_shift_peel,
    max_processors,
    verify_coverage,
)
from repro.dependence.solver import solve_uniform_distance
from repro.ir import Affine, ArrayRef, Loop, LoopNest, LoopSequence, assign, load
from repro.runtime import run_parallel, run_sequence_serial


# ---------------------------------------------------------------------------
# Affine algebra
# ---------------------------------------------------------------------------

names = st.sampled_from(["i", "j", "k", "n"])
affines = st.builds(
    lambda coeffs, const: Affine.from_dict(coeffs, const),
    st.dictionaries(names, st.integers(-5, 5), max_size=3),
    st.integers(-10, 10),
)
envs = st.fixed_dictionaries(
    {"i": st.integers(-50, 50), "j": st.integers(-50, 50),
     "k": st.integers(-50, 50), "n": st.integers(-50, 50)}
)


class TestAffineProperties:
    @given(affines, affines, envs)
    def test_add_homomorphism(self, a, b, env):
        assert (a + b).eval(env) == a.eval(env) + b.eval(env)

    @given(affines, affines, envs)
    def test_sub_homomorphism(self, a, b, env):
        assert (a - b).eval(env) == a.eval(env) - b.eval(env)

    @given(affines, st.integers(-6, 6), envs)
    def test_scale_homomorphism(self, a, k, env):
        assert (a * k).eval(env) == k * a.eval(env)

    @given(affines, st.integers(-5, 5), envs)
    def test_shift_var_meaning(self, a, delta, env):
        shifted = a.shift_var("i", delta)
        moved = dict(env)
        moved["i"] = env["i"] + delta
        assert shifted.eval(env) == a.eval(moved)

    @given(affines, affines, envs)
    def test_substitute_meaning(self, a, b, env):
        out = a.substitute("i", b)
        inner = dict(env)
        inner["i"] = b.eval(env)
        assert out.eval(env) == a.eval(inner)

    @given(affines)
    def test_canonical_roundtrip(self, a):
        rebuilt = Affine.from_dict(dict(a.coeffs), a.const)
        assert rebuilt == a and hash(rebuilt) == hash(a)


# ---------------------------------------------------------------------------
# Block scheduling
# ---------------------------------------------------------------------------


class TestScheduleProperties:
    @given(st.integers(0, 50), st.integers(1, 200), st.integers(1, 40))
    def test_blocks_partition_range(self, lower, trip, blocks):
        blocks = min(blocks, trip)
        sched = BlockSchedule(lower, lower + trip - 1, blocks)
        covered = []
        sizes = []
        for lo, hi in sched.blocks():
            covered.extend(range(lo, hi + 1))
            sizes.append(hi - lo + 1)
        assert covered == list(range(lower, lower + trip))
        assert max(sizes) - min(sizes) <= 1  # balanced
        for p in range(1, blocks + 1):
            lo, hi = sched.block(p)
            assert all(sched.owner(x) == p for x in (lo, hi))


# ---------------------------------------------------------------------------
# Distance solver: solving recovers a planted translation
# ---------------------------------------------------------------------------


class TestSolverProperties:
    @given(
        st.integers(-4, 4), st.integers(-4, 4),
        st.integers(-4, 4), st.integers(-4, 4),
    )
    def test_planted_distance_recovered(self, c1, c2, d1, d2):
        i, j = Affine.var("i"), Affine.var("j")
        src = ArrayRef.make("a", i + c1, j + c2)
        dst = ArrayRef.make("a", i + c1 - d1, j + c2 - d2)
        sol = solve_uniform_distance(src, dst, ("i", "j"))
        assert sol.status == "uniform"
        assert sol.distance == (d1, d2)


# ---------------------------------------------------------------------------
# Cache simulator vs reference
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=400),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_lru(self, raw, assoc):
        cfg = CacheConfig(1024, 64, assoc)
        addrs = (np.array(raw, dtype=np.int64) * 32)
        lines = addrs // cfg.line_bytes
        sets = lines % cfg.num_sets
        tags = lines // cfg.num_sets
        state: dict[int, list[int]] = {}
        misses = 0
        for s, t in zip(sets.tolist(), tags.tolist()):
            ways = state.setdefault(s, [])
            if t in ways:
                ways.remove(t)
                ways.insert(0, t)
            else:
                misses += 1
                ways.insert(0, t)
                if len(ways) > assoc:
                    ways.pop()
        assert simulate(addrs, cfg).misses == misses

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_miss_count_bounds(self, raw):
        cfg = CacheConfig(512, 64, 1)
        addrs = np.array(raw, dtype=np.int64)
        stats = simulate(addrs, cfg)
        distinct_lines = len(set((a // 64) for a in raw))
        assert distinct_lines <= stats.misses <= stats.accesses


# ---------------------------------------------------------------------------
# THE property: random chains fused == oracle under adversarial interleave
# ---------------------------------------------------------------------------


@st.composite
def stencil_chains(draw):
    """A random admissible sequence: nest k writes t<k> reading the previous
    temporary (or the input) at random offsets within +/-2."""
    num_nests = draw(st.integers(2, 5))
    chains = []
    for k in range(num_nests):
        source = f"t{k - 1}" if k else "src"
        offsets = draw(
            st.lists(st.integers(-2, 2), min_size=1, max_size=3, unique=True)
        )
        extra = draw(st.booleans())
        reads = [(source, off) for off in offsets]
        if extra and k >= 2:
            reads.append((f"t{k - 2}", draw(st.integers(-2, 2))))
        chains.append(reads)
    return chains


def build_chain_sequence(chains):
    i = Affine.var("i")
    n = Affine.var("n")
    nests = []
    for k, reads in enumerate(chains):
        rhs = None
        for array, off in reads:
            term = load(array, i + off)
            rhs = term if rhs is None else rhs + term
        nests.append(
            LoopNest(
                (Loop.make("i", 3, n - 3),),
                (assign(f"t{k}", i, rhs * 0.5),),
                name=f"L{k + 1}",
            )
        )
    return LoopSequence(tuple(nests), name="rand")


class TestFusionCorrectnessProperty:
    @given(stencil_chains(), st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_fused_equals_oracle(self, chains, procs, seed):
        seq = build_chain_sequence(chains)
        params = {"n": 48}
        plan = derive_shift_peel(seq, ("n",))
        procs = min(procs, max_processors(plan, params)[0])

        rng = np.random.default_rng(seed)
        names = ["src"] + [f"t{k}" for k in range(len(chains))]
        base = {name: rng.random(49) + 0.5 for name in names}

        oracle = {k: v.copy() for k, v in base.items()}
        run_sequence_serial(seq, params, oracle)

        ep = build_execution_plan(plan, params, num_procs=procs)
        assert verify_coverage(ep)
        got = {k: v.copy() for k, v in base.items()}
        run_parallel(
            ep, got, interleave="random", strip=3,
            rng=np.random.default_rng(seed + 1),
        )
        for name in names:
            assert np.allclose(oracle[name], got[name]), name

    @given(stencil_chains())
    @settings(max_examples=30, deadline=None)
    def test_derived_amounts_bound_distances(self, chains):
        """Shifts cover every backward distance; peels every forward one."""
        from repro.dependence import analyze_sequence

        seq = build_chain_sequence(chains)
        plan = derive_shift_peel(seq, ("n",))
        summary = analyze_sequence(plan.seq, ("n",))
        for dep in summary.deps:
            d = dep.distance[0]
            gap = d + plan.shift(dep.dst, 0) - plan.shift(dep.src, 0)
            assert gap >= 0, f"{dep} not made non-negative by shifting"
            if d > 0:
                assert plan.peel(dep.dst, 0) >= plan.peel(dep.src, 0) + d
