"""DSL lexer, parser, and source-to-source emission."""

import numpy as np
import pytest

from conftest import alloc_1d, arrays_equal, copy_arrays

from repro.lang import (
    LexError,
    ParseError,
    parse_program,
    parse_sequence,
    tokenize,
    transform_source,
)
from repro.lang.emit import emit_direct, emit_spmd, emit_stripmined
from repro.core import fuse_sequence
from repro.ir import format_sequence
from repro.runtime import run_sequence_serial


FIG9_SRC = """
param n
real a(n+1), b(n+1), c(n+1), d(n+1)
doall i = 2, n-1
    a[i] = b[i]
end do
doall i = 2, n-1
    c[i] = a[i+1] + a[i-1]
end do
doall i = 2, n-1
    d[i] = c[i+1] + c[i-1]
end do
"""


class TestLexer:
    def test_tokens(self):
        toks = tokenize("doall i = 2, n-1")
        kinds = [t.kind for t in toks]
        assert kinds == ["DOALL", "ID", "EQUALS", "NUM", "COMMA", "ID", "MINUS", "NUM", "NEWLINE", "EOF"]

    def test_comment_stripped(self):
        toks = tokenize("a[i] = 1 ! comment with $ symbols")
        assert all(t.kind != "ID" or t.text in ("a", "i") for t in toks)

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("a[i] = b @ c")

    def test_keywords_case_insensitive(self):
        toks = tokenize("DOALL i = 1, 2")
        assert toks[0].kind == "DOALL"


class TestParser:
    def test_fig9(self):
        prog = parse_program(FIG9_SRC, "fig9")
        assert prog.params == ("n",)
        assert prog.array_names() == ("a", "b", "c", "d")
        seq = prog.sequences[0]
        assert len(seq) == 3
        assert str(seq[1].body[0]) == "c[i] = (a[i+1]+a[i-1])"

    def test_paren_subscripts(self):
        seq = parse_sequence("doall i = 1, n\n a(i) = b(i-1)\nend do")
        assert str(seq[0].body[0]) == "a[i] = b[i-1]"

    def test_nested_loops(self):
        src = """
doall j = 2, n-1
doall i = 2, n-1
    a[i,j] = b[i,j-1]
end do
end do
"""
        seq = parse_sequence(src)
        assert seq[0].depth == 2
        assert seq[0].loop_vars == ("j", "i")

    def test_do_is_sequential(self):
        seq = parse_sequence("do i = 1, n\n a[i] = b[i]\nend do")
        assert not seq[0].loops[0].parallel

    def test_array_inference(self):
        prog = parse_program("doall i = 1, n\n a[i] = b[i]\nend do")
        assert set(prog.array_names()) == {"a", "b"}

    def test_param_inference(self):
        prog = parse_program("doall i = 1, m\n a[i] = b[i]\nend do")
        assert "m" in prog.params

    def test_rhs_arith_precedence(self):
        seq = parse_sequence("doall i = 1, n\n a[i] = b[i] + c[i] * 2\nend do")
        assert str(seq[0].body[0]) == "a[i] = (b[i]+(c[i]*2.0))"

    def test_coefficient_subscript(self):
        seq = parse_sequence("doall i = 1, n\n a[2*i] = b[i]\nend do")
        assert seq[0].body[0].target.subscripts[0].coeff("i") == 2

    def test_scalar_rhs_rejected(self):
        with pytest.raises(ParseError):
            parse_sequence("doall i = 1, n\n a[i] = x\nend do")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("param n")

    def test_float_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_sequence("doall i = 1, n\n a[1.5] = b[i]\nend do")

    def test_roundtrip_through_printer(self):
        seq = parse_sequence(FIG9_SRC)
        printed = format_sequence(seq)
        reparsed = parse_sequence(printed)
        assert format_sequence(reparsed) == printed


class TestEmission:
    def test_stripmined_matches_fig12(self):
        prog = parse_program(FIG9_SRC)
        plan = fuse_sequence(prog.sequences[0], prog.params).plan
        text = emit_stripmined(plan)
        assert "do ii = istart, iend, s" in text
        assert "max(ii-1,istart+1)" in text
        assert "min(ii+s-2,iend-1)" in text
        assert "<BARRIER>" in text
        assert "do i = iend, iend+1" in text  # peeled c loop
        assert "do i = iend-1, iend+2" in text  # peeled d loop

    def test_direct_matches_fig11a(self):
        prog = parse_program(FIG9_SRC)
        plan = fuse_sequence(prog.sequences[0], prog.params).plan
        text = emit_direct(plan)
        assert "if (i >= istart+1) c[i-1]" in text
        assert "if (i >= istart+2) d[i-2]" in text

    def test_spmd_has_prologue_and_peels(self, jacobi_sequence):
        plan = fuse_sequence(jacobi_sequence, ("n",)).plan
        text = emit_spmd(plan)
        assert "fpeel" in text and "ppeel" in text
        assert "<BARRIER>" in text
        assert text.count("end do") >= 6

    def test_transform_source_styles(self):
        for style in ("stripmined", "direct", "spmd"):
            out = transform_source(FIG9_SRC, style=style)
            assert "c[" in out
        with pytest.raises(ValueError):
            transform_source(FIG9_SRC, style="magic")

    def test_stripmined_rejects_multidim(self, jacobi_sequence):
        plan = fuse_sequence(jacobi_sequence, ("n",)).plan
        with pytest.raises(ValueError):
            emit_stripmined(plan)


class TestParsedExecution:
    def test_parsed_program_runs(self):
        prog = parse_program(FIG9_SRC)
        arrays = alloc_1d("abcd", 20, seed=1)
        run_sequence_serial(prog.sequences[0], {"n": 19}, arrays)
        assert np.isclose(arrays["d"][3], arrays["c"][4] + arrays["c"][2])

    def test_parsed_fusion_correct(self):
        from repro.core import build_execution_plan, derive_shift_peel
        from repro.runtime import run_parallel

        prog = parse_program(FIG9_SRC)
        seq = prog.sequences[0]
        base = alloc_1d("abcd", 30, seed=8)
        oracle = copy_arrays(base)
        run_sequence_serial(seq, {"n": 29}, oracle)
        plan = derive_shift_peel(seq, ("n",))
        ep = build_execution_plan(plan, {"n": 29}, num_procs=3)
        got = copy_arrays(base)
        run_parallel(ep, got, interleave="random", rng=np.random.default_rng(0))
        assert arrays_equal(oracle, got)
