"""Unit tests for the benchmark plumbing and the CI regression gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import store as bench_store
from repro.bench import telemetry as bench_telemetry

REPO = Path(__file__).resolve().parent.parent


def _load(relpath, name):
    spec = importlib.util.spec_from_file_location(name, REPO / relpath)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


bench_common = _load("benchmarks/_common.py", "bench_common")
checker = _load("scripts/check_bench_regression.py", "check_bench_regression")


class TestFormatResult:
    def test_uses_format_method(self):
        class Table:
            def format(self):
                return "| a | b |"

        assert bench_common.format_result(Table()) == "| a | b |"

    def test_falls_back_to_str(self):
        assert bench_common.format_result({"rows": 3}) == "{'rows': 3}"
        assert bench_common.format_result(1.5) == "1.5"
        assert bench_common.format_result("already text") == "already text"

    def test_non_callable_format_attribute(self):
        class Weird:
            format = "not a method"

            def __str__(self):
                return "weird"

        assert bench_common.format_result(Weird()) == "weird"

    def test_run_figure_archives_str_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_common, "OUT_DIR", tmp_path)

        class FakeBenchmark:
            def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
                return fn(*args, **(kwargs or {}))

        result = bench_common.run_figure(
            FakeBenchmark(), lambda x: {"value": x}, "fake_fig", 42
        )
        assert result == {"value": 42}
        assert (tmp_path / "fake_fig.txt").read_text() == "{'value': 42}\n"


def _entry(kernel="jacobi", backend="vector", shape="n=65", procs=4,
           seconds=0.01, chk="aaaa", warm=None):
    entry = {"kernel": kernel, "backend": backend, "shape": shape,
             "procs": procs, "seconds": seconds, "iterations": 100,
             "checksum": chk}
    if warm is not None:
        entry["warm_seconds"] = warm
    return entry


def _sampled_entry(kernel="jacobi", backend="vector", shape="n=65", procs=4,
                   samples=(0.1, 0.1, 0.1), chk="aaaa", aggregates=True):
    """An entry carrying per-repeat samples, optionally with the
    pre-computed aggregate fields the harness would add."""
    entry = _entry(kernel=kernel, backend=backend, shape=shape, procs=procs,
                   seconds=min(samples), chk=chk)
    entry["samples"] = [
        {"seconds": s, "plan_seconds": 0.0, "compile_seconds": 0.0}
        for s in samples
    ]
    if aggregates:
        entry.update(bench_telemetry.summarize_samples(list(samples)))
    return entry


def _payload(entries, calibration=0.1, floors=None, geomean_floors=None):
    payload = {"version": 2, "python": "3.11.7",
               "calibration_seconds": calibration, "entries": entries}
    if floors is not None:
        payload["floors"] = floors
    if geomean_floors is not None:
        payload["geomean_floors"] = geomean_floors
    return payload


def _flat(failures):
    return [f for cat in checker.CATEGORIES for f in failures[cat]]


class TestRegressionChecker:
    def test_clean_pass(self):
        payload = _payload([_entry()])
        failures, _ = checker.check(payload, payload, 0.25, 0.05)
        assert _flat(failures) == []
        assert checker.exit_code(failures) == checker.EXIT_OK

    def test_checksum_mismatch_fails(self):
        base = _payload([_entry(chk="aaaa")])
        fresh = _payload([_entry(chk="bbbb")])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert len(failures["checksum"]) == 1
        assert "checksum mismatch" in failures["checksum"][0]
        assert checker.exit_code(failures) == checker.EXIT_CHECKSUM

    def test_all_failing_entries_reported(self):
        """One bad entry must not mask the next — every failure is listed."""
        base = _payload([_entry(kernel="jacobi", chk="aaaa"),
                         _entry(kernel="ll18", chk="aaaa"),
                         _entry(kernel="calc", chk="aaaa", seconds=0.10)])
        fresh = _payload([_entry(kernel="jacobi", chk="bbbb"),
                          _entry(kernel="ll18", chk="cccc"),
                          _entry(kernel="calc", chk="aaaa", seconds=0.50)])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert len(failures["checksum"]) == 2
        assert len(failures["perf"]) == 1
        assert checker.exit_code(failures) == checker.EXIT_BOTH

    def test_slowdown_fails_and_tolerance_respected(self):
        base = _payload([_entry(seconds=0.10)])
        ok = _payload([_entry(seconds=0.12)])
        bad = _payload([_entry(seconds=0.20)])
        assert _flat(checker.check(ok, base, 0.25, 0.05)[0]) == []
        failures, _ = checker.check(bad, base, 0.25, 0.05)
        assert any("slowdown" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_micro_times_checksum_only(self):
        """Entries under --min-seconds never fail on timing noise."""
        base = _payload([_entry(seconds=0.001)])
        fresh = _payload([_entry(seconds=0.04)])  # 40x "slower" but micro
        assert _flat(checker.check(fresh, base, 0.25, 0.05)[0]) == []

    def test_calibration_rescales_allowance(self):
        """A machine measuring 2x slower on pure Python gets 2x budget."""
        base = _payload([_entry(seconds=0.10)], calibration=0.1)
        fresh = _payload([_entry(seconds=0.18)], calibration=0.2)
        assert _flat(checker.check(fresh, base, 0.25, 0.05)[0]) == []
        fresh_fast_machine = _payload([_entry(seconds=0.18)], calibration=0.1)
        failures, _ = checker.check(fresh_fast_machine, base, 0.25, 0.05)
        assert any("slowdown" in f for f in failures["perf"])

    def test_speedup_floor(self):
        floors = [{"kernel": "jacobi", "shape": "n=65", "procs": 4,
                   "fast": "vector", "slow": "interp", "min_speedup": 30}]
        entries_ok = [
            _entry(backend="interp", seconds=3.0, chk="cccc"),
            _entry(backend="vector", seconds=0.05, chk="cccc"),
        ]
        entries_bad = [
            _entry(backend="interp", seconds=1.0, chk="cccc"),
            _entry(backend="vector", seconds=0.05, chk="cccc"),
        ]
        base = _payload(entries_ok, floors=floors)
        assert _flat(checker.check(_payload(entries_ok), base, 0.25, 10.0)[0]) == []
        failures, _ = checker.check(_payload(entries_bad), base, 0.25, 10.0)
        assert any("speedup floor violated" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_geomean_floor(self):
        """jit must beat vector in geometric mean on warm_seconds."""
        geomeans = [{"fast": "jit", "slow": "vector",
                     "metric": "warm_seconds", "min_speedup": 1.3}]
        entries_ok = [
            _entry(kernel="jacobi", backend="vector", warm=0.030, chk="cc"),
            _entry(kernel="jacobi", backend="jit", warm=0.010, chk="cc"),
            _entry(kernel="ll18", backend="vector", warm=0.020, chk="dd"),
            _entry(kernel="ll18", backend="jit", warm=0.015, chk="dd"),
        ]  # ratios 3.0 and 1.33 -> geomean 2.0
        entries_bad = [
            _entry(kernel="jacobi", backend="vector", warm=0.010, chk="cc"),
            _entry(kernel="jacobi", backend="jit", warm=0.010, chk="cc"),
            _entry(kernel="ll18", backend="vector", warm=0.020, chk="dd"),
            _entry(kernel="ll18", backend="jit", warm=0.019, chk="dd"),
        ]  # ratios 1.0 and 1.05 -> geomean ~1.02
        base = _payload(entries_ok, geomean_floors=geomeans)
        failures, notes = checker.check(_payload(entries_ok), base, 0.25, 10.0)
        assert _flat(failures) == []
        assert any("geomean ok" in n for n in notes)
        failures, _ = checker.check(_payload(entries_bad), base, 0.25, 10.0)
        assert any("geomean floor violated" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_geomean_floor_skipped_without_metric(self):
        geomeans = [{"fast": "jit", "slow": "vector",
                     "metric": "warm_seconds", "min_speedup": 1.3}]
        entries = [_entry(backend="vector"), _entry(backend="jit")]
        base = _payload(entries, geomean_floors=geomeans)
        failures, notes = checker.check(_payload(entries), base, 0.25, 10.0)
        assert _flat(failures) == []
        assert any("not measurable" in n or "lacks" in n for n in notes)

    def test_no_overlap_fails(self):
        base = _payload([_entry(kernel="jacobi")])
        fresh = _payload([_entry(kernel="ll18")])
        failures, notes = checker.check(fresh, base, 0.25, 0.05)
        assert any("overlap" in f for f in failures["structure"])
        assert any("new entry" in n for n in notes)
        assert checker.exit_code(failures) == checker.EXIT_STRUCTURE

    def test_main_missing_files_exit_code(self, tmp_path, capsys):
        rc = checker.main(["--bench", str(tmp_path / "nope.json"),
                           "--baseline", str(tmp_path / "also-nope.json")])
        assert rc == checker.EXIT_MISSING
        assert "not found" in capsys.readouterr().err

    def test_main_exit_codes_by_category(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(
            _payload([_entry(chk="aaaa", seconds=0.10)])))
        # checksum only -> 3
        bench_path.write_text(json.dumps(
            _payload([_entry(chk="bbbb", seconds=0.10)])))
        assert checker.main(["--bench", str(bench_path),
                             "--baseline", str(baseline_path)]) == 3
        # perf only -> 4
        bench_path.write_text(json.dumps(
            _payload([_entry(chk="aaaa", seconds=0.50)])))
        assert checker.main(["--bench", str(bench_path),
                             "--baseline", str(baseline_path)]) == 4
        # both -> 5
        bench_path.write_text(json.dumps(
            _payload([_entry(chk="bbbb", seconds=0.50)])))
        assert checker.main(["--bench", str(bench_path),
                             "--baseline", str(baseline_path)]) == 5

    def test_main_update_preserves_floor_sections(self, tmp_path):
        floors = [{"kernel": "jacobi", "shape": "n=65", "procs": 4,
                   "fast": "vector", "slow": "interp", "min_speedup": 30}]
        geomeans = [{"fast": "jit", "slow": "vector",
                     "metric": "warm_seconds", "min_speedup": 1.3}]
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(
            _payload([_entry(seconds=0.10)], floors=floors,
                     geomean_floors=geomeans)))
        bench_path.write_text(json.dumps(_payload([_entry(seconds=0.09)])))
        rc = checker.main(["--bench", str(bench_path),
                           "--baseline", str(baseline_path), "--update"])
        assert rc == 0
        updated = json.loads(baseline_path.read_text())
        assert updated["floors"] == floors
        assert updated["geomean_floors"] == geomeans
        assert updated["entries"][0]["seconds"] == 0.09

    def test_main_refuses_update_on_failure(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(_payload([_entry(chk="aaaa")])))
        bench_path.write_text(json.dumps(_payload([_entry(chk="bbbb")])))
        rc = checker.main(["--bench", str(bench_path),
                           "--baseline", str(baseline_path), "--update"])
        assert rc == 1
        assert json.loads(baseline_path.read_text())["entries"][0][
            "checksum"] == "aaaa"
        assert "refusing" in capsys.readouterr().err

    def test_committed_baseline_is_wellformed(self):
        """The checked-in baseline must parse and carry the headline gates:
        vector >= 30x interp on jacobi, and warm jit >= 1.3x vector in
        geometric mean."""
        baseline = json.loads(
            (REPO / "benchmarks" / "BENCH_fastexec.json").read_text())
        assert baseline["entries"], "baseline has no entries"
        keys = {checker._key(e) for e in baseline["entries"]}
        assert len(keys) == len(baseline["entries"]), "duplicate entries"
        jacobi_floors = [
            f for f in baseline["floors"]
            if f["kernel"] == "jacobi" and f["fast"] == "vector"
            and f["slow"] == "interp" and f["min_speedup"] >= 30
        ]
        assert jacobi_floors, "jacobi 30x floor missing"
        for floor in baseline["floors"]:
            for side in ("fast", "slow"):
                key = (floor["kernel"], floor[side], floor["shape"],
                       floor["procs"])
                assert key in keys, f"floor references missing entry {key}"
        jit_geomeans = [
            f for f in baseline["geomean_floors"]
            if f["fast"] == "jit" and f["slow"] == "vector"
            and f.get("metric") == "warm_seconds" and f["min_speedup"] >= 1.3
        ]
        assert jit_geomeans, "jit 1.3x warm geomean floor missing"
        jit_entries = [e for e in baseline["entries"]
                       if e["backend"] == "jit"]
        assert jit_entries, "baseline has no jit entries"
        for entry in baseline["entries"]:
            assert "warm_seconds" in entry and "cold_seconds" in entry, (
                f"entry lacks cold/warm timing: {checker._key(entry)}")
            assert entry.get("samples"), (
                f"entry lacks per-repeat samples: {checker._key(entry)}")
            assert entry.get("median_seconds") is not None, (
                f"entry lacks median: {checker._key(entry)}")
            # every non-interp config keeps more than one sample so the
            # gate's medians are real medians
            if entry["backend"] != "interp":
                assert len(entry["samples"]) >= 2, (
                    f"single-sample entry: {checker._key(entry)}")


class TestTelemetrySchema:
    def test_percentile_interpolates(self):
        assert bench_telemetry.percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert bench_telemetry.percentile([5.0], 99) == 5.0
        with pytest.raises(ValueError):
            bench_telemetry.percentile([], 50)

    def test_summarize_samples_stats(self):
        stats = bench_telemetry.summarize_samples(
            [0.1, 0.2, 0.3, 0.4, 0.5], deadline_seconds=0.35)
        assert stats["median_seconds"] == 0.3
        assert stats["p50_seconds"] == 0.3
        assert stats["p95_seconds"] == pytest.approx(0.48)
        assert stats["iqr_seconds"] == pytest.approx(0.2)
        assert stats["jitter"] == pytest.approx(0.6667)
        assert stats["deadline_misses"] == 2
        # warm excludes the cold first sample
        assert stats["warm_median_seconds"] == pytest.approx(0.35)

    def test_single_sample_has_no_jitter(self):
        stats = bench_telemetry.summarize_samples([0.25])
        assert stats["jitter"] is None
        assert stats["median_seconds"] == 0.25
        assert stats["deadline_misses"] == 0

    def test_summary_csv_and_trajectory_line(self):
        payload = _payload([_sampled_entry(samples=(0.1, 0.2, 0.3))])
        payload.update({"run_id": "r-01", "git_sha": "abc",
                        "created_utc": "2026-08-09T00:00:00Z",
                        "suite": {"smoke": True}})
        csv_text = bench_telemetry.summary_csv(payload)
        header, row = csv_text.strip().splitlines()
        assert header.startswith("kernel,backend,shape,procs,samples,")
        assert row.startswith("jacobi,vector,n=65,4,3,0.2,")
        line = bench_telemetry.trajectory_line(payload)
        assert line["run_id"] == "r-01"
        assert line["entries"] == 1
        assert line["smoke"] is True
        assert line["geomean_median_seconds"] == pytest.approx(0.2)


class TestRunStore:
    def _payload(self, chk="aaaa"):
        payload = _payload([_sampled_entry(chk=chk)])
        payload["git_sha"] = "abc1234"
        return payload

    def test_write_read_roundtrip(self, tmp_path):
        root = tmp_path / "results"
        run = bench_store.write_run(self._payload(), root=root)
        assert (run / "telemetry.json").is_file()
        assert (run / "summary.csv").is_file()
        payload = bench_store.read_run(run)
        assert payload["run_id"] == run.name
        # read_run on the results root resolves to the latest run
        assert bench_store.read_run(root)["run_id"] == run.name

    def test_second_run_never_rewrites_a_prior_run_id(self, tmp_path):
        root = tmp_path / "results"
        first = bench_store.write_run(self._payload(chk="aaaa"), root=root)
        before = (first / "telemetry.json").read_bytes()
        # Even forcing the same run_id must allocate a fresh directory.
        second = bench_store.write_run(self._payload(chk="bbbb"), root=root,
                                       run_id=first.name)
        assert second.name != first.name
        assert (first / "telemetry.json").read_bytes() == before
        assert bench_store.read_run(second)["entries"][0]["checksum"] == "bbbb"
        assert len(bench_store.list_runs(root)) == 2

    def test_run_files_are_read_only(self, tmp_path):
        run = bench_store.write_run(self._payload(), root=tmp_path / "r")
        for name in ("telemetry.json", "summary.csv"):
            mode = (run / name).stat().st_mode
            assert mode & 0o222 == 0, f"{name} is writable"

    def test_trajectory_appends_one_line_per_run(self, tmp_path):
        root = tmp_path / "results"
        a = bench_store.write_run(self._payload(), root=root)
        b = bench_store.write_run(self._payload(), root=root)
        lines = bench_store.read_trajectory(root)
        assert [line["run_id"] for line in lines] == [a.name, b.name]

    def test_results_root_created_on_demand(self, tmp_path):
        root = tmp_path / "deep" / "nested" / "results"
        assert not root.exists()
        bench_store.write_run(self._payload(), root=root)
        assert bench_store.latest_run(root) is not None


class TestMedianGate:
    """The gate must decide on medians over samples, never one number."""

    def test_median_decides_not_best(self):
        """A config whose *best* sample is fine but whose median is 5x
        slower must fail — best-of-N hides systematic regressions."""
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.08, 0.5, 0.5, 0.5))])
        assert fresh["entries"][0]["seconds"] == 0.08  # best looks fine
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert any("median slowdown" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_single_outlier_does_not_fail_median(self):
        """One scheduler hiccup among repeats cannot fail the gate."""
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.09, 0.11, 0.10, 5.0))])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert checker.exit_code(failures) == checker.EXIT_OK

    def test_samples_without_aggregates_still_used(self):
        """Raw samples (no precomputed median fields) are aggregated by
        the gate itself."""
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.5, 0.5, 0.5),
                                         aggregates=False)])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert any("median slowdown" in f for f in failures["perf"])

    def test_baseline_median_scales_allowance(self):
        """The baseline side is a median too: a jittery committed
        baseline must not inherit its best-of-N as the bar."""
        base = _payload([_sampled_entry(samples=(0.05, 0.2, 0.2))])
        fresh = _payload([_sampled_entry(samples=(0.22, 0.22, 0.22))])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert checker.exit_code(failures) == checker.EXIT_OK


class TestJitterDowngrade:
    def test_jittery_slowdown_is_flagged_not_failed(self):
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.1, 0.5, 0.9))])
        assert fresh["entries"][0]["jitter"] > 0.35
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert failures["perf"] == []
        assert len(failures[checker.FLAGGED]) == 1
        assert "downgraded" in failures[checker.FLAGGED][0]
        assert checker.exit_code(failures) == checker.EXIT_OK

    def test_quiet_slowdown_still_fails(self):
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.5, 0.5, 0.5))])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert failures[checker.FLAGGED] == []
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_checksum_never_downgraded(self):
        """Correctness is exempt from the jitter excuse."""
        base = _payload([_entry(chk="aaaa", seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.1, 0.5, 0.9),
                                         chk="bbbb")])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert len(failures["checksum"]) == 1
        assert checker.exit_code(failures) == checker.EXIT_CHECKSUM

    def test_jittery_floor_violation_is_flagged(self):
        floors = [{"kernel": "jacobi", "shape": "n=65", "procs": 4,
                   "fast": "vector", "slow": "interp", "min_speedup": 30}]
        entries = [
            _entry(backend="interp", seconds=1.0, chk="cccc"),
            _sampled_entry(backend="vector", samples=(0.1, 0.5, 0.9),
                           chk="cccc"),
        ]
        base = _payload(entries, floors=floors)
        failures, _ = checker.check(_payload(entries), base, 0.25, 10.0)
        assert failures["perf"] == []
        assert any("speedup floor violated" in f
                   for f in failures[checker.FLAGGED])
        assert checker.exit_code(failures) == checker.EXIT_OK

    def test_single_sample_slowdown_is_flagged(self):
        """One sample cannot distinguish noise from regression — interp
        entries (run once by design) must not hard-fail the median gate."""
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.5,))])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert failures["perf"] == []
        assert len(failures[checker.FLAGGED]) == 1
        assert checker.exit_code(failures) == checker.EXIT_OK

    def test_legacy_entry_without_samples_still_hard_fails(self):
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_entry(seconds=0.50)])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_threshold_is_configurable(self):
        base = _payload([_entry(seconds=0.10)])
        fresh = _payload([_sampled_entry(samples=(0.1, 0.5, 0.9))])
        failures, _ = checker.check(fresh, base, 0.25, 0.05,
                                    jitter_threshold=2.0)
        assert checker.exit_code(failures) == checker.EXIT_PERF


class TestCompareMode:
    def test_no_drift_passes(self):
        a = _payload([_sampled_entry(samples=(0.1, 0.1))])
        b = _payload([_sampled_entry(samples=(0.2, 0.2))])
        failures, notes = checker.compare(a, b)
        assert checker.exit_code(failures) == checker.EXIT_OK
        assert any("2.00x" in n for n in notes)

    def test_checksum_drift_fails(self):
        a = _payload([_sampled_entry(chk="aaaa")])
        b = _payload([_sampled_entry(chk="bbbb")])
        failures, _ = checker.compare(a, b)
        assert any("checksum drift" in f for f in failures["checksum"])
        assert checker.exit_code(failures) == checker.EXIT_CHECKSUM

    def test_no_overlap_is_structural(self):
        a = _payload([_sampled_entry(kernel="jacobi")])
        b = _payload([_sampled_entry(kernel="ll18")])
        failures, _ = checker.compare(a, b)
        assert checker.exit_code(failures) == checker.EXIT_STRUCTURE

    def test_main_compare_run_dirs(self, tmp_path):
        root = tmp_path / "results"
        run_a = bench_store.write_run(
            _payload([_sampled_entry(chk="aaaa")]), root=root)
        run_b = bench_store.write_run(
            _payload([_sampled_entry(chk="aaaa")]), root=root)
        assert checker.main(["--compare", str(run_a), str(run_b)]) == 0
        run_c = bench_store.write_run(
            _payload([_sampled_entry(chk="bbbb")]), root=root)
        assert checker.main(["--compare", str(run_a), str(run_c)]) == 3


class TestReports:
    def _write(self, tmp_path, base_entries, fresh_entries):
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(_payload(base_entries)))
        bench_path.write_text(json.dumps(_payload(fresh_entries)))
        return bench_path, baseline_path

    def test_json_report_roundtrip(self, tmp_path):
        bench_path, baseline_path = self._write(
            tmp_path, [_entry(seconds=0.10)],
            [_sampled_entry(samples=(0.5, 0.5, 0.5))])
        report_path = tmp_path / "report.json"
        rc = checker.main(["--bench", str(bench_path),
                           "--baseline", str(baseline_path),
                           "--json", str(report_path)])
        report = json.loads(report_path.read_text())
        assert report["schema"] == checker.REPORT_SCHEMA
        assert report["mode"] == "gate"
        assert report["exit_code"] == rc == checker.EXIT_PERF
        assert report["passed"] is False
        assert set(report["failures"]) == set(checker.CATEGORIES)
        assert report["flagged"] == []
        [row] = report["configs"]
        assert row["median_seconds"] == 0.5
        assert row["jitter"] == 0.0
        assert row["checksum_ok"] is True
        # The report round-trips: re-rendering from the parsed JSON works.
        markdown = checker.render_markdown(report)
        assert "median slowdown" in "".join(report["failures"]["perf"])
        assert "| jacobi | vector |" in markdown

    def test_markdown_reports_jitter_and_flags(self, tmp_path):
        bench_path, baseline_path = self._write(
            tmp_path, [_entry(seconds=0.10)],
            [_sampled_entry(samples=(0.1, 0.5, 0.9))])
        md_path = tmp_path / "summary.md"
        rc = checker.main(["--bench", str(bench_path),
                           "--baseline", str(baseline_path),
                           "--markdown", str(md_path)])
        assert rc == 0  # jitter downgraded the slowdown
        text = md_path.read_text()
        assert "jitter" in text
        assert "flagged (not failing)" in text
        assert "passed" in text
        # --markdown appends (the step-summary contract)
        checker.main(["--bench", str(bench_path),
                      "--baseline", str(baseline_path),
                      "--markdown", str(md_path)])
        assert md_path.read_text().count("## Benchmark gate") == 2

    def test_gate_accepts_run_dir_and_results_root(self, tmp_path):
        root = tmp_path / "results"
        run = bench_store.write_run(
            _payload([_sampled_entry(samples=(0.1, 0.1, 0.1))]), root=root)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(_payload([_entry(seconds=0.1)])))
        assert checker.main(["--bench", str(run),
                             "--baseline", str(baseline_path)]) == 0
        assert checker.main(["--bench", str(root),
                             "--baseline", str(baseline_path)]) == 0

    def test_empty_results_root_is_missing(self, tmp_path):
        root = tmp_path / "results"
        root.mkdir()
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(_payload([_entry()])))
        assert checker.main(["--bench", str(root),
                             "--baseline", str(baseline_path)]
                            ) == checker.EXIT_MISSING


@pytest.mark.slow
class TestBenchSmokeEndToEnd:
    def test_two_smoke_runs_gate_and_compare(self, tmp_path):
        """The acceptance path: two consecutive smoke runs produce two
        distinct immutable run dirs with per-repeat samples, the gate
        passes on medians reporting per-config jitter, and the run-to-run
        comparison shows no checksum drift."""
        bench = _load("benchmarks/bench_fastexec.py", "bench_fastexec_mod")
        root = tmp_path / "results"
        out = tmp_path / "flat.json"
        assert bench.main(["--smoke", "--repeat", "2",
                           "--results-root", str(root),
                           "--out", str(out)]) == 0
        assert bench.main(["--smoke", "--repeat", "2",
                           "--results-root", str(root)]) == 0
        runs = bench_store.list_runs(root)
        assert len(runs) == 2 and runs[0].name != runs[1].name
        assert json.loads(out.read_text())["run_id"] == runs[0].name
        for run in runs:
            payload = bench_store.read_run(run)
            assert any(len(e["samples"]) == 2 for e in payload["entries"])
            assert (run / "summary.csv").is_file()
        # The gate accepts the run dir directly and reports jitter.
        report_path = tmp_path / "report.json"
        assert checker.main(["--bench", str(runs[1]),
                             "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["passed"]
        assert any(row["jitter"] is not None for row in report["configs"])
        # Two runs of identical code can never drift on checksums.
        assert checker.main(["--compare", str(runs[0]), str(runs[1])]) == 0
        assert len(bench_store.read_trajectory(root)) == 2
