"""Unit tests for the benchmark plumbing and the CI regression gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _load(relpath, name):
    spec = importlib.util.spec_from_file_location(name, REPO / relpath)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


bench_common = _load("benchmarks/_common.py", "bench_common")
checker = _load("scripts/check_bench_regression.py", "check_bench_regression")


class TestFormatResult:
    def test_uses_format_method(self):
        class Table:
            def format(self):
                return "| a | b |"

        assert bench_common.format_result(Table()) == "| a | b |"

    def test_falls_back_to_str(self):
        assert bench_common.format_result({"rows": 3}) == "{'rows': 3}"
        assert bench_common.format_result(1.5) == "1.5"
        assert bench_common.format_result("already text") == "already text"

    def test_non_callable_format_attribute(self):
        class Weird:
            format = "not a method"

            def __str__(self):
                return "weird"

        assert bench_common.format_result(Weird()) == "weird"

    def test_run_figure_archives_str_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_common, "OUT_DIR", tmp_path)

        class FakeBenchmark:
            def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
                return fn(*args, **(kwargs or {}))

        result = bench_common.run_figure(
            FakeBenchmark(), lambda x: {"value": x}, "fake_fig", 42
        )
        assert result == {"value": 42}
        assert (tmp_path / "fake_fig.txt").read_text() == "{'value': 42}\n"


def _entry(kernel="jacobi", backend="vector", shape="n=65", procs=4,
           seconds=0.01, chk="aaaa", warm=None):
    entry = {"kernel": kernel, "backend": backend, "shape": shape,
             "procs": procs, "seconds": seconds, "iterations": 100,
             "checksum": chk}
    if warm is not None:
        entry["warm_seconds"] = warm
    return entry


def _payload(entries, calibration=0.1, floors=None, geomean_floors=None):
    payload = {"version": 2, "python": "3.11.7",
               "calibration_seconds": calibration, "entries": entries}
    if floors is not None:
        payload["floors"] = floors
    if geomean_floors is not None:
        payload["geomean_floors"] = geomean_floors
    return payload


def _flat(failures):
    return [f for cat in checker.CATEGORIES for f in failures[cat]]


class TestRegressionChecker:
    def test_clean_pass(self):
        payload = _payload([_entry()])
        failures, _ = checker.check(payload, payload, 0.25, 0.05)
        assert _flat(failures) == []
        assert checker.exit_code(failures) == checker.EXIT_OK

    def test_checksum_mismatch_fails(self):
        base = _payload([_entry(chk="aaaa")])
        fresh = _payload([_entry(chk="bbbb")])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert len(failures["checksum"]) == 1
        assert "checksum mismatch" in failures["checksum"][0]
        assert checker.exit_code(failures) == checker.EXIT_CHECKSUM

    def test_all_failing_entries_reported(self):
        """One bad entry must not mask the next — every failure is listed."""
        base = _payload([_entry(kernel="jacobi", chk="aaaa"),
                         _entry(kernel="ll18", chk="aaaa"),
                         _entry(kernel="calc", chk="aaaa", seconds=0.10)])
        fresh = _payload([_entry(kernel="jacobi", chk="bbbb"),
                          _entry(kernel="ll18", chk="cccc"),
                          _entry(kernel="calc", chk="aaaa", seconds=0.50)])
        failures, _ = checker.check(fresh, base, 0.25, 0.05)
        assert len(failures["checksum"]) == 2
        assert len(failures["perf"]) == 1
        assert checker.exit_code(failures) == checker.EXIT_BOTH

    def test_slowdown_fails_and_tolerance_respected(self):
        base = _payload([_entry(seconds=0.10)])
        ok = _payload([_entry(seconds=0.12)])
        bad = _payload([_entry(seconds=0.20)])
        assert _flat(checker.check(ok, base, 0.25, 0.05)[0]) == []
        failures, _ = checker.check(bad, base, 0.25, 0.05)
        assert any("slowdown" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_micro_times_checksum_only(self):
        """Entries under --min-seconds never fail on timing noise."""
        base = _payload([_entry(seconds=0.001)])
        fresh = _payload([_entry(seconds=0.04)])  # 40x "slower" but micro
        assert _flat(checker.check(fresh, base, 0.25, 0.05)[0]) == []

    def test_calibration_rescales_allowance(self):
        """A machine measuring 2x slower on pure Python gets 2x budget."""
        base = _payload([_entry(seconds=0.10)], calibration=0.1)
        fresh = _payload([_entry(seconds=0.18)], calibration=0.2)
        assert _flat(checker.check(fresh, base, 0.25, 0.05)[0]) == []
        fresh_fast_machine = _payload([_entry(seconds=0.18)], calibration=0.1)
        failures, _ = checker.check(fresh_fast_machine, base, 0.25, 0.05)
        assert any("slowdown" in f for f in failures["perf"])

    def test_speedup_floor(self):
        floors = [{"kernel": "jacobi", "shape": "n=65", "procs": 4,
                   "fast": "vector", "slow": "interp", "min_speedup": 30}]
        entries_ok = [
            _entry(backend="interp", seconds=3.0, chk="cccc"),
            _entry(backend="vector", seconds=0.05, chk="cccc"),
        ]
        entries_bad = [
            _entry(backend="interp", seconds=1.0, chk="cccc"),
            _entry(backend="vector", seconds=0.05, chk="cccc"),
        ]
        base = _payload(entries_ok, floors=floors)
        assert _flat(checker.check(_payload(entries_ok), base, 0.25, 10.0)[0]) == []
        failures, _ = checker.check(_payload(entries_bad), base, 0.25, 10.0)
        assert any("speedup floor violated" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_geomean_floor(self):
        """jit must beat vector in geometric mean on warm_seconds."""
        geomeans = [{"fast": "jit", "slow": "vector",
                     "metric": "warm_seconds", "min_speedup": 1.3}]
        entries_ok = [
            _entry(kernel="jacobi", backend="vector", warm=0.030, chk="cc"),
            _entry(kernel="jacobi", backend="jit", warm=0.010, chk="cc"),
            _entry(kernel="ll18", backend="vector", warm=0.020, chk="dd"),
            _entry(kernel="ll18", backend="jit", warm=0.015, chk="dd"),
        ]  # ratios 3.0 and 1.33 -> geomean 2.0
        entries_bad = [
            _entry(kernel="jacobi", backend="vector", warm=0.010, chk="cc"),
            _entry(kernel="jacobi", backend="jit", warm=0.010, chk="cc"),
            _entry(kernel="ll18", backend="vector", warm=0.020, chk="dd"),
            _entry(kernel="ll18", backend="jit", warm=0.019, chk="dd"),
        ]  # ratios 1.0 and 1.05 -> geomean ~1.02
        base = _payload(entries_ok, geomean_floors=geomeans)
        failures, notes = checker.check(_payload(entries_ok), base, 0.25, 10.0)
        assert _flat(failures) == []
        assert any("geomean ok" in n for n in notes)
        failures, _ = checker.check(_payload(entries_bad), base, 0.25, 10.0)
        assert any("geomean floor violated" in f for f in failures["perf"])
        assert checker.exit_code(failures) == checker.EXIT_PERF

    def test_geomean_floor_skipped_without_metric(self):
        geomeans = [{"fast": "jit", "slow": "vector",
                     "metric": "warm_seconds", "min_speedup": 1.3}]
        entries = [_entry(backend="vector"), _entry(backend="jit")]
        base = _payload(entries, geomean_floors=geomeans)
        failures, notes = checker.check(_payload(entries), base, 0.25, 10.0)
        assert _flat(failures) == []
        assert any("not measurable" in n or "lacks" in n for n in notes)

    def test_no_overlap_fails(self):
        base = _payload([_entry(kernel="jacobi")])
        fresh = _payload([_entry(kernel="ll18")])
        failures, notes = checker.check(fresh, base, 0.25, 0.05)
        assert any("overlap" in f for f in failures["structure"])
        assert any("new entry" in n for n in notes)
        assert checker.exit_code(failures) == checker.EXIT_STRUCTURE

    def test_main_missing_files_exit_code(self, tmp_path, capsys):
        rc = checker.main(["--bench", str(tmp_path / "nope.json"),
                           "--baseline", str(tmp_path / "also-nope.json")])
        assert rc == checker.EXIT_MISSING
        assert "not found" in capsys.readouterr().err

    def test_main_exit_codes_by_category(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(
            _payload([_entry(chk="aaaa", seconds=0.10)])))
        # checksum only -> 3
        bench_path.write_text(json.dumps(
            _payload([_entry(chk="bbbb", seconds=0.10)])))
        assert checker.main(["--bench", str(bench_path),
                             "--baseline", str(baseline_path)]) == 3
        # perf only -> 4
        bench_path.write_text(json.dumps(
            _payload([_entry(chk="aaaa", seconds=0.50)])))
        assert checker.main(["--bench", str(bench_path),
                             "--baseline", str(baseline_path)]) == 4
        # both -> 5
        bench_path.write_text(json.dumps(
            _payload([_entry(chk="bbbb", seconds=0.50)])))
        assert checker.main(["--bench", str(bench_path),
                             "--baseline", str(baseline_path)]) == 5

    def test_main_update_preserves_floor_sections(self, tmp_path):
        floors = [{"kernel": "jacobi", "shape": "n=65", "procs": 4,
                   "fast": "vector", "slow": "interp", "min_speedup": 30}]
        geomeans = [{"fast": "jit", "slow": "vector",
                     "metric": "warm_seconds", "min_speedup": 1.3}]
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(
            _payload([_entry(seconds=0.10)], floors=floors,
                     geomean_floors=geomeans)))
        bench_path.write_text(json.dumps(_payload([_entry(seconds=0.09)])))
        rc = checker.main(["--bench", str(bench_path),
                           "--baseline", str(baseline_path), "--update"])
        assert rc == 0
        updated = json.loads(baseline_path.read_text())
        assert updated["floors"] == floors
        assert updated["geomean_floors"] == geomeans
        assert updated["entries"][0]["seconds"] == 0.09

    def test_main_refuses_update_on_failure(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        bench_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(_payload([_entry(chk="aaaa")])))
        bench_path.write_text(json.dumps(_payload([_entry(chk="bbbb")])))
        rc = checker.main(["--bench", str(bench_path),
                           "--baseline", str(baseline_path), "--update"])
        assert rc == 1
        assert json.loads(baseline_path.read_text())["entries"][0][
            "checksum"] == "aaaa"
        assert "refusing" in capsys.readouterr().err

    def test_committed_baseline_is_wellformed(self):
        """The checked-in baseline must parse and carry the headline gates:
        vector >= 30x interp on jacobi, and warm jit >= 1.3x vector in
        geometric mean."""
        baseline = json.loads(
            (REPO / "benchmarks" / "BENCH_fastexec.json").read_text())
        assert baseline["entries"], "baseline has no entries"
        keys = {checker._key(e) for e in baseline["entries"]}
        assert len(keys) == len(baseline["entries"]), "duplicate entries"
        jacobi_floors = [
            f for f in baseline["floors"]
            if f["kernel"] == "jacobi" and f["fast"] == "vector"
            and f["slow"] == "interp" and f["min_speedup"] >= 30
        ]
        assert jacobi_floors, "jacobi 30x floor missing"
        for floor in baseline["floors"]:
            for side in ("fast", "slow"):
                key = (floor["kernel"], floor[side], floor["shape"],
                       floor["procs"])
                assert key in keys, f"floor references missing entry {key}"
        jit_geomeans = [
            f for f in baseline["geomean_floors"]
            if f["fast"] == "jit" and f["slow"] == "vector"
            and f.get("metric") == "warm_seconds" and f["min_speedup"] >= 1.3
        ]
        assert jit_geomeans, "jit 1.3x warm geomean floor missing"
        jit_entries = [e for e in baseline["entries"]
                       if e["backend"] == "jit"]
        assert jit_entries, "baseline has no jit entries"
        for entry in baseline["entries"]:
            assert "warm_seconds" in entry and "cold_seconds" in entry, (
                f"entry lacks cold/warm timing: {checker._key(entry)}")


@pytest.mark.slow
class TestBenchSmokeEndToEnd:
    def test_smoke_run_passes_checker(self, tmp_path):
        bench = _load("benchmarks/bench_fastexec.py", "bench_fastexec_mod")
        out = tmp_path / "BENCH_fastexec.json"
        rc = bench.main(["--smoke", "--repeat", "1", "--out", str(out)])
        assert rc == 0
        assert checker.main(["--bench", str(out)]) == 0
