"""Simulator internals: cost-model components, tile counting, series."""

import numpy as np
import pytest

from repro.core import build_execution_plan, derive_shift_peel
from repro.experiments.common import setup_kernel
from repro.machine import (
    convex_spp1000,
    ksr2,
    measure_fused,
    measure_unfused,
    speedup_series,
)
from repro.machine.simulator import _proc_misses, _tile_count


@pytest.fixture(scope="module")
def small_exp():
    return setup_kernel("ll18", convex_spp1000(), dims_div=4, params={"n": 63})


class TestCostModel:
    def test_barrier_counts(self, small_exp, fig9_sequence):
        unf = measure_unfused(
            small_exp.seq, small_exp.params, small_exp.layout,
            small_exp.machine, 2,
        )
        assert unf.barriers == 3  # one per nest
        fus = measure_fused(
            small_exp.exec_plan(2), small_exp.layout, small_exp.machine,
            strip=small_exp.strip,
        )
        assert fus.barriers == 2  # fused + peel

    def test_extra_barriers_add_time(self, small_exp):
        a = measure_unfused(
            small_exp.seq, small_exp.params, small_exp.layout,
            small_exp.machine, 2,
        )
        b = measure_unfused(
            small_exp.seq, small_exp.params, small_exp.layout,
            small_exp.machine, 2, extra_barriers=10,
        )
        expected = 10 * small_exp.machine.barrier_cycles(2)
        assert b.time_cycles - a.time_cycles == pytest.approx(expected)

    def test_warm_vs_cold(self, small_exp):
        cold = measure_unfused(
            small_exp.seq, small_exp.params, small_exp.layout,
            small_exp.machine, 1, warm=False,
        )
        warm = measure_unfused(
            small_exp.seq, small_exp.params, small_exp.layout,
            small_exp.machine, 1, warm=True,
        )
        # Data far exceeds the cache, so warm ~ cold; but warm never more.
        assert warm.misses <= cold.misses

    def test_warm_trick_equals_two_pass(self):
        """warm misses == stateful second-pass misses."""
        from repro.cachesim import Cache

        machine = convex_spp1000().scaled(64)
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1 << 18, 20000).astype(np.int64)
        stats = _proc_misses(trace, machine, warm=True)
        cache = Cache(machine.cache)
        cache.access_trace(trace)
        second = cache.access_trace(trace)
        assert stats.misses == second.misses

    def test_remote_penalty_applied(self, small_exp):
        measure_unfused(
            small_exp.seq, small_exp.params, small_exp.layout,
            small_exp.machine, 8,
        )
        assert small_exp.machine.miss_penalty(16) > small_exp.machine.miss_penalty(8)


class TestTileCount:
    def test_matches_trace_chunking(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=2)
        for proc in ep.processors:
            count = _tile_count(ep, proc, strip=5)
            # Position extent per proc is ~20 + shifts; 5-wide tiles.
            assert 4 <= count <= 6

    def test_zero_when_empty(self, fig9_sequence):
        import dataclasses

        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=2)
        empty = dataclasses.replace(
            ep.processors[0],
            fused=tuple(((1, 0),) for _ in range(3)),
        )
        assert _tile_count(ep, empty, strip=4) == 0


class TestSpeedupSeries:
    def test_baseline_normalization(self, small_exp):
        points = speedup_series(
            small_exp.exec_plan,
            small_exp.seq,
            small_exp.params,
            small_exp.layout,
            small_exp.machine,
            [1, 2],
            strip=small_exp.strip,
        )
        assert points[0].speedup_unfused == pytest.approx(1.0)
        assert points[1].speedup_unfused > 1.0
        assert points[0].improvement == pytest.approx(
            points[0].speedup_fused, rel=1e-9
        )

    def test_misses_reported(self, small_exp):
        points = speedup_series(
            small_exp.exec_plan,
            small_exp.seq,
            small_exp.params,
            small_exp.layout,
            small_exp.machine,
            [1],
            strip=small_exp.strip,
        )
        assert points[0].misses_unfused > 0
        assert points[0].misses_fused > 0


class TestMachineComparisons:
    def test_convex_improvement_exceeds_ksr2(self):
        """The paper's cross-machine claim at matched configurations."""
        results = {}
        for name, machine in (("ksr2", ksr2()), ("convex", convex_spp1000())):
            exp = setup_kernel("ll18", machine, dims_div=4, params={"n": 127})
            unf = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 1)
            fus = measure_fused(
                exp.exec_plan(1), exp.layout, exp.machine, strip=exp.strip
            )
            results[name] = unf.time_cycles / fus.time_cycles
        assert results["convex"] > results["ksr2"] > 1.0
