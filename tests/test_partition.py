"""Cache partitioning: greedy layout (Fig. 19), compatibility, padding."""

import numpy as np
import pytest

from repro.cachesim import CacheConfig, simulate
from repro.ir import Affine, Loop, LoopNest
from repro.ir.stmt import assign, load
from repro.partition import (
    analyze_compatibility,
    all_compatible,
    classify_pair,
    greedy_memory_layout,
    max_strip_elements,
    padded_layout,
    padding_overhead_bytes,
    padding_sweep,
    partitioned_layout_from_decls,
)

CACHE = CacheConfig(8 * 1024, 64, 1)


def arrays(num, dim=64):
    return [(f"x{k}", (dim, dim)) for k in range(num)]


class TestGreedyLayout:
    def test_distinct_partitions(self):
        res = greedy_memory_layout(arrays(4), CACHE)
        parts = [a.partition for a in res.assignments]
        assert sorted(parts) == [0, 1, 2, 3]

    def test_starts_map_to_partition_targets(self):
        res = greedy_memory_layout(arrays(4), CACHE)
        sp = res.partition_bytes
        for rec in res.assignments:
            start = res.layout[rec.array].start
            assert CACHE.map_address(start) == rec.target_cache_address
            assert rec.target_cache_address == rec.partition * sp

    def test_no_overlap_and_order_preserved(self):
        res = greedy_memory_layout(arrays(6), CACHE)
        placements = sorted(res.layout.placements, key=lambda p: p.start)
        for a, b in zip(placements, placements[1:]):
            assert a.end <= b.start

    def test_gap_overhead_bounded(self):
        # Each gap is at most one cache-way period.
        res = greedy_memory_layout(arrays(5), CACHE)
        assert res.gap_overhead_bytes <= 5 * CACHE.way_bytes
        for rec in res.assignments:
            assert 0 <= rec.gap_bytes < CACHE.way_bytes

    def test_explicit_order(self):
        names = [f"x{k}" for k in range(3)]
        res = greedy_memory_layout(arrays(3), CACHE, order=list(reversed(names)))
        placed = sorted(res.layout.placements, key=lambda p: p.start)
        assert placed[0].name == "x2"

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            greedy_memory_layout(arrays(2), CACHE, order=["x0", "zz"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            greedy_memory_layout([], CACHE)

    def test_set_associative_shares_partitions(self):
        cache2 = CacheConfig(8 * 1024, 64, 2)
        res = greedy_memory_layout(arrays(4), cache2)
        targets = [a.target_cache_address for a in res.assignments]
        # Pairs of arrays share a target region (hardware keeps them apart).
        assert len(set(targets)) == 2

    def test_from_decls(self):
        from repro.kernels import ll18

        prog = ll18.program()
        res = partitioned_layout_from_decls(prog.arrays, {"n": 31}, CACHE)
        assert len(res.layout.placements) == 9

    def test_partitioning_eliminates_cross_conflicts(self):
        """The defining property: two arrays streamed in lockstep never
        conflict under the partitioned layout, but do when contiguous
        power-of-two arrays map on top of each other."""
        dim = 32  # 32x32 doubles = 8KB = exactly the cache size
        res = greedy_memory_layout(arrays(2, dim), CACHE)
        naive_starts = {"x0": 0, "x1": dim * dim * 8}

        def stream_trace(starts):
            out = []
            for row in range(dim):
                for col in range(dim):
                    out.append(starts["x0"] + (row * dim + col) * 8)
                    out.append(starts["x1"] + (row * dim + col) * 8)
            return np.array(out, dtype=np.int64)

        part_starts = {p.name: p.start for p in res.layout.placements}
        misses_part = simulate(stream_trace(part_starts), CACHE).misses
        misses_naive = simulate(stream_trace(naive_starts), CACHE).misses
        assert misses_naive > 2 * misses_part


class TestStripSelection:
    def test_strip_fits_partition(self):
        assert max_strip_elements(8192, 8, rows_live=4) == 256
        assert max_strip_elements(100, 8, rows_live=4) == 3

    def test_minimum_one(self):
        assert max_strip_elements(4, 8) == 1


class TestCompatibility:
    i, j = Affine.var("i"), Affine.var("j")

    def _nest(self, *stmts):
        return LoopNest(
            (Loop.make("j", 1, 10), Loop.make("i", 1, 10)), tuple(stmts)
        )

    def test_identical_matrices_compatible(self):
        nest = self._nest(
            assign("a", (self.j, self.i), load("b", self.j, self.i + 1))
        )
        reports = analyze_compatibility([nest], ("j", "i"))
        assert all_compatible(reports)

    def test_permutation_detected(self):
        nest = self._nest(
            assign("a", (self.j, self.i), load("b", self.i, self.j))
        )
        reports = analyze_compatibility([nest], ("j", "i"))
        bad = [r for r in reports if not r.compatible]
        assert bad and bad[0].fix == "permute array dimensions"

    def test_stride_detected(self):
        mat_a = ((1, 0), (0, 1))
        mat_b = ((2, 0), (0, 1))
        rep = classify_pair("a", mat_a, "b", mat_b)
        assert not rep.compatible
        assert "compress" in rep.fix

    def test_sign_detected(self):
        mat_a = ((1, 0), (0, 1))
        mat_b = ((-1, 0), (0, 1))
        rep = classify_pair("a", mat_a, "b", mat_b)
        assert "reverse storage order" in rep.fix

    def test_unrelated_no_fix(self):
        rep = classify_pair("a", ((1, 1),), "b", ((1, -2),))
        assert not rep.compatible and rep.fix is None

    def test_kernels_compatible(self):
        """Every kernel's arrays are mutually compatible in the fused dim —
        the precondition for cache partitioning to be conflict-free."""
        from repro.kernels import get_kernel

        for name in ("ll18", "calc", "filter", "jacobi", "tomcatv"):
            info = get_kernel(name)
            seq = info.program().sequences[0]
            vars_ = seq[0].loop_vars
            reports = analyze_compatibility(list(seq), vars_)
            assert all_compatible(reports), (name, [str(r) for r in reports])


class TestPadding:
    def test_padded_layout_shapes(self):
        layout = padded_layout([("a", (8, 8)), ("b", (8, 8))], pad_elems=5)
        assert layout["a"].padded_shape == (8, 13)

    def test_sweep_values(self):
        assert padding_sweep() == [1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21]

    def test_overhead(self):
        assert padding_overhead_bytes([("a", (10, 8))], 4) == 10 * 4 * 8
