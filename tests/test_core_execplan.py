"""Execution planning: fused boxes, peeled rectangles, legality, coverage."""

import pytest

from repro.core import (
    FusionLegalityError,
    build_execution_plan,
    check_legality,
    derive_shift_peel,
    iteration_count_thresholds,
    max_processors,
    verify_coverage,
)


class TestLegality:
    def test_thresholds(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        assert iteration_count_thresholds(plan) == (5,)

    def test_max_processors(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        # trip = 38 at n=41, Nt = 5 -> at most 7 processors
        assert max_processors(plan, {"n": 41}) == (7,)

    def test_check_passes(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        check = check_legality(plan, {"n": 41}, (7,))
        assert check.ok
        check.raise_if_bad()

    def test_check_fails_beyond_threshold(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        check = check_legality(plan, {"n": 41}, (10,))
        assert not check.ok
        with pytest.raises(FusionLegalityError):
            check.raise_if_bad()

    def test_too_many_procs_for_iterations(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        assert not check_legality(plan, {"n": 10}, (50,)).ok

    def test_grid_dim_mismatch(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        with pytest.raises(ValueError):
            check_legality(plan, {"n": 41}, (2, 2))

    def test_build_validates(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        with pytest.raises(FusionLegalityError):
            build_execution_plan(plan, {"n": 41}, num_procs=10)
        build_execution_plan(plan, {"n": 41}, num_procs=10, validate=False)


class TestCoverage1D:
    @pytest.mark.parametrize("procs", [1, 2, 3, 5, 7])
    def test_fig9(self, fig9_sequence, procs):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=procs)
        assert verify_coverage(ep)

    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_fig13(self, fig13_sequence, procs):
        plan = derive_shift_peel(fig13_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 21}, num_procs=procs)
        assert verify_coverage(ep)

    def test_differing_bounds(self):
        from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load

        i = Affine.var("i")
        n = Affine.var("n")
        l1 = LoopNest((Loop.make("i", 1, n),), (assign("a", i, load("b", i)),))
        l2 = LoopNest(
            (Loop.make("i", 3, n - 2),),
            (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
        )
        plan = derive_shift_peel(LoopSequence((l1, l2)), ("n",))
        for procs in (1, 2, 3):
            ep = build_execution_plan(plan, {"n": 30}, num_procs=procs)
            assert verify_coverage(ep)


class TestCoverage2D:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 1), (1, 2), (2, 2), (3, 3)])
    def test_jacobi(self, jacobi_sequence, grid):
        plan = derive_shift_peel(jacobi_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 19}, grid_shape=grid)
        assert verify_coverage(ep)

    def test_counts(self, jacobi_sequence):
        plan = derive_shift_peel(jacobi_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 19}, grid_shape=(3, 3))
        total = sum(nest.iteration_count({"n": 19}) for nest in plan.seq)
        assert ep.total_fused() + ep.total_peeled() == total
        assert ep.total_peeled() > 0


class TestProcessorPlans:
    def test_first_block_has_no_head_peel(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=4)
        first = ep.processors[0]
        lo = plan.seq[0].loops[0].lower.eval({"n": 41})
        for k in range(3):
            assert first.fused[k][0][0] == lo

    def test_last_block_runs_to_end(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=4)
        last = ep.processors[-1]
        hi = plan.seq[0].loops[0].upper.eval({"n": 41})
        for k in range(3):
            assert last.fused[k][0][1] == hi
        assert last.peeled_count() == 0

    def test_interior_peel_sizes(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=4)
        interior = ep.processors[1]
        # Each boundary peels shift+peel iterations of each shifted nest.
        by_nest = {}
        for rect in interior.peeled:
            by_nest[rect.nest_idx] = by_nest.get(rect.nest_idx, 0) + rect.iteration_count()
        assert by_nest == {1: 2, 2: 4}

    def test_processor_lookup(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, {"n": 41}, num_procs=3)
        assert ep.processor((2,)) is ep.processors[1]
        assert ep.num_procs == 3
