"""The service daemon: protocol, admission control, batching, the
asyncio server end-to-end, graceful drain and the load generator."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.runtime.autotune import AutoTuner, tuning_key
from repro.runtime.benchmarking import (
    execute_prepared,
    prepare_kernel,
    resolve_params,
)
from repro.serve.admission import AdmissionController, CostModel, QueuedRequest
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ProtocolError,
    STATUS_DRAINING,
    STATUS_OVERLOADED,
    decode_line,
    encode_message,
    parse_request,
)
from repro.serve.server import FusionServer, ServerConfig

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ---------------------------------------------------------------------------
# protocol


class TestProtocol:
    def test_exec_round_trip(self):
        req = parse_request(
            b'{"op": "exec", "id": 7, "kernel": "jacobi", "n": 65,'
            b' "procs": 4, "tenant": "a", "deadline_ms": 250}')
        assert req.op == "exec"
        assert req.id == 7
        assert req.tenant == "a"
        assert req.deadline_ms == 250.0
        assert req.key.kernel == "jacobi"
        assert req.key.n == 65
        assert req.key.backend == "jit"  # the default
        assert req.wants_execution

    def test_status_needs_no_kernel(self):
        req = parse_request('{"op": "status", "id": "s1"}')
        assert req.key is None
        assert not req.wants_execution

    def test_health_and_chaos_round_trip(self):
        health = parse_request('{"op": "health", "id": 1}')
        assert health.key is None and not health.wants_execution
        chaos = parse_request(
            '{"op": "chaos", "id": 2, "spec": "crash@run=3"}')
        assert chaos.spec == "crash@run=3"
        clear = parse_request('{"op": "chaos", "id": 3, "spec": ""}')
        assert clear.spec == ""

    @pytest.mark.parametrize("line, fragment", [
        (b"not json", "not valid JSON"),
        (b"[1, 2]", "JSON object"),
        (b'{"op": "frob", "id": 1}', "op must be one of"),
        (b'{"op": "exec", "kernel": "jacobi"}', "needs an id"),
        (b'{"op": "exec", "id": 1}', "needs a kernel"),
        (b'{"op": "exec", "id": 1, "kernel": "jacobi", "dedline_ms": 9}',
         "unknown request fields"),
        (b'{"op": "exec", "id": 1, "kernel": "jacobi", "deadline_ms": -1}',
         "deadline_ms"),
        (b'{"op": "exec", "id": 1, "kernel": "jacobi", "procs": 0}',
         "procs"),
        (b'{"op": "exec", "id": 1, "kernel": "jacobi", "sync": "psp"}',
         "sync"),
        (b'{"op": "status", "id": 1, "kernel": "jacobi"}', "meaningless"),
        (b'{"op": "exec", "id": true, "kernel": "jacobi"}', "id must be"),
        (b'{"op": "chaos", "id": 1}', "chaos needs a spec"),
        (b'{"op": "chaos", "id": 1, "spec": 7}', "spec must be a string"),
        (b'{"op": "exec", "id": 1, "kernel": "jacobi", "spec": "x"}',
         "spec is meaningless"),
    ])
    def test_rejects_malformed(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_request(line)

    def test_encode_decode(self):
        wire = encode_message({"id": 1, "ok": True, "status": "ok"})
        assert wire.endswith(b"\n")
        assert b"\n" not in wire[:-1]
        assert decode_line(wire) == {"id": 1, "ok": True, "status": "ok"}


# ---------------------------------------------------------------------------
# admission control, fairness, batching, cost model


def _req(tenant="default", sig="sig-a", deadline_ms=None, kernel="jacobi",
         n=33, procs=2):
    request = parse_request(json.dumps({
        "op": "exec", "id": f"{tenant}-{time.monotonic_ns()}",
        "kernel": kernel, "n": n, "procs": procs, "tenant": tenant,
        **({"deadline_ms": deadline_ms} if deadline_ms else {}),
    }))
    return QueuedRequest(request=request, signature=sig)


class TestAdmission:
    def test_bounded_queue_sheds(self):
        adm = AdmissionController(max_queue=2)
        assert adm.try_admit(_req())[0]
        assert adm.try_admit(_req())[0]
        admitted, reason = adm.try_admit(_req())
        assert not admitted
        assert "queue full" in reason
        assert adm.stats["shed_queue_full"] == 1

    def test_measured_cost_drives_deadline_shed(self):
        """A known-expensive signature sheds hopeless deadlines; the
        same deadline is accepted while the signature is cold."""
        adm = AdmissionController(max_queue=64)
        # Cold: no estimate, no evidence to shed on -> accept.
        assert adm.try_admit(_req(sig="hot", deadline_ms=5.0))[0]
        # Now the daemon has measured this signature at 100 ms each.
        adm.cost_model.observe("hot", 0.1)
        admitted, reason = adm.try_admit(_req(sig="hot", deadline_ms=5.0))
        assert not admitted
        assert "projected wait" in reason
        assert adm.stats["shed_deadline"] == 1
        # A roomy deadline still gets in behind the queued work.
        assert adm.try_admit(_req(sig="hot", deadline_ms=10_000.0))[0]

    def test_autotune_winner_seeds_projected_wait(self):
        """Satellite: a persisted auto-tuner winner's measured cost is
        the projected-wait estimate before the daemon has run anything;
        a cold (no-winner) config falls back to accept."""
        from repro.kernels import get_kernel

        tuner = AutoTuner(persist=False)
        info = get_kernel("jacobi")
        program = info.program()
        params = resolve_params(info, program, n=33)
        key = tuning_key(program, params, 2)
        tuner.store(key, {
            "schema": "repro-autotune/1",
            "winner": {"config": {"backend": "jit"}, "seconds": 0.25},
        })
        model = CostModel(tuner=tuner)
        adm = AdmissionController(max_queue=64, cost_model=model)
        # One queued request of the tuned config = 250 ms of projected
        # work; a 50 ms deadline behind it is hopeless.
        assert adm.try_admit(_req(sig="tuned", n=33, procs=2))[0]
        admitted, reason = adm.try_admit(
            _req(sig="tuned", n=33, procs=2, deadline_ms=50.0))
        assert not admitted
        assert "projected wait" in reason
        # The estimate came from the tuner, not from observations.
        assert model.snapshot()["tuner_seeded"] == 1
        # Cold config (different shape, no winner): accepted.
        adm2 = AdmissionController(max_queue=64, cost_model=CostModel(tuner))
        assert adm2.try_admit(_req(sig="cold", n=65, procs=4))[0]
        assert adm2.try_admit(
            _req(sig="cold", n=65, procs=4, deadline_ms=1.0))[0]

    def test_weighted_fair_dequeue(self):
        """Weight 2 drains twice as often as weight 1 under contention."""
        adm = AdmissionController(max_queue=64, weights={"heavy": 2.0})
        for _ in range(8):
            assert adm.try_admit(_req(tenant="heavy", sig="h"))[0]
        for _ in range(8):
            assert adm.try_admit(_req(tenant="light", sig="l"))[0]
        order = []
        # Disable coalescing noise: each batch has one member because
        # tenants use distinct signatures and max_batch=1.
        adm.max_batch = 1
        for _ in range(6):
            batch = adm.next_batch()
            order.append(batch.requests[0].request.tenant)
        assert order.count("heavy") == 4
        assert order.count("light") == 2

    def test_idle_tenant_reenters_at_vtime(self):
        """A tenant that was idle cannot cash in saved-up credit and
        starve the tenant that kept the daemon busy."""
        adm = AdmissionController(max_queue=64)
        adm.max_batch = 1
        for _ in range(4):
            adm.try_admit(_req(tenant="busy", sig="b"))
            adm.next_batch()
        adm.try_admit(_req(tenant="busy", sig="b"))
        adm.try_admit(_req(tenant="late", sig="zz"))
        first = adm.next_batch().requests[0].request.tenant
        second = adm.next_batch().requests[0].request.tenant
        assert {first, second} == {"busy", "late"}

    def test_batch_coalesces_identical_signatures_across_tenants(self):
        adm = AdmissionController(max_queue=64, max_batch=16)
        adm.try_admit(_req(tenant="a", sig="same"))
        adm.try_admit(_req(tenant="b", sig="same"))
        adm.try_admit(_req(tenant="a", sig="other"))
        adm.try_admit(_req(tenant="c", sig="same"))
        batch = adm.next_batch()
        assert batch.signature == "same"
        assert len(batch) == 3
        assert adm.depth == 1
        assert adm.stats["batched_requests"] == 2
        leftover = adm.next_batch()
        assert leftover.signature == "other"
        assert len(leftover) == 1
        assert adm.depth == 0

    def test_max_batch_bounds_coalescing(self):
        adm = AdmissionController(max_queue=64, max_batch=3)
        for _ in range(5):
            adm.try_admit(_req(sig="same"))
        assert len(adm.next_batch()) == 3
        assert len(adm.next_batch()) == 2

    def test_riders_are_charged_to_their_tenants(self):
        """Coalescing must not let a tenant ride for free: its pass
        advances for every batched request it contributed."""
        adm = AdmissionController(max_queue=64)
        for _ in range(3):
            adm.try_admit(_req(tenant="a", sig="same"))
        adm.try_admit(_req(tenant="b", sig="solo"))
        batch = adm.next_batch()
        assert len(batch) == 3  # all of tenant a, coalesced
        assert adm._pass["a"] == pytest.approx(3.0)
        assert adm.next_batch().requests[0].request.tenant == "b"

    def test_cost_model_ewma(self):
        model = CostModel()
        assert model.estimate("s") is None
        model.observe("s", 1.0)
        model.observe("s", 2.0)
        est = model.estimate("s")
        assert 1.0 < est < 2.0


# ---------------------------------------------------------------------------
# the daemon end-to-end (in-process, unix socket)


class ServerHarness:
    """FusionServer on a background thread + unix socket."""

    def __init__(self, **config):
        # tmp_path can exceed the ~104-char AF_UNIX limit; use a short
        # private dir instead.
        self._dir = tempfile.mkdtemp(prefix="repro-serve-")
        self.socket_path = os.path.join(self._dir, "s.sock")
        config.setdefault("grace_seconds", 0.05)
        self.server = FusionServer(
            ServerConfig(socket_path=self.socket_path, **config))
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve()), daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(self.socket_path):
            if time.monotonic() > deadline:
                raise RuntimeError("daemon never bound its socket")
            time.sleep(0.01)

    def client(self) -> ServeClient:
        return ServeClient(socket_path=self.socket_path)

    def stop(self):
        if self.thread.is_alive():
            try:
                with self.client() as c:
                    c.drain()
            except OSError:
                pass
        self.thread.join(timeout=15)
        assert not self.thread.is_alive()


@pytest.fixture
def harness():
    h = ServerHarness(max_queue=32)
    yield h
    h.stop()


class TestServerEndToEnd:
    def test_exec_matches_direct_execution(self, harness):
        with harness.client() as c:
            resp = c.exec("jacobi", req_id=1, n=33, procs=2, backend="jit")
        assert resp["ok"], resp
        result = resp["result"]
        prep = prepare_kernel("jacobi", n=33, procs=2, backend="vector")
        _s, counters, digest = execute_prepared(prep, "vector")
        assert result["checksum"] == digest
        assert result["iterations"] == (counters["fused_iterations"]
                                        + counters["peeled_iterations"])
        assert result["shape"] == "n=33"
        assert result["queue_ms"] >= 0

    def test_compile_then_exec_reuses_prepared_plan(self, harness):
        with harness.client() as c:
            compiled = c.compile("jacobi", req_id="c", n=33, procs=2)
            assert compiled["ok"], compiled
            assert compiled["result"]["signatures"]
            first = c.exec("jacobi", req_id=1, n=33, procs=2)
            second = c.exec("jacobi", req_id=2, n=33, procs=2)
            status = c.status()["result"]
        assert first["result"]["checksum"] == second["result"]["checksum"]
        # One prepared entry serves the execs; compile has its own
        # signature prefix but shares the plan cache underneath.
        assert status["prepared"]["entries"] == 2
        assert status["completed"] == 3

    def test_unknown_kernel_and_backend_are_clean_errors(self, harness):
        with harness.client() as c:
            bad_kernel = c.exec("nope", req_id=1, n=33)
            bad_backend = c.exec("jacobi", req_id=2, n=33,
                                 backend="warp-drive")
            garbage = c.request({"op": "exec", "id": 3})
        assert not bad_kernel["ok"]
        assert "unknown kernel" in bad_kernel["error"]
        assert not bad_backend["ok"]
        assert "unknown backend" in bad_backend["error"]
        assert not garbage["ok"]
        # The connection survived all three.

    def test_pipelined_identical_requests_batch(self, harness):
        """A slow head request holds the executor while identical
        requests pile up behind it — they must coalesce."""
        with harness.client() as c:
            # Head: a distinct, slower signature (vector, bigger shape).
            messages = [{"op": "exec", "id": "head", "kernel": "jacobi",
                         "n": 255, "procs": 2, "backend": "vector"}]
            messages += [
                {"op": "exec", "id": f"r{i}", "kernel": "jacobi",
                 "n": 33, "procs": 2, "backend": "jit"}
                for i in range(8)
            ]
            for message in messages:
                c._file.write(encode_message(message))
            c._file.flush()
            responses = [decode_line(c._file.readline())
                         for _ in messages]
            status = c.status()["result"]
        by_id = {r["id"]: r for r in responses}
        assert all(r["ok"] for r in responses), responses
        checksums = {by_id[f"r{i}"]["result"]["checksum"] for i in range(8)}
        assert len(checksums) == 1
        assert status["admission"]["batched_requests"] > 0
        assert any(by_id[f"r{i}"]["result"]["batched"] for i in range(8))

    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        h = ServerHarness(max_queue=2)
        try:
            with h.client() as c:
                messages = [{"op": "exec", "id": "head", "kernel": "jacobi",
                             "n": 255, "procs": 2, "backend": "vector"}]
                messages += [
                    {"op": "exec", "id": f"r{i}", "kernel": "jacobi",
                     "n": 33, "procs": 2}
                    for i in range(12)
                ]
                for message in messages:
                    c._file.write(encode_message(message))
                c._file.flush()
                responses = [decode_line(c._file.readline())
                             for _ in messages]
            shed = [r for r in responses
                    if r["status"] == STATUS_OVERLOADED]
            served = [r for r in responses if r["ok"]]
            assert shed, "a 2-deep queue fed 13 requests must shed"
            assert served, "the queue must still serve what it admitted"
            for r in shed:
                assert "queue" in r["error"] or "wait" in r["error"]
                assert r["queue_depth"] <= 2
        finally:
            h.stop()

    def test_drain_finishes_inflight_then_refuses(self, harness):
        with harness.client() as c:
            ok = c.exec("jacobi", req_id=1, n=33, procs=2)
            assert ok["ok"]
            drained = c.drain()
            assert drained["ok"]
            assert drained["result"]["drained"] is True
        harness.thread.join(timeout=15)
        assert not harness.thread.is_alive()

    def test_draining_rejects_new_work(self):
        h = ServerHarness(max_queue=8)
        try:
            h.server.begin_drain()
            with h.client() as c:
                resp = c.exec("jacobi", req_id=1, n=33, procs=2)
            assert resp["status"] == STATUS_DRAINING
        finally:
            h.stop()


# ---------------------------------------------------------------------------
# self-healing: health op, chaos op, retry with degradation


needs_fork = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="worker pools rely on fork",
)


class TestSelfHealing:
    def test_health_op_reports_recovery_state(self, harness):
        with harness.client() as c:
            c.exec("jacobi", req_id=1, n=33, procs=2)
            health = c.health()
        assert health["ok"], health
        result = health["result"]
        assert result["draining"] is False
        assert result["faults"] is None
        assert result["failures"] == {}
        assert result["retry_budget"] == 2  # ServerConfig default
        assert "pool" in result and "supervisor" in result
        assert result["breaker"]["open"] == {}

    def test_chaos_op_installs_and_clears(self, harness):
        with harness.client() as c:
            installed = c.chaos("crash@run=3;cache_corrupt@exec=5")
            assert installed["ok"], installed
            desc = installed["result"]["chaos"]
            assert desc["source"] == "chaos op"
            assert [cl["kind"] for cl in desc["clauses"]] == \
                ["crash", "cache_corrupt"]
            health = c.health()
            assert health["result"]["faults"]["spec"] == \
                "crash@run=3;cache_corrupt@exec=5"
            bad = c.chaos("kaboom@run=1")
            assert not bad["ok"]
            assert "unknown fault kind" in bad["error"]
            cleared = c.chaos("")
            assert cleared["ok"] and cleared["result"]["chaos"] is None
            assert c.health()["result"]["faults"] is None

    @needs_fork
    def test_injected_crash_is_retried_with_degradation(self, harness):
        """A worker crash mid-request: the daemon answers ``ok`` anyway
        (one retry, one rung down, bit-identical checksum) and the
        failure shows up in ``health`` — not in the client's lap."""
        prep = prepare_kernel("jacobi", n=25, procs=2, backend="vector")
        _s, _c, reference = execute_prepared(prep, "vector")
        with harness.client() as c:
            warm = c.exec("jacobi", req_id="w", n=25, procs=2,
                          backend="mpjit", max_workers=2)
            assert warm["ok"], warm
            assert "retries" not in warm["result"]
            c.chaos("crash@run=1")
            hit = c.exec("jacobi", req_id="h", n=25, procs=2,
                         backend="mpjit", max_workers=2)
            assert hit["ok"], hit
            result = hit["result"]
            assert result["checksum"] == reference
            assert result["retries"] >= 1
            assert result["degraded"] is True
            assert result["backend_used"] in ("jit", "vector")
            c.chaos("")
            health = c.health()["result"]
        assert health["retries"] >= 1
        assert health["degraded"] >= 1
        # terminal failures stay zero — the client never saw the crash;
        # the supervisor's taxonomy counts record it
        assert health["failures"] == {}
        assert health["supervisor"]["failures"].get("worker_crash", 0) >= 1

    @needs_fork
    def test_poisoned_member_does_not_fail_riders(self, harness):
        """Batched members are executed (and retried) individually: the
        member that catches the injected crash degrades alone; its
        riders' responses are clean and every checksum agrees."""
        with harness.client() as c:
            warm = c.exec("jacobi", req_id="w", n=25, procs=2,
                          backend="mpjit", max_workers=2)
            assert warm["ok"], warm
            c.chaos("crash@run=1")
            # Slow distinct head holds the executor so the riders queue
            # up behind it and coalesce into one batch.
            messages = [{"op": "exec", "id": "head", "kernel": "jacobi",
                         "n": 255, "procs": 2, "backend": "vector"}]
            messages += [
                {"op": "exec", "id": f"r{i}", "kernel": "jacobi",
                 "n": 25, "procs": 2, "backend": "mpjit",
                 "max_workers": 2}
                for i in range(4)
            ]
            for message in messages:
                c._file.write(encode_message(message))
            c._file.flush()
            responses = [decode_line(c._file.readline())
                         for _ in messages]
            c.chaos("")
        by_id = {r["id"]: r for r in responses}
        riders = [by_id[f"r{i}"] for i in range(4)]
        assert all(r["ok"] for r in riders), riders
        checksums = {r["result"]["checksum"] for r in riders}
        assert len(checksums) == 1
        retried = [r for r in riders if r["result"].get("retries")]
        clean = [r for r in riders if "retries" not in r["result"]]
        assert retried, "the injected crash must have hit one member"
        assert clean, "riders behind the poisoned member must run clean"

    def test_cache_corruption_heals_transparently(self, harness):
        """A chaos-corrupted plan-cache entry: the fault drops the
        daemon's prepared tier, so the next exec re-prepares, finds the
        garbled disk entry, quarantines it to ``<entry>.bad`` and
        recompiles — same checksum, no error reaches any client."""
        with harness.client() as c:
            first = c.exec("jacobi", req_id=1, n=33, procs=2, backend="jit")
            assert first["ok"], first
            c.chaos("cache_corrupt@exec=1")
            # exec 1 of the plan fires the corruption (its own run still
            # uses the in-memory module; the *next* prepare pays).
            trigger = c.exec("jacobi", req_id=2, n=33, procs=2,
                             backend="jit")
            assert trigger["ok"], trigger
            healed = c.exec("jacobi", req_id=3, n=33, procs=2,
                            backend="jit")
            c.chaos("")
            status = c.status()["result"]
        assert healed["ok"], healed
        assert healed["result"]["checksum"] == first["result"]["checksum"]
        assert status["plancache"]["quarantined"] >= 1

    def test_serve_cli_rejects_bad_chaos_spec(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["serve", "--chaos", "kaboom@run=1",
                       "--socket", "/tmp/unused.sock"])
        assert rc == 2
        assert "bad --chaos spec" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# SIGTERM drain (real process)


class TestSigtermDrain:
    def test_sigterm_drains_inflight_before_exit(self, tmp_path):
        """Admitted requests get responses even when SIGTERM lands
        while they are queued; the daemon then exits 0."""
        short_dir = tempfile.mkdtemp(prefix="repro-sigterm-")
        sock = os.path.join(short_dir, "d.sock")
        env = dict(os.environ,
                   PYTHONPATH=SRC,
                   REPRO_JIT_CACHE_DIR=str(tmp_path / "daemon-cache"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            with ServeClient(socket_path=sock) as c:
                # Pipeline several requests, confirm the daemon is
                # mid-stream by reading the first response, THEN
                # deliver SIGTERM while the rest are still queued.
                for i in range(5):
                    c._file.write(encode_message(
                        {"op": "exec", "id": i, "kernel": "jacobi",
                         "n": 33, "procs": 2}))
                c._file.flush()
                first = decode_line(c._file.readline())
                assert first["ok"], first
                proc.send_signal(signal.SIGTERM)
                responses = [decode_line(c._file.readline())
                             for _ in range(4)]
            # Every admitted request was answered; any line the drain
            # beat to admission is refused, not dropped.
            for r in responses:
                assert r["ok"] or r["status"] == STATUS_DRAINING, r
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_sigterm_while_chaos_crashed_worker_mid_batch(self, tmp_path):
        """Drain-while-crashed: SIGTERM lands while an injected fault
        has just killed a pool worker with requests still queued.  Every
        in-flight request must complete (degraded is fine) or get a
        structured failure — never hang, never drop the connection — and
        the daemon must exit 0 leaving no children or shm segments."""
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("worker pools rely on fork")
        shm = Path("/dev/shm")
        shm_before = ({p.name for p in shm.iterdir()}
                      if shm.is_dir() else None)
        short_dir = tempfile.mkdtemp(prefix="repro-chaos-")
        sock = os.path.join(short_dir, "d.sock")
        env = dict(os.environ,
                   PYTHONPATH=SRC,
                   REPRO_SYNC_TIMEOUT="15",
                   REPRO_JIT_CACHE_DIR=str(tmp_path / "daemon-cache"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--chaos", "crash@run=2", "--retries", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            with ServeClient(socket_path=sock, timeout=120.0) as c:
                # Pipeline mpjit requests: run 1 warms the pool, run 2
                # is the injected crash — SIGTERM arrives right after
                # the first response, while the remaining requests are
                # in flight behind the dead worker.
                for i in range(5):
                    c._file.write(encode_message(
                        {"op": "exec", "id": i, "kernel": "jacobi",
                         "n": 25, "procs": 2, "backend": "mpjit",
                         "max_workers": 2}))
                c._file.flush()
                first = decode_line(c._file.readline())
                assert first["ok"], first
                proc.send_signal(signal.SIGTERM)
                responses = [decode_line(c._file.readline())
                             for _ in range(4)]
            # Zero hangs is the gate: every line came back, each either
            # ok (possibly degraded), refused by the drain, or a
            # structured failure — never opaque, never dropped.
            for r in responses:
                if not r["ok"]:
                    assert (r["status"] == STATUS_DRAINING
                            or "failure" in r), r
            assert proc.wait(timeout=40) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        if shm_before is not None:
            leaked = {p.name for p in shm.iterdir()} - shm_before
            assert not leaked, f"shm segments leaked: {leaked}"


# ---------------------------------------------------------------------------
# the load generator


class TestLoadgen:
    def test_loadgen_records_service_telemetry(self, tmp_path):
        from repro.bench.store import read_trajectory
        from repro.serve.loadgen import run_loadgen

        h = ServerHarness(max_queue=32)
        results = tmp_path / "results"
        try:
            payload, run_dir = run_loadgen(
                kernel="jacobi", n=33, procs=2, backend="jit",
                socket_path=h.socket_path, concurrency=4, duration=1.0,
                deadline_ms=5_000.0, tenants=2, results_root=results,
                progress=None,
            )
        finally:
            h.stop()
        entry = payload["entries"][0]
        assert entry["backend"] == "serve-jit"
        assert entry["requests"]["ok"] > 0
        assert entry["checksum_mismatches"] == 0
        assert not entry["client_failures"]
        # Tail-latency fields the ROADMAP item 5 wiring promises.
        for field in ("p50_seconds", "p95_seconds", "p99_seconds",
                      "deadline_misses", "median_seconds", "jitter"):
            assert field in entry
        assert entry["requests_per_second"] > 0
        assert payload["server"] is not None
        assert payload["server"]["admission"]["admitted"] > 0
        # Immutable run dir + trajectory line, same as `repro bench`.
        assert run_dir is not None
        telemetry = json.loads((run_dir / "telemetry.json").read_text())
        assert telemetry["run_id"] == run_dir.name
        assert telemetry["suite"]["service"] is True
        assert (run_dir / "summary.csv").read_text().startswith("kernel,")
        mode = (run_dir / "telemetry.json").stat().st_mode
        assert not mode & 0o222  # write bits stripped (immutable run)
        lines = read_trajectory(results)
        assert len(lines) == 1
        assert lines[0]["run_id"] == run_dir.name

    def test_loadgen_chaos_window_records_recovery(self, tmp_path):
        """``--chaos``: the plan is installed for the measured window,
        cleared afterwards, and the entry carries the availability and
        failure-kind telemetry the soak gates on."""
        from repro.serve.loadgen import run_loadgen

        h = ServerHarness(max_queue=32)
        try:
            payload, _run_dir = run_loadgen(
                kernel="jacobi", n=33, procs=2, backend="jit",
                socket_path=h.socket_path, concurrency=2, duration=1.0,
                chaos="cache_corrupt@exec=2..50/4", results_root=None,
                progress=None,
            )
            with h.client() as c:
                faults_after = c.health()["result"]["faults"]
        finally:
            h.stop()
        entry = payload["entries"][0]
        assert entry["checksum_mismatches"] == 0
        assert 0.0 <= entry["availability"] <= 1.0
        assert "failure_kinds" in entry
        assert payload["suite"]["chaos"] == "cache_corrupt@exec=2..50/4"
        assert payload["health"] is not None
        assert faults_after is None  # cleared after the window

    def test_loadgen_cli_json_stdout(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        h = ServerHarness(max_queue=32)
        try:
            rc = cli_main([
                "loadgen", "--socket", h.socket_path, "--kernel", "jacobi",
                "--n", "33", "--procs", "2", "--concurrency", "2",
                "--duration", "0.5", "--no-store", "--json", "-",
            ])
        finally:
            h.stop()
        assert rc == 0
        out = capsys.readouterr()
        payload = json.loads(out.out)
        assert payload["entries"][0]["requests"]["ok"] > 0
        assert "loadgen:" in out.err  # progress moved to stderr
