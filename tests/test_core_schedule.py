"""Block scheduling (Def. 5, balanced variant) and grid factorization."""

import pytest

from repro.core.schedule import BlockSchedule, GridSchedule, factor_grid


class TestBlockSchedule:
    def test_exact_division(self):
        s = BlockSchedule(0, 15, 4)
        assert list(s.blocks()) == [(0, 3), (4, 7), (8, 11), (12, 15)]
        assert s.block_size == 4

    def test_remainder_balanced(self):
        s = BlockSchedule(1, 10, 3)  # 10 iterations, blocks 4,3,3
        sizes = [hi - lo + 1 for lo, hi in s.blocks()]
        assert sizes == [4, 3, 3]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_exact_cover(self):
        s = BlockSchedule(5, 47, 7)
        covered = []
        for lo, hi in s.blocks():
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(5, 48))

    def test_owner(self):
        s = BlockSchedule(0, 9, 3)
        for p in range(1, 4):
            lo, hi = s.block(p)
            for it in range(lo, hi + 1):
                assert s.owner(it) == p

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            BlockSchedule(0, 9, 2).owner(10)

    def test_single_block(self):
        s = BlockSchedule(2, 8, 1)
        assert s.block(1) == (2, 8)

    def test_more_blocks_than_iterations_rejected(self):
        with pytest.raises(ValueError):
            BlockSchedule(0, 2, 4)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            BlockSchedule(5, 4, 1)

    def test_bad_block_index(self):
        with pytest.raises(ValueError):
            BlockSchedule(0, 9, 2).block(3)


class TestGridSchedule:
    def test_two_dim(self):
        g = GridSchedule((BlockSchedule(0, 9, 2), BlockSchedule(0, 9, 5)))
        assert g.num_procs == 10
        assert g.grid_shape == (2, 5)
        coords = list(g.coords())
        assert len(coords) == 10
        assert coords[0] == (1, 1)
        assert g.flat_index((1, 1)) == 0
        assert g.flat_index((2, 5)) == 9

    def test_block_lookup(self):
        g = GridSchedule((BlockSchedule(0, 9, 2), BlockSchedule(0, 3, 2)))
        assert g.block((2, 1)) == ((5, 9), (0, 1))


class TestFactorGrid:
    @pytest.mark.parametrize("procs", [1, 2, 4, 6, 9, 12, 16, 56])
    def test_product_preserved(self, procs):
        for ndims in (1, 2, 3):
            shape = factor_grid(procs, ndims)
            assert len(shape) == ndims
            total = 1
            for extent in shape:
                total *= extent
            assert total == procs

    def test_near_square(self):
        assert sorted(factor_grid(16, 2)) == [4, 4]
        assert sorted(factor_grid(12, 2)) in ([3, 4], [2, 6])

    def test_1d(self):
        assert factor_grid(7, 1) == (7,)
