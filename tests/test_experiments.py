"""Experiment harness: small-configuration runs of every table/figure.

Full-size regeneration lives in benchmarks/; these tests run reduced
sweeps and assert the paper's *qualitative* claims hold.
"""

import pytest

from repro.experiments import (
    fig15_16,
    fig18,
    fig21,
    fig22,
    fig23,
    fig24,
    fig25,
    fig26,
    format_table,
    params_for,
    setup_application,
    setup_kernel,
    table1,
    table2,
)
from repro.kernels import get_kernel
from repro.machine import convex_spp1000, ksr2


class TestTables:
    def test_table1_all_match(self):
        result = table1()
        assert all(r.matches_paper for r in result.rows)
        assert "ll18" in result.format()

    def test_table2_all_match(self):
        result = table2()
        assert result.all_match()
        text = result.format()
        assert "matches paper" in text and "MISMATCH" not in text


class TestParamsFor:
    def test_square(self):
        assert params_for(get_kernel("ll18"), 4) == {"n": 130}

    def test_rect(self):
        p = params_for(get_kernel("filter"), 4)
        assert p["m"] > p["n"]

    def test_spem(self):
        p = params_for(get_kernel("spem"), 2)
        assert set(p) == {"n", "p"}


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")


class TestPaddingClaims:
    @pytest.mark.slow
    def test_fig18_claims(self):
        result = fig18(pads=(0, 1, 9, 17))
        # Padding is erratic (power-of-two extents are catastrophic at 0),
        # partitioning sits at or below the sweep minimum.
        assert result.erratic_ratio > 2
        assert result.partitioning_at_or_below_min()
        # Fusion + partitioning also beats the unfused partitioned version.
        assert result.misses_fused_partitioning < result.misses_unfused_partitioning


class TestKernelClaims:
    @pytest.mark.slow
    def test_fig22_shape(self):
        curves = {c.kernel: c for c in fig22(proc_counts=(1, 4, 16, 32, 56))}
        ll18 = curves["ll18"]
        calc = curves["calc"]
        # Fusion wins at low processor counts on the KSR2...
        assert ll18.points[0].improvement > 1.05
        assert calc.points[0].improvement > 1.1
        # ...and the benefit eventually disappears (crossover exists).
        assert ll18.crossover() is not None
        assert calc.crossover() is not None
        # calc (6 arrays) crosses over no later than LL18 (9 arrays).
        assert calc.crossover() <= ll18.crossover()

    @pytest.mark.slow
    def test_fig23_shape(self):
        curves = {c.kernel: c for c in fig23(proc_counts=(1, 8, 16))}
        # Convex improvements are larger than the KSR2's (higher miss cost).
        assert curves["ll18"].points[0].improvement > 1.2
        assert curves["calc"].points[0].improvement > 1.3
        assert curves["filter"].points[0].improvement > 1.3
        # LL18 keeps winning through 16 processors.
        assert all(p.improvement > 1.0 for p in curves["ll18"].points)

    @pytest.mark.slow
    def test_fig24_shape(self):
        result = fig24(array_dims=(64, 256), proc_counts=(8,))
        for kernel in ("ll18", "calc"):
            small = result.improvement(kernel, 64, 8)
            large = result.improvement(kernel, 256, 8)
            assert large > small  # fusion pays once data exceeds the caches
            assert large > 1.0
            assert small < 1.1


class TestAppClaims:
    @pytest.mark.slow
    def test_fig21_partitioning_matters(self):
        result = fig21(apps=("hydro2d",), proc_counts=(1, 8, 16))
        series = result.series[0]
        # Without partitioning, fusion loses (part of) its benefit: the
        # fused-contiguous curve does not beat the partitioned original.
        assert series.fused_contiguous[-1] < series.orig_partitioned[-1]

    @pytest.mark.slow
    def test_fig25_shapes(self):
        result = fig25(proc_counts=(1, 2, 8, 12, 16))
        series = {s.app: s for s in result.series}
        # tomcatv: consistent improvement at every point.
        assert all(p.improvement > 1.05 for p in series["tomcatv"].points)
        # hydro2d: clear improvement at 1 processor, limited by 16.
        assert series["hydro2d"].improvement_at(1) > 1.08
        assert series["hydro2d"].improvement_at(16) < series["hydro2d"].improvement_at(1)
        # spem: improvement through 8 procs, dip when hypernodes are crossed.
        assert series["spem"].improvement_at(1) > 1.05
        assert series["spem"].dips_at(12) or series["spem"].dips_at(16)


class TestAlignmentClaims:
    @pytest.mark.slow
    def test_fig26_peeling_wins(self):
        result = fig26(ksr2_procs=(1, 8, 32), convex_procs=(1, 8))
        for series in result.series:
            assert series.peeling_wins_everywhere()
            assert len(series.replicated_arrays) == 2
            assert series.replicated_statements == 2


class TestJacobiExperiment:
    def test_fig15_16(self):
        result = fig15_16(grids=((1, 1), (2, 2)))
        assert result.shifts == ((0, 0), (1, 1))
        assert result.peels == ((0, 0), (1, 1))
        # Serial fusion halves the misses (a and b stream once, not twice).
        g, mu, mf = result.grid_results[0]
        assert mu > 1.7 * mf
        assert "fpeel" in result.spmd_code


class TestSetupHelpers:
    def test_setup_kernel_machine_scaled(self):
        exp = setup_kernel("ll18", ksr2(), dims_div=4)
        assert exp.machine.cache.capacity_bytes == 64 * 1024
        assert exp.strip >= 2

    def test_setup_application(self):
        exp = setup_application("tomcatv", convex_spp1000(), 4)
        assert len(exp.fusions) == 1
        assert exp.machine.cache.capacity_bytes == 64 * 1024
