"""Interpreter, compiled runner, and the simulated-parallel executor."""

import numpy as np
import pytest

from conftest import alloc_1d, alloc_2d, arrays_equal, copy_arrays

from repro.core import build_execution_plan, derive_shift_peel
from repro.runtime import (
    compile_nest,
    run_nest,
    run_parallel,
    run_sequence_compiled,
    run_sequence_serial,
    run_unfused_parallel,
)


PARAMS = {"n": 33}
SIZE = 34


class TestInterpreter:
    def test_serial_matches_manual(self, fig9_sequence):
        arrays = alloc_1d("abcd", SIZE)
        run_sequence_serial(fig9_sequence, PARAMS, arrays)
        b = arrays["b"]
        for idx in range(2, 33):
            assert arrays["a"][idx] == b[idx]
        for idx in range(2, 33):
            assert np.isclose(arrays["c"][idx], arrays["a"][idx + 1] + arrays["a"][idx - 1])

    def test_compiled_matches_interpreted(self, fig9_sequence):
        base = alloc_1d("abcd", SIZE, seed=3)
        interp = copy_arrays(base)
        comp = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, interp)
        run_sequence_compiled(fig9_sequence, PARAMS, comp, ("n",))
        assert arrays_equal(interp, comp)

    def test_compiled_source_inspectable(self, fig9_sequence):
        compiled = compile_nest(fig9_sequence[1], ("n",))
        assert "for i in range" in compiled.source
        assert "A_c[i]" in compiled.source

    def test_compiled_2d(self, jacobi_sequence):
        base = alloc_2d("ab", (20, 20), seed=5)
        interp = copy_arrays(base)
        comp = copy_arrays(base)
        run_sequence_serial(jacobi_sequence, {"n": 19}, interp)
        run_sequence_compiled(jacobi_sequence, {"n": 19}, comp, ("n",))
        assert arrays_equal(interp, comp)

    def test_sequential_inner_loop_order(self):
        # An inner `do` loop with a carried dependence must run in order.
        from repro.ir import Affine, Loop, LoopNest, assign, load

        i = Affine.var("i")
        nest = LoopNest(
            (Loop.make("i", 1, Affine.var("n") - 1, parallel=False),),
            (assign("a", i, load("a", i - 1) + 1),),
        )
        arrays = {"a": np.zeros(10)}
        run_nest(nest, {"n": 10}, arrays)
        assert list(arrays["a"]) == list(range(10))


def _check_fused_equivalence(seq, params, names, shape, procs_list, strip=4):
    plan = derive_shift_peel(seq, ("n",))
    base = (
        alloc_1d(names, shape, seed=11)
        if isinstance(shape, int)
        else alloc_2d(names, shape, seed=11)
    )
    oracle = copy_arrays(base)
    run_sequence_serial(seq, params, oracle)
    for procs in procs_list:
        grid = procs if isinstance(procs, tuple) else None
        ep = build_execution_plan(
            plan,
            params,
            num_procs=procs if grid is None else 1,
            grid_shape=grid,
        )
        for mode in ("sequential", "reversed", "roundrobin", "random"):
            got = copy_arrays(base)
            run_parallel(
                ep, got, interleave=mode, strip=strip, rng=np.random.default_rng(1)
            )
            assert arrays_equal(oracle, got), (procs, mode)


class TestParallelCorrectness:
    def test_fig9_all_interleaves(self, fig9_sequence):
        _check_fused_equivalence(fig9_sequence, PARAMS, "abcd", SIZE, [1, 2, 3, 5])

    def test_fig13(self, fig13_sequence):
        _check_fused_equivalence(fig13_sequence, PARAMS, "ab", SIZE, [1, 2, 4])

    def test_fig4(self, fig4_sequence):
        _check_fused_equivalence(fig4_sequence, PARAMS, "abc", SIZE, [1, 3])

    def test_jacobi_grids(self, jacobi_sequence):
        _check_fused_equivalence(
            jacobi_sequence,
            {"n": 19},
            "ab",
            (21, 21),
            [(1, 1), (2, 2), (3, 2), (4, 4)],
            strip=3,
        )

    def test_unfused_parallel_matches_serial(self, fig9_sequence):
        base = alloc_1d("abcd", SIZE, seed=2)
        oracle = copy_arrays(base)
        run_sequence_serial(fig9_sequence, PARAMS, oracle)
        for procs in (1, 2, 5):
            got = copy_arrays(base)
            run_unfused_parallel(
                fig9_sequence, PARAMS, got, procs, interleave="random",
                rng=np.random.default_rng(7),
            )
            assert arrays_equal(oracle, got)

    def test_stats_counts(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, PARAMS, num_procs=3)
        arrays = alloc_1d("abcd", SIZE)
        stats = run_parallel(ep, arrays)
        total = sum(nest.iteration_count(PARAMS) for nest in plan.seq)
        assert stats["fused_iterations"] + stats["peeled_iterations"] == total

    def test_bad_interleave_mode(self, fig9_sequence):
        plan = derive_shift_peel(fig9_sequence, ("n",))
        ep = build_execution_plan(plan, PARAMS, num_procs=2)
        with pytest.raises(ValueError):
            run_parallel(ep, alloc_1d("abcd", SIZE), interleave="zigzag")


class TestKernelCorrectness:
    @pytest.mark.parametrize("kernel,params,shape,procs", [
        ("ll18", {"n": 25}, (26, 26), 3),
        ("calc", {"n": 29}, (30, 30), 2),
        ("tomcatv", {"n": 21}, (22, 22), 3),
    ])
    def test_fused_equals_oracle(self, kernel, params, shape, procs):
        from repro.kernels import get_kernel

        info = get_kernel(kernel)
        program = info.program()
        seq = program.sequences[0]
        plan = derive_shift_peel(seq, program.params, info.fuse_depth)
        rng = np.random.default_rng(4)
        base = {d.name: rng.random(shape) + 1.0 for d in program.arrays}
        oracle = copy_arrays(base)
        run_sequence_serial(seq, params, oracle)
        ep = build_execution_plan(plan, params, num_procs=procs)
        got = copy_arrays(base)
        run_parallel(ep, got, interleave="random", rng=np.random.default_rng(9))
        assert arrays_equal(oracle, got)

    def test_filter_fused_equals_oracle(self):
        from repro.kernels import get_kernel

        info = get_kernel("filter")
        program = info.program()
        seq = program.sequences[0]
        params = {"m": 41, "n": 25}
        plan = derive_shift_peel(seq, program.params, 1)
        rng = np.random.default_rng(4)
        base = {d.name: rng.random((42, 26)) + 1.0 for d in program.arrays}
        oracle = copy_arrays(base)
        run_sequence_serial(seq, params, oracle)
        ep = build_execution_plan(plan, params, num_procs=2)
        got = copy_arrays(base)
        run_parallel(ep, got, interleave="roundrobin")
        assert arrays_equal(oracle, got)
